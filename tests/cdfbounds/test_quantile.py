"""Tests for DKW-band inversion into certified quantile intervals."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfbounds.dkw import dkw_epsilon, mean_from_cdf_upper
from repro.cdfbounds.quantile import (
    deterministic_quantile_ranks,
    dkw_quantile_ranks,
    empirical_quantile,
    quantile_interval,
    quantile_rank,
)


class TestQuantileRank:
    def test_inverse_cdf_convention(self):
        # Q(p) = x_(⌈p·n⌉), 1-based.
        assert quantile_rank(0.5, 10) == 5
        assert quantile_rank(0.5, 11) == 6
        assert quantile_rank(0.95, 100) == 95
        assert quantile_rank(0.95, 101) == 96

    def test_clipped_into_range(self):
        assert quantile_rank(1e-9, 10) == 1
        assert quantile_rank(1.0 - 1e-12, 10) == 10

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            quantile_rank(0.5, 0)


class TestDkwQuantileRanks:
    def test_matches_two_sided_band(self):
        # δ/2 per one-sided band is numerically the two-sided DKW band.
        m, p, delta = 400, 0.5, 0.05
        eps = dkw_epsilon(m, delta, two_sided=True)
        lo, hi = dkw_quantile_ranks(m, p, delta)
        assert lo == max(int(math.ceil(m * (p - eps))), 0)
        assert hi == int(math.ceil(m * (p + eps)))

    def test_brackets_the_empirical_rank(self):
        m = 1000
        for p in (0.1, 0.5, 0.9):
            lo, hi = dkw_quantile_ranks(m, p, 0.05)
            assert lo <= quantile_rank(p, m) <= hi

    def test_out_of_range_conventions(self):
        # Tiny samples push both ranks off the ends: 0 = "use a",
        # m + 1 = "use b".
        lo, hi = dkw_quantile_ranks(2, 0.5, 0.01)
        assert lo == 0
        assert hi == 3

    def test_tightens_with_m(self):
        lo1, hi1 = dkw_quantile_ranks(100, 0.5, 0.05)
        lo2, hi2 = dkw_quantile_ranks(10_000, 0.5, 0.05)
        assert (hi2 - lo2) / 10_000 < (hi1 - lo1) / 100

    def test_rejects_bad_p(self):
        for p in (0.0, 1.0, -0.2, 1.7):
            with pytest.raises(ValueError):
                dkw_quantile_ranks(10, p, 0.05)


class TestDeterministicRanks:
    def test_exact_collapse_at_exhaustion(self):
        lo, hi = deterministic_quantile_ranks(100, 0.5, 100)
        assert lo == hi == quantile_rank(0.5, 100)

    def test_brute_force_soundness(self):
        """Every sampled subset's clamp must contain the population rank-r
        value — checked exhaustively on a small population."""
        rng = np.random.default_rng(5)
        population = np.sort(rng.normal(0, 1, 12))
        n = population.size
        for p in (0.25, 0.5, 0.8):
            r = quantile_rank(p, n)
            truth = population[r - 1]
            for _ in range(200):
                m = int(rng.integers(1, n + 1))
                sample = np.sort(rng.choice(population, size=m, replace=False))
                lo_rank, hi_rank = deterministic_quantile_ranks(m, p, n)
                lo = -np.inf if lo_rank < 1 else sample[lo_rank - 1]
                hi = np.inf if hi_rank > m else sample[hi_rank - 1]
                assert lo <= truth <= hi

    def test_monotone_in_population_bound(self):
        """Growing n (the certified upper bound N⁺) only loosens the clamp:
        passing an overestimate is always sound."""
        m = 40
        for p in (0.3, 0.5, 0.9):
            prev_lo, prev_hi = deterministic_quantile_ranks(m, p, m)
            for n in range(m, m + 60):
                lo, hi = deterministic_quantile_ranks(m, p, n)
                assert lo <= prev_lo
                assert hi >= prev_hi or prev_hi > m
                prev_lo, prev_hi = lo, hi

    def test_rejects_n_below_m(self):
        with pytest.raises(ValueError):
            deterministic_quantile_ranks(10, 0.5, 9)


class TestQuantileInterval:
    def test_empty_sample_trivial(self):
        assert quantile_interval(np.array([]), 0.5, 0.05, -1.0, 1.0) == (-1.0, 1.0)

    def test_contains_empirical_quantile(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(10, 3, 500)
        lo, hi = quantile_interval(sample, 0.5, 0.05, -50.0, 50.0)
        assert lo <= empirical_quantile(sample, 0.5) <= hi

    def test_population_bound_tightens(self):
        rng = np.random.default_rng(1)
        sample = rng.uniform(0, 1, 200)
        wide = quantile_interval(sample, 0.5, 0.05, 0.0, 1.0)
        narrow = quantile_interval(sample, 0.5, 0.05, 0.0, 1.0, n=220)
        assert narrow[0] >= wide[0]
        assert narrow[1] <= wide[1]

    def test_exact_at_exhaustion(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(0, 1, 321)
        lo, hi = quantile_interval(sample, 0.75, 1e-12, -10.0, 10.0, n=321)
        assert lo == hi == empirical_quantile(sample, 0.75)

    def test_clipped_to_support(self):
        lo, hi = quantile_interval(np.array([1.0, 2.0]), 0.5, 0.01, 0.0, 5.0)
        assert 0.0 <= lo <= hi <= 5.0

    def test_monte_carlo_coverage(self):
        """Empirical coverage of the true quantile must beat 1 − δ."""
        rng = np.random.default_rng(7)
        delta, trials, n_pop, m = 0.2, 300, 5_000, 400
        population = rng.gamma(2.0, 10.0, n_pop)
        truth = np.sort(population)[quantile_rank(0.5, n_pop) - 1]
        hits = 0
        for _ in range(trials):
            sample = rng.choice(population, size=m, replace=False)
            lo, hi = quantile_interval(sample, 0.5, delta, 0.0, 1e3, n=n_pop)
            hits += int(lo <= truth <= hi)
        coverage = hits / trials
        slack = 4.0 * math.sqrt(delta * (1 - delta) / trials)
        assert coverage >= 1.0 - delta - slack

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=300),
        p=st.floats(min_value=0.01, max_value=0.99),
        pad=st.integers(min_value=0, max_value=200),
    )
    def test_property_interval_well_formed(self, m, p, pad):
        rng = np.random.default_rng(m * 1_000 + pad)
        sample = rng.normal(0, 5, m)
        a, b = float(sample.min()) - 1.0, float(sample.max()) + 1.0
        lo, hi = quantile_interval(sample, p, 0.05, a, b, n=m + pad)
        assert a <= lo <= hi <= b


class TestEmpiricalQuantile:
    def test_matches_sorted_indexing(self):
        sample = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        assert empirical_quantile(sample, 0.5) == 3.0
        assert empirical_quantile(sample, 0.2) == 1.0
        assert empirical_quantile(sample, 0.81) == 5.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_quantile(np.array([]), 0.5)


class TestMeanFromCdfUpperSupportGuard:
    """Regression: values outside [a, b] used to produce negative
    np.diff(edges) terms and an unsound (non-monotone) mean bound."""

    def test_out_of_support_values_clipped(self):
        heights = np.array([0.5, 1.0])
        inside = mean_from_cdf_upper(
            np.array([2.0, 8.0]), heights, 0.0, 0.0, 10.0
        )
        # A value dangling below the declared support must not push the
        # bound below the all-inside evaluation of the clipped sample.
        outside = mean_from_cdf_upper(
            np.array([-5.0, 8.0]), heights, 0.0, 0.0, 10.0
        )
        clipped = mean_from_cdf_upper(
            np.array([0.0, 8.0]), heights, 0.0, 0.0, 10.0
        )
        assert outside == pytest.approx(clipped)
        assert inside >= outside  # monotone in the value positions

    def test_result_stays_in_support(self):
        rng = np.random.default_rng(3)
        values = np.sort(rng.normal(5.0, 4.0, 50))  # spills past [0, 10]
        heights = np.linspace(1 / 50, 1.0, 50)
        for shift in (0.0, 0.1, 0.3):
            result = mean_from_cdf_upper(values, heights, shift, 0.0, 10.0)
            assert 0.0 <= result <= 10.0

    def test_rejects_inverted_support(self):
        with pytest.raises(ValueError):
            mean_from_cdf_upper(
                np.array([1.0]), np.array([1.0]), 0.0, 5.0, 4.0
            )
