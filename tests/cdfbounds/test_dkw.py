"""Tests for DKW bands and Anderson's mean-from-CDF machinery."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cdfbounds.dkw import (
    anderson_mean_bounds,
    dkw_band,
    dkw_epsilon,
    empirical_cdf,
    mean_from_cdf_upper,
)


class TestDkwEpsilon:
    def test_one_sided_formula(self):
        assert dkw_epsilon(100, 0.05) == pytest.approx(
            math.sqrt(math.log(1 / 0.05) / 200)
        )

    def test_two_sided_formula(self):
        assert dkw_epsilon(100, 0.05, two_sided=True) == pytest.approx(
            math.sqrt(math.log(2 / 0.05) / 200)
        )

    def test_two_sided_wider(self):
        assert dkw_epsilon(50, 0.1, two_sided=True) > dkw_epsilon(50, 0.1)

    def test_shrinks_with_m(self):
        assert dkw_epsilon(10_000, 0.05) < dkw_epsilon(100, 0.05)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            dkw_epsilon(0, 0.05)
        with pytest.raises(ValueError):
            dkw_epsilon(10, 0.0)


class TestEmpiricalCdf:
    def test_simple(self):
        values, heights = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(heights, [1 / 3, 2 / 3, 1.0])

    def test_duplicates_merged(self):
        values, heights = empirical_cdf(np.array([1.0, 1.0, 2.0, 2.0, 2.0]))
        np.testing.assert_array_equal(values, [1.0, 2.0])
        np.testing.assert_allclose(heights, [0.4, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.array([]))

    def test_reaches_one(self, rng):
        _, heights = empirical_cdf(rng.normal(0, 1, 100))
        assert heights[-1] == pytest.approx(1.0)


class TestDkwBand:
    def test_band_brackets_empirical(self, rng):
        sample = rng.uniform(0, 1, 200)
        values, lower, upper = dkw_band(sample, 0.05)
        _, heights = empirical_cdf(sample)
        assert np.all(lower <= heights)
        assert np.all(heights <= upper)

    def test_band_clipped_to_unit(self, rng):
        _, lower, upper = dkw_band(rng.uniform(0, 1, 10), 0.5)
        assert lower.min() >= 0.0
        assert upper.max() <= 1.0

    def test_band_covers_true_uniform_cdf(self, rng):
        """Monte-Carlo: the (1−δ) band covers F(x) = x everywhere, at
        least (1−δ)-often."""
        failures = 0
        trials = 100
        for _ in range(trials):
            sample = rng.uniform(0, 1, 150)
            values, lower, upper = dkw_band(sample, 0.1)
            truth = values  # uniform CDF on [0, 1]
            if np.any(lower > truth) or np.any(upper < truth):
                failures += 1
        assert failures / trials <= 0.1 + 3 * math.sqrt(0.1 * 0.9 / trials)


class TestMeanFromCdfUpper:
    def test_zero_shift_recovers_sample_mean(self, rng):
        """With shift 0 the integral identity gives exactly the sample
        mean (Lemma 2 applied to the empirical CDF)."""
        sample = rng.uniform(2, 8, 500)
        values, heights = empirical_cdf(sample)
        result = mean_from_cdf_upper(values, heights, 0.0, 0.0, 10.0)
        assert result == pytest.approx(sample.mean(), rel=1e-12)

    def test_positive_shift_lowers_mean(self, rng):
        sample = rng.uniform(2, 8, 300)
        values, heights = empirical_cdf(sample)
        base = mean_from_cdf_upper(values, heights, 0.0, 0.0, 10.0)
        shifted = mean_from_cdf_upper(values, heights, 0.1, 0.0, 10.0)
        assert shifted < base

    def test_full_shift_returns_a(self):
        values, heights = empirical_cdf(np.array([5.0, 6.0]))
        assert mean_from_cdf_upper(values, heights, 1.0, 0.0, 10.0) == pytest.approx(0.0)

    def test_matches_numeric_integration(self, rng):
        sample = rng.normal(5, 1, 400).clip(0, 10)
        values, heights = empirical_cdf(sample)
        shift = 0.07
        xs = np.linspace(0, 10, 200_001)
        step = np.clip(
            np.searchsorted(values, xs, side="right") / sample.size + shift, 0, 1
        )
        numeric = 10.0 - np.trapezoid(step, xs)
        exact = mean_from_cdf_upper(values, heights, shift, 0.0, 10.0)
        assert exact == pytest.approx(numeric, abs=1e-3)


class TestAndersonMeanBounds:
    def test_empty_sample_trivial(self):
        assert anderson_mean_bounds(np.array([]), 0.0, 1.0, 0.1) == (0.0, 1.0)

    def test_brackets_sample_mean(self, rng):
        sample = rng.uniform(0, 1, 800)
        lo, hi = anderson_mean_bounds(sample, 0, 1, 0.05)
        assert lo <= sample.mean() <= hi

    def test_monte_carlo_coverage(self, rng):
        data = rng.lognormal(0, 0.8, 20_000).clip(0, 20)
        truth = data.mean()
        failures = 0
        trials = 80
        for _ in range(trials):
            sample = data[rng.permutation(data.size)[:400]]
            lo, hi = anderson_mean_bounds(sample, 0, 20, 0.2)
            if not lo <= truth <= hi:
                failures += 1
        assert failures / trials <= 0.2 + 3 * math.sqrt(0.2 * 0.8 / trials)

    @given(st.integers(10, 400))
    @settings(max_examples=30, deadline=None)
    def test_property_bounds_within_range(self, m):
        rng = np.random.default_rng(m)
        sample = rng.uniform(3, 7, m)
        lo, hi = anderson_mean_bounds(sample, 0, 10, 0.1)
        assert 0.0 <= lo <= hi <= 10.0
