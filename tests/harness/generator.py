"""Seeded random query/schema generator for the cross-engine harness.

Each seed deterministically expands into a :class:`GeneratedCase`: a
synthetic table (random size, cardinalities, value distribution, skew), a
scramble, and a random query (aggregate, GROUP BY, predicate, stopping
condition, δ, bounder, strategy, round cadence, lookahead window size,
start block).  The parity suite replays each case through the scalar,
pool, and parallel engines and pins their answers to each other; the
coverage suite replays fresh data seeds and pins the 1−δ contract.

Stopping targets are derived from the generated data's own scale (never
from fixed constants), so thresholds land at many different points of the
run — some cases stop after one round, some scan to exhaustion — without
sitting on knife edges where a 1e-9 engine difference could flip the
stopping decision.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.fastframe.predicate import Eq, TruePredicate
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
)

#: Bounders the harness samples from — the SSI set the parity suite
#: already pins pairwise (asymptotic/non-SSI bounders are out of scope
#: for the multi-query guarantee).  Includes both O(m) shapes: plain
#: Anderson (pooled CSR sample buffers) and RangeTrim with an Anderson
#: inner (CSR pools nested under the Algorithm 6 clip deltas).
BOUNDERS = (
    "hoeffding",
    "hoeffding+rt",
    "bernstein",
    "bernstein+rt",
    "anderson",
    "anderson+rt",
)

#: Environment override pinning every generated case to one bounder —
#: the CI matrix uses it to replay the parity/determinism suites with a
#: specific family (e.g. ``REPRO_HARNESS_BOUNDER=anderson+rt`` under
#: ``REPRO_PARALLELISM=2`` exercises the CSR delta merges end to end).
HARNESS_BOUNDER_ENV = "REPRO_HARNESS_BOUNDER"


def _case_bounder(rng: np.random.Generator) -> str:
    forced = os.environ.get(HARNESS_BOUNDER_ENV, "").strip().lower()
    drawn = str(rng.choice(BOUNDERS))  # always consume the stream: the
    # case's other draws must not depend on whether an override is set.
    return forced or drawn

STRATEGIES = ("scan", "activesync", "activepeek")

#: Lookahead window sizes (blocks).  Small windows force several passes
#: per scan, exercising multi-window ingest, prefetch, and mid-scan
#: rounds even on harness-scale tables.
WINDOW_BLOCKS = (48, 192, 1024)


@dataclass
class GeneratedCase:
    """One fully specified random execution, shared by all engines."""

    seed: int
    table: Table
    scramble: Scramble
    query: Query
    bounder: str
    strategy_name: str
    window_blocks: int
    delta: float
    round_rows: int
    start_block: int

    def strategy(self):
        """A fresh strategy instance (engines must not share state)."""
        strategy = get_strategy(self.strategy_name)
        strategy.window_blocks = self.window_blocks
        return strategy

    def describe(self) -> str:
        return (
            f"seed={self.seed} {self.query.describe()} "
            f"bounder={self.bounder} strategy={self.strategy_name} "
            f"window={self.window_blocks} rows={self.table.num_rows} "
            f"delta={self.delta:.2e} round_rows={self.round_rows} "
            f"start={self.start_block}"
        )

    def true_aggregates(self) -> dict:
        """Exact per-group answers, computed directly on the base table.

        Keys match :class:`~repro.fastframe.query.GroupResult` keys
        (decoded group-by value tuples); only groups with at least one
        predicate-passing row appear for AVG (their aggregate exists).
        """
        query = self.query
        table = self.table
        rows = np.arange(table.num_rows)
        if not isinstance(query.predicate, TruePredicate):
            rows = rows[query.predicate.mask(table, rows)]
        if query.aggregate is AggregateFunction.COUNT:
            values = None
        else:
            values = table.continuous(query.column)[rows]
        if query.aggregate.is_quantile:
            from repro.cdfbounds.quantile import empirical_quantile
        if not query.group_by:
            keys = np.zeros(rows.size, dtype=np.int64)
        else:
            keys = None
            cards = [
                table.categorical(column).cardinality for column in query.group_by
            ]
            for column, card in zip(query.group_by, cards):
                codes = table.categorical(column).codes[rows]
                keys = codes.astype(np.int64) if keys is None else keys * card + codes
        out: dict = {}
        for code in np.unique(keys):
            member = keys == code
            if query.group_by:
                remaining = int(code)
                parts = []
                for column, card in zip(
                    reversed(query.group_by), reversed(cards)
                ):
                    value = table.categorical(column).dictionary[remaining % card]
                    parts.append(value)
                    remaining //= card
                key = tuple(reversed(parts))
            else:
                key = ()
            if query.aggregate is AggregateFunction.COUNT:
                out[key] = float(np.count_nonzero(member))
            elif query.aggregate is AggregateFunction.AVG:
                out[key] = float(values[member].mean())
            elif query.aggregate.is_quantile:
                out[key] = float(
                    empirical_quantile(values[member], query.quantile_p)
                )
            else:
                out[key] = float(values[member].sum())
        return out


def _random_values(rng: np.random.Generator, n: int) -> np.ndarray:
    kind = rng.choice(["normal", "gamma", "uniform", "lognormal", "bimodal"])
    if kind == "normal":
        return rng.normal(rng.uniform(-50, 50), rng.uniform(0.5, 30.0), n)
    if kind == "gamma":
        return rng.gamma(rng.uniform(0.8, 4.0), rng.uniform(1.0, 20.0), n)
    if kind == "uniform":
        lo = rng.uniform(-100, 50)
        return rng.uniform(lo, lo + rng.uniform(1.0, 200.0), n)
    if kind == "lognormal":
        return rng.lognormal(rng.uniform(0.0, 3.0), rng.uniform(0.2, 1.0), n)
    # bimodal: a heavy cluster plus a light, far-away one
    split = rng.uniform(0.05, 0.4)
    choice = rng.random(n) < split
    near = rng.normal(0.0, 1.0, n)
    far = rng.normal(rng.uniform(20, 200), rng.uniform(1.0, 10.0), n)
    return np.where(choice, far, near)


def _random_codes(rng: np.random.Generator, n: int, cardinality: int) -> np.ndarray:
    if rng.random() < 0.5:
        return rng.integers(0, cardinality, n)
    # Skewed occupancy: a few heavy groups, a long sparse tail.
    weights = rng.dirichlet(np.full(cardinality, rng.uniform(0.2, 1.0)))
    return rng.choice(cardinality, size=n, p=weights)


def _random_stopping(rng: np.random.Generator, scale: float, group_by: tuple):
    kind = rng.choice(
        ["abs", "rel", "samples", "threshold", "topk"],
        p=[0.3, 0.3, 0.15, 0.15, 0.1],
    )
    if kind == "abs":
        # Spread over 3 decades of the data scale: loose targets stop in
        # a round or two, tight ones scan to exhaustion.
        return AbsoluteAccuracy(float(scale * 10 ** rng.uniform(-2.5, 0.5)))
    if kind == "rel":
        return RelativeAccuracy(float(rng.uniform(0.05, 0.6)))
    if kind == "samples":
        return SamplesTaken(int(rng.integers(200, 3_000)))
    if kind == "threshold":
        # An offset of the scale keeps the threshold away from most group
        # aggregates without pinning it to any.
        return ThresholdSide(float(scale * rng.uniform(0.3, 1.5)))
    k = int(rng.integers(1, 4)) if group_by else 1
    return TopKSeparated(k, largest=bool(rng.random() < 0.7))


def random_case(seed: int) -> GeneratedCase:
    """Expand one seed into a fully specified cross-engine case."""
    rng = np.random.default_rng(100_000 + seed)
    n = int(rng.integers(1_200, 5_000))
    card_g = int(rng.integers(2, 24))
    card_h = int(rng.integers(2, 6))
    table = Table(
        continuous={"x": _random_values(rng, n)},
        categorical={
            "g": _random_codes(rng, n, card_g).astype(str),
            "h": _random_codes(rng, n, card_h).astype(str),
        },
        range_pad=float(rng.uniform(0.05, 0.3)),
    )
    scramble = Scramble(table, rng=np.random.default_rng(200_000 + seed))

    aggregates = (
        AggregateFunction.AVG, AggregateFunction.SUM, AggregateFunction.COUNT,
        AggregateFunction.MEDIAN, AggregateFunction.PERCENTILE,
    )
    aggregate = aggregates[rng.choice(5, p=[0.4, 0.18, 0.18, 0.12, 0.12])]
    # Draw the quantile level unconditionally so the case's later draws
    # (bounder, strategy, geometry) are identical across aggregate kinds.
    percentile_level = float(rng.uniform(0.1, 0.9))
    group_by_options = ((), ("g",), ("g", "h"))
    group_by = group_by_options[rng.choice(3, p=[0.2, 0.6, 0.2])]
    if rng.random() < 0.35:
        present = table.categorical("h").dictionary
        predicate = Eq("h", str(rng.choice(present)))
    else:
        predicate = TruePredicate()

    x = table.continuous("x")
    scale = float(np.abs(x).mean() + x.std()) or 1.0
    if aggregate is AggregateFunction.COUNT:
        scale = max(n / max(card_g, 1), 10.0)
    elif aggregate is AggregateFunction.SUM:
        scale = scale * n / max(card_g, 1)
    stopping = _random_stopping(rng, scale, group_by)

    query = Query(
        aggregate,
        None if aggregate is AggregateFunction.COUNT else "x",
        stopping,
        predicate=predicate,
        group_by=group_by,
        percentile=(
            percentile_level
            if aggregate is AggregateFunction.PERCENTILE
            else None
        ),
        name=f"harness-{seed}",
    )
    return GeneratedCase(
        seed=seed,
        table=table,
        scramble=scramble,
        query=query,
        bounder=_case_bounder(rng),
        strategy_name=str(rng.choice(STRATEGIES)),
        window_blocks=int(rng.choice(WINDOW_BLOCKS)),
        delta=float(10 ** rng.uniform(-8, -3)),
        round_rows=int(rng.integers(400, 4_000)),
        start_block=int(rng.integers(scramble.num_blocks)),
    )
