"""Randomized cross-engine parity: scalar vs pool vs parallel.

Extends ``tests/fastframe/test_engine_parity.py`` from hand-written cases
to generated ones: every seed expands (via :mod:`tests.harness.generator`)
into a random schema, data distribution, query, stopping condition, δ,
bounder, sampling strategy, lookahead geometry, and start block, and is
replayed through all three engines off the same scramble.  The contract:

* identical group keys, and every interval endpoint (value and COUNT),
  estimate, and sample count within 1e-9 relative tolerance;
* identical exhaustion flags and rows-read / rounds cost metrics;
* bit-identical δ spend — each engine's connection must charge exactly
  the same error probability to the ledger (``==``, not approx).

Cases are deterministic per seed, so a pass is reproducible, and targets
are derived from each dataset's own scale (see the generator) so stopping
decisions never sit on 1e-9 knife edges.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import connect

from .generator import random_case

#: Generated cases replayed per engine (the CI contract is >= 200).
NUM_CASES = 200

RTOL = 1e-9
ATOL = 1e-9

#: Engine configurations: label -> connect() overrides.  "parallel" is the
#: pool engine driven by the multi-process ingest pipeline.
ENGINES = {
    "scalar": {"engine": "scalar"},
    "pool": {"engine": "pool"},
    "parallel": {"engine": "pool", "parallelism": 2},
}


def _run_engine(case, overrides):
    conn = connect(
        case.scramble,
        bounder=case.bounder,
        delta=case.delta,
        policy="even",
        max_queries=1,
        strategy=case.strategy(),
        round_rows=case.round_rows,
        rng=np.random.default_rng(7),
        **overrides,
    )
    handle = conn.query(case.query)
    result = handle.result(start_block=case.start_block)
    return handle, result


def _close(x: float, y: float, context) -> None:
    if np.isfinite(x) or np.isfinite(y):
        assert x == pytest.approx(y, rel=RTOL, abs=ATOL), context
    else:
        assert x == y or (np.isnan(x) and np.isnan(y)), context


def _assert_result_parity(case, label, left, right) -> None:
    context = (case.describe(), label)
    assert left.metrics.rows_read == right.metrics.rows_read, context
    assert left.metrics.rounds == right.metrics.rounds, context
    assert left.metrics.blocks_fetched == right.metrics.blocks_fetched, context
    assert left.metrics.stopped_early == right.metrics.stopped_early, context
    assert set(left.groups) == set(right.groups), context
    for key, a in left.groups.items():
        b = right.groups[key]
        _close(a.interval.lo, b.interval.lo, (*context, key, "interval.lo"))
        _close(a.interval.hi, b.interval.hi, (*context, key, "interval.hi"))
        _close(
            a.count_interval.lo, b.count_interval.lo, (*context, key, "civ.lo")
        )
        _close(
            a.count_interval.hi, b.count_interval.hi, (*context, key, "civ.hi")
        )
        _close(a.estimate, b.estimate, (*context, key, "estimate"))
        assert a.samples == b.samples, (*context, key, "samples")
        assert a.exhausted == b.exhausted, (*context, key, "exhausted")


@pytest.mark.parametrize("seed", range(NUM_CASES))
def test_generated_case_parity(seed):
    case = random_case(seed)
    results = {
        label: _run_engine(case, overrides)
        for label, overrides in ENGINES.items()
    }
    _, reference = results["scalar"]
    for label in ("pool", "parallel"):
        _, result = results[label]
        _assert_result_parity(case, f"scalar-vs-{label}", reference, result)

    # δ accounting must be bit-identical across engines: same ledger
    # charge and same recorded spend, compared with exact float equality.
    deltas = {label: handle.delta for label, (handle, _) in results.items()}
    assert deltas["scalar"] == deltas["pool"] == deltas["parallel"], (
        case.describe(), deltas,
    )
    spends = {label: result.delta for label, (_, result) in results.items()}
    assert spends["scalar"] == spends["pool"] == spends["parallel"], (
        case.describe(), spends,
    )


def test_harness_bounder_override(monkeypatch):
    """REPRO_HARNESS_BOUNDER pins every case to one family without
    perturbing any other draw (the rng stream is consumed either way)."""
    baseline = random_case(5)
    monkeypatch.setenv("REPRO_HARNESS_BOUNDER", "anderson+rt")
    forced = random_case(5)
    assert forced.bounder == "anderson+rt"
    assert forced.query.describe() == baseline.query.describe()
    assert forced.strategy_name == baseline.strategy_name
    assert forced.window_blocks == baseline.window_blocks
    assert forced.start_block == baseline.start_block


def test_generator_is_deterministic():
    """The same seed must expand to the same case (reproducible failures)."""
    a, b = random_case(3), random_case(3)
    assert a.describe() == b.describe()
    assert np.array_equal(a.table.continuous("x"), b.table.continuous("x"))
    assert np.array_equal(
        a.scramble.table.continuous("x"), b.scramble.table.continuous("x")
    )


@pytest.mark.skipif(
    bool(os.environ.get("REPRO_HARNESS_BOUNDER", "").strip()),
    reason="REPRO_HARNESS_BOUNDER pins every case to one family by design",
)
def test_generator_covers_the_query_space():
    """The first NUM_CASES seeds must exercise every aggregate, strategy,
    grouped and scalar shapes, predicates, and both engines' dispatch
    regimes — the harness is only as strong as its spread."""
    cases = [random_case(seed) for seed in range(NUM_CASES)]
    aggregates = {case.query.aggregate for case in cases}
    strategies = {case.strategy_name for case in cases}
    bounders = {case.bounder for case in cases}
    assert len(aggregates) == 5
    # The order-statistics family must be drawn in both flavours, at
    # several quantile levels (each gets its own per-query bounder).
    from repro.fastframe.query import AggregateFunction

    assert AggregateFunction.MEDIAN in aggregates
    assert AggregateFunction.PERCENTILE in aggregates
    levels = {
        case.query.percentile
        for case in cases
        if case.query.aggregate is AggregateFunction.PERCENTILE
    }
    assert len(levels) >= 3
    assert len(strategies) == 3
    assert len(bounders) >= 4
    # Both O(m) pool shapes must be drawn: the CSR sample pool and the
    # CSR-under-RangeTrim composite (the new delta merges are only as
    # tested as the harness's spread).
    assert "anderson" in bounders
    assert "anderson+rt" in bounders
    assert any(case.query.group_by == () for case in cases)
    assert any(len(case.query.group_by) == 2 for case in cases)
    assert any(
        type(case.query.predicate).__name__ == "Eq" for case in cases
    )
    assert any(case.window_blocks < 1024 for case in cases)
