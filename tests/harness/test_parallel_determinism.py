"""Parallel ingest determinism: parallelism must not change a single byte.

The parallel driver's contract is stronger than 1e-9 parity: because
workers run only the pure partition half of ingest (including the
bounder's ``partition_delta`` kernel) and the main process merges deltas
in serial order, the same seed and start block must produce
**byte-identical** `ViewPool` state — *including the bounder pool* — and
identical `ExecutionMetrics` (windows, values gathered, bounds
recomputed, probe counts — everything but wall time) at ``parallelism``
1, 2, and 4 — including when queries retire mid-scan and when the
driver's lookahead prefetch is discarded.  Every delta-capable bounder
family is pinned separately, and the worker payload for native-delta
runs is asserted to carry no per-row value arrays
(``delta_bytes_returned`` stays O(views)-sized).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.fastframe.executor import ApproximateExecutor, QueryRun, run_shared_scan
from repro.fastframe.query import AggregateFunction, ExecutionMetrics, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    RelativeAccuracy,
    SamplesTaken,
)

from tests.support import bounder_pool_bytes as _bounder_pool_bytes

PARALLELISMS = (1, 2, 4)
START_BLOCK = 5

#: One representative per delta-capable bounder family: Hoeffding,
#: Bernstein, the asymptotic (CLT) family, RangeTrim composites over an
#: O(1) and an O(m) inner, and the plain O(m) Anderson/CSR pool.
FAMILY_BOUNDERS = (
    "hoeffding",
    "bernstein",
    "clt",
    "bernstein+rt",
    "anderson",
    "anderson+rt",
)


@pytest.fixture(scope="module")
def scramble():
    rng = np.random.default_rng(0)
    n = 80_000
    table = Table(
        continuous={"x": rng.gamma(2.0, 10.0, n)},
        categorical={
            "g": rng.integers(0, 24, n).astype(str),
            "h": rng.integers(0, 5, n).astype(str),
        },
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(1))


def _executor(scramble, strategy_name):
    strategy = get_strategy(strategy_name)
    strategy.window_blocks = 512  # several windows per scan
    return ApproximateExecutor(
        scramble,
        get_bounder("bernstein+rt"),
        strategy=strategy,
        delta=1e-6,
        round_rows=6_000,
        rng=np.random.default_rng(7),
        engine="pool",
    )


def _dashboard_queries():
    """A retirement mix: one full-scan query, two that stop mid-scan, one
    fixed-sample query — exercising live-set churn and prefetch discard."""
    return [
        Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(1e-9), group_by=("g",)),
        Query(AggregateFunction.AVG, "x", RelativeAccuracy(0.2)),
        Query(AggregateFunction.COUNT, None, AbsoluteAccuracy(2_000.0), group_by=("g",)),
        Query(AggregateFunction.AVG, "x", SamplesTaken(9_000), group_by=("h",)),
    ]


def _pool_snapshot(pool) -> tuple:
    """Every array of the pool, as raw bytes (bounder pool included)."""
    return (
        _bounder_pool_bytes(pool.bounder_pool),
        pool.codes.tobytes(),
        pool.sample.count.tobytes(),
        pool.sample.mean.tobytes(),
        pool.sample.m2.tobytes(),
        pool.all_read.count.tobytes(),
        pool.all_read.mean.tobytes(),
        pool.all_read.m2.tobytes(),
        pool.in_view.tobytes(),
        pool.covered.tobytes(),
        pool.run_lo.tobytes(),
        pool.run_hi.tobytes(),
        pool.crun_lo.tobytes(),
        pool.crun_hi.tobytes(),
        pool.iv_lo.tobytes(),
        pool.iv_hi.tobytes(),
        pool.civ_lo.tobytes(),
        pool.civ_hi.tobytes(),
        pool.active.tobytes(),
        pool.dropped.tobytes(),
        pool.exhausted.tobytes(),
        pool.dirty.tobytes(),
        pool.snap_dirty.tobytes(),
    )


def _metrics_snapshot(metrics: ExecutionMetrics) -> tuple:
    """Every counter but wall time (the one legitimately varying field)."""
    return (
        metrics.rows_read,
        metrics.blocks_fetched,
        metrics.blocks_skipped,
        metrics.index_probes,
        metrics.batch_probes,
        metrics.rounds,
        metrics.values_gathered,
        metrics.bounds_recomputed,
        metrics.stopped_early,
    )


@pytest.mark.parametrize("strategy_name", ["scan", "activepeek"])
def test_shared_scan_byte_identical_across_parallelism(scramble, strategy_name):
    snapshots = {}
    for parallelism in PARALLELISMS:
        executor = _executor(scramble, strategy_name)
        runs = [QueryRun(executor, query) for query in _dashboard_queries()]
        cursor = executor.cursor(START_BLOCK, window_blocks=runs[0].window_blocks)
        batch = run_shared_scan(runs, cursor, parallelism=parallelism)
        for run in runs:
            run.finalize(merge_index_counters=False)
        snapshots[parallelism] = (
            [_pool_snapshot(run.pool) for run in runs],
            [_metrics_snapshot(run.metrics) for run in runs],
            _metrics_snapshot(batch),
        )
    reference = snapshots[PARALLELISMS[0]]
    for parallelism in PARALLELISMS[1:]:
        pools, run_metrics, batch_metrics = snapshots[parallelism]
        ref_pools, ref_run_metrics, ref_batch_metrics = reference
        assert pools == ref_pools, f"ViewPool state diverged at parallelism={parallelism}"
        assert run_metrics == ref_run_metrics, (
            f"per-run metrics diverged at parallelism={parallelism}"
        )
        assert batch_metrics == ref_batch_metrics, (
            f"batch metrics diverged at parallelism={parallelism}"
        )


def test_mid_scan_retirement_happens(scramble):
    """The determinism fixture must actually exercise live-set churn:
    some queries retire while others keep scanning."""
    executor = _executor(scramble, "scan")
    runs = [QueryRun(executor, query) for query in _dashboard_queries()]
    cursor = executor.cursor(START_BLOCK, window_blocks=runs[0].window_blocks)
    batch = run_shared_scan(runs, cursor, parallelism=2)
    rows = [run.metrics.rows_read for run in runs]
    assert max(rows) == scramble.num_rows  # the full-scan anchor
    assert min(rows) < scramble.num_rows  # at least one early retirement
    assert batch.rounds > 1  # several shared windows


def test_solo_execute_byte_identical_across_parallelism(scramble):
    results = []
    for parallelism in PARALLELISMS:
        executor = _executor(scramble, "scan")
        query = Query(
            AggregateFunction.AVG, "x", RelativeAccuracy(0.1), group_by=("g",)
        )
        results.append(
            executor.execute(query, start_block=START_BLOCK, parallelism=parallelism)
        )
    reference = results[0]
    for result in results[1:]:
        assert _metrics_snapshot(result.metrics) == _metrics_snapshot(
            reference.metrics
        )
        assert set(result.groups) == set(reference.groups)
        for key, group in reference.groups.items():
            other = result.groups[key]
            # Exact equality — not approx — the parallel fold is the same
            # float program as the serial one.
            assert group.interval == other.interval
            assert group.count_interval == other.count_interval
            assert group.estimate == other.estimate
            assert group.samples == other.samples


@pytest.fixture(scope="module")
def family_scramble():
    rng = np.random.default_rng(21)
    n = 24_000
    table = Table(
        continuous={"x": rng.lognormal(2.0, 0.6, n)},
        categorical={"g": rng.integers(0, 16, n).astype(str)},
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(22))


@pytest.mark.parametrize("bounder_name", FAMILY_BOUNDERS)
def test_bounder_family_byte_identical_across_parallelism(
    family_scramble, bounder_name
):
    """Each family's pool — moments, RangeTrim clip state, CSR sample
    buffers — must evolve byte-identically at any parallelism, and
    native-delta worker payloads must stay free of per-row arrays."""
    snapshots = {}
    for parallelism in PARALLELISMS:
        strategy = get_strategy("scan")
        strategy.window_blocks = 192  # several windows per scan
        executor = ApproximateExecutor(
            family_scramble,
            get_bounder(bounder_name),
            strategy=strategy,
            delta=1e-6,
            round_rows=4_000,
            rng=np.random.default_rng(9),
            engine="pool",
        )
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(1e-9), group_by=("g",)
        )
        run = QueryRun(executor, query)
        cursor = executor.cursor(START_BLOCK, window_blocks=run.window_blocks)
        run_shared_scan([run], cursor, parallelism=parallelism)
        run.finalize(merge_index_counters=False)
        snapshots[parallelism] = (
            _pool_snapshot(run.pool),
            _metrics_snapshot(run.metrics),
            run.metrics.delta_bytes_returned,
        )
    ref_pool, ref_metrics, _ = snapshots[PARALLELISMS[0]]
    for parallelism in PARALLELISMS[1:]:
        pool_bytes, metrics, _ = snapshots[parallelism]
        assert pool_bytes == ref_pool, (
            f"{bounder_name}: pool state diverged at parallelism={parallelism}"
        )
        assert metrics == ref_metrics, (
            f"{bounder_name}: metrics diverged at parallelism={parallelism}"
        )
    # Payload contract: serial ships nothing; worker runs ship the same
    # bytes at any worker count (the offload split is parallelism-
    # independent); and native families never ship the O(rows) int64
    # view_idx column — Anderson's samples are the one irreducible
    # O(rows) payload, everyone else stays O(views) per window.
    assert snapshots[1][2] == 0
    assert snapshots[2][2] == snapshots[4][2]
    shipped = snapshots[2][2]
    assert shipped > 0, f"{bounder_name}: no worker task shipped a delta"
    rows = family_scramble.num_rows
    if bounder_name in ("hoeffding", "bernstein", "clt", "bernstein+rt"):
        assert shipped < rows, (bounder_name, shipped)  # O(views), not O(rows)
    else:
        # O(m) family: float64 samples ship (8 bytes/row at most once per
        # row, ×2 for RangeTrim's two clipped streams), but never the
        # int64 view_idx on top.
        streams = 2 if bounder_name == "anderson+rt" else 1
        assert shipped <= streams * 8 * rows + 64 * 16 * 40, (bounder_name, shipped)


@pytest.mark.parametrize("aggregate", ["MEDIAN", "PERCENTILE"])
def test_quantile_family_byte_identical_across_parallelism(
    family_scramble, aggregate
):
    """The order-statistics family rides Anderson's CSR pool and delta
    protocol; its per-query bounder must evolve byte-identically at any
    parallelism, with native O(views)-shaped worker deltas."""
    snapshots = {}
    for parallelism in PARALLELISMS[:2]:
        strategy = get_strategy("scan")
        strategy.window_blocks = 192
        executor = ApproximateExecutor(
            family_scramble,
            get_bounder("bernstein+rt"),
            strategy=strategy,
            delta=1e-6,
            round_rows=4_000,
            rng=np.random.default_rng(9),
            engine="pool",
        )
        query = Query(
            AggregateFunction[aggregate],
            "x",
            SamplesTaken(12_000),
            group_by=("g",),
            percentile=0.75 if aggregate == "PERCENTILE" else None,
        )
        run = QueryRun(executor, query)
        cursor = executor.cursor(START_BLOCK, window_blocks=run.window_blocks)
        run_shared_scan([run], cursor, parallelism=parallelism)
        run.finalize(merge_index_counters=False)
        snapshots[parallelism] = (
            _pool_snapshot(run.pool),
            _metrics_snapshot(run.metrics),
            run.metrics.delta_bytes_returned,
        )
    assert snapshots[2][0] == snapshots[1][0], "quantile pool state diverged"
    assert snapshots[2][1] == snapshots[1][1], "quantile metrics diverged"
    # Serial ships nothing; worker runs ship the float64 samples (the
    # O(m) family's irreducible payload) but never the int64 view_idx.
    assert snapshots[1][2] == 0
    rows = family_scramble.num_rows
    assert 0 < snapshots[2][2] <= 8 * rows + 64 * 16 * 40


def test_rounds_stream_identical_across_parallelism(scramble):
    from repro.api import connect

    streams = []
    for parallelism in (1, 2):
        conn = connect(
            scramble,
            delta=1e-6,
            round_rows=6_000,
            engine="pool",
            strategy=_executor(scramble, "scan").strategy,
            rng=np.random.default_rng(3),
            parallelism=parallelism,
        )
        handle = conn.table().group_by("g").avg("x", rel=0.1)
        updates = list(handle.rounds(start_block=START_BLOCK))
        streams.append(
            [
                (
                    update.round_index,
                    update.rows_read,
                    tuple(sorted(
                        (key, snap.interval, snap.samples)
                        for key, snap in update.groups.items()
                    )),
                )
                for update in updates
            ]
        )
    assert streams[0] == streams[1]
