"""End-to-end statistical validation of the 1−δ coverage contract.

The paper's headline guarantee: every interval the engine returns covers
the true aggregate with probability ≥ 1−δ, *jointly over all of a
query's groups*, while the engine stops as early as its bounds allow.
The unit suites pin engine-vs-engine parity; this suite pins the
statistics themselves: over repeated synthetic-data seeds, the fraction
of runs whose final intervals all contain the exactly-computed truth
must be at least 1−δ minus a binomial sampling tolerance.

δ is set far looser than production (0.1 instead of 1e-15) so a failure
probability of that order would actually be observable at harness scale;
the bounds are conservative, so the empirical coverage should sit near
1.0 — well clear of the threshold — and a regression that breaks the
accounting (a lost union-bound factor, a mis-split budget, a biased
sampler) shows up as mass coverage loss, not a flaky borderline.

Each configuration also asserts that a healthy fraction of runs stopped
*early* — otherwise every interval would be the degenerate exact answer
and the test would be vacuous.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import AbsoluteAccuracy, RelativeAccuracy

from .generator import GeneratedCase

DELTA = 0.1
TRIALS = 150

#: One-sided binomial slack: 4 standard errors below 1−δ.
THRESHOLD = 1.0 - DELTA - 4.0 * np.sqrt(DELTA * (1.0 - DELTA) / TRIALS)


#: Relative float slack for interval containment: a view read to
#: exhaustion reports the degenerate exact interval, which can differ
#: from the numpy-computed oracle in the last ulp (different summation
#: order).  This is float rounding, not a coverage miss.
FLOAT_SLACK = 1e-9


def _trial_case(seed: int, aggregate: AggregateFunction) -> GeneratedCase:
    rng = np.random.default_rng(700_000 + seed)
    n = 24_000
    table = Table(
        continuous={"x": rng.gamma(2.0, 10.0, n)},
        categorical={"g": rng.integers(0, 6, n).astype(str)},
        range_pad=0.1,
    )
    scramble = Scramble(table, rng=np.random.default_rng(800_000 + seed))
    if aggregate is AggregateFunction.AVG:
        stopping = RelativeAccuracy(0.3)
    elif aggregate is AggregateFunction.SUM:
        # Half a typical group total (mean 20 × n/6 rows): loose enough
        # to stop mid-scan, tight enough to need a certified interval.
        stopping = AbsoluteAccuracy(20.0 * n / 6 * 0.5)
    elif aggregate.is_quantile:
        # DKW-inverted widths shrink with 1/sqrt(m) times the local
        # density; ~8 value units is reachable after a few rounds on
        # gamma(2, 10) groups of ~4k rows without scanning to exhaustion.
        stopping = AbsoluteAccuracy(8.0)
    else:
        stopping = AbsoluteAccuracy(n / 6 * 0.4)
    query = Query(
        aggregate,
        None if aggregate is AggregateFunction.COUNT else "x",
        stopping,
        group_by=("g",),
        percentile=0.9 if aggregate is AggregateFunction.PERCENTILE else None,
    )
    return GeneratedCase(
        seed=seed,
        table=table,
        scramble=scramble,
        query=query,
        bounder="bernstein+rt",
        strategy_name="scan",
        window_blocks=32,
        delta=DELTA,
        round_rows=800,
        start_block=int(rng.integers(scramble.num_blocks)),
    )


def _run_trials(aggregate: AggregateFunction, engine: str, parallelism: int):
    covered = 0
    stopped_early = 0
    for seed in range(TRIALS):
        case = _trial_case(seed, aggregate)
        executor = ApproximateExecutor(
            case.scramble,
            get_bounder(case.bounder),
            strategy=case.strategy(),
            delta=case.delta,
            round_rows=case.round_rows,
            rng=np.random.default_rng(case.seed),
            engine=engine,
            parallelism=parallelism,
        )
        result = executor.execute(case.query, start_block=case.start_block)
        stopped_early += int(result.metrics.stopped_early)
        truths = case.true_aggregates()
        trial_ok = True
        for key, truth in truths.items():
            group = result.groups.get(key)
            if group is None:
                # A group with real rows was certified empty — a bounds
                # failure, not a legal drop.
                trial_ok = False
                break
            slack = FLOAT_SLACK * max(1.0, abs(truth))
            if not (
                group.interval.lo - slack <= truth <= group.interval.hi + slack
            ):
                trial_ok = False
                break
        covered += int(trial_ok)
    return covered / TRIALS, stopped_early / TRIALS


@pytest.mark.parametrize(
    "aggregate,engine,parallelism",
    [
        (AggregateFunction.AVG, "pool", 1),
        (AggregateFunction.SUM, "scalar", 1),
        (AggregateFunction.COUNT, "pool", 2),
        (AggregateFunction.MEDIAN, "pool", 2),
        (AggregateFunction.PERCENTILE, "scalar", 1),
    ],
    ids=[
        "avg-pool",
        "sum-scalar",
        "count-parallel",
        "median-parallel",
        "percentile-scalar",
    ],
)
def test_intervals_cover_truth_at_least_one_minus_delta(
    aggregate, engine, parallelism
):
    coverage, early = _run_trials(aggregate, engine, parallelism)
    assert coverage >= THRESHOLD, (
        f"empirical coverage {coverage:.3f} under 1-delta-tolerance "
        f"{THRESHOLD:.3f} over {TRIALS} trials (delta={DELTA})"
    )
    # Non-vacuity: the guarantee must be tested on genuinely certified
    # (not exhausted-exact) intervals for a solid share of trials.
    assert early >= 0.3, f"only {early:.1%} of trials stopped early"


def test_true_aggregates_oracle_matches_numpy():
    """The oracle itself, cross-checked on one case by direct slicing."""
    case = _trial_case(0, AggregateFunction.AVG)
    truths = case.true_aggregates()
    x = case.table.continuous("x")
    column = case.table.categorical("g")
    for key, value in truths.items():
        member = column.codes == column.code_of(key[0])
        assert value == pytest.approx(float(x[member].mean()), rel=1e-12)
    assert set(len(key) for key in truths) == {1}
