"""Tests for selectivity/COUNT intervals and the N⁺ bound (§4.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.base import Interval
from repro.fastframe.count import (
    SelectivityState,
    count_interval,
    selectivity_interval,
    sum_interval,
    upper_bound_population,
)


class TestSelectivityState:
    def test_observe_accumulates(self):
        state = SelectivityState()
        state.observe(3, 10)
        state.observe(2, 10)
        assert state.in_view == 5
        assert state.covered == 20

    def test_rejects_in_view_above_covered(self):
        with pytest.raises(ValueError):
            SelectivityState().observe(5, 3)


class TestSelectivityInterval:
    def test_empty_state_trivial(self):
        assert selectivity_interval(SelectivityState(), 1_000, 0.05) == Interval(0.0, 1.0)

    def test_matches_lemma5_formula(self):
        """σ̂_v ± sqrt(log(2/δ)/(2r)·(1−(r−1)/R))."""
        state = SelectivityState()
        state.observe(30, 100)
        R, delta = 10_000, 0.05
        eps = math.sqrt(math.log(2 / delta) / (2 * 100) * (1 - 99 / R))
        interval = selectivity_interval(state, R, delta)
        assert interval.lo == pytest.approx(max(0.3 - eps, 0.0))
        assert interval.hi == pytest.approx(min(0.3 + eps, 1.0))

    def test_clipped_to_unit(self):
        state = SelectivityState()
        state.observe(0, 10)
        interval = selectivity_interval(state, 1_000, 0.5)
        assert interval.lo == 0.0
        assert interval.hi <= 1.0

    def test_full_coverage_collapses(self):
        state = SelectivityState()
        state.observe(300, 1_000)
        interval = selectivity_interval(state, 1_000, 1e-10)
        assert interval.width < 0.05

    def test_monte_carlo_coverage(self, rng):
        """Lemma 5 holds: the true selectivity is enclosed w.h.p."""
        R, sigma_v, delta = 20_000, 0.13, 0.2
        membership = rng.random(R) < sigma_v
        truth = membership.mean()
        failures, trials = 0, 80
        for seed in range(trials):
            order = np.random.default_rng(seed).permutation(R)[:800]
            state = SelectivityState()
            state.observe(int(membership[order].sum()), 800)
            interval = selectivity_interval(state, R, delta)
            if not interval.lo <= truth <= interval.hi:
                failures += 1
        assert failures / trials <= delta + 3 * math.sqrt(delta * 0.8 / trials)


class TestCountInterval:
    def test_scales_selectivity_by_r(self):
        state = SelectivityState()
        state.observe(50, 100)
        R = 10_000
        sel = selectivity_interval(state, R, 0.05)
        count = count_interval(state, R, 0.05)
        assert count.hi == pytest.approx(sel.hi * R)

    def test_floor_at_observed_rows(self):
        """The deterministic lower bound: we have literally seen in_view
        rows of the view."""
        state = SelectivityState()
        state.observe(7, 10)
        count = count_interval(state, 1_000_000, 0.5)
        assert count.lo >= 7.0

    def test_capped_at_population(self):
        state = SelectivityState()
        state.observe(10, 10)
        count = count_interval(state, 1_000, 0.5)
        assert count.hi <= 1_000


class TestUpperBoundPopulation:
    def test_formula_matches_theorem3(self):
        state = SelectivityState()
        state.observe(100, 1_000)
        R, delta, alpha = 100_000, 1e-6, 0.99
        fpc = 1 - 999 / R
        eps = math.sqrt(math.log(1 / ((1 - alpha) * delta)) / (2 * 1_000) * fpc)
        expected = math.ceil((0.1 + eps) * R)
        assert upper_bound_population(state, R, delta, alpha) == expected

    def test_no_coverage_returns_population(self):
        assert upper_bound_population(SelectivityState(), 5_000, 0.05) == 5_000

    def test_rejects_bad_alpha(self):
        state = SelectivityState()
        state.observe(1, 10)
        with pytest.raises(ValueError):
            upper_bound_population(state, 100, 0.05, alpha=0.0)

    def test_monte_carlo_upper_bounds_true_n(self, rng):
        """N⁺ >= N with probability ≥ 1 − (1−α)δ."""
        R, delta = 20_000, 0.1
        membership = rng.random(R) < 0.07
        true_n = int(membership.sum())
        failures, trials = 0, 60
        for seed in range(trials):
            order = np.random.default_rng(seed).permutation(R)[:500]
            state = SelectivityState()
            state.observe(int(membership[order].sum()), 500)
            if upper_bound_population(state, R, delta) < true_n:
                failures += 1
        # The allotted failure budget is (1−α)δ = 0.001; allow binomial noise.
        assert failures <= 2

    def test_never_below_observed(self):
        state = SelectivityState()
        state.observe(400, 400)
        assert upper_bound_population(state, 100_000, 0.5) >= 400


class TestSumInterval:
    def test_paper_formula_for_positive_aggregates(self):
        """[c_l·g_l, c_r·g_r] when the AVG interval is non-negative."""
        result = sum_interval(Interval(100, 200), Interval(2.0, 3.0))
        assert result == Interval(200.0, 600.0)

    def test_negative_avg_handled_by_corner_hull(self):
        """The documented deviation: the paper's product formula breaks
        for negative means ([c_l·g_l, c_r·g_r] = [-300, -400] would be
        inverted); the hull is correct."""
        result = sum_interval(Interval(100, 200), Interval(-3.0, -2.0))
        assert result == Interval(-600.0, -200.0)

    def test_interval_straddling_zero(self):
        result = sum_interval(Interval(10, 20), Interval(-1.0, 2.0))
        assert result == Interval(-20.0, 40.0)

    @given(
        st.floats(0, 1e6),
        st.floats(0, 1e6),
        st.floats(-1e3, 1e3),
        st.floats(0, 1e3),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_hull_contains_all_products(self, c_lo, c_span, g_lo, g_span):
        count_ci = Interval(c_lo, c_lo + c_span)
        avg_ci = Interval(g_lo, g_lo + g_span)
        hull = sum_interval(count_ci, avg_ci)
        rng = np.random.default_rng(42)
        for _ in range(20):
            c = rng.uniform(count_ci.lo, count_ci.hi)
            g = rng.uniform(avg_ci.lo, avg_ci.hi)
            assert hull.lo - 1e-6 <= c * g <= hull.hi + 1e-6
