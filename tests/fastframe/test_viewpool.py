"""ViewPool unit regressions: checked lookup, per-endpoint snapshot clamp,
and the incremental snapshot cache's mark_dirty contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.fastframe.viewpool import ViewPool


def _pool(domain=(2, 5, 9)):
    codes = np.array(domain, dtype=np.int64)
    key_codes = [(int(code),) for code in codes]
    return ViewPool.build(codes, key_codes, get_bounder("bernstein+rt"))


class TestCheckedLookup:
    def test_in_domain_codes_resolve(self):
        pool = _pool()
        np.testing.assert_array_equal(
            pool.lookup(np.array([2, 9, 5, 2])), [0, 2, 1, 0]
        )

    def test_empty_lookup_is_fine(self):
        pool = _pool()
        assert pool.lookup(np.array([], dtype=np.int64)).size == 0

    def test_out_of_domain_between_codes_raises(self):
        # Pre-fix, searchsorted silently mapped 3 onto the row of code 5 —
        # corrupting a neighboring view's counters.
        pool = _pool()
        with pytest.raises(KeyError, match=r"\[3\]"):
            pool.lookup(np.array([5, 3]))

    def test_below_domain_raises(self):
        pool = _pool()
        with pytest.raises(KeyError):
            pool.lookup(np.array([1]))

    def test_above_domain_raises(self):
        # searchsorted returns len(codes) here; unguarded, that index is
        # out of bounds for every downstream scatter.
        pool = _pool()
        with pytest.raises(KeyError):
            pool.lookup(np.array([11]))

    def test_miss_does_not_corrupt_neighbor(self):
        pool = _pool()
        before = pool.in_view.copy()
        with pytest.raises(KeyError):
            pool.lookup(np.array([3]))
        np.testing.assert_array_equal(pool.in_view, before)


class TestSnapshotClamp:
    def test_trivial_interval_reports_full_range(self):
        pool = _pool()
        columns = pool.snapshot_columns(0.0, 10.0)
        np.testing.assert_array_equal(columns.lo, [0.0, 0.0, 0.0])
        np.testing.assert_array_equal(columns.hi, [10.0, 10.0, 10.0])

    def test_half_finite_interval_keeps_certified_bound(self):
        # Pre-fix, a half-finite certified interval was treated as trivial
        # and BOTH endpoints were replaced with the value range.
        pool = _pool()
        pool.iv_lo[1] = 3.0  # certified lower bound; upper still trivial
        pool.mark_dirty(np.array([False, True, False]))
        columns = pool.snapshot_columns(0.0, 10.0)
        assert columns.lo[1] == 3.0
        assert columns.hi[1] == 10.0
        pool.iv_hi[0] = 7.5  # certified upper bound; lower still trivial
        pool.mark_dirty(np.array([True, False, False]))
        columns = pool.snapshot_columns(0.0, 10.0)
        assert columns.lo[0] == 0.0
        assert columns.hi[0] == 7.5

    def test_finite_interval_untouched_and_estimate_midpoint(self):
        pool = _pool()
        pool.iv_lo[2] = 4.0
        pool.iv_hi[2] = 6.0
        pool.mark_dirty(np.array([False, False, True]))
        columns = pool.snapshot_columns(0.0, 10.0)
        assert (columns.lo[2], columns.hi[2]) == (4.0, 6.0)
        assert columns.estimate[2] == 5.0  # no samples yet → midpoint

    def test_dropped_rows_excluded_and_rows_attr_maps_back(self):
        pool = _pool()
        pool.dropped[1] = True
        columns = pool.snapshot_columns(0.0, 10.0)
        np.testing.assert_array_equal(columns.rows, [0, 2])
        np.testing.assert_array_equal(columns.keys, [2, 9])


class TestSnapshotCache:
    def test_direct_writes_need_mark_dirty(self):
        # The documented contract: snapshot columns are cached per row and
        # refreshed only for rows flagged via mark_dirty.
        pool = _pool()
        pool.snapshot_columns(0.0, 10.0)
        pool.iv_lo[0] = 2.0
        stale = pool.snapshot_columns(0.0, 10.0)
        assert stale.lo[0] == 0.0  # cache not invalidated
        pool.mark_dirty(np.array([True, False, False]))
        fresh = pool.snapshot_columns(0.0, 10.0)
        assert fresh.lo[0] == 2.0

    def test_changing_bounds_invalidates_cache(self):
        pool = _pool()
        first = pool.snapshot_columns(0.0, 10.0)
        assert first.hi[0] == 10.0
        second = pool.snapshot_columns(0.0, 20.0)
        assert second.hi[0] == 20.0
