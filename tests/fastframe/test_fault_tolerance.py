"""Chaos suite: injected faults must never change a byte of any answer.

The fault-tolerance contract of :class:`ParallelScanDriver` is the
strongest kind: because worker tasks are pure recomputes folded in
serial (window, query) order, a scan that survives worker crashes,
stragglers, mid-attach failures, or whole-pool death must produce
**byte-identical** ViewPool state, intervals, metrics, and δ spend to
the serial engine — with the recovery visible only in the new
``ExecutionMetrics`` counters.  Every fault here is injected
deterministically through :mod:`repro.testing.faults`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.bernstein import EmpiricalBernsteinSerflingBounder
from repro.bounders.range_trim import RangeTrimBounder
from repro.fastframe.executor import ApproximateExecutor, QueryRun, run_shared_scan
from repro.fastframe.parallel import (
    DEFAULT_TASK_TIMEOUT_S,
    MAX_TASK_ATTEMPTS,
    resolve_task_timeout,
)
from repro.fastframe.query import AggregateFunction, Query, RecoveryCounters
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.fastframe.window import live_export_segments
from repro.stopping.conditions import AbsoluteAccuracy, RelativeAccuracy
from repro.testing import faults
from repro.testing.faults import (
    FaultPlan,
    POOL_DEATH,
    SHM_ATTACH_FAILURE,
    WORKER_HANG,
    WORKER_RAISE,
)

from tests.support import bounder_pool_bytes

START_BLOCK = 2

#: Straggler sleep: long enough that the 0.3 s deadline always fires
#: first, short enough that the abandoned worker wakes before teardown.
HANG_SECONDS = 1.5
HANG_TIMEOUT = 0.3


@pytest.fixture(autouse=True)
def clean_faults():
    faults.reset_faults()
    yield
    faults.reset_faults()


@pytest.fixture(scope="module")
def scramble():
    rng = np.random.default_rng(11)
    n = 40_000
    table = Table(
        continuous={"x": rng.normal(40.0, 12.0, n)},
        categorical={"g": rng.integers(0, 20, n).astype(str)},
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(12))


def _executor(scramble):
    strategy = get_strategy("scan")
    strategy.window_blocks = 256
    return ApproximateExecutor(
        scramble,
        RangeTrimBounder(EmpiricalBernsteinSerflingBounder()),
        strategy=strategy,
        delta=1e-6,
        round_rows=5_000,
        rng=np.random.default_rng(3),
        engine="pool",
    )


def _queries():
    return [
        Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(0.5), group_by=("g",)),
        Query(AggregateFunction.AVG, "x", RelativeAccuracy(0.2)),
    ]


def _pool_snapshot(pool) -> tuple:
    return (
        bounder_pool_bytes(pool.bounder_pool),
        pool.codes.tobytes(),
        pool.sample.count.tobytes(),
        pool.sample.mean.tobytes(),
        pool.sample.m2.tobytes(),
        pool.in_view.tobytes(),
        pool.covered.tobytes(),
        pool.iv_lo.tobytes(),
        pool.iv_hi.tobytes(),
        pool.active.tobytes(),
        pool.exhausted.tobytes(),
    )


def _metrics_snapshot(metrics) -> tuple:
    """Everything deterministic across recovery paths: recovery changes
    where a delta is computed (and so IPC bytes and walls), never the
    scan's shape or any answer."""
    return (
        metrics.rows_read,
        metrics.blocks_fetched,
        metrics.blocks_skipped,
        metrics.index_probes,
        metrics.batch_probes,
        metrics.rounds,
        metrics.values_gathered,
        metrics.bounds_recomputed,
        metrics.stopped_early,
    )


def _run(scramble, parallelism, task_timeout=None):
    """One shared scan; returns (pool snapshots, results, run metrics,
    batch metrics)."""
    executor = _executor(scramble)
    runs = [QueryRun(executor, query) for query in _queries()]
    cursor = executor.cursor(START_BLOCK, window_blocks=runs[0].window_blocks)
    batch = run_shared_scan(
        runs, cursor, parallelism=parallelism, task_timeout=task_timeout
    )
    results = [run.finalize(merge_index_counters=False) for run in runs]
    return (
        [_pool_snapshot(run.pool) for run in runs],
        results,
        [_metrics_snapshot(run.metrics) for run in runs],
        batch,
    )


def _assert_identical(serial, chaotic, context):
    serial_pools, serial_results, serial_metrics, _ = serial
    chaos_pools, chaos_results, chaos_metrics, _ = chaotic
    assert chaos_pools == serial_pools, f"{context}: ViewPool state diverged"
    assert chaos_metrics == serial_metrics, f"{context}: metrics diverged"
    for left, right in zip(serial_results, chaos_results):
        assert set(left.groups) == set(right.groups), context
        for key, group in left.groups.items():
            other = right.groups[key]
            # Exact equality: recovery recomputes the same float program.
            assert group.interval == other.interval, (context, key)
            assert group.count_interval == other.count_interval, (context, key)
            assert group.estimate == other.estimate, (context, key)
            assert group.samples == other.samples, (context, key)


class TestChaosByteIdentity:
    """ISSUE acceptance: crash, hang, and pool death each recover to
    byte-identical state at parallelism 2, visibly in the counters."""

    @pytest.mark.parametrize(
        "kind, counter, task_timeout",
        [
            (WORKER_RAISE, "tasks_retried", None),
            (SHM_ATTACH_FAILURE, "tasks_retried", None),
            (POOL_DEATH, "pool_rebuilds", None),
            (WORKER_HANG, "tasks_timed_out", HANG_TIMEOUT),
        ],
    )
    def test_injected_fault_recovers_byte_identical(
        self, scramble, kind, counter, task_timeout
    ):
        serial = _run(scramble, parallelism=1)
        faults.install_fault_plan(
            FaultPlan(at_task=2, kinds=(kind,), hang_seconds=HANG_SECONDS)
        )
        chaotic = _run(scramble, parallelism=2, task_timeout=task_timeout)
        faults.reset_faults()
        _assert_identical(serial, chaotic, kind)
        batch = chaotic[3]
        recovery = batch.recovery_snapshot()
        assert recovery, f"{kind}: no recovery recorded"
        assert getattr(recovery, counter) >= 1, (kind, recovery)
        # Serial runs never touch the recovery machinery.
        assert not serial[3].recovery_snapshot()

    def test_retry_exhaustion_falls_back_inline(self, scramble):
        """rate=1.0 faults every dispatch: every offloaded task exhausts
        its attempts and recomputes inline — still byte-identical."""
        serial = _run(scramble, parallelism=1)
        faults.install_fault_plan(FaultPlan(rate=1.0, kinds=(WORKER_RAISE,)))
        chaotic = _run(scramble, parallelism=2)
        faults.reset_faults()
        _assert_identical(serial, chaotic, "retry-exhaustion")
        recovery = chaotic[3].recovery_snapshot()
        assert recovery.inline_fallbacks >= 1
        # Each fallback burned the full dispatch budget first.
        assert recovery.tasks_retried >= (
            recovery.inline_fallbacks * (MAX_TASK_ATTEMPTS - 1)
        )
        # Inline recompute ships nothing over IPC for the fallen-back
        # windows; with every task faulted, nothing ships at all.
        assert chaotic[3].delta_bytes_returned == 0


class TestShmLeakRegression:
    def test_no_segments_leak_after_attach_failure(self, scramble):
        """A worker dying mid-attach (holding a mapped segment) must not
        strand the export: the driver's close + unlink audit runs every
        window, so no segment of ours survives the scan."""
        faults.install_fault_plan(FaultPlan(at_task=1, kinds=(SHM_ATTACH_FAILURE,)))
        _, _, _, batch = _run(scramble, parallelism=2)
        faults.reset_faults()
        assert batch.recovery_snapshot().tasks_retried >= 1
        assert live_export_segments() == ()
        assert batch.shm_cleanup_failures == 0

    def test_no_segments_leak_after_pool_death(self, scramble):
        faults.install_fault_plan(FaultPlan(at_task=1, kinds=(POOL_DEATH,)))
        _, _, _, batch = _run(scramble, parallelism=2)
        faults.reset_faults()
        assert batch.recovery_snapshot().pool_rebuilds >= 1
        assert live_export_segments() == ()


class TestConnectionLevelRecovery:
    """The same contract through the public API: results AND δ spend."""

    def _gather(self, scramble, parallelism, task_timeout=None):
        from repro.api import connect

        strategy = get_strategy("scan")
        strategy.window_blocks = 256
        conn = connect(
            scramble,
            delta=1e-6,
            round_rows=5_000,
            engine="pool",
            strategy=strategy,
            rng=np.random.default_rng(3),
            parallelism=parallelism,
            task_timeout=task_timeout,
        )
        handles = [conn.query(query) for query in _queries()]
        batch = conn.gather(handles, start_block=START_BLOCK)
        return conn, batch

    def test_gather_delta_spend_identical_under_faults(self, scramble):
        serial_conn, serial_batch = self._gather(scramble, parallelism=1)
        faults.install_fault_plan(FaultPlan(at_task=2, kinds=(WORKER_RAISE,)))
        chaos_conn, chaos_batch = self._gather(scramble, parallelism=2)
        faults.reset_faults()
        # δ accounting is bit-identical: same allocations, same spend.
        assert chaos_conn.spent_delta == serial_conn.spent_delta
        assert [entry.delta for entry in chaos_conn.audit()] == [
            entry.delta for entry in serial_conn.audit()
        ]
        for left, right in zip(serial_batch, chaos_batch):
            assert left.delta == right.delta
            for key, group in left.groups.items():
                other = right.groups[key]
                assert group.interval == other.interval
                assert group.estimate == other.estimate
                assert group.samples == other.samples
        assert chaos_batch.metrics.recovery_snapshot().tasks_retried >= 1

    def test_rounds_surface_recovery_counters(self, scramble):
        from repro.api import connect

        strategy = get_strategy("scan")
        strategy.window_blocks = 256
        conn = connect(
            scramble,
            delta=1e-6,
            round_rows=5_000,
            engine="pool",
            strategy=strategy,
            rng=np.random.default_rng(3),
            parallelism=2,
        )
        faults.install_fault_plan(FaultPlan(at_task=1, kinds=(WORKER_RAISE,)))
        handle = conn.table().group_by("g").avg("x", abs=0.5)
        updates = list(handle.rounds(start_block=START_BLOCK))
        faults.reset_faults()
        assert updates
        assert all(isinstance(u.recovery, RecoveryCounters) for u in updates)
        # Counters are cumulative: once the retry happened, every later
        # snapshot carries it.
        assert updates[-1].recovery.tasks_retried >= 1

    def test_rounds_serial_has_no_recovery(self, scramble):
        from repro.api import connect

        strategy = get_strategy("scan")
        strategy.window_blocks = 256
        conn = connect(
            scramble,
            delta=1e-6,
            round_rows=5_000,
            engine="pool",
            strategy=strategy,
            rng=np.random.default_rng(3),
            parallelism=1,
        )
        handle = conn.table().group_by("g").avg("x", abs=0.5)
        updates = list(handle.rounds(start_block=START_BLOCK))
        assert updates
        assert all(u.recovery is None for u in updates)


class TestFaultPlanDeterminism:
    def _draw_sequence(self, plan, draws=30):
        faults.install_fault_plan(plan)
        sequence = tuple(
            (d or {}).get("kind") for d in (faults.draw_task_fault() for _ in range(draws))
        )
        faults.reset_faults()
        return sequence

    def test_same_seed_same_sequence(self):
        plan = FaultPlan(rate=0.4, seed=5, kinds=(WORKER_RAISE, POOL_DEATH))
        first = self._draw_sequence(plan)
        second = self._draw_sequence(plan)
        assert first == second
        assert any(kind is not None for kind in first)

    def test_different_seed_different_sequence(self):
        base = FaultPlan(rate=0.4, seed=5)
        other = FaultPlan(rate=0.4, seed=6)
        assert self._draw_sequence(base) != self._draw_sequence(other)

    def test_at_task_pins_exactly_one_fault(self):
        plan = FaultPlan(at_task=3, kinds=(WORKER_HANG,))
        sequence = self._draw_sequence(plan, draws=10)
        assert sequence[2] == WORKER_HANG
        assert all(kind is None for i, kind in enumerate(sequence) if i != 2)

    def test_max_faults_caps_injections(self):
        plan = FaultPlan(rate=1.0, max_faults=2)
        sequence = self._draw_sequence(plan, draws=10)
        assert sum(kind is not None for kind in sequence) == 2

    def test_zero_rate_plan_draws_but_never_fires(self):
        plan = FaultPlan(rate=0.0)
        sequence = self._draw_sequence(plan, draws=10)
        assert all(kind is None for kind in sequence)

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(kinds=())
        with pytest.raises(ValueError):
            FaultPlan(kinds=("made-up",))
        with pytest.raises(TypeError):
            faults.install_fault_plan({"rate": 1.0})

    def test_env_driven_plan(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        monkeypatch.setenv("REPRO_FAULT_SEED", "9")
        monkeypatch.setenv(
            "REPRO_FAULT_KINDS", "worker-raise, shm-attach-failure"
        )
        monkeypatch.setenv("REPRO_FAULT_HANG_S", "0.5")
        plan = faults.active_fault_plan()
        assert plan == FaultPlan(
            rate=0.25,
            seed=9,
            kinds=(WORKER_RAISE, SHM_ATTACH_FAILURE),
            hang_seconds=0.5,
        )
        # Installed plans win over the environment.
        pinned = faults.install_fault_plan(FaultPlan(at_task=1))
        assert faults.active_fault_plan() is pinned

    def test_env_chaos_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        assert faults.active_fault_plan() is None
        assert faults.draw_task_fault() is None


class TestTaskTimeoutResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "5")
        assert resolve_task_timeout(12.5) == 12.5

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "7.5")
        assert resolve_task_timeout(None) == 7.5

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TASK_TIMEOUT", raising=False)
        assert resolve_task_timeout(None) == DEFAULT_TASK_TIMEOUT_S

    def test_zero_disables(self, monkeypatch):
        assert resolve_task_timeout(0) is None
        assert resolve_task_timeout(-3) is None
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "0")
        assert resolve_task_timeout(None) is None

    def test_garbage_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TASK_TIMEOUT", "soon")
        assert resolve_task_timeout(None) == DEFAULT_TASK_TIMEOUT_S
