"""Satellite optimizations around the vectorized core.

Covers the O(1) dictionary reverse lookup, per-column-object predicate code
caching, the scramble-cached combined group codes, and the multi-code
``probe_batch_any`` bitmap probe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.fastframe.bitmap import BlockBitmapIndex
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.predicate import Eq, In
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import CategoricalColumn, Table


@pytest.fixture()
def small_scramble():
    rng = np.random.default_rng(0)
    n = 5_000
    table = Table(
        continuous={"x": rng.normal(10.0, 2.0, n)},
        categorical={"g": rng.integers(0, 12, n).astype(str)},
    )
    return Scramble(table, rng=np.random.default_rng(1))


class TestCodeOfReverseLookup:
    def test_code_of_round_trips(self):
        column = CategoricalColumn.encode(["b", "a", "c", "a", "b"])
        for code, value in enumerate(column.dictionary):
            assert column.code_of(value) == code

    def test_code_of_missing_raises_keyerror(self):
        column = CategoricalColumn.encode(["a", "b"])
        with pytest.raises(KeyError):
            column.code_of("zzz")

    def test_extended_maintains_reverse_lookup(self):
        column = CategoricalColumn.encode(["a", "b"])
        extended = column.extended(["c", "a", "d"])
        assert extended.code_of("a") == column.code_of("a")
        assert extended.code_of("c") == 2
        assert extended.code_of("d") == 3
        # The original column's lookup is untouched.
        with pytest.raises(KeyError):
            column.code_of("c")

    def test_lookup_is_constant_time_shape(self):
        """The reverse index exists and covers the whole dictionary."""
        values = [f"v{i}" for i in range(500)]
        column = CategoricalColumn.encode(values)
        assert len(column._code_index) == column.cardinality
        assert column._code_index[column.dictionary[499]] == 499


class TestPredicateCodeCache:
    def test_eq_resolves_once_per_column_object(self, monkeypatch):
        table = Table(categorical={"g": ["a", "b", "a", "c"]})
        predicate = Eq("g", "b")
        column = table.categorical("g")
        calls = {"n": 0}
        original = CategoricalColumn.code_of

        def counting(self, value):
            calls["n"] += 1
            return original(self, value)

        monkeypatch.setattr(CategoricalColumn, "code_of", counting)
        for _ in range(5):
            predicate.mask(table)
            predicate.categorical_requirements(table)
        assert calls["n"] == 1
        # A new column object (append) invalidates the cache.
        table._categorical["g"] = column.extended(["b"])
        table._num_rows += 1
        predicate.mask(table)
        assert calls["n"] == 2

    def test_in_resolves_once_and_matches(self, monkeypatch):
        table = Table(categorical={"g": ["a", "b", "a", "c"]})
        predicate = In("g", ("a", "c"))
        calls = {"n": 0}
        original = CategoricalColumn.code_of

        def counting(self, value):
            calls["n"] += 1
            return original(self, value)

        monkeypatch.setattr(CategoricalColumn, "code_of", counting)
        mask = predicate.mask(table)
        assert mask.tolist() == [True, False, True, True]
        predicate.mask(table)
        predicate.categorical_requirements(table)
        assert calls["n"] == 2  # one resolution per IN value, once total

    def test_eq_results_stable_across_tables(self):
        first = Table(categorical={"g": ["a", "b"]})
        second = Table(categorical={"g": ["b", "a"]})  # different code order
        predicate = Eq("g", "b")
        assert predicate.mask(first).tolist() == [False, True]
        assert predicate.mask(second).tolist() == [True, False]


class TestCombinedCodeCache:
    def test_combined_codes_cached_on_scramble(self, small_scramble):
        executor = ApproximateExecutor(small_scramble, get_bounder("bernstein"))
        full = executor._combined_codes(("g",), rows=None)
        assert ("combined", ("g",)) in small_scramble.metadata_cache
        again = executor._combined_codes(("g",), rows=None)
        assert again is full  # same cached array, not recomputed
        window = np.array([3, 10, 500])
        sliced = executor._combined_codes(("g",), rows=window)
        assert sliced.tolist() == full[window].tolist()

    def test_cache_shared_across_executors(self, small_scramble):
        first = ApproximateExecutor(small_scramble, get_bounder("bernstein"))
        second = ApproximateExecutor(small_scramble, get_bounder("hoeffding"))
        assert first._combined_codes(("g",), None) is second._combined_codes(("g",), None)

    def test_insert_invalidates_cache(self, small_scramble):
        executor = ApproximateExecutor(small_scramble, get_bounder("bernstein"))
        executor._combined_codes(("g",), None)
        small_scramble.insert_rows(
            continuous={"x": np.array([1.0])},
            categorical={"g": ["0"]},
            rng=np.random.default_rng(5),
        )
        assert ("combined", ("g",)) not in small_scramble.metadata_cache
        fresh = executor._combined_codes(("g",), None)
        assert fresh.size == small_scramble.num_rows


class TestProbeBatchAny:
    @pytest.fixture()
    def index(self, small_scramble):
        return BlockBitmapIndex(small_scramble, "g")

    def test_matches_or_of_single_code_probes(self, index, small_scramble):
        window = np.arange(small_scramble.num_blocks, dtype=np.int64)
        codes = [0, 3, 7]
        expected = np.zeros(window.shape, dtype=bool)
        for code in codes:
            expected |= index.probe_batch(window, code)
        got = index.probe_batch_any(window, codes)
        assert got.tolist() == expected.tolist()

    def test_charges_one_batched_probe(self, index):
        index.reset_counters()
        index.probe_batch_any(np.array([0, 1, 2]), [0, 1, 2, 3])
        assert index.batch_probe_count == 1
        assert index.probe_count == 0

    def test_empty_code_list_matches_nothing(self, index):
        window = np.array([0, 1, 2])
        assert index.probe_batch_any(window, []).tolist() == [False, False, False]

    def test_single_code_equivalent_to_probe_batch(self, index, small_scramble):
        window = np.arange(min(64, small_scramble.num_blocks), dtype=np.int64)
        lone = index.probe_batch(window, 5)
        any_mask = index.probe_batch_any(window, [5])
        assert any_mask.tolist() == lone.tolist()
