"""Tests for the priority-sampling SUM baseline ([22, 9, 62], §6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastframe import Eq, Table
from repro.fastframe.priority import PrioritySampleIndex


def _weighted_table(rows: int = 4_000, seed: int = 0) -> Table:
    """Skewed non-negative weights plus a categorical filter column."""
    rng = np.random.default_rng(seed)
    weights = rng.exponential(10.0, size=rows)
    weights[rng.choice(rows, size=rows // 100, replace=False)] *= 200.0
    region = rng.choice(["east", "west"], size=rows)
    return Table(continuous={"w": weights}, categorical={"region": region})


class TestConstruction:
    def test_rejects_negative_values(self):
        table = Table(continuous={"w": np.array([1.0, -2.0, 3.0])})
        with pytest.raises(ValueError, match="non-negative"):
            PrioritySampleIndex(table, "w", k=2)

    def test_rejects_bad_k(self):
        table = Table(continuous={"w": np.array([1.0, 2.0])})
        with pytest.raises(ValueError):
            PrioritySampleIndex(table, "w", k=0)

    def test_sample_size(self):
        table = _weighted_table(rows=500)
        index = PrioritySampleIndex(table, "w", k=50, rng=np.random.default_rng(0))
        assert index.row_ids.size == 50
        assert index.threshold > 0.0

    def test_large_values_always_kept(self):
        """A value above every priority threshold is sampled surely."""
        rng = np.random.default_rng(1)
        weights = rng.uniform(0.0, 1.0, size=1_000)
        weights[123] = 1e9
        table = Table(continuous={"w": weights})
        index = PrioritySampleIndex(table, "w", k=100, rng=np.random.default_rng(2))
        assert 123 in set(index.row_ids.tolist())


class TestExactness:
    def test_k_at_least_n_is_exact(self):
        table = _weighted_table(rows=300)
        index = PrioritySampleIndex(table, "w", k=300, rng=np.random.default_rng(0))
        assert index.threshold == 0.0
        truth = float(table.continuous("w").sum())
        assert index.sum_estimate() == pytest.approx(truth, rel=1e-12)
        assert index.variance_estimate() == 0.0

    def test_k_beyond_n_clamped(self):
        table = _weighted_table(rows=100)
        index = PrioritySampleIndex(table, "w", k=10_000)
        assert index.k == 100


class TestUnbiasedness:
    def test_total_sum_unbiased(self):
        """Average of many independent estimates converges to the truth."""
        table = _weighted_table(rows=2_000, seed=3)
        truth = float(table.continuous("w").sum())
        estimates = [
            PrioritySampleIndex(
                table, "w", k=200, rng=np.random.default_rng(trial)
            ).sum_estimate()
            for trial in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.02)

    def test_subset_sum_unbiased(self):
        table = _weighted_table(rows=2_000, seed=4)
        weights = table.continuous("w")
        region = table.categorical("region")
        east = region.codes == region.code_of("east")
        truth = float(weights[east].sum())
        predicate = Eq("region", "east")
        estimates = [
            PrioritySampleIndex(
                table, "w", k=200, rng=np.random.default_rng(1_000 + trial)
            ).sum_estimate(predicate)
            for trial in range(200)
        ]
        assert np.mean(estimates) == pytest.approx(truth, rel=0.05)


class TestVarianceAndIntervals:
    def test_variance_decreases_with_k(self):
        table = _weighted_table(rows=3_000, seed=5)
        small = PrioritySampleIndex(table, "w", k=100, rng=np.random.default_rng(0))
        large = PrioritySampleIndex(table, "w", k=1_000, rng=np.random.default_rng(0))
        assert large.variance_estimate() < small.variance_estimate()

    def test_interval_centred_and_clipped(self):
        table = _weighted_table(rows=1_000, seed=6)
        index = PrioritySampleIndex(table, "w", k=50, rng=np.random.default_rng(0))
        ci = index.sum_interval(0.05)
        assert ci.lo >= 0.0
        assert ci.lo <= index.sum_estimate() <= ci.hi

    def test_interval_coverage_monte_carlo(self):
        """Asymptotic coverage is near nominal at moderate k (not SSI —
        but it should not be wildly off on this workload)."""
        table = _weighted_table(rows=2_000, seed=7)
        truth = float(table.continuous("w").sum())
        misses = 0
        trials = 200
        for trial in range(trials):
            index = PrioritySampleIndex(
                table, "w", k=400, rng=np.random.default_rng(5_000 + trial)
            )
            ci = index.sum_interval(0.05)
            if not ci.lo <= truth <= ci.hi:
                misses += 1
        assert misses / trials < 0.15

    def test_rejects_bad_delta(self):
        table = _weighted_table(rows=100)
        index = PrioritySampleIndex(table, "w", k=10)
        with pytest.raises(ValueError):
            index.sum_interval(0.0)

    def test_beats_uniform_sampling_on_skewed_weights(self):
        """The outlier-robustness claim: at equal k, priority sampling's
        SUM estimates have far lower spread than uniform sampling's."""
        table = _weighted_table(rows=5_000, seed=8)
        weights = table.continuous("w")
        truth = float(weights.sum())
        k = 250
        priority_errors, uniform_errors = [], []
        for trial in range(60):
            rng = np.random.default_rng(trial)
            estimate = PrioritySampleIndex(
                table, "w", k=k, rng=rng
            ).sum_estimate()
            priority_errors.append(abs(estimate - truth))
            uniform = rng.choice(weights, size=k, replace=False)
            uniform_errors.append(abs(float(uniform.mean()) * weights.size - truth))
        assert np.median(priority_errors) < np.median(uniform_errors) / 3.0


class TestPriorityProperties:
    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_estimate_between_sampled_sum_and_k_tau_bound(self, k, seed):
        """Each adjusted weight is max(w_i, τ), so the estimate lies between
        the raw sampled sum and the sampled sum plus k·τ."""
        rng = np.random.default_rng(seed)
        table = Table(continuous={"w": rng.exponential(1.0, size=80)})
        index = PrioritySampleIndex(table, "w", k=k, rng=rng)
        raw = float(index.weights.sum())
        estimate = index.sum_estimate()
        assert raw - 1e-9 <= estimate <= raw + index.k * index.threshold + 1e-9

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_disjoint_subsets_partition_estimate(self, seed):
        """Subset estimates over a partition sum to the total estimate."""
        rng = np.random.default_rng(seed)
        rows = 200
        table = Table(
            continuous={"w": rng.exponential(1.0, size=rows)},
            categorical={"region": rng.choice(["east", "west"], size=rows)},
        )
        index = PrioritySampleIndex(table, "w", k=40, rng=rng)
        east = index.sum_estimate(Eq("region", "east"))
        west = index.sum_estimate(Eq("region", "west"))
        assert east + west == pytest.approx(index.sum_estimate(), rel=1e-12)
