"""Tests for insertion maintenance: catalog widening, table appends, and
exchangeability-preserving scramble inserts (§2.2.1)."""

import numpy as np
import pytest

from repro.fastframe import Table
from repro.fastframe.catalog import RangeBounds
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import CategoricalColumn


def _table(rows: int = 100, seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    return Table(
        continuous={"x": rng.normal(0.0, 1.0, size=rows)},
        categorical={"g": rng.choice(["a", "b"], size=rows)},
    )


class TestCatalogWiden:
    def test_widens_both_ends(self):
        table = Table(continuous={"x": np.array([1.0, 2.0])})
        table.catalog.widen("x", np.array([-5.0, 10.0]))
        assert table.catalog.bounds("x") == RangeBounds(-5.0, 10.0)

    def test_never_shrinks(self):
        table = Table(continuous={"x": np.array([-10.0, 10.0])})
        table.catalog.widen("x", np.array([0.0]))
        assert table.catalog.bounds("x") == RangeBounds(-10.0, 10.0)

    def test_empty_noop(self):
        table = Table(continuous={"x": np.array([1.0, 2.0])})
        before = table.catalog.bounds("x")
        table.catalog.widen("x", np.array([]))
        assert table.catalog.bounds("x") == before


class TestCategoricalExtend:
    def test_existing_codes_stable(self):
        column = CategoricalColumn.encode(["b", "a", "b"])
        extended = column.extended(["c", "a"])
        assert extended.dictionary[: len(column.dictionary)] == column.dictionary
        np.testing.assert_array_equal(extended.codes[:3], column.codes)

    def test_new_value_appended_to_dictionary(self):
        column = CategoricalColumn.encode(["a", "b"])
        extended = column.extended(["z"])
        assert extended.dictionary == ("a", "b", "z")
        assert extended.codes[-1] == 2

    def test_decode_roundtrip(self):
        column = CategoricalColumn.encode(["x", "y"]).extended(["y", "w", "x"])
        assert column.decode(column.codes) == ["x", "y", "y", "w", "x"]


class TestTableAppend:
    def test_row_count_and_values(self):
        table = _table(rows=10)
        added = table.append_rows(
            continuous={"x": np.array([9.0, -9.0])},
            categorical={"g": ["a", "c"]},
        )
        assert added == 2
        assert table.num_rows == 12
        assert table.continuous("x")[-2:].tolist() == [9.0, -9.0]
        assert table.categorical("g").decode(table.categorical("g").codes[-2:]) == ["a", "c"]

    def test_bounds_widened(self):
        table = _table(rows=50)
        table.append_rows(
            continuous={"x": np.array([1_000.0])}, categorical={"g": ["a"]}
        )
        assert table.catalog.bounds("x").b >= 1_000.0

    def test_missing_column_rejected(self):
        table = _table()
        with pytest.raises(ValueError, match="missing"):
            table.append_rows(continuous={"x": np.array([1.0])})

    def test_length_mismatch_rejected(self):
        table = _table()
        with pytest.raises(ValueError, match="differing lengths"):
            table.append_rows(
                continuous={"x": np.array([1.0, 2.0])}, categorical={"g": ["a"]}
            )

    def test_non_finite_rejected(self):
        table = _table()
        with pytest.raises(ValueError, match="non-finite"):
            table.append_rows(
                continuous={"x": np.array([np.nan])}, categorical={"g": ["a"]}
            )

    def test_zero_rows_noop(self):
        table = _table(rows=5)
        assert table.append_rows(
            continuous={"x": np.array([])}, categorical={"g": []}
        ) == 0
        assert table.num_rows == 5

    def test_swap_rows(self):
        table = _table(rows=4)
        x = table.continuous("x").copy()
        table.swap_rows(0, 3)
        assert table.continuous("x")[0] == x[3]
        assert table.continuous("x")[3] == x[0]


class TestScrambleInsert:
    def test_grows_blocks(self):
        scramble = Scramble(_table(rows=60), block_size=25, rng=np.random.default_rng(0))
        assert scramble.num_blocks == 3
        scramble.insert_rows(
            continuous={"x": np.zeros(20)},
            categorical={"g": ["a"] * 20},
            rng=np.random.default_rng(1),
        )
        assert scramble.num_rows == 80
        assert scramble.num_blocks == 4

    def test_metadata_cache_invalidated(self):
        scramble = Scramble(_table(rows=60), rng=np.random.default_rng(0))
        scramble.metadata_cache["sentinel"] = object()
        scramble.insert_rows(
            continuous={"x": np.array([1.0])}, categorical={"g": ["a"]},
            rng=np.random.default_rng(1),
        )
        assert scramble.metadata_cache == {}

    def test_inserted_positions_uniform(self):
        """Inside-out Fisher-Yates keeps insertion positions uniform: over
        many independent trials, a single marked inserted row is equally
        likely to land in any third of the scramble."""
        thirds = np.zeros(3, dtype=int)
        trials = 300
        for trial in range(trials):
            scramble = Scramble(
                _table(rows=90, seed=trial), rng=np.random.default_rng(trial)
            )
            scramble.insert_rows(
                continuous={"x": np.array([12345.0])},
                categorical={"g": ["a"]},
                rng=np.random.default_rng(10_000 + trial),
            )
            position = int(np.flatnonzero(scramble.table.continuous("x") == 12345.0)[0])
            thirds[min(position // 31, 2)] += 1
        # Each third should hold roughly 100 of the 300 marks.
        assert thirds.min() > 60 and thirds.max() < 140

    def test_query_correct_after_insert(self):
        """End-to-end: intervals issued after insertion enclose the new
        exact mean (bounds were widened, bitmaps rebuilt)."""
        from repro.bounders import get_bounder
        from repro.fastframe import AggregateFunction, ApproximateExecutor, Eq, Query
        from repro.stopping import SamplesTaken

        rng = np.random.default_rng(2)
        table = Table(
            continuous={"x": rng.normal(10.0, 2.0, size=40_000)},
            categorical={"g": rng.choice(["a", "b"], size=40_000)},
        )
        scramble = Scramble(table, rng=np.random.default_rng(3))
        scramble.insert_rows(
            continuous={"x": np.full(4_000, 500.0)},
            categorical={"g": ["c"] * 4_000},
            rng=np.random.default_rng(4),
        )
        query = Query(
            AggregateFunction.AVG, "x", SamplesTaken(8_000), predicate=Eq("g", "c")
        )
        result = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(5),
        ).execute(query)
        group = result.scalar()
        assert group.interval.lo - 1e-6 <= 500.0 <= group.interval.hi + 1e-6
