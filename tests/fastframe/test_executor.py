"""Integration tests for the approximate executor against Exact (§4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.expressions import col
from repro.fastframe.exact import ExactExecutor
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.predicate import Compare, Eq
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
)

DELTA = 1e-6  # moderate δ so tests exercise non-trivial intervals quickly


def make_executor(scramble, bounder="bernstein+rt", strategy="scan", seed=3):
    return ApproximateExecutor(
        scramble,
        get_bounder(bounder),
        strategy=get_strategy(strategy),
        delta=DELTA,
        round_rows=4_000,
        rng=np.random.default_rng(seed),
    )


class TestScalarAvg:
    def test_interval_encloses_exact(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(5.0),
            predicate=Eq("Origin", "ORD"),
        )
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        result = make_executor(small_scramble).execute(query).scalar()
        assert result.interval.lo - 1e-9 <= exact.estimate <= result.interval.hi + 1e-9

    def test_all_bounders_sound(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(3.0))
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        for name in ("hoeffding", "hoeffding+rt", "bernstein", "bernstein+rt"):
            result = make_executor(small_scramble, bounder=name).execute(query).scalar()
            assert (
                result.interval.lo - 1e-9
                <= exact.estimate
                <= result.interval.hi + 1e-9
            ), name

    def test_stops_early_when_achievable(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(8.0))
        result = make_executor(small_scramble).execute(query)
        assert result.metrics.stopped_early
        assert result.metrics.rows_read < small_scramble.num_rows
        assert result.scalar().interval.width < 8.0

    def test_unachievable_target_degenerates_to_exact(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(1e-9))
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        result = make_executor(small_scramble).execute(query).scalar()
        assert result.exhausted
        assert result.interval.lo == pytest.approx(exact.estimate, rel=1e-9)
        assert result.interval.width == pytest.approx(0.0, abs=1e-9)

    def test_fixed_sample_count_condition(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", SamplesTaken(5_000))
        result = make_executor(small_scramble).execute(query)
        assert result.scalar().samples >= 5_000
        assert result.metrics.stopped_early


class TestGroupByAvg:
    def test_threshold_partition_matches_exact(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            ThresholdSide(0.0),
            group_by=("Airline",),
        )
        exact = ExactExecutor(small_scramble).execute(query)
        result = make_executor(small_scramble).execute(query)
        truth_above = {k for k, g in exact.groups.items() if g.estimate > 0}
        assert result.keys_above(0.0) == truth_above

    def test_group_intervals_sound(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(6.0),
            group_by=("Airline",),
        )
        exact = ExactExecutor(small_scramble).execute(query)
        result = make_executor(small_scramble).execute(query)
        assert set(result.groups) == set(exact.groups)
        for key, group in exact.groups.items():
            interval = result.groups[key].interval
            assert interval.lo - 1e-9 <= group.estimate <= interval.hi + 1e-9, key

    def test_top1_matches_exact(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            TopKSeparated(1),
            group_by=("Airline",),
        )
        exact = ExactExecutor(small_scramble).execute(query)
        result = make_executor(small_scramble).execute(query)
        assert result.top_k(1) == exact.top_k(1)

    @pytest.mark.parametrize("strategy", ["scan", "activesync", "activepeek"])
    def test_strategies_all_give_correct_answers(self, small_scramble, strategy):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            ThresholdSide(0.0),
            group_by=("Airline",),
        )
        exact = ExactExecutor(small_scramble).execute(query)
        result = make_executor(small_scramble, strategy=strategy).execute(query)
        truth_above = {k for k, g in exact.groups.items() if g.estimate > 0}
        assert result.keys_above(0.0) == truth_above

    def test_active_strategies_skip_blocks(self, small_scramble):
        """With a selective predicate, active scanning fetches fewer
        blocks than plain Scan for the same answer."""
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(10.0),
            predicate=Eq("Airline", "HP"),
            group_by=("Airline",),
        )
        scan = make_executor(small_scramble, strategy="scan").execute(query)
        peek = make_executor(small_scramble, strategy="activepeek").execute(query)
        assert peek.metrics.blocks_fetched <= scan.metrics.blocks_fetched
        assert peek.metrics.blocks_skipped > 0

    def test_predicate_group_by_combination(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(8.0),
            predicate=Compare("DepTime", ">", 1800.0),
            group_by=("DayOfWeek",),
        )
        exact = ExactExecutor(small_scramble).execute(query)
        result = make_executor(small_scramble).execute(query)
        for key, group in exact.groups.items():
            interval = result.groups[key].interval
            assert interval.lo - 1e-9 <= group.estimate <= interval.hi + 1e-9


class TestCountAndSum:
    def test_count_interval_encloses_exact(self, small_scramble):
        query = Query(
            AggregateFunction.COUNT,
            None,
            AbsoluteAccuracy(4_000.0),
            predicate=Eq("Airline", "WN"),
        )
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        result = make_executor(small_scramble).execute(query).scalar()
        assert result.interval.lo <= exact.estimate <= result.interval.hi
        assert result.interval.width < 4_000.0

    def test_count_per_group(self, small_scramble):
        query = Query(
            AggregateFunction.COUNT,
            None,
            AbsoluteAccuracy(6_000.0),
            group_by=("Airline",),
        )
        exact = ExactExecutor(small_scramble).execute(query)
        result = make_executor(small_scramble).execute(query)
        for key, group in exact.groups.items():
            interval = result.groups[key].interval
            assert interval.lo <= group.estimate <= interval.hi, key

    def test_sum_interval_encloses_exact(self, small_scramble):
        query = Query(
            AggregateFunction.SUM,
            "DepDelay",
            AbsoluteAccuracy(2e5),
            predicate=Eq("Airline", "WN"),
        )
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        result = make_executor(small_scramble).execute(query).scalar()
        assert result.interval.lo <= exact.estimate <= result.interval.hi


class TestExpressionAggregates:
    def test_expression_avg_sound(self, small_scramble):
        """Appendix B end to end: AVG over a derived expression uses
        derived range bounds and stays sound."""
        expr = col("DepDelay") * 2.0 + 10.0
        query = Query(AggregateFunction.AVG, expr, AbsoluteAccuracy(8.0))
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        result = make_executor(small_scramble).execute(query).scalar()
        assert result.interval.lo - 1e-9 <= exact.estimate <= result.interval.hi + 1e-9

    def test_convex_expression(self, small_scramble):
        expr = (col("DepDelay") - 5.0) ** 2
        query = Query(AggregateFunction.AVG, expr, SamplesTaken(10_000))
        exact = ExactExecutor(small_scramble).execute(query).scalar()
        result = make_executor(small_scramble).execute(query).scalar()
        assert result.interval.lo - 1e-6 <= exact.estimate <= result.interval.hi + 1e-6


class TestEdgeCases:
    def test_empty_predicate_result_drops_group(self, rng):
        table = Table(
            continuous={"v": np.arange(5_000, dtype=float)},
            categorical={"g": ["only"] * 5_000},
        )
        scramble = Scramble(table, block_size=25, rng=rng)
        query = Query(
            AggregateFunction.AVG,
            "v",
            AbsoluteAccuracy(1.0),
            predicate=Compare("v", ">", 1e12),
        )
        result = make_executor(scramble).execute(query)
        assert result.groups == {}

    def test_deterministic_given_seed(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(5.0))
        first = make_executor(small_scramble, seed=9).execute(query)
        second = make_executor(small_scramble, seed=9).execute(query)
        assert first.metrics.rows_read == second.metrics.rows_read
        assert first.scalar().interval == second.scalar().interval

    def test_start_block_override(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(5.0))
        result = make_executor(small_scramble).execute(query, start_block=0)
        assert result.scalar().samples > 0

    def test_metrics_populated(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(6.0),
            group_by=("Airline",),
        )
        result = make_executor(small_scramble, strategy="activepeek").execute(query)
        metrics = result.metrics
        assert metrics.rows_read > 0
        assert metrics.blocks_fetched > 0
        assert metrics.rounds >= 1
        assert metrics.wall_time_s > 0
        assert metrics.batch_probes > 0  # ActivePeek charged batched probes

    def test_scalar_on_group_query_raises(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(10.0),
            group_by=("Airline",),
        )
        result = make_executor(small_scramble).execute(query)
        with pytest.raises(ValueError):
            result.scalar()


class TestExactExecutor:
    def test_matches_numpy_groupby(self, small_scramble):
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            AbsoluteAccuracy(1.0),
            group_by=("Airline",),
        )
        result = ExactExecutor(small_scramble).execute(query)
        table = small_scramble.table
        codes = table.categorical("Airline").codes
        delays = table.continuous("DepDelay")
        for key, group in result.groups.items():
            code = table.categorical("Airline").code_of(key[0])
            expected = delays[codes == code].mean()
            assert group.estimate == pytest.approx(expected, rel=1e-12)
            assert group.interval.width == 0.0
            assert group.exhausted

    def test_count_and_sum(self, small_scramble):
        table = small_scramble.table
        codes = table.categorical("Airline").codes
        delays = table.continuous("DepDelay")
        count_query = Query(
            AggregateFunction.COUNT, None, AbsoluteAccuracy(1.0), group_by=("Airline",)
        )
        counts = ExactExecutor(small_scramble).execute(count_query)
        sum_query = Query(
            AggregateFunction.SUM,
            "DepDelay",
            AbsoluteAccuracy(1.0),
            group_by=("Airline",),
        )
        sums = ExactExecutor(small_scramble).execute(sum_query)
        for key in counts.groups:
            code = table.categorical("Airline").code_of(key[0])
            assert counts.groups[key].estimate == pytest.approx(
                (codes == code).sum()
            )
            assert sums.groups[key].estimate == pytest.approx(
                delays[codes == code].sum(), rel=1e-9
            )

    def test_metrics_full_scan(self, small_scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(1.0))
        result = ExactExecutor(small_scramble).execute(query)
        assert result.metrics.rows_read == small_scramble.num_rows
        assert result.metrics.blocks_fetched == small_scramble.num_blocks
