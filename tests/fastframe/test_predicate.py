"""Tests for predicates and their bitmap-skipping requirements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastframe.predicate import And, Compare, Eq, In, Not, Or, TruePredicate
from repro.fastframe.table import Table


@pytest.fixture()
def table():
    return Table(
        continuous={"v": np.array([1.0, 2.0, 3.0, 4.0, 5.0])},
        categorical={"g": ["a", "b", "a", "c", "b"]},
    )


class TestTruePredicate:
    def test_all_rows(self, table):
        np.testing.assert_array_equal(
            TruePredicate().mask(table), [True] * 5
        )

    def test_sliced(self, table):
        assert TruePredicate().mask(table, np.array([0, 2])).tolist() == [True, True]

    def test_no_requirements(self, table):
        assert TruePredicate().categorical_requirements(table) == {}


class TestEq:
    def test_mask(self, table):
        np.testing.assert_array_equal(
            Eq("g", "a").mask(table), [True, False, True, False, False]
        )

    def test_mask_on_rows(self, table):
        mask = Eq("g", "b").mask(table, np.array([1, 2, 4]))
        np.testing.assert_array_equal(mask, [True, False, True])

    def test_requirements(self, table):
        reqs = Eq("g", "c").categorical_requirements(table)
        assert reqs == {"g": {table.categorical("g").code_of("c")}}

    def test_unknown_value(self, table):
        with pytest.raises(KeyError):
            Eq("g", "zzz").mask(table)


class TestIn:
    def test_mask(self, table):
        np.testing.assert_array_equal(
            In("g", ["a", "c"]).mask(table), [True, False, True, True, False]
        )

    def test_requirements_union(self, table):
        reqs = In("g", ["a", "b"]).categorical_requirements(table)
        codes = table.categorical("g")
        assert reqs == {"g": {codes.code_of("a"), codes.code_of("b")}}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            In("g", [])


class TestCompare:
    @pytest.mark.parametrize(
        "op,expected",
        [
            (">", [False, False, False, True, True]),
            (">=", [False, False, True, True, True]),
            ("<", [True, True, False, False, False]),
            ("<=", [True, True, True, False, False]),
        ],
    )
    def test_operators(self, table, op, expected):
        np.testing.assert_array_equal(Compare("v", op, 3.0).mask(table), expected)

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            Compare("v", "==", 3.0)

    def test_no_requirements(self, table):
        assert Compare("v", ">", 3.0).categorical_requirements(table) == {}


class TestCompositions:
    def test_and(self, table):
        predicate = Eq("g", "a") & Compare("v", ">", 1.0)
        np.testing.assert_array_equal(
            predicate.mask(table), [False, False, True, False, False]
        )

    def test_or(self, table):
        predicate = Eq("g", "c") | Compare("v", "<", 2.0)
        np.testing.assert_array_equal(
            predicate.mask(table), [True, False, False, True, False]
        )

    def test_not(self, table):
        predicate = ~Eq("g", "a")
        np.testing.assert_array_equal(
            predicate.mask(table), [False, True, False, True, True]
        )

    def test_and_requirements_merge(self, table):
        predicate = Eq("g", "a") & Compare("v", ">", 1.0)
        codes = table.categorical("g")
        assert predicate.categorical_requirements(table) == {
            "g": {codes.code_of("a")}
        }

    def test_and_conflicting_requirements_intersect(self, table):
        """g = 'a' AND g = 'b' can never match: empty requirement set."""
        predicate = Eq("g", "a") & Eq("g", "b")
        assert predicate.categorical_requirements(table) == {"g": set()}

    def test_or_requirements_union_when_both_constrain(self, table):
        predicate = Eq("g", "a") | Eq("g", "b")
        codes = table.categorical("g")
        assert predicate.categorical_requirements(table) == {
            "g": {codes.code_of("a"), codes.code_of("b")}
        }

    def test_or_with_unconstrained_branch_claims_nothing(self, table):
        """Eq OR Compare: the Compare branch can match any g value, so no
        block-skipping requirement is sound."""
        predicate = Eq("g", "a") | Compare("v", ">", 0.0)
        assert predicate.categorical_requirements(table) == {}

    def test_not_claims_nothing(self, table):
        assert (~Eq("g", "a")).categorical_requirements(table) == {}

    def test_requirements_are_sound(self, table):
        """Any row matching the predicate carries a required code."""
        predicate = (Eq("g", "a") | Eq("g", "b")) & Compare("v", "<", 5.0)
        requirements = predicate.categorical_requirements(table)
        mask = predicate.mask(table)
        codes = table.categorical("g").codes
        for column, allowed in requirements.items():
            assert column == "g"
            assert all(codes[i] in allowed for i in np.flatnonzero(mask))

    def test_repr_readable(self, table):
        predicate = Eq("g", "a") & Compare("v", ">", 1.0)
        assert "g = 'a'" in repr(predicate)
        assert "v > 1.0" in repr(predicate)
