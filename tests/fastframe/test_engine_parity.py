"""Golden parity: the vectorized pool engine vs the scalar reference engine.

The ISSUE's statistical-honesty contract: for identical inputs (same
scramble, same start block), both engines must produce identical group
keys, intervals, count intervals, estimates, sample counts,
drop/exhaust flags, and cost metrics — within 1e-9 relative floating-point
tolerance — across AVG/SUM/COUNT, every evaluated bounder, every sampling
strategy, both COUNT methods, and every stopping-condition family.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.predicate import Eq
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    GroupsOrdered,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
)

RTOL = 1e-9
ATOL = 1e-9
DELTA = 1e-6
ROUND_ROWS = 3_000
START_BLOCK = 11
BOUNDERS = (
    "hoeffding",
    "hoeffding+rt",
    "bernstein",
    "bernstein+rt",
    "anderson",
    "anderson+rt",
    "bernstein-no-fpc",
)
STRATEGIES = ("scan", "activesync", "activepeek")


@pytest.fixture(scope="module")
def parity_scramble():
    rng = np.random.default_rng(0)
    n = 30_000
    table = Table(
        continuous={"x": rng.gamma(2.0, 10.0, n)},
        categorical={
            "g": rng.integers(0, 30, n).astype(str),
            "h": rng.integers(0, 4, n).astype(str),
        },
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(1))


def _run(scramble, engine, agg, bounder, strategy, stopping, *, count_method="serfling",
         predicate=None, group_by=("g",)):
    kwargs = {} if predicate is None else {"predicate": predicate}
    column = None if agg is AggregateFunction.COUNT else "x"
    query = Query(agg, column, stopping, group_by=group_by, **kwargs)
    executor = ApproximateExecutor(
        scramble,
        get_bounder(bounder),
        strategy=get_strategy(strategy),
        delta=DELTA,
        round_rows=ROUND_ROWS,
        count_method=count_method,
        rng=np.random.default_rng(7),
        engine=engine,
    )
    return executor.execute(query, start_block=START_BLOCK)


def _interval_close(left, right):
    for x, y in ((left.lo, right.lo), (left.hi, right.hi)):
        if np.isfinite(x) or np.isfinite(y):
            assert x == pytest.approx(y, rel=RTOL, abs=ATOL), (left, right)
        else:
            assert x == y or (np.isnan(x) and np.isnan(y))


def _assert_parity(scalar, pool):
    assert scalar.metrics.rows_read == pool.metrics.rows_read
    assert scalar.metrics.rounds == pool.metrics.rounds
    assert scalar.metrics.blocks_fetched == pool.metrics.blocks_fetched
    assert scalar.metrics.blocks_skipped == pool.metrics.blocks_skipped
    assert scalar.metrics.stopped_early == pool.metrics.stopped_early
    assert set(scalar.groups) == set(pool.groups)
    for key, left in scalar.groups.items():
        right = pool.groups[key]
        _interval_close(left.interval, right.interval)
        _interval_close(left.count_interval, right.count_interval)
        if np.isfinite(left.estimate) or np.isfinite(right.estimate):
            assert left.estimate == pytest.approx(right.estimate, rel=RTOL, abs=ATOL)
        assert left.samples == right.samples
        assert left.exhausted == right.exhausted


@pytest.mark.parametrize(
    "bounder,strategy", list(itertools.product(BOUNDERS, STRATEGIES))
)
def test_avg_parity(parity_scramble, bounder, strategy):
    stopping = AbsoluteAccuracy(3.0)
    scalar = _run(parity_scramble, "scalar", AggregateFunction.AVG, bounder, strategy, stopping)
    pool = _run(parity_scramble, "pool", AggregateFunction.AVG, bounder, strategy, stopping)
    _assert_parity(scalar, pool)


@pytest.mark.parametrize(
    "bounder,strategy",
    list(itertools.product(("hoeffding", "bernstein+rt", "anderson"), STRATEGIES)),
)
def test_sum_parity(parity_scramble, bounder, strategy):
    stopping = AbsoluteAccuracy(40_000.0)
    scalar = _run(parity_scramble, "scalar", AggregateFunction.SUM, bounder, strategy, stopping)
    pool = _run(parity_scramble, "pool", AggregateFunction.SUM, bounder, strategy, stopping)
    _assert_parity(scalar, pool)


@pytest.mark.parametrize(
    "bounder,strategy",
    list(itertools.product(("hoeffding", "bernstein+rt"), STRATEGIES)),
)
def test_count_parity(parity_scramble, bounder, strategy):
    stopping = AbsoluteAccuracy(400.0)
    scalar = _run(parity_scramble, "scalar", AggregateFunction.COUNT, bounder, strategy, stopping)
    pool = _run(parity_scramble, "pool", AggregateFunction.COUNT, bounder, strategy, stopping)
    _assert_parity(scalar, pool)


@pytest.mark.parametrize(
    "stopping",
    [
        RelativeAccuracy(0.08),
        TopKSeparated(3),
        TopKSeparated(2, largest=False),
        GroupsOrdered(),
        ThresholdSide(20.0),
        SamplesTaken(2_000),
    ],
    ids=lambda s: type(s).__name__ + getattr(s, "largest", True) * "",
)
def test_stopping_condition_parity(parity_scramble, stopping):
    scalar = _run(parity_scramble, "scalar", AggregateFunction.AVG, "bernstein+rt",
                  "activepeek", stopping)
    pool = _run(parity_scramble, "pool", AggregateFunction.AVG, "bernstein+rt",
                "activepeek", stopping)
    _assert_parity(scalar, pool)


def test_predicate_parity(parity_scramble):
    scalar = _run(parity_scramble, "scalar", AggregateFunction.AVG, "bernstein+rt",
                  "activepeek", AbsoluteAccuracy(4.0), predicate=Eq("h", "1"))
    pool = _run(parity_scramble, "pool", AggregateFunction.AVG, "bernstein+rt",
                "activepeek", AbsoluteAccuracy(4.0), predicate=Eq("h", "1"))
    _assert_parity(scalar, pool)


def test_multi_column_group_parity(parity_scramble):
    scalar = _run(parity_scramble, "scalar", AggregateFunction.AVG, "bernstein+rt",
                  "activepeek", AbsoluteAccuracy(6.0), group_by=("g", "h"))
    pool = _run(parity_scramble, "pool", AggregateFunction.AVG, "bernstein+rt",
                "activepeek", AbsoluteAccuracy(6.0), group_by=("g", "h"))
    _assert_parity(scalar, pool)


def test_scalar_aggregate_parity(parity_scramble):
    """No GROUP BY: the one-view special case."""
    scalar = _run(parity_scramble, "scalar", AggregateFunction.AVG, "bernstein+rt",
                  "scan", AbsoluteAccuracy(1.0), group_by=())
    pool = _run(parity_scramble, "pool", AggregateFunction.AVG, "bernstein+rt",
                "scan", AbsoluteAccuracy(1.0), group_by=())
    _assert_parity(scalar, pool)


@pytest.mark.parametrize("agg", [AggregateFunction.AVG, AggregateFunction.COUNT])
def test_exact_count_method_parity(parity_scramble, agg):
    stopping = AbsoluteAccuracy(3.0 if agg is AggregateFunction.AVG else 400.0)
    scalar = _run(parity_scramble, "scalar", agg, "bernstein", "scan", stopping,
                  count_method="exact")
    pool = _run(parity_scramble, "pool", agg, "bernstein", "scan", stopping,
                count_method="exact")
    _assert_parity(scalar, pool)


@pytest.mark.parametrize("engine", ["scalar", "pool"])
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_gather_matches_sequential(parity_scramble, engine, strategy):
    """Shared-scan batching is physical only: per-query results off one
    cursor equal sequential execution from the same start block."""
    from repro.api import connect

    def dashboard(conn):
        return [
            conn.table().group_by("g").avg("x", above=20.0),
            conn.table().where("h", "1").avg("x", rel=0.2),
            conn.table().group_by("g").avg("x", top=3),
            conn.table().group_by("g").count(abs=600.0),
        ]

    def connection():
        return connect(
            parity_scramble,
            delta=DELTA,
            policy="harmonic",
            strategy=strategy,
            round_rows=ROUND_ROWS,
            engine=engine,
            rng=np.random.default_rng(7),
        )

    batched = connection()
    batch = batched.gather(dashboard(batched), start_block=START_BLOCK)
    sequential = connection()
    for gathered, handle in zip(batch.results, dashboard(sequential)):
        _assert_parity(handle.result(start_block=START_BLOCK), gathered)
    # The shared cursor fetches the union of the queries' blocks: never
    # more than the sequential total, never less than the costliest query.
    sequential_rows = sum(
        entry.rows_read for entry in sequential.audit()
    )
    assert batch.rows_read_shared <= sequential_rows
    assert batch.rows_read_shared >= max(
        result.metrics.rows_read for result in batch.results
    )


@pytest.mark.parametrize("engine", ["scalar", "pool"])
def test_gather_shares_value_gathering(parity_scramble, engine):
    """The window frame gathers each aggregate column once per shared
    window: the batch's values-gathered never exceeds (and with
    overlapping columns undercuts) the sequential total, while intervals
    stay identical (pinned by test_gather_matches_sequential)."""
    from repro.api import connect

    def dashboard(conn):
        return [
            conn.table().group_by("g").avg("x", above=20.0),
            conn.table().group_by("g").avg("x", top=3),
            conn.table().where("h", "1").avg("x", rel=0.2),
        ]

    def connection():
        return connect(
            parity_scramble,
            delta=DELTA,
            policy="harmonic",
            round_rows=ROUND_ROWS,
            engine=engine,
            rng=np.random.default_rng(7),
        )

    batched = connection()
    batch = batched.gather(dashboard(batched), start_block=START_BLOCK)
    sequential = connection()
    seq_handles = dashboard(sequential)
    results = [handle.result(start_block=START_BLOCK) for handle in seq_handles]
    sequential_values = sum(r.metrics.values_gathered for r in results)
    assert 0 < batch.values_gathered < sequential_values
    # Shared runs never gather privately; solo runs always do.
    assert all(r.metrics.values_gathered == 0 for r in batch.results)
    assert all(r.metrics.values_gathered > 0 for r in results)
    # δ accounting is untouched by the sharing.
    assert [h.delta for h in batch.handles] == [h.delta for h in seq_handles]


def test_gather_mixed_stopping_saves_rows(parity_scramble):
    """With early-stopping queries alongside a full-scan query, the union
    accounting reads measurably fewer rows than sequential."""
    from repro.api import connect

    conn = connect(
        parity_scramble,
        delta=DELTA,
        policy="harmonic",
        round_rows=ROUND_ROWS,
        rng=np.random.default_rng(7),
    )
    batch = conn.gather(
        [
            conn.table().group_by("g").avg("x", abs=5.0),
            conn.table().avg("x", rel=0.15),
            conn.table().group_by("g").avg("x", top=2),
        ],
        start_block=START_BLOCK,
    )
    assert batch.rows_read_shared < batch.rows_read_sequential
    assert batch.savings > 0.0


def test_unknown_engine_rejected(parity_scramble):
    with pytest.raises(ValueError, match="engine"):
        ApproximateExecutor(parity_scramble, get_bounder("bernstein"), engine="simd")


def test_auto_engine_matches_both(parity_scramble):
    """`auto` must route to one of the two parity-locked engines."""
    from repro.fastframe.executor import AUTO_POOL_THRESHOLD

    stopping = AbsoluteAccuracy(3.0)
    auto = _run_engine_override(parity_scramble, "auto", stopping)
    pool = _run_engine_override(parity_scramble, "pool", stopping)
    _assert_parity(auto, pool)  # 30 groups ≤/≥ threshold either way: parity
    assert AUTO_POOL_THRESHOLD >= 1


def _run_engine_override(scramble, engine, stopping):
    return _run(scramble, engine, AggregateFunction.AVG, "bernstein+rt", "scan", stopping)
