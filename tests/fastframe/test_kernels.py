"""Property suite for the fused ingest kernel and batched worker tasks.

Two contracts are pinned here:

* **Fused ≡ composed.**  :func:`repro.fastframe.kernels.partition_ingest`
  replaced three near-copies of the slice → gather → stable sort →
  bincount hot path with one fused pass (all-pass gather elision,
  sort-fused value gather, low-cardinality bucketing).  Every fusion is
  an *optimization*, not an algorithm change: against a faithful
  reimplementation of the legacy composed passes the kernel must return
  byte-identical deltas across every edge case — empty partition, all
  rows filtered, single group, bucket-dtype boundaries, max cardinality,
  non-contiguous slices.

* **Batching is invisible.**  Bundling several (query, window)
  partitions into one worker task (``task_batch``) changes how deltas
  travel, never the deltas or the fold order — pool state, results, and
  deterministic metrics must be byte-identical to serial at any
  ``parallelism`` × ``task_batch``, including through whole-batch retry
  and whole-batch inline-fallback recovery under injected mid-batch
  worker crashes.

Plus the adaptive round cadence (``round_cadence``): byte-identical by
default, sound (truth-covering, never cheaper than the target) when
deferring far views.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.bernstein import EmpiricalBernsteinSerflingBounder
from repro.bounders.range_trim import RangeTrimBounder
from repro.fastframe.count import (
    count_interval_batch,
    upper_bound_population_batch,
)
from repro.fastframe.exact import ExactExecutor
from repro.fastframe.executor import ApproximateExecutor, QueryRun, run_shared_scan
from repro.fastframe.kernels import (
    BUCKET_MAX_CARDINALITY,
    IngestDelta,
    group_order,
    lookup_codes,
    partition_ingest,
    slice_elements,
)
from repro.fastframe.parallel import (
    REPRO_TASK_BATCH_ENV,
    resolve_task_batch,
)
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    RelativeAccuracy,
    SamplesTaken,
    SnapshotColumns,
    StoppingCondition,
    ThresholdSide,
)
from repro.testing import faults
from repro.testing.faults import WORKER_RAISE, FaultPlan

from tests.support import bounder_pool_bytes

# ----------------------------------------------------------------------
# Part 1 — fused kernel ≡ composed legacy passes, byte for byte
# ----------------------------------------------------------------------


def _legacy_partition(
    n_rows: int,
    sel,
    pred,
    codes: np.ndarray,
    values: np.ndarray | None,
    combined: np.ndarray | None,
    *,
    with_stats: bool = False,
) -> IngestDelta:
    """The pre-kernel composition, reimplemented verbatim: count the
    slice, boolean-gather values and codes, stable-argsort the raw int64
    codes, permute values by the sort order, rank codes into the domain.
    No elision, no index fusion, no bucketing — the reference bytes."""
    n_read = int(n_rows) if sel is None else int(np.count_nonzero(sel))
    pick = None
    n_in_view = 0
    if n_read:
        pick = pred if sel is None else (sel & pred)
        n_in_view = int(np.count_nonzero(pick))
    if n_in_view == 0:
        return IngestDelta(n_read=n_read, n_in_view=0)
    view_values = values[pick].copy() if values is not None else None
    if combined is None or codes.size <= 1:
        view_idx = np.zeros(n_in_view, dtype=np.int64)
        ordered_values = view_values
    else:
        view_combined = combined[pick]
        order = np.argsort(view_combined, kind="stable")
        view_idx = lookup_codes(codes, view_combined[order])
        ordered_values = view_values[order] if view_values is not None else None
    delta = IngestDelta(
        n_read=n_read,
        n_in_view=n_in_view,
        view_idx=view_idx,
        values=ordered_values,
    )
    if with_stats:
        delta.ensure_stats(max(codes.size, 1), values is not None)
    return delta


def _fused_partition(
    n_rows, sel, pred, codes, values, combined, *, with_stats=False, **kwargs
) -> IngestDelta:
    return partition_ingest(
        n_rows,
        sel,
        lambda: pred,
        codes,
        values_of=None if values is None else lambda pick: values[pick],
        combined_of=None if combined is None else lambda pick: combined[pick],
        with_stats=with_stats,
        **kwargs,
    )


def _assert_deltas_identical(fused: IngestDelta, legacy: IngestDelta) -> None:
    assert fused.n_read == legacy.n_read
    assert fused.n_in_view == legacy.n_in_view
    for field in ("view_idx", "values", "counts", "means", "m2s"):
        left = getattr(fused, field)
        right = getattr(legacy, field)
        if right is None:
            assert left is None, field
        else:
            assert left is not None, field
            assert left.dtype == right.dtype, field
            assert left.tobytes() == right.tobytes(), field


def _case(n_rows: int, cardinality: int, sel_kind: str, pred_kind: str, seed: int):
    """Build one (sel, pred, codes, values, combined) configuration."""
    rng = np.random.default_rng(seed)
    values = rng.normal(50.0, 9.0, n_rows)
    if cardinality <= 1:
        codes = np.array([7], dtype=np.int64)
        combined = None
    else:
        # A sparse domain (stride 3) so ranks differ from raw codes.
        codes = np.arange(cardinality, dtype=np.int64) * 3
        combined = rng.choice(codes, size=n_rows).astype(np.int64)
    if sel_kind == "none":
        sel = None
    elif sel_kind == "all-false":
        sel = np.zeros(n_rows, dtype=bool)
    elif sel_kind == "non-contiguous":
        sel = np.zeros(n_rows, dtype=bool)
        sel[::7] = True
        sel[3::11] = True
    else:  # random
        sel = rng.random(n_rows) < 0.6
    if pred_kind == "all-true":
        pred = np.ones(n_rows, dtype=bool)
    elif pred_kind == "all-false":
        pred = np.zeros(n_rows, dtype=bool)
    else:  # random
        pred = rng.random(n_rows) < 0.5
    return sel, pred, codes, values, combined


class TestFusedEqualsComposed:
    """ISSUE acceptance: fused kernel ≡ composed legacy, byte for byte."""

    @pytest.mark.parametrize("with_stats", [False, True])
    @pytest.mark.parametrize(
        "name, n_rows, cardinality, sel_kind, pred_kind",
        [
            ("empty-window", 0, 16, "none", "all-true"),
            ("empty-partition", 4_096, 16, "all-false", "all-true"),
            ("all-rows-filtered", 4_096, 16, "none", "all-false"),
            ("single-group", 4_096, 1, "random", "random"),
            ("all-pass", 4_096, 16, "none", "all-true"),
            ("non-contiguous", 4_096, 16, "non-contiguous", "random"),
            ("uint8-boundary", 4_096, 256, "none", "all-true"),
            ("uint16-entry", 4_096, 257, "random", "random"),
            ("max-cardinality", 20_000, BUCKET_MAX_CARDINALITY, "none", "all-true"),
            ("past-bucket-cap", 20_000, BUCKET_MAX_CARDINALITY + 1, "random", "random"),
        ],
    )
    def test_edge_cases(self, name, n_rows, cardinality, sel_kind, pred_kind, with_stats):
        sel, pred, codes, values, combined = _case(
            n_rows, cardinality, sel_kind, pred_kind, seed=11
        )
        for use_values in (True, False):
            value_arr = values if use_values else None
            fused = _fused_partition(
                n_rows, sel, pred, codes, value_arr, combined, with_stats=with_stats
            )
            legacy = _legacy_partition(
                n_rows, sel, pred, codes, value_arr, combined, with_stats=with_stats
            )
            _assert_deltas_identical(fused, legacy)

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_property_sweep(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(8):
            n_rows = int(rng.integers(1, 3_000))
            cardinality = int(rng.choice([1, 2, 7, 64, 255, 256, 257, 1000]))
            sel_kind = str(rng.choice(["none", "random", "non-contiguous"]))
            pred_kind = str(rng.choice(["all-true", "random"]))
            sel, pred, codes, values, combined = _case(
                n_rows, cardinality, sel_kind, pred_kind, seed=int(rng.integers(1 << 30))
            )
            use_values = bool(rng.integers(2))
            with_stats = bool(rng.integers(2))
            value_arr = values if use_values else None
            fused = _fused_partition(
                n_rows, sel, pred, codes, value_arr, combined, with_stats=with_stats
            )
            legacy = _legacy_partition(
                n_rows, sel, pred, codes, value_arr, combined, with_stats=with_stats
            )
            _assert_deltas_identical(fused, legacy)

    def test_group_order_bucketing_matches_int64_sort(self):
        """The counting-sort path's permutation is the int64 stable
        sort's permutation — including ties, at both dtype boundaries."""
        rng = np.random.default_rng(3)
        for cardinality in (2, 255, 256, 257, 4_000, BUCKET_MAX_CARDINALITY):
            codes = np.arange(cardinality, dtype=np.int64) * 5 + 1
            combined = rng.choice(codes, size=9_000).astype(np.int64)
            order, view_idx = group_order(combined, codes)
            reference = np.argsort(combined, kind="stable")
            assert np.array_equal(order, reference), cardinality
            assert np.array_equal(
                view_idx, lookup_codes(codes, combined[reference])
            ), cardinality

    def test_all_pass_returns_views_and_own_arrays_copies(self):
        """The all-pass elision may hand out views into the window
        buffers; ``own_arrays=True`` must re-materialize exactly those."""
        n_rows = 2_048
        pred = np.ones(n_rows, dtype=bool)
        values = np.arange(n_rows, dtype=np.float64)
        codes = np.array([5], dtype=np.int64)
        borrowed = _fused_partition(n_rows, None, pred, codes, values, None)
        assert not borrowed.values.flags.owndata  # the zero-copy fast path
        owned = _fused_partition(
            n_rows, None, pred, codes, values, None, own_arrays=True
        )
        assert owned.values.flags.owndata
        assert owned.values.tobytes() == borrowed.values.tobytes()

    def test_native_drops_row_arrays(self):
        """``native=True`` ships per-view aggregates only (worker-native
        protocol): row arrays are dropped, stats are present."""
        n_rows = 1_024
        sel, pred, codes, values, combined = _case(n_rows, 16, "none", "all-true", 5)
        delta = _fused_partition(
            n_rows, sel, pred, codes, values, combined, native=True
        )
        assert delta.view_idx is None and delta.values is None
        reference = _legacy_partition(
            n_rows, sel, pred, codes, values, combined, with_stats=True
        )
        assert delta.counts.tobytes() == reference.counts.tobytes()
        assert delta.means.tobytes() == reference.means.tobytes()
        assert delta.m2s.tobytes() == reference.m2s.tobytes()

    def test_slice_elements_skips_predicate_when_nothing_read(self):
        called = []

        def pred_of():
            called.append(True)
            return np.ones(8, dtype=bool)

        empty = slice_elements(8, np.zeros(8, dtype=bool), pred_of)
        assert empty.n_read == 0 and empty.n_in_view == 0 and not called


# ----------------------------------------------------------------------
# Part 2 — task_batch resolution + batched parity at parallelism 2
# ----------------------------------------------------------------------


class TestTaskBatchResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(REPRO_TASK_BATCH_ENV, "7")
        assert resolve_task_batch(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(REPRO_TASK_BATCH_ENV, "5")
        assert resolve_task_batch(None) == 5

    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(REPRO_TASK_BATCH_ENV, raising=False)
        assert resolve_task_batch(None) is None

    def test_zero_and_negative_mean_auto(self, monkeypatch):
        assert resolve_task_batch(0) is None
        assert resolve_task_batch(-4) is None
        monkeypatch.setenv(REPRO_TASK_BATCH_ENV, "0")
        assert resolve_task_batch(None) is None

    def test_garbage_env_means_auto(self, monkeypatch):
        monkeypatch.setenv(REPRO_TASK_BATCH_ENV, "several")
        assert resolve_task_batch(None) is None


START_BLOCK = 3


@pytest.fixture(scope="module")
def scramble():
    rng = np.random.default_rng(29)
    n = 40_000
    table = Table(
        continuous={"x": rng.normal(40.0, 12.0, n)},
        categorical={"g": rng.integers(0, 20, n).astype(str)},
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(30))


def _executor(scramble) -> ApproximateExecutor:
    strategy = get_strategy("scan")
    strategy.window_blocks = 256
    return ApproximateExecutor(
        scramble,
        RangeTrimBounder(EmpiricalBernsteinSerflingBounder()),
        strategy=strategy,
        delta=1e-6,
        round_rows=5_000,
        rng=np.random.default_rng(3),
        engine="pool",
    )


def _queries():
    """Five pool runs per window, so auto/3/16 batch shapes all differ."""
    return [
        Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(0.5), group_by=("g",)),
        Query(AggregateFunction.AVG, "x", RelativeAccuracy(0.2)),
        Query(AggregateFunction.COUNT, None, RelativeAccuracy(0.1), group_by=("g",)),
        Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(0.8), group_by=("g",)),
        Query(AggregateFunction.SUM, "x", RelativeAccuracy(0.4)),
    ]


def _pool_snapshot(pool) -> tuple:
    return (
        bounder_pool_bytes(pool.bounder_pool),
        pool.codes.tobytes(),
        pool.sample.count.tobytes(),
        pool.sample.mean.tobytes(),
        pool.sample.m2.tobytes(),
        pool.in_view.tobytes(),
        pool.covered.tobytes(),
        pool.iv_lo.tobytes(),
        pool.iv_hi.tobytes(),
        pool.active.tobytes(),
        pool.exhausted.tobytes(),
    )


def _metrics_snapshot(metrics) -> tuple:
    return (
        metrics.rows_read,
        metrics.blocks_fetched,
        metrics.blocks_skipped,
        metrics.rounds,
        metrics.values_gathered,
        metrics.bounds_recomputed,
        metrics.stopped_early,
    )


def _run(scramble, parallelism, task_batch=None):
    executor = _executor(scramble)
    runs = [QueryRun(executor, query) for query in _queries()]
    cursor = executor.cursor(START_BLOCK, window_blocks=runs[0].window_blocks)
    batch = run_shared_scan(
        runs, cursor, parallelism=parallelism, task_batch=task_batch
    )
    results = [run.finalize(merge_index_counters=False) for run in runs]
    return (
        [_pool_snapshot(run.pool) for run in runs],
        results,
        [_metrics_snapshot(run.metrics) for run in runs],
        batch,
    )


def _assert_identical(serial, other, context):
    serial_pools, serial_results, serial_metrics, _ = serial
    other_pools, other_results, other_metrics, _ = other
    assert other_pools == serial_pools, f"{context}: ViewPool state diverged"
    assert other_metrics == serial_metrics, f"{context}: metrics diverged"
    for left, right in zip(serial_results, other_results):
        assert set(left.groups) == set(right.groups), context
        for key, group in left.groups.items():
            mirror = right.groups[key]
            assert group.interval == mirror.interval, (context, key)
            assert group.estimate == mirror.estimate, (context, key)
            assert group.samples == mirror.samples, (context, key)


class TestBatchedTaskParity:
    """ISSUE acceptance: byte-identical pool state at any parallelism ×
    task_batch — explicit 1/3/16 and the auto default."""

    @pytest.mark.parametrize("task_batch", [1, 3, 16, None])
    def test_batched_scan_byte_identical_to_serial(self, scramble, task_batch):
        serial = _run(scramble, parallelism=1)
        batched = _run(scramble, parallelism=2, task_batch=task_batch)
        _assert_identical(serial, batched, f"task_batch={task_batch}")

    def test_env_batched_scan_byte_identical(self, scramble, monkeypatch):
        serial = _run(scramble, parallelism=1)
        monkeypatch.setenv(REPRO_TASK_BATCH_ENV, "3")
        batched = _run(scramble, parallelism=2)
        _assert_identical(serial, batched, "env task_batch=3")


class TestBatchedFaultRecovery:
    """Mid-batch worker crashes: the whole batch retries, then falls
    back inline whole — results stay byte-identical either way."""

    @pytest.fixture(autouse=True)
    def clean_faults(self):
        faults.reset_faults()
        yield
        faults.reset_faults()

    def test_mid_batch_raise_retries_byte_identical(self, scramble):
        """The injected directive rides the batch's *middle* spec, so the
        crash lands after some partitions already completed — the
        re-dispatch must recompute the whole batch, not resume it."""
        serial = _run(scramble, parallelism=1)
        faults.install_fault_plan(FaultPlan(at_task=1, kinds=(WORKER_RAISE,)))
        chaotic = _run(scramble, parallelism=2, task_batch=16)
        faults.reset_faults()
        _assert_identical(serial, chaotic, "mid-batch raise")
        recovery = chaotic[3].recovery_snapshot()
        assert recovery.tasks_retried >= 1, recovery

    def test_exhausted_batch_recomputes_inline_byte_identical(self, scramble):
        """rate=1.0: every dispatch of every batch crashes mid-batch;
        each batch burns its attempts and every member is recomputed
        inline — still byte-identical, with nothing shipped over IPC."""
        serial = _run(scramble, parallelism=1)
        faults.install_fault_plan(FaultPlan(rate=1.0, kinds=(WORKER_RAISE,)))
        chaotic = _run(scramble, parallelism=2, task_batch=3)
        faults.reset_faults()
        _assert_identical(serial, chaotic, "batch retry-exhaustion")
        recovery = chaotic[3].recovery_snapshot()
        assert recovery.inline_fallbacks >= 1, recovery
        assert chaotic[3].delta_bytes_returned == 0


# ----------------------------------------------------------------------
# Part 3 — adaptive round cadence
# ----------------------------------------------------------------------


def _columns(lo, hi, exhausted=None) -> SnapshotColumns:
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    return SnapshotColumns(
        keys=np.arange(lo.size, dtype=np.int64),
        lo=lo,
        hi=hi,
        estimate=(lo + hi) / 2.0,
        samples=np.full(lo.size, 50, dtype=np.int64),
        exhausted=(
            np.zeros(lo.size, dtype=bool) if exhausted is None
            else np.asarray(exhausted, dtype=bool)
        ),
    )


class TestRoundCadence:
    def test_round_cadence_validation(self, scramble):
        with pytest.raises(ValueError):
            ApproximateExecutor(
                scramble,
                RangeTrimBounder(EmpiricalBernsteinSerflingBounder()),
                round_cadence=0,
            )

    def test_far_mask_default_is_none(self):
        columns = _columns([0.0, 1.0], [10.0, 2.0])
        assert SamplesTaken(10).far_mask(columns) is None
        assert ThresholdSide(5.0).far_mask(columns) is None
        assert StoppingCondition.far_mask.__doc__  # documented contract

    def test_absolute_accuracy_far_mask(self):
        condition = AbsoluteAccuracy(1.0)
        columns = _columns(
            [0.0, 0.0, 0.0], [10.0, 2.0, 10.0], exhausted=[False, False, True]
        )
        far = condition.far_mask(columns)
        # width 10 ≥ 4×1 → far; width 2 < 4 → near; exhausted → never far.
        assert far.tolist() == [True, False, False]
        # far ⊆ active: a far group could not have stopped this round.
        assert (far & ~condition.active_mask(columns)).sum() == 0

    def test_relative_accuracy_far_mask(self):
        condition = RelativeAccuracy(0.05)
        columns = _columns([10.0, 99.0, -1.0], [30.0, 101.0, 1.0])
        far = condition.far_mask(columns)
        # rel(10,30) is huge → far; rel(99,101) ≈ 0.02 < 0.2 → near;
        # straddles zero → rel = inf → far.
        assert far.tolist() == [True, False, True]
        assert (far & ~condition.active_mask(columns)).sum() == 0

    def _execute(self, scramble, query, **executor_kwargs):
        strategy = get_strategy("scan")
        strategy.window_blocks = 256
        executor = ApproximateExecutor(
            scramble,
            RangeTrimBounder(EmpiricalBernsteinSerflingBounder()),
            strategy=strategy,
            delta=1e-6,
            round_rows=5_000,
            rng=np.random.default_rng(3),
            engine="pool",
            **executor_kwargs,
        )
        return executor.execute(query, start_block=START_BLOCK)

    def _assert_results_identical(self, left, right):
        assert set(left.groups) == set(right.groups)
        for key, group in left.groups.items():
            mirror = right.groups[key]
            assert group.interval == mirror.interval, key
            assert group.estimate == mirror.estimate, key
            assert group.samples == mirror.samples, key
        assert left.metrics.rows_read == right.metrics.rows_read
        assert left.metrics.bounds_recomputed == right.metrics.bounds_recomputed

    def test_default_cadence_is_byte_identical_to_one(self, scramble):
        """Not passing the knob ≡ passing 1 ≡ the pre-cadence behavior."""
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(0.5), group_by=("g",)
        )
        default = self._execute(scramble, query)
        explicit = self._execute(scramble, query, round_cadence=1)
        self._assert_results_identical(default, explicit)

    def test_cadence_noop_without_distance_notion(self, scramble):
        """Conditions with ``far_mask = None`` make any cadence a no-op:
        byte-identical results and identical recompute counts."""
        query = Query(AggregateFunction.AVG, "x", ThresholdSide(35.0))
        baseline = self._execute(scramble, query)
        cadenced = self._execute(scramble, query, round_cadence=3)
        self._assert_results_identical(baseline, cadenced)

    def test_cadence_defers_recomputes_and_stays_sound(self, scramble):
        """cadence=3 must recompute strictly fewer bounds while every
        final interval still covers the exact group mean (the 1−δ
        contract is never weakened by deferral, only delayed)."""
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(0.4), group_by=("g",)
        )
        baseline = self._execute(scramble, query)
        cadenced = self._execute(scramble, query, round_cadence=3)
        assert (
            cadenced.metrics.bounds_recomputed
            < baseline.metrics.bounds_recomputed
        )
        # Deferral can only postpone stopping, never hasten it.
        assert cadenced.metrics.rows_read >= baseline.metrics.rows_read
        exact = ExactExecutor(scramble).execute(query)
        assert set(cadenced.groups) == set(exact.groups)
        for key, group in cadenced.groups.items():
            truth = exact.groups[key].estimate
            slack = 1e-9 * max(1.0, abs(truth))
            interval = group.interval
            assert interval.lo - slack <= truth <= interval.hi + slack, key
            # The stopping target was still reached.
            assert interval.width <= 0.4 or group.exhausted, key


class TestScalarDispatchMirrors:
    """Small recompute sets dispatch to Python-float transliterations of
    the batch bound kernels; the mirrors must be BIT-identical lanes of
    the vectorized programs (they feed the same pool intervals, so any
    drift would make results depend on how many views a round touches).
    """

    @staticmethod
    def _random_rt_pool(rng, size):
        bounder = RangeTrimBounder(EmpiricalBernsteinSerflingBounder())
        pool = bounder.init_pool(size)
        for _ in range(int(rng.integers(1, 4))):
            n_obs = int(rng.integers(0, 50))
            if n_obs:
                idx = np.sort(rng.integers(0, size, n_obs)).astype(np.int64)
                bounder.update_pool(pool, idx, rng.normal(10.0, 5.0, n_obs))
        return bounder, pool

    @pytest.mark.parametrize("seed", range(3))
    def test_range_trim_ci_scalar_dispatch_bit_identical(self, seed, monkeypatch):
        import repro.bounders.range_trim as rt_module

        rng = np.random.default_rng(seed)
        for _ in range(40):
            size = int(rng.integers(1, rt_module._SCALAR_DISPATCH_MAX + 1))
            bounder, pool = self._random_rt_pool(rng, size)
            n = rng.integers(1, 400_000, size).astype(np.int64)
            delta = float(rng.uniform(1e-9, 0.2))
            indices = np.arange(size, dtype=np.int64)
            lo_s, hi_s = bounder.confidence_interval_batch(
                pool, -50.0, 80.0, n, delta, indices=indices
            )
            monkeypatch.setattr(rt_module, "_SCALAR_DISPATCH_MAX", -1)
            lo_b, hi_b = bounder.confidence_interval_batch(
                pool, -50.0, 80.0, n, delta, indices=indices
            )
            monkeypatch.undo()
            assert lo_s.tobytes() == lo_b.tobytes()
            assert hi_s.tobytes() == hi_b.tobytes()

    @pytest.mark.parametrize("seed", range(3))
    def test_count_kernels_scalar_dispatch_bit_identical(self, seed, monkeypatch):
        import repro.fastframe.count as count_module

        rng = np.random.default_rng(100 + seed)
        rows = 400_000
        for _ in range(40):
            size = int(rng.integers(1, count_module._SCALAR_DISPATCH_MAX + 1))
            covered = rng.integers(0, 30_000, size).astype(np.int64)
            in_view = (covered * rng.uniform(0.0, 1.0, size)).astype(np.int64)
            delta = float(rng.uniform(1e-9, 0.2))
            ci_s = count_interval_batch(in_view, covered, rows, delta)
            nplus_s = upper_bound_population_batch(in_view, covered, rows, delta)
            monkeypatch.setattr(count_module, "_SCALAR_DISPATCH_MAX", -1)
            ci_b = count_interval_batch(in_view, covered, rows, delta)
            nplus_b = upper_bound_population_batch(in_view, covered, rows, delta)
            monkeypatch.undo()
            assert ci_s[0].tobytes() == ci_b[0].tobytes()
            assert ci_s[1].tobytes() == ci_b[1].tobytes()
            assert nplus_s.dtype == nplus_b.dtype
            assert nplus_s.tobytes() == nplus_b.tobytes()
