"""Compatibility paths of the worker-side bounder-kernel protocol.

Three safety nets around the native-delta fast path:

* a **third-party bounder** implementing only the scalar §2.2.2 interface
  (``init_state``/``update``/``lbound``/``rbound``) must produce
  ≤1e-9-parity results through the scalar, pool, and ``parallelism=2``
  engines — the loop fall-backs plus the ship-the-sorted-values worker
  protocol keep working unchanged;
* the **inline fallback** of ``ParallelScanDriver`` (no usable process
  pool, or no shared memory) must stay byte-identical to serial;
* the worker **payload contract**: native deltas carry no per-row
  arrays, and a run whose bounder lacks the protocol ships strictly more
  bytes over IPC (``ExecutionMetrics.delta_bytes_returned``).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bounders.base import ErrorBounder, validate_bound_args
from repro.bounders.bernstein import EmpiricalBernsteinSerflingBounder
from repro.bounders.range_trim import RangeTrimBounder
from repro.fastframe.executor import ApproximateExecutor, QueryRun, run_shared_scan
from repro.fastframe.parallel import ParallelScanDriver
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.stopping.conditions import AbsoluteAccuracy, RelativeAccuracy

RTOL = 1e-9
START_BLOCK = 2


class MinimalBounder(ErrorBounder):
    """A scalar-only Hoeffding-style bounder: the third-party shape.

    Implements nothing but the abstract interface — no batch update, no
    pool flavour, no mergeable delta — so every executor engine must
    carry it through the base-class loop fall-backs.
    """

    name = "minimal"

    def init_state(self):
        return {"count": 0, "total": 0.0}

    def update(self, state, value: float) -> None:
        state["count"] += 1
        state["total"] += value

    def sample_count(self, state) -> int:
        return state["count"]

    def estimate(self, state) -> float:
        return state["total"] / state["count"]

    def _epsilon(self, state, a, b, delta):
        return (b - a) * math.sqrt(math.log(1.0 / delta) / (2.0 * state["count"]))

    def lbound(self, state, a, b, n, delta):
        validate_bound_args(a, b, n, delta)
        if state["count"] == 0:
            return a
        return self.estimate(state) - self._epsilon(state, a, b, delta)

    def rbound(self, state, a, b, n, delta):
        validate_bound_args(a, b, n, delta)
        if state["count"] == 0:
            return b
        return self.estimate(state) + self._epsilon(state, a, b, delta)


class _NoDeltaRangeTrim(RangeTrimBounder):
    """Delta-capable math with the protocol switched off — isolates the
    loop-fallback + values-shipping path for payload comparisons."""

    supports_delta = False


@pytest.fixture(scope="module")
def scramble():
    rng = np.random.default_rng(11)
    n = 40_000
    table = Table(
        continuous={"x": rng.normal(40.0, 12.0, n)},
        categorical={"g": rng.integers(0, 20, n).astype(str)},
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(12))


def _executor(scramble, bounder, engine):
    strategy = get_strategy("scan")
    strategy.window_blocks = 256
    return ApproximateExecutor(
        scramble,
        bounder,
        strategy=strategy,
        delta=1e-6,
        round_rows=5_000,
        rng=np.random.default_rng(3),
        engine=engine,
    )


def _query():
    return Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(0.5), group_by=("g",))


def _assert_parity(reference, other, context):
    assert reference.metrics.rows_read == other.metrics.rows_read, context
    assert reference.metrics.rounds == other.metrics.rounds, context
    assert set(reference.groups) == set(other.groups), context
    for key, left in reference.groups.items():
        right = other.groups[key]
        assert left.interval.lo == pytest.approx(
            right.interval.lo, rel=RTOL, abs=1e-9
        ), (context, key)
        assert left.interval.hi == pytest.approx(
            right.interval.hi, rel=RTOL, abs=1e-9
        ), (context, key)
        assert left.estimate == pytest.approx(right.estimate, rel=RTOL, abs=1e-9), (
            context,
            key,
        )
        assert left.samples == right.samples, (context, key)


class TestThirdPartyBounderFallback:
    def test_scalar_pool_parallel_parity(self, scramble):
        results = {}
        for label, engine, parallelism in (
            ("scalar", "scalar", 1),
            ("pool", "pool", 1),
            ("parallel", "pool", 2),
        ):
            executor = _executor(scramble, MinimalBounder(), engine)
            results[label] = executor.execute(
                _query(), start_block=START_BLOCK, parallelism=parallelism
            )
        _assert_parity(results["scalar"], results["pool"], "scalar-vs-pool")
        _assert_parity(results["scalar"], results["parallel"], "scalar-vs-parallel")
        # The fallback protocol must have shipped the sorted per-row
        # values (no native delta exists for this bounder).
        assert results["parallel"].metrics.delta_bytes_returned > 0

    def test_fallback_deltas_keep_row_arrays(self, scramble, monkeypatch):
        """Worker deltas for a non-delta bounder must carry view_idx and
        values; apply_ingest replays them through update_pool."""
        seen = []
        original = QueryRun.consume_delta

        def spy(self, delta, window_rows, at_end):
            seen.append(
                (
                    delta.bounder_delta is not None,
                    delta.view_idx is not None,
                    delta.values is not None,
                )
            )
            return original(self, delta, window_rows, at_end)

        monkeypatch.setattr(QueryRun, "consume_delta", spy)
        executor = _executor(scramble, MinimalBounder(), "pool")
        executor.execute(_query(), start_block=START_BLOCK, parallelism=2)
        assert seen
        assert all(not native for native, _, _ in seen)
        assert all(has_idx and has_values for _, has_idx, has_values in seen)


class TestNativeDeltaPayload:
    def test_native_deltas_ship_no_row_arrays(self, scramble, monkeypatch):
        seen = []
        original = QueryRun.consume_delta

        def spy(self, delta, window_rows, at_end):
            seen.append(
                (
                    delta.bounder_delta is not None,
                    delta.view_idx is not None,
                    delta.values is not None,
                )
            )
            return original(self, delta, window_rows, at_end)

        monkeypatch.setattr(QueryRun, "consume_delta", spy)
        bounder = RangeTrimBounder(EmpiricalBernsteinSerflingBounder())
        executor = _executor(scramble, bounder, "pool")
        executor.execute(_query(), start_block=START_BLOCK, parallelism=2)
        native = [entry for entry in seen if entry[0]]
        assert native, "no worker task shipped a native bounder delta"
        assert all(
            not has_idx and not has_values for _, has_idx, has_values in native
        ), "a native delta carried per-row arrays"

    def test_native_payload_smaller_than_fallback(self, scramble):
        def bytes_for(bounder):
            executor = _executor(scramble, bounder, "pool")
            result = executor.execute(_query(), start_block=START_BLOCK, parallelism=2)
            return result, result.metrics.delta_bytes_returned

        native_result, native_bytes = bytes_for(
            RangeTrimBounder(EmpiricalBernsteinSerflingBounder())
        )
        fallback_result, fallback_bytes = bytes_for(
            _NoDeltaRangeTrim(EmpiricalBernsteinSerflingBounder())
        )
        # Same math, same answers — only the wire format differs.
        _assert_parity(native_result, fallback_result, "native-vs-fallback")
        assert native_bytes > 0
        assert fallback_bytes > native_bytes, (native_bytes, fallback_bytes)
        # The fallback ships O(rows) of int64+float64; native is O(views).
        assert native_bytes < fallback_bytes / 4, (native_bytes, fallback_bytes)


class TestInlineDriverFallback:
    def _run(self, scramble, parallelism):
        executor = _executor(
            scramble, RangeTrimBounder(EmpiricalBernsteinSerflingBounder()), "pool"
        )
        queries = [
            _query(),
            Query(AggregateFunction.AVG, "x", RelativeAccuracy(0.2)),
        ]
        runs = [QueryRun(executor, query) for query in queries]
        cursor = executor.cursor(START_BLOCK, window_blocks=runs[0].window_blocks)
        run_shared_scan(runs, cursor, parallelism=parallelism)
        return [run.finalize(merge_index_counters=False) for run in runs]

    def test_no_process_pool_degrades_inline(self, scramble, monkeypatch):
        """A platform without a usable pool must run fully inline with
        byte-identical results and zero IPC."""
        serial = self._run(scramble, parallelism=1)
        monkeypatch.setattr(
            "repro.fastframe.parallel._worker_pool", lambda workers: None
        )
        inline = self._run(scramble, parallelism=4)
        for left, right in zip(serial, inline):
            assert right.metrics.delta_bytes_returned == 0
            for key, group in left.groups.items():
                other = right.groups[key]
                assert group.interval == other.interval
                assert group.estimate == other.estimate
                assert group.samples == other.samples

    def test_no_shared_memory_degrades_inline(self, scramble, monkeypatch):
        """Shared-memory export failure must fall back to inline
        partitioning mid-flight, same results, zero IPC."""
        serial = self._run(scramble, parallelism=1)

        def broken_export(self):
            raise OSError("no shared memory on this platform")

        monkeypatch.setattr(
            "repro.fastframe.window.WindowFrame.export_shared", broken_export
        )
        inline = self._run(scramble, parallelism=2)
        for left, right in zip(serial, inline):
            assert right.metrics.delta_bytes_returned == 0
            # Degradation is counted, not silent: every window that would
            # have offloaded recorded an inline fallback.
            assert right.metrics.inline_fallbacks > 0
            for key, group in left.groups.items():
                other = right.groups[key]
                assert group.interval == other.interval
                assert group.estimate == other.estimate
                assert group.samples == other.samples
