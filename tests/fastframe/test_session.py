"""Tests for multi-query sessions with joint δ accounting (§4.1)."""

import math

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import Eq
from repro.fastframe.session import Session
from repro.experiments import build_query
from repro.stopping import RelativeAccuracy


@pytest.fixture(scope="module")
def scramble():
    return make_flights_scramble(rows=30_000, seed=0)


def _session(scramble, **kwargs):
    defaults = dict(
        bounder=get_bounder("bernstein+rt"),
        session_delta=1e-6,
        rng=np.random.default_rng(0),
    )
    defaults.update(kwargs)
    return Session(scramble, **defaults)


class TestConstruction:
    def test_rejects_bad_policy(self, scramble):
        with pytest.raises(ValueError, match="policy"):
            _session(scramble, policy="greedy")

    def test_rejects_bad_delta(self, scramble):
        with pytest.raises(ValueError, match="session_delta"):
            _session(scramble, session_delta=0.0)

    def test_rejects_non_ssi_bounder(self, scramble):
        with pytest.raises(ValueError, match="not SSI"):
            _session(scramble, bounder=get_bounder("clt"))

    def test_rejects_bad_capacity(self, scramble):
        with pytest.raises(ValueError, match="max_queries"):
            _session(scramble, policy="even", max_queries=0)


class TestEvenPolicy:
    def test_each_query_gets_equal_share(self, scramble):
        session = _session(scramble, policy="even", max_queries=10)
        assert session.next_query_delta() == pytest.approx(1e-7)
        session.execute(build_query("F-q1", epsilon=0.5))
        assert session.next_query_delta() == pytest.approx(1e-7)

    def test_capacity_enforced(self, scramble):
        session = _session(scramble, policy="even", max_queries=1)
        session.execute(build_query("F-q1", epsilon=0.5))
        with pytest.raises(RuntimeError, match="run all of them"):
            session.execute(build_query("F-q4"))

    def test_spent_never_exceeds_budget(self, scramble):
        session = _session(scramble, policy="even", max_queries=3)
        for name in ("F-q1", "F-q4", "F-q2"):
            session.execute(build_query(name))
        assert session.spent_delta <= session.session_delta + 1e-18


class TestHarmonicPolicy:
    def test_decaying_allocations(self, scramble):
        session = _session(scramble, policy="harmonic")
        first = session.next_query_delta()
        session.execute(build_query("F-q1", epsilon=0.5))
        second = session.next_query_delta()
        assert second == pytest.approx(first / 4.0)  # 1/k² decay

    def test_open_ended_sum_bounded(self, scramble):
        """Σ (6/π²)·δ/k² over any number of queries stays below δ."""
        session = _session(scramble, policy="harmonic")
        total = sum(
            (6.0 / math.pi**2) * session.session_delta / k**2
            for k in range(1, 10_001)
        )
        assert total < session.session_delta

    def test_many_queries_allowed(self, scramble):
        session = _session(scramble, policy="harmonic")
        for _ in range(3):
            session.execute(build_query("F-q1", epsilon=0.5))
        assert session.queries_run == 3
        assert session.spent_delta < session.session_delta


class TestLedger:
    def test_ledger_records_each_query(self, scramble):
        session = _session(scramble, policy="even", max_queries=5)
        session.execute(build_query("F-q1", epsilon=0.5))
        session.execute(build_query("F-q4"))
        ledger = session.audit()
        assert [entry.index for entry in ledger] == [1, 2]
        assert ledger[0].name == "F-q1"
        assert all(entry.rows_read > 0 for entry in ledger)

    def test_results_remain_correct(self, scramble):
        """Intervals issued under the per-query allocation still enclose
        the exact answers (they use a smaller δ, hence are only wider)."""
        from repro.fastframe import ExactExecutor

        session = _session(scramble, policy="even", max_queries=4)
        exact = ExactExecutor(scramble)
        for name in ("F-q1", "F-q4"):
            query = build_query(name)
            approx = session.execute(query)
            truth = exact.execute(query).scalar().estimate
            interval = approx.scalar().interval
            slack = 1e-9 * max(1.0, abs(truth))
            assert interval.lo - slack <= truth <= interval.hi + slack

    def test_custom_predicate_query(self, scramble):
        from repro.fastframe import AggregateFunction, Query

        session = _session(scramble, policy="harmonic")
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            RelativeAccuracy(0.5),
            predicate=Eq("Origin", "ORD"),
            name="custom",
        )
        result = session.execute(query)
        assert result.scalar().samples > 0
        assert session.audit()[0].name == "custom"
