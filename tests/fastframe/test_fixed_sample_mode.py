"""Condition Ê executor behaviour: single end-of-run full-budget CI (§4.2).

"If a fixed number of samples are requested, do not use Algorithm 5;
instead, terminate query processing once a desired number of tuples
contribute to the partial aggregate(s)" — so no δ-decay is spent on
intermediate rounds and the one issued interval is strictly tighter than
the decayed-and-intersected alternative would typically be at round k > 1.
"""

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import AggregateFunction, ApproximateExecutor, ExactExecutor, Query
from repro.stopping import AbsoluteAccuracy, SamplesTaken


@pytest.fixture(scope="module")
def scramble():
    return make_flights_scramble(rows=120_000, seed=0)


def _run(scramble, stopping, seed=0, **kwargs):
    executor = ApproximateExecutor(
        scramble, get_bounder("bernstein+rt"), delta=1e-9,
        round_rows=10_000, rng=np.random.default_rng(seed), **kwargs,
    )
    query = Query(AggregateFunction.AVG, "DepDelay", stopping)
    return executor.execute(query, start_block=0)


class TestFixedSampleMode:
    def test_stops_at_requested_count(self, scramble):
        result = _run(scramble, SamplesTaken(40_000))
        group = result.scalar()
        assert group.samples >= 40_000
        assert result.metrics.stopped_early

    def test_interval_valid(self, scramble):
        result = _run(scramble, SamplesTaken(40_000))
        exact = ExactExecutor(scramble).execute(
            Query(AggregateFunction.AVG, "DepDelay", SamplesTaken(1))
        )
        truth = exact.scalar().estimate
        interval = result.scalar().interval
        assert interval.lo <= truth <= interval.hi

    def test_tighter_than_decayed_equivalent(self, scramble):
        """The point of skipping Algorithm 5: at the same sample count, the
        single full-budget interval beats the width an AbsoluteAccuracy run
        certifies after the same number of decayed rounds."""
        fixed = _run(scramble, SamplesTaken(40_000))
        # An accuracy target chosen to terminate at a similar sample count.
        decayed = _run(scramble, AbsoluteAccuracy(fixed.scalar().interval.width))
        assert decayed.scalar().samples >= fixed.scalar().samples
        # The decayed run needed at least as many samples to certify the
        # width the fixed-mode run got for free at its sample count.

    def test_rounds_counted_but_undecayed(self, scramble):
        result = _run(scramble, SamplesTaken(60_000))
        # Multiple count-check rounds happened...
        assert result.metrics.rounds >= 2
        # ...yet the certified width matches a fresh single-shot interval
        # at the full per-view budget (no intersection of decayed rounds).
        from repro.stopping.optstop import fixed_size_interval

        group = result.scalar()
        data = scramble.table.continuous("DepDelay")
        bounds = scramble.table.catalog.bounds("DepDelay")
        single = fixed_size_interval(
            data,
            get_bounder("bernstein+rt"),
            m=group.samples,
            a=bounds.a,
            b=bounds.b,
            delta=0.5e-9 * 0.99,  # view budget, Theorem 3's α share
            rng=np.random.default_rng(1),
        )
        assert group.interval.width == pytest.approx(
            single.interval.width, rel=0.15
        )
