"""Tests for the sampling strategies (Scan / ActiveSync / ActivePeek)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastframe.bitmap import BlockBitmapIndex
from repro.fastframe.scan import (
    ActivePeekStrategy,
    ActiveSyncStrategy,
    ScanContext,
    ScanStrategy,
    get_strategy,
)
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table


@pytest.fixture()
def scramble(rng):
    table = Table(
        continuous={"v": np.arange(2_000, dtype=float)},
        categorical={"g": rng.choice(["a", "b", "c"], 2_000, p=[0.8, 0.15, 0.05])},
    )
    return Scramble(table, block_size=10, rng=rng)


def make_context(scramble, active_values=(), predicate_values=()):
    index = BlockBitmapIndex(scramble, "g")
    categorical = scramble.table.categorical("g")
    return ScanContext(
        indexes={"g": index},
        predicate_requirements=(
            {"g": {categorical.code_of(v) for v in predicate_values}}
            if predicate_values
            else {}
        ),
        group_columns=("g",) if active_values else (),
        active_groups=[(categorical.code_of(v),) for v in active_values],
    )


class TestGetStrategy:
    def test_lookup(self):
        assert isinstance(get_strategy("scan"), ScanStrategy)
        assert isinstance(get_strategy("ActiveSync"), ActiveSyncStrategy)
        assert isinstance(get_strategy("activepeek"), ActivePeekStrategy)

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_strategy("turbo")


class TestScanStrategy:
    def test_reads_everything_without_predicate(self, scramble):
        context = make_context(scramble)
        window = np.arange(scramble.num_blocks)
        mask = ScanStrategy().select_blocks(window, context)
        assert mask.all()

    def test_skips_predicate_empty_blocks(self, scramble):
        context = make_context(scramble, predicate_values=("c",))
        window = np.arange(scramble.num_blocks)
        mask = ScanStrategy().select_blocks(window, context)
        codes = scramble.table.categorical("g").codes
        c_code = scramble.table.categorical("g").code_of("c")
        for block in window:
            has_c = bool(np.any(codes[scramble.block_rows(int(block))] == c_code))
            assert mask[block] == has_c

    def test_ignores_active_groups(self, scramble):
        """Scan never consults activeness (§5.2)."""
        sparse = make_context(scramble, active_values=("c",))
        window = np.arange(scramble.num_blocks)
        assert ScanStrategy().select_blocks(window, sparse).all()
        assert not ScanStrategy.uses_active_groups


class TestActiveStrategies:
    @pytest.mark.parametrize("strategy_cls", [ActiveSyncStrategy, ActivePeekStrategy])
    def test_skips_blocks_without_active_groups(self, scramble, strategy_cls):
        context = make_context(scramble, active_values=("c",))
        window = np.arange(scramble.num_blocks)
        mask = strategy_cls().select_blocks(window, context)
        codes = scramble.table.categorical("g").codes
        c_code = scramble.table.categorical("g").code_of("c")
        for block in window:
            has_c = bool(np.any(codes[scramble.block_rows(int(block))] == c_code))
            assert mask[block] == has_c

    @pytest.mark.parametrize("strategy_cls", [ActiveSyncStrategy, ActivePeekStrategy])
    def test_no_active_groups_reads_nothing(self, scramble, strategy_cls):
        context = make_context(scramble, active_values=())
        context = ScanContext(
            indexes=context.indexes,
            predicate_requirements={},
            group_columns=("g",),
            active_groups=[],
        )
        window = np.arange(20)
        mask = strategy_cls().select_blocks(window, context)
        assert not mask.any()

    def test_sync_and_peek_agree(self, scramble):
        """Both compute the same skipping decision — they differ only in
        probe cost (per-block vs batched)."""
        for active in (("a",), ("b", "c"), ("a", "b", "c")):
            context_sync = make_context(scramble, active_values=active)
            context_peek = make_context(scramble, active_values=active)
            window = np.arange(scramble.num_blocks)
            sync_mask = ActiveSyncStrategy().select_blocks(window, context_sync)
            peek_mask = ActivePeekStrategy().select_blocks(window, context_peek)
            np.testing.assert_array_equal(sync_mask, peek_mask)

    def test_probe_cost_asymmetry(self, scramble):
        """ActiveSync charges per-block probes; ActivePeek charges batched
        probes — the §5.2 overhead model."""
        context_sync = make_context(scramble, active_values=("c",))
        window = np.arange(scramble.num_blocks)
        ActiveSyncStrategy().select_blocks(window, context_sync)
        sync_index = context_sync.indexes["g"]
        assert sync_index.probe_count >= scramble.num_blocks  # >= 1 per block
        assert sync_index.batch_probe_count == 0

        context_peek = make_context(scramble, active_values=("c",))
        ActivePeekStrategy().select_blocks(window, context_peek)
        peek_index = context_peek.indexes["g"]
        assert peek_index.probe_count == 0
        assert peek_index.batch_probe_count <= 4  # O(active groups), not O(blocks)

    def test_combined_predicate_and_group_skipping(self, scramble):
        context = make_context(
            scramble, active_values=("b",), predicate_values=("c",)
        )
        window = np.arange(scramble.num_blocks)
        mask = ActivePeekStrategy().select_blocks(window, context)
        codes = scramble.table.categorical("g").codes
        categorical = scramble.table.categorical("g")
        b_code, c_code = categorical.code_of("b"), categorical.code_of("c")
        for block in window:
            rows = scramble.block_rows(int(block))
            expected = bool(np.any(codes[rows] == b_code)) and bool(
                np.any(codes[rows] == c_code)
            )
            assert mask[block] == expected

    def test_never_skips_needed_block(self, scramble, rng):
        """Soundness: every block holding a row of an active group is
        fetched, for random active sets."""
        categorical = scramble.table.categorical("g")
        codes = scramble.table.categorical("g").codes
        window = np.arange(scramble.num_blocks)
        for _ in range(5):
            active = tuple(
                rng.choice(categorical.dictionary, rng.integers(1, 3), replace=False)
            )
            context = make_context(scramble, active_values=active)
            mask = ActivePeekStrategy().select_blocks(window, context)
            active_codes = {categorical.code_of(v) for v in active}
            for block in window:
                rows = scramble.block_rows(int(block))
                if any(c in active_codes for c in codes[rows]):
                    assert mask[block]
