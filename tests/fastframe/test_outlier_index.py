"""Tests for the outlier-index baseline ([18], §6 related work)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders import Interval, get_bounder
from repro.fastframe import Eq, Table
from repro.fastframe.outlier_index import (
    OutlierIndexedStore,
    compose_outlier_avg,
)
from repro.stopping import AbsoluteAccuracy, SamplesTaken


def _salary_table(rows: int = 10_000, seed: int = 0) -> Table:
    """Figure 2's regime: a tight salary body plus extreme tail rows."""
    rng = np.random.default_rng(seed)
    salaries = rng.normal(50.0, 5.0, size=rows)
    outlier_ids = rng.choice(rows, size=max(rows // 200, 2), replace=False)
    half = outlier_ids.size // 2
    salaries[outlier_ids[:half]] = 5_000.0
    salaries[outlier_ids[half:]] = -1_000.0
    dept = rng.choice(["eng", "sales", "hr"], size=rows)
    return Table(continuous={"salary": salaries}, categorical={"dept": dept})


class TestComposeOutlierAvg:
    def test_pure_inlier_passthrough(self):
        ci = compose_outlier_avg(0, 0.0, Interval(4.0, 6.0), Interval(100.0, 100.0))
        assert ci.lo == pytest.approx(4.0)
        assert ci.hi == pytest.approx(6.0)

    def test_pure_outlier_is_exact(self):
        ci = compose_outlier_avg(4, 40.0, Interval(0.0, 0.0), Interval(0.0, 0.0))
        assert ci.lo == ci.hi == pytest.approx(10.0)

    def test_mix_shrinks_toward_outlier_mean(self):
        # 10 outliers at mean 100, ~90-110 inliers near 0.
        ci = compose_outlier_avg(10, 1_000.0, Interval(-1.0, 1.0), Interval(90.0, 110.0))
        assert 0.0 < ci.lo < ci.hi < 100.0

    def test_empty_everything_raises(self):
        with pytest.raises(ValueError):
            compose_outlier_avg(0, 0.0, Interval(0.0, 0.0), Interval(0.0, 0.0))

    @given(
        st.integers(min_value=0, max_value=50),
        st.floats(min_value=-1e4, max_value=1e4),
        st.floats(min_value=-100.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_corners_enclose_interior(self, n_out, s_out, g_mid, g_half, n_mid, n_half):
        """Any interior (avg, count) pair composes inside the corner hull."""
        avg_iv = Interval(g_mid - g_half, g_mid + g_half)
        count_iv = Interval(n_mid, n_mid + n_half)
        hull = compose_outlier_avg(n_out, s_out, avg_iv, count_iv)
        for t_g, t_n in [(0.25, 0.5), (0.5, 0.25), (0.75, 0.75)]:
            g = avg_iv.lo + t_g * avg_iv.width
            n = count_iv.lo + t_n * count_iv.width
            value = (s_out + g * n) / (n_out + n)
            assert hull.lo - 1e-9 <= value <= hull.hi + 1e-9


class TestOutlierIndexedStore:
    def test_split_sizes(self):
        table = _salary_table(rows=5_000)
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.01, rng=np.random.default_rng(0))
        assert store.outlier_rows == 50  # 0.5% per tail of 5000
        assert store.inlier_scramble.num_rows == 4_950

    def test_inlier_bounds_tightened(self):
        table = _salary_table()
        full = table.catalog.bounds("salary")
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.02, rng=np.random.default_rng(0))
        tight = store.inlier_bounds()
        assert tight.width < full.width / 10.0

    def test_outliers_are_the_extremes(self):
        table = _salary_table()
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.02, rng=np.random.default_rng(0))
        outlier_values = store.outlier_table.continuous("salary")
        inlier_values = store.inlier_scramble.table.continuous("salary")
        per_tail = store.outlier_rows // 2
        assert np.sort(outlier_values)[per_tail - 1] <= inlier_values.min()
        assert np.sort(outlier_values)[per_tail] >= inlier_values.max()

    def test_rejects_bad_fraction(self):
        table = _salary_table(rows=100)
        with pytest.raises(ValueError):
            OutlierIndexedStore(table, "salary", outlier_fraction=0.0)
        with pytest.raises(ValueError):
            OutlierIndexedStore(table, "salary", outlier_fraction=0.999)

    def test_avg_interval_encloses_truth(self):
        table = _salary_table(rows=8_000, seed=1)
        truth = float(table.continuous("salary").mean())
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.01, rng=np.random.default_rng(2))
        result = store.execute_avg(
            SamplesTaken(2_000),
            get_bounder("bernstein+rt"),
            delta=1e-6,
            round_rows=1_000,
            rng=np.random.default_rng(3),
        )
        slack = 1e-9 * max(1.0, abs(truth))
        assert result.interval.lo - slack <= truth <= result.interval.hi + slack

    def test_avg_with_predicate(self):
        table = _salary_table(rows=8_000, seed=4)
        salaries = table.continuous("salary")
        dept = table.categorical("dept")
        eng_mask = dept.codes == dept.code_of("eng")
        truth = float(salaries[eng_mask].mean())
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.01, rng=np.random.default_rng(5))
        result = store.execute_avg(
            SamplesTaken(1_500),
            get_bounder("bernstein+rt"),
            predicate=Eq("dept", "eng"),
            delta=1e-6,
            rng=np.random.default_rng(6),
        )
        assert result.interval.lo <= truth <= result.interval.hi
        assert result.outlier_rows <= store.outlier_rows

    def test_tighter_than_unindexed_hoeffding(self):
        """The point of [18]: with outliers parked in the index, a
        range-driven bounder converges far faster on the inlier store."""
        from repro.fastframe import ApproximateExecutor, Query, AggregateFunction
        from repro.fastframe.scramble import Scramble

        # Larger than one 1024-block scan window so neither run is a census.
        table = _salary_table(rows=120_000, seed=7)
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.005, rng=np.random.default_rng(8))
        indexed = store.execute_avg(
            SamplesTaken(3_000),
            get_bounder("hoeffding"),
            delta=1e-6,
            round_rows=1_000,
            rng=np.random.default_rng(9),
            start_block=0,
        )
        plain_scramble = Scramble(table, rng=np.random.default_rng(8))
        plain_exec = ApproximateExecutor(
            plain_scramble, get_bounder("hoeffding"), delta=1e-6,
            round_rows=1_000, rng=np.random.default_rng(9),
        )
        plain = plain_exec.execute(
            Query(AggregateFunction.AVG, "salary", SamplesTaken(3_000)),
            start_block=0,
        ).scalar()
        assert indexed.interval.width < plain.interval.width / 5.0

    def test_absolute_accuracy_stopping(self):
        table = _salary_table(rows=20_000, seed=10)
        store = OutlierIndexedStore(table, "salary", outlier_fraction=0.01, rng=np.random.default_rng(11))
        result = store.execute_avg(
            AbsoluteAccuracy(5.0),
            get_bounder("bernstein+rt"),
            delta=1e-6,
            rng=np.random.default_rng(12),
        )
        truth = float(table.continuous("salary").mean())
        assert result.interval.lo <= truth <= result.interval.hi
