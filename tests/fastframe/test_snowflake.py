"""Tests for snowflake-schema join views (Extensibility, §1)."""

import numpy as np
import pytest

from repro.fastframe import Eq, Table
from repro.fastframe.snowflake import Dimension, ForeignKey, denormalize


def _star_schema(rows: int = 2_000, seed: int = 0):
    """A flights-like star: fact(delay, airport_fk) + airport dimension."""
    rng = np.random.default_rng(seed)
    airports = ["ORD", "SFO", "JFK", "AUS"]
    states = ["IL", "CA", "NY", "TX"]
    fact = Table(
        continuous={"DepDelay": rng.normal(10.0, 20.0, size=rows)},
        categorical={"Origin": rng.choice(airports, size=rows)},
    )
    airport_dim = Table(
        continuous={"elevation": np.array([672.0, 13.0, 13.0, 542.0])},
        categorical={"code": airports, "state": states},
    )
    dimension = Dimension(name="airport", table=airport_dim, key="code")
    return fact, dimension


class TestStarJoin:
    def test_attributes_attached(self):
        fact, dimension = _star_schema()
        view = denormalize(fact, [ForeignKey("Origin", dimension)])
        assert set(view.columns()) == {
            "DepDelay", "Origin", "airport.state", "airport.elevation",
        }
        assert view.num_rows == fact.num_rows

    def test_join_values_correct(self):
        fact, dimension = _star_schema(rows=200)
        view = denormalize(fact, [ForeignKey("Origin", dimension)])
        origin = view.categorical("Origin")
        state = view.categorical("airport.state")
        state_of = {"ORD": "IL", "SFO": "CA", "JFK": "NY", "AUS": "TX"}
        for row in range(200):
            airport = origin.dictionary[origin.codes[row]]
            assert state.dictionary[state.codes[row]] == state_of[airport]

    def test_continuous_attribute_joined_with_bounds(self):
        fact, dimension = _star_schema()
        view = denormalize(fact, [ForeignKey("Origin", dimension)])
        bounds = view.catalog.bounds("airport.elevation")
        assert bounds.a <= 13.0 and bounds.b >= 672.0

    def test_fact_bounds_inherited(self):
        fact, dimension = _star_schema()
        view = denormalize(fact, [ForeignKey("Origin", dimension)])
        assert view.catalog.bounds("DepDelay") == fact.catalog.bounds("DepDelay")

    def test_no_foreign_keys_copies_fact(self):
        fact, _ = _star_schema(rows=50)
        view = denormalize(fact, [])
        assert set(view.columns()) == {"DepDelay", "Origin"}
        np.testing.assert_array_equal(
            view.continuous("DepDelay"), fact.continuous("DepDelay")
        )


class TestSnowflakeJoin:
    def test_two_level_snowflake(self):
        """fact -> airport -> region resolves transitively."""
        fact, airport_dim = _star_schema()
        region_dim = Dimension(
            name="region",
            table=Table(
                categorical={
                    "state_code": ["IL", "CA", "NY", "TX"],
                    "name": ["midwest", "west", "east", "south"],
                }
            ),
            key="state_code",
        )
        snowflake_airport = Dimension(
            name="airport",
            table=airport_dim.table,
            key="code",
            foreign_keys=(ForeignKey("state", region_dim),),
        )
        view = denormalize(fact, [ForeignKey("Origin", snowflake_airport)])
        assert "airport.name" in view.columns()  # region.name via airport
        origin = view.categorical("Origin")
        region = view.categorical("airport.name")
        region_of = {"ORD": "midwest", "SFO": "west", "JFK": "east", "AUS": "south"}
        for row in range(100):
            airport = origin.dictionary[origin.codes[row]]
            assert region.dictionary[region.codes[row]] == region_of[airport]


class TestIntegrity:
    def test_missing_key_raises(self):
        fact = Table(
            continuous={"x": np.ones(3)},
            categorical={"fk": ["A", "B", "MISSING"]},
        )
        dim = Dimension(
            name="d",
            table=Table(categorical={"k": ["A", "B"], "attr": ["p", "q"]}),
            key="k",
        )
        with pytest.raises(ValueError, match="no dimension match"):
            denormalize(fact, [ForeignKey("fk", dim)])

    def test_duplicate_dimension_key_raises(self):
        fact = Table(continuous={"x": np.ones(2)}, categorical={"fk": ["A", "A"]})
        dim = Dimension(
            name="d",
            table=Table(categorical={"k": ["A", "A"], "attr": ["p", "q"]}),
            key="k",
        )
        with pytest.raises(ValueError, match="duplicates"):
            denormalize(fact, [ForeignKey("fk", dim)])

    def test_integer_surrogate_keys(self):
        fact = Table(
            continuous={"x": np.array([1.0, 2.0, 3.0]), "fk": np.array([2.0, 0.0, 1.0])},
        )
        dim = Dimension(
            name="d",
            table=Table(
                continuous={"k": np.array([0.0, 1.0, 2.0])},
                categorical={"attr": ["zero", "one", "two"]},
            ),
            key="k",
        )
        view = denormalize(fact, [ForeignKey("fk", dim)])
        attr = view.categorical("d.attr")
        assert attr.decode(attr.codes) == ["two", "zero", "one"]


class TestQueryOverJoinedView:
    def test_group_by_dimension_attribute(self):
        """The extensibility claim end-to-end: AVG over the fact measure
        grouped by a joined dimension attribute, with certified intervals."""
        from repro.bounders import get_bounder
        from repro.fastframe import (
            AggregateFunction,
            ApproximateExecutor,
            ExactExecutor,
            Query,
            Scramble,
        )
        from repro.stopping import GroupsOrdered

        fact, dimension = _star_schema(rows=60_000, seed=3)
        view = denormalize(fact, [ForeignKey("Origin", dimension)])
        scramble = Scramble(view, rng=np.random.default_rng(4))
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            GroupsOrdered(),
            group_by=("airport.state",),
        )
        approx = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(5),
        ).execute(query)
        exact = ExactExecutor(scramble).execute(query)
        assert approx.ordering() == exact.ordering()
        for key, group in exact.groups.items():
            interval = approx.groups[key].interval
            slack = 1e-9 * max(1.0, abs(group.estimate))
            assert interval.lo - slack <= group.estimate <= interval.hi + slack

    def test_predicate_on_dimension_attribute(self):
        from repro.bounders import get_bounder
        from repro.fastframe import (
            AggregateFunction,
            ApproximateExecutor,
            Query,
            Scramble,
        )
        from repro.stopping import SamplesTaken

        fact, dimension = _star_schema(rows=30_000, seed=6)
        view = denormalize(fact, [ForeignKey("Origin", dimension)])
        scramble = Scramble(view, rng=np.random.default_rng(7))
        query = Query(
            AggregateFunction.AVG,
            "DepDelay",
            SamplesTaken(4_000),
            predicate=Eq("airport.state", "CA"),
        )
        result = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(8),
        ).execute(query)
        group = result.scalar()
        values = view.continuous("DepDelay")
        state = view.categorical("airport.state")
        truth = float(values[state.codes == state.code_of("CA")].mean())
        slack = 1e-9 * max(1.0, abs(truth))
        assert group.interval.lo - slack <= truth <= group.interval.hi + slack
