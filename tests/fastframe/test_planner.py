"""Tests for the approximate-vs-exact query planner (§7 future work)."""

import numpy as np
import pytest

from repro.datasets import make_flights_scramble
from repro.experiments import build_query
from repro.fastframe import AggregateFunction, Eq, Query
from repro.fastframe.planner import PlanEstimate, QueryPlanner
from repro.stopping import (
    AbsoluteAccuracy,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
)


@pytest.fixture(scope="module")
def scramble():
    return make_flights_scramble(rows=200_000, seed=0)


def _planner(scramble, **kwargs):
    defaults = dict(delta=1e-9, pilot_rows=20_000)
    defaults.update(kwargs)
    return QueryPlanner(scramble, **defaults)


class TestConstruction:
    def test_rejects_bad_cutover(self, scramble):
        with pytest.raises(ValueError, match="exact_cutover"):
            QueryPlanner(scramble, exact_cutover=0.0)

    def test_rejects_bad_pilot(self, scramble):
        with pytest.raises(ValueError, match="pilot_rows"):
            QueryPlanner(scramble, pilot_rows=0)

    def test_pilot_clamped_to_table(self):
        small = make_flights_scramble(rows=5_000, seed=1)
        planner = QueryPlanner(small, pilot_rows=1_000_000)
        assert planner.pilot_rows == 5_000


class TestPlanning:
    def test_loose_accuracy_plans_approximate(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(20.0)
        )
        plan = _planner(scramble).plan(query)
        assert plan.mode == "approximate"
        assert 0 < plan.expected_rows_scanned < scramble.num_rows / 2

    def test_tight_accuracy_plans_exact(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(0.001)
        )
        plan = _planner(scramble).plan(query)
        assert plan.mode == "exact"
        assert plan.scan_fraction >= 0.5

    def test_samples_taken_uses_selectivity(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", SamplesTaken(1_000),
            predicate=Eq("Origin", "ORD"),
        )
        plan = _planner(scramble).plan(query)
        # ORD's selectivity is ~0.2, so ~5k rows must be scanned.
        assert plan.expected_samples == 1_000
        assert plan.expected_rows_scanned > 1_000

    def test_threshold_far_from_mean_is_cheap(self, scramble):
        far = Query(AggregateFunction.AVG, "DepDelay", ThresholdSide(-100.0))
        near = Query(AggregateFunction.AVG, "DepDelay", ThresholdSide(9.0))
        planner = _planner(scramble)
        assert (
            planner.plan(far).expected_rows_scanned
            <= planner.plan(near).expected_rows_scanned
        )

    def test_count_always_approximate(self, scramble):
        query = Query(
            AggregateFunction.COUNT, None, AbsoluteAccuracy(10.0),
            predicate=Eq("Origin", "ORD"),
        )
        plan = _planner(scramble).plan(query)
        assert plan.mode == "approximate"

    def test_group_by_bottleneck_reported(self, scramble):
        query = build_query("F-q2", thresh=0.0)
        plan = _planner(scramble).plan(query)
        assert plan.bottleneck  # some airline is the bottleneck
        assert isinstance(plan, PlanEstimate)

    def test_topk_uses_pairwise_gaps(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", TopKSeparated(1),
            group_by=("Airline",),
        )
        plan = _planner(scramble).plan(query)
        assert plan.expected_rows_scanned > 0

    def test_no_matching_rows_plans_exact(self, scramble):
        # A filter matching nothing in the pilot: impossible DepTime.
        from repro.fastframe import Compare

        query = Query(
            AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(1.0),
            predicate=Compare("DepTime", ">", 1e9),
        )
        plan = _planner(scramble).plan(query)
        assert plan.mode == "exact"
        assert "no matching rows" in plan.reason


class TestPlanQuality:
    def test_forecast_brackets_actual_cost(self, scramble):
        """The point of the optimizer: the prediction should be in the
        ballpark of the real run (same order of magnitude) for a
        well-behaved scalar query."""
        from repro.bounders import get_bounder
        from repro.fastframe import ApproximateExecutor

        query = Query(
            AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(5.0)
        )
        plan = _planner(scramble).plan(query)
        assert plan.mode == "approximate"
        result = ApproximateExecutor(
            scramble, get_bounder("bernstein"), delta=1e-9,
            rng=np.random.default_rng(0),
        ).execute(query, start_block=0)
        actual = result.metrics.rows_read
        assert plan.expected_rows_scanned / 10 <= actual <= plan.expected_rows_scanned * 10

    def test_relative_accuracy_consistent_with_table5_fq1(self, scramble):
        """F-q1[eps=0.5] stops early in Table 5 under Bernstein+RT; the
        RangeTrim-aware width model should agree."""
        plan = _planner(scramble, bounder_name="bernstein+rt").plan(
            build_query("F-q1", epsilon=0.5)
        )
        assert plan.mode == "approximate"

    def test_rangetrim_model_cheaper_than_plain(self, scramble):
        query = build_query("F-q1", epsilon=0.5)
        trimmed = _planner(scramble, bounder_name="bernstein+rt").plan(query)
        plain = _planner(scramble, bounder_name="bernstein").plan(query)
        assert trimmed.expected_samples <= plain.expected_samples

    def test_hoeffding_model_more_pessimistic(self, scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(5.0))
        bern = _planner(scramble, bounder_name="bernstein").plan(query)
        hoef = _planner(scramble, bounder_name="hoeffding").plan(query)
        assert hoef.expected_samples >= bern.expected_samples
