"""Tests for the exact hypergeometric COUNT intervals (§4.1 alternative)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastframe.count import (
    SelectivityState,
    count_interval,
    upper_bound_population,
)
from repro.fastframe.hypergeometric import (
    hypergeometric_count_interval,
    hypergeometric_upper_bound_population,
    lower_tail,
    upper_tail,
)


def _state(in_view: int, covered: int) -> SelectivityState:
    state = SelectivityState()
    state.observe(in_view, covered)
    return state


class TestTails:
    def test_upper_tail_monotone_in_view_size(self):
        tails = [upper_tail(10, 1_000, k, 100) for k in (50, 100, 200, 400)]
        assert tails == sorted(tails)

    def test_lower_tail_antitone_in_view_size(self):
        tails = [lower_tail(10, 1_000, k, 100) for k in (50, 100, 200, 400)]
        assert tails == sorted(tails, reverse=True)

    def test_tails_sum_above_one(self):
        """P(X >= m) + P(X <= m) = 1 + P(X = m) >= 1."""
        up = upper_tail(7, 500, 40, 80)
        down = lower_tail(7, 500, 40, 80)
        assert up + down >= 1.0


class TestExactCountInterval:
    def test_no_coverage_is_trivial(self):
        ci = hypergeometric_count_interval(SelectivityState(), 1_000, 0.05)
        assert (ci.lo, ci.hi) == (0.0, 1_000.0)

    def test_census_is_degenerate(self):
        ci = hypergeometric_count_interval(_state(321, 1_000), 1_000, 0.05)
        assert (ci.lo, ci.hi) == (321.0, 321.0)

    def test_encloses_feasible_extremes(self):
        """The CI always contains at least the observed in-view count and
        never exceeds the feasible range."""
        state = _state(25, 100)
        ci = hypergeometric_count_interval(state, 1_000, 0.01)
        assert 25.0 <= ci.lo <= ci.hi <= 925.0

    def test_never_wider_than_lemma5(self):
        """Exact inversion dominates the Hoeffding-Serfling bound."""
        for in_view, covered, rows in [(5, 200, 10_000), (150, 400, 2_000), (0, 500, 5_000)]:
            state = _state(in_view, covered)
            exact = hypergeometric_count_interval(state, rows, 1e-6)
            lemma5 = count_interval(state, rows, 1e-6)
            assert exact.lo >= lemma5.lo - 1e-9
            assert exact.hi <= lemma5.hi + 1e-9

    def test_zero_in_view_small_upper_bound(self):
        """Seeing 0 of 1,000 covered rows certifies a tiny view."""
        ci = hypergeometric_count_interval(_state(0, 1_000), 100_000, 1e-6)
        assert ci.lo == 0.0
        assert ci.hi < 2_500  # ~ln(1/δ)/r · R

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            hypergeometric_count_interval(_state(1, 10), 100, 0.0)

    def test_coverage_monte_carlo(self):
        """Empirical coverage of the exact CI at δ = 0.1."""
        rng = np.random.default_rng(0)
        population, view_size, draws = 2_000, 300, 150
        misses = 0
        trials = 200
        flags = np.zeros(population, dtype=bool)
        flags[:view_size] = True
        for _ in range(trials):
            seen = rng.choice(flags, size=draws, replace=False)
            ci = hypergeometric_count_interval(
                _state(int(seen.sum()), draws), population, 0.1
            )
            if not ci.lo <= view_size <= ci.hi:
                misses += 1
        assert misses / trials <= 0.1

    def test_tightens_with_more_coverage(self):
        loose = hypergeometric_count_interval(_state(10, 100), 10_000, 0.01)
        tight = hypergeometric_count_interval(_state(100, 1_000), 10_000, 0.01)
        assert tight.width < loose.width


class TestExactUpperBound:
    def test_dominated_by_lemma5_n_plus(self):
        for in_view, covered, rows in [(5, 200, 10_000), (150, 400, 2_000)]:
            state = _state(in_view, covered)
            exact = hypergeometric_upper_bound_population(state, rows, 1e-9)
            lemma5 = upper_bound_population(state, rows, 1e-9)
            assert exact <= lemma5

    def test_upper_bound_at_least_observed(self):
        state = _state(42, 50)
        assert hypergeometric_upper_bound_population(state, 1_000, 0.05) >= 42

    def test_no_coverage_returns_population(self):
        assert (
            hypergeometric_upper_bound_population(SelectivityState(), 777, 0.05)
            == 777
        )

    def test_census_returns_exact(self):
        state = _state(5, 100)
        assert hypergeometric_upper_bound_population(state, 100, 0.05) == 5

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            hypergeometric_upper_bound_population(_state(1, 10), 100, 0.05, alpha=1.0)

    def test_covers_true_n_monte_carlo(self):
        """N⁺ exceeds the true view size w.h.p. (the Theorem 3 event)."""
        rng = np.random.default_rng(1)
        population, view_size, draws = 1_000, 120, 200
        flags = np.zeros(population, dtype=bool)
        flags[:view_size] = True
        failures = 0
        trials = 200
        for _ in range(trials):
            seen = rng.choice(flags, size=draws, replace=False)
            n_plus = hypergeometric_upper_bound_population(
                _state(int(seen.sum()), draws), population, 0.1, alpha=0.5
            )
            if n_plus < view_size:
                failures += 1
        assert failures / trials <= 0.05  # budget (1-α)δ = 0.05


class TestHypergeometricProperties:
    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=200),
        st.sampled_from([0.1, 0.01, 1e-6]),
    )
    @settings(max_examples=60, deadline=None)
    def test_interval_is_feasible_and_ordered(self, covered, in_view, delta):
        in_view = min(in_view, covered)
        rows = 1_000
        ci = hypergeometric_count_interval(_state(in_view, covered), rows, delta)
        assert 0.0 <= ci.lo <= ci.hi <= rows
        # Feasibility: the upper endpoint accounts for the out-of-view rows
        # already seen.
        assert ci.hi <= rows - (covered - in_view)

    @given(st.integers(min_value=1, max_value=150))
    @settings(max_examples=40, deadline=None)
    def test_smaller_delta_is_wider(self, in_view):
        covered, rows = 200, 5_000
        in_view = min(in_view, covered)
        wide = hypergeometric_count_interval(_state(in_view, covered), rows, 1e-9)
        narrow = hypergeometric_count_interval(_state(in_view, covered), rows, 0.1)
        assert wide.lo <= narrow.lo and wide.hi >= narrow.hi


class TestExecutorIntegration:
    def test_count_method_validation(self):
        from repro.bounders import get_bounder
        from repro.datasets import make_flights_scramble
        from repro.fastframe import ApproximateExecutor

        scramble = make_flights_scramble(rows=2_000, seed=0)
        with pytest.raises(ValueError):
            ApproximateExecutor(
                scramble, get_bounder("bernstein+rt"), count_method="nope"
            )

    def test_exact_method_end_to_end(self):
        from repro.bounders import get_bounder
        from repro.datasets import make_flights_scramble
        from repro.experiments import build_query
        from repro.fastframe import ApproximateExecutor, ExactExecutor

        scramble = make_flights_scramble(rows=20_000, seed=0)
        query = build_query("F-q1", epsilon=0.5)
        executor = ApproximateExecutor(
            scramble,
            get_bounder("bernstein+rt"),
            delta=1e-6,
            count_method="exact",
            rng=np.random.default_rng(0),
        )
        approx = executor.execute(query).scalar()
        exact = ExactExecutor(scramble).execute(query).scalar()
        # Tolerance covers the float-summation tie when the view is
        # exhausted and both sides are the same exact mean.
        slack = 1e-9 * max(1.0, abs(exact.estimate))
        assert approx.interval.lo - slack <= exact.estimate <= approx.interval.hi + slack

    def test_exact_never_more_rows_than_serfling(self):
        """The tighter COUNT bound can only help early termination."""
        from repro.bounders import get_bounder
        from repro.datasets import make_flights_scramble
        from repro.experiments import build_query
        from repro.fastframe import ApproximateExecutor

        scramble = make_flights_scramble(rows=50_000, seed=1)
        query = build_query("F-q1", epsilon=0.5)
        rows = {}
        for method in ("serfling", "exact"):
            executor = ApproximateExecutor(
                scramble,
                get_bounder("bernstein+rt"),
                delta=1e-6,
                count_method=method,
                rng=np.random.default_rng(7),
            )
            rows[method] = executor.execute(query, start_block=0).metrics.rows_read
        assert rows["exact"] <= rows["serfling"]
