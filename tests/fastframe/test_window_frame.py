"""WindowFrame: shared per-window materialization + incremental rounds.

Covers the frame's slicing/memoization contracts, the shared-gather
accounting (values gathered once per window, not once per query), and the
incremental-rounds dirty-mask machinery (skipping a clean row is
bit-identical, because the decayed-δ interval only widens).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.fastframe.executor import ApproximateExecutor, QueryRun, run_shared_scan
from repro.fastframe.predicate import Eq, TruePredicate
from repro.fastframe.query import AggregateFunction, Query
from repro.fastframe.scan import get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.fastframe.window import WindowFrame
from repro.stopping.conditions import AbsoluteAccuracy, ThresholdSide

DELTA = 1e-6
ROUND_ROWS = 3_000
START_BLOCK = 5


@pytest.fixture(scope="module")
def scramble():
    rng = np.random.default_rng(0)
    n = 20_000
    table = Table(
        continuous={"x": rng.gamma(2.0, 10.0, n), "y": rng.uniform(0.0, 5.0, n)},
        categorical={
            "g": rng.integers(0, 12, n).astype(str),
            "h": rng.integers(0, 3, n).astype(str),
        },
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(1))


def _executor(scramble, engine="pool", strategy="scan", bounder="bernstein+rt"):
    return ApproximateExecutor(
        scramble,
        get_bounder(bounder),
        strategy=get_strategy(strategy),
        delta=DELTA,
        round_rows=ROUND_ROWS,
        rng=np.random.default_rng(7),
        engine=engine,
    )


def _window(scramble, n_blocks=64, start=0):
    return np.arange(start, start + n_blocks, dtype=np.int64)


class TestFrameSlicing:
    def test_union_rows_match_rows_of_blocks(self, scramble):
        window = _window(scramble)
        mask = np.zeros(window.shape, dtype=bool)
        mask[::3] = True
        frame = WindowFrame(scramble, window, mask)
        np.testing.assert_array_equal(
            frame.rows, scramble.rows_of_blocks(window[mask])
        )
        assert frame.window_rows == scramble.count_rows_of_blocks(window)

    def test_element_selector_full_mask_is_fast_path(self, scramble):
        window = _window(scramble)
        mask = np.ones(window.shape, dtype=bool)
        frame = WindowFrame(scramble, window, mask)
        assert frame.element_selector(mask) is None

    def test_element_selector_subset_slices_exactly(self, scramble):
        window = _window(scramble)
        union = np.ones(window.shape, dtype=bool)
        union[5] = False  # union itself need not be the whole window
        frame = WindowFrame(scramble, window, union)
        sub = union.copy()
        sub[::2] = False
        sel = frame.element_selector(sub)
        np.testing.assert_array_equal(
            frame.rows[sel], scramble.rows_of_blocks(window[sub])
        )

    def test_element_selector_rejects_non_subset(self, scramble):
        window = _window(scramble)
        union = np.zeros(window.shape, dtype=bool)
        union[:10] = True
        frame = WindowFrame(scramble, window, union)
        rogue = np.zeros(window.shape, dtype=bool)
        rogue[12] = True  # wants a block the union never fetched
        with pytest.raises(ValueError, match="subset"):
            frame.element_selector(rogue)

    def test_last_short_block_rows(self, scramble):
        # The final block of the scramble may be short; slicing must not
        # invent rows past num_rows.
        last = scramble.num_blocks - 1
        window = np.array([last - 1, last], dtype=np.int64)
        union = np.ones(2, dtype=bool)
        frame = WindowFrame(scramble, window, union)
        only_last = np.array([False, True])
        sel = frame.element_selector(only_last)
        np.testing.assert_array_equal(
            frame.rows[sel], scramble.rows_of_blocks(window[only_last])
        )


class TestFrameMemoization:
    def test_values_gathered_once_per_key(self, scramble):
        window = _window(scramble)
        frame = WindowFrame(scramble, window, np.ones(window.shape, dtype=bool))
        x = scramble.table.continuous("x")
        first = frame.values(("column", "x"), lambda rows: x[rows])
        again = frame.values(("column", "x"), lambda rows: x[rows])
        assert first is again
        assert frame.values_gathered == frame.rows.size
        y = scramble.table.continuous("y")
        frame.values(("column", "y"), lambda rows: y[rows])
        assert frame.values_gathered == 2 * frame.rows.size

    def test_predicate_masks_keyed_by_identity(self, scramble):
        window = _window(scramble)
        frame = WindowFrame(scramble, window, np.ones(window.shape, dtype=bool))
        predicate = Eq("h", "1")
        assert frame.predicate_mask(predicate) is frame.predicate_mask(predicate)
        np.testing.assert_array_equal(
            frame.predicate_mask(predicate),
            predicate.mask(scramble.table, frame.rows),
        )

    def test_true_predicates_share_one_mask(self, scramble):
        window = _window(scramble)
        frame = WindowFrame(scramble, window, np.ones(window.shape, dtype=bool))
        assert frame.predicate_mask(TruePredicate()) is frame.predicate_mask(
            TruePredicate()
        )

    def test_combined_codes_memoized_per_group_by(self, scramble):
        window = _window(scramble)
        frame = WindowFrame(scramble, window, np.ones(window.shape, dtype=bool))
        calls = []

        def provider(rows):
            calls.append(len(rows))
            return np.zeros(len(rows), dtype=np.int64)

        frame.combined_codes(("g",), provider)
        frame.combined_codes(("g",), provider)
        assert calls == [frame.rows.size]


class TestSharedValueGathering:
    def _full_scan_queries(self):
        target = AbsoluteAccuracy(1e-9)  # unachievable: forces a full scan
        return [
            Query(AggregateFunction.AVG, "x", target, group_by=("g",)),
            Query(AggregateFunction.AVG, "x", target, group_by=("h",)),
        ]

    def test_shared_scan_gathers_each_column_once_per_window(self, scramble):
        queries = self._full_scan_queries()
        runs = [QueryRun(_executor(scramble), q) for q in queries]
        cursor = runs[0].executor.cursor(START_BLOCK)
        metrics = run_shared_scan(runs, cursor)
        # Both queries aggregate "x": the union frames gather it once per
        # window — num_rows elements over the full scan, not 2×.
        assert metrics.values_gathered == scramble.num_rows
        # In a shared scan the runs themselves gather nothing.
        assert all(run.metrics.values_gathered == 0 for run in runs)

    def test_solo_runs_gather_per_query(self, scramble):
        total = 0
        for query in self._full_scan_queries():
            result = _executor(scramble).execute(query, start_block=START_BLOCK)
            assert result.metrics.values_gathered == scramble.num_rows
            total += result.metrics.values_gathered
        assert total == 2 * scramble.num_rows

    def test_count_queries_gather_no_values(self, scramble):
        query = Query(
            AggregateFunction.COUNT, None, AbsoluteAccuracy(1e-9), group_by=("g",)
        )
        result = _executor(scramble).execute(query, start_block=START_BLOCK)
        assert result.metrics.values_gathered == 0

    def test_distinct_columns_gather_separately(self, scramble):
        target = AbsoluteAccuracy(1e-9)
        queries = [
            Query(AggregateFunction.AVG, "x", target, group_by=("g",)),
            Query(AggregateFunction.AVG, "y", target, group_by=("g",)),
        ]
        runs = [QueryRun(_executor(scramble), q) for q in queries]
        cursor = runs[0].executor.cursor(START_BLOCK)
        metrics = run_shared_scan(runs, cursor)
        assert metrics.values_gathered == 2 * scramble.num_rows


class TestIncrementalRounds:
    def test_scan_strategy_pool_matches_scalar_recompute_count(self, scramble):
        """Under plain Scan every settling view is dirty each round, so the
        incremental pool recomputes exactly what the scalar engine does."""
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(1e-9), group_by=("g",)
        )
        pool = _executor(scramble, engine="pool").execute(query, START_BLOCK)
        scalar = _executor(scramble, engine="scalar").execute(query, START_BLOCK)
        assert pool.metrics.bounds_recomputed > 0
        assert pool.metrics.bounds_recomputed == scalar.metrics.bounds_recomputed

    def test_active_strategy_recomputes_no_more_than_scalar(self, scramble):
        """With frozen groups the dirty mask can only shrink the recompute
        set relative to the scalar engine's active-mask rule — never grow
        it — while results stay identical (the parity suite pins them)."""
        query = Query(
            AggregateFunction.AVG,
            "x",
            ThresholdSide(21.0),
            group_by=("g",),
        )
        pool = _executor(scramble, engine="pool", strategy="activepeek").execute(
            query, START_BLOCK
        )
        scalar = _executor(scramble, engine="scalar", strategy="activepeek").execute(
            query, START_BLOCK
        )
        assert 0 < pool.metrics.bounds_recomputed <= scalar.metrics.bounds_recomputed
        assert set(pool.groups) == set(scalar.groups)
        for key, left in pool.groups.items():
            right = scalar.groups[key]
            assert left.interval.lo == pytest.approx(right.interval.lo, rel=1e-9)
            assert left.interval.hi == pytest.approx(right.interval.hi, rel=1e-9)

    def test_clean_row_recompute_is_a_fold_no_op(self, scramble):
        """The soundness basis of skipping: recomputing a row whose
        counters did not change, at the next round's smaller decayed δ,
        yields a wider interval whose running-intersection fold is a
        no-op — certified intervals are bit-identical either way."""
        executor = _executor(scramble, engine="pool")
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(1e-9), group_by=("g",)
        )
        run = QueryRun(executor, query)
        cursor = executor.cursor(START_BLOCK, window_blocks=run.window_blocks)
        for window, at_end in cursor.windows():
            run.feed(window, at_end)
            if run.round_index >= 2:
                break
        pool = run.pool
        before = {
            name: getattr(pool, name).copy()
            for name in ("iv_lo", "iv_hi", "civ_lo", "civ_hi", "run_lo",
                         "run_hi", "crun_lo", "crun_hi", "dropped")
        }
        # Force every row dirty WITHOUT changing any counter, then run the
        # next round: the fold must leave every certified interval alone.
        pool.dirty[:] = True
        executor._recompute_bounds_pool(
            query, pool, run.bounds, run.view_budget, run.round_index + 1
        )
        for name, expected in before.items():
            np.testing.assert_array_equal(getattr(pool, name), expected, err_msg=name)

    def test_dirty_rows_consumed_by_recompute(self, scramble):
        executor = _executor(scramble, engine="pool")
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(1e-9), group_by=("g",)
        )
        run = QueryRun(executor, query)
        cursor = executor.cursor(START_BLOCK, window_blocks=run.window_blocks)
        for window, at_end in cursor.windows():
            run.feed(window, at_end)
            if run.round_index >= 1:
                break
        # The round just recomputed every dirty row and cleared the mask.
        assert not run.pool.dirty.any()
        recomputed = executor._recompute_bounds_pool(
            query, run.pool, run.bounds, run.view_budget, run.round_index + 1
        )
        assert recomputed == 0  # nothing changed since the last round


class TestFramePathParity:
    def test_feed_equals_two_phase_consume(self, scramble):
        """feed() (solo driver) and select_blocks()+consume() (shared
        driver) are the same code path: identical state after a window."""
        query = Query(
            AggregateFunction.AVG, "x", AbsoluteAccuracy(1e-9), group_by=("g",)
        )
        solo = QueryRun(_executor(scramble), query)
        shared = QueryRun(_executor(scramble), query)
        window = _window(scramble, n_blocks=200)
        solo.feed(window, at_end=False)
        mask = shared.select_blocks(window)
        frame = WindowFrame(scramble, window, mask)
        shared.consume(frame, mask, at_end=False)
        assert solo.metrics.rows_read == shared.metrics.rows_read
        np.testing.assert_array_equal(solo.pool.in_view, shared.pool.in_view)
        np.testing.assert_array_equal(solo.pool.covered, shared.pool.covered)
        np.testing.assert_array_equal(
            solo.pool.sample.mean, shared.pool.sample.mean
        )
