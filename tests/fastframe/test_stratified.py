"""Tests for the offline stratified-sample baseline (§6 offline AQP)."""

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.fastframe import AggregateFunction, Eq, Query, Table
from repro.fastframe.stratified import (
    StratifiedSampleStore,
    UnsupportedQueryError,
)
from repro.stopping import SamplesTaken


def _table(rows: int = 20_000, seed: int = 0) -> Table:
    """Skewed group sizes: one dominant airline, several sparse ones."""
    rng = np.random.default_rng(seed)
    airlines = rng.choice(
        ["WN", "AA", "UA", "F9", "HA"], size=rows, p=[0.7, 0.15, 0.1, 0.04, 0.01]
    )
    base = {"WN": 8.0, "AA": 10.0, "UA": 12.0, "F9": 14.0, "HA": 4.0}
    delays = rng.normal([base[a] for a in airlines], 20.0)
    return Table(
        continuous={"DepDelay": delays}, categorical={"Airline": airlines}
    )


def _avg_query(**kwargs) -> Query:
    defaults = dict(group_by=("Airline",))
    defaults.update(kwargs)
    return Query(
        AggregateFunction.AVG, "DepDelay", SamplesTaken(1_000), **defaults
    )


class TestConstruction:
    def test_requires_group_by(self):
        with pytest.raises(ValueError, match="GROUP BY"):
            StratifiedSampleStore(_table(), (), per_stratum=100)

    def test_requires_positive_budget(self):
        with pytest.raises(ValueError, match="per_stratum"):
            StratifiedSampleStore(_table(), ("Airline",), per_stratum=0)

    def test_strata_cover_all_groups(self):
        store = StratifiedSampleStore(
            _table(), ("Airline",), per_stratum=200, rng=np.random.default_rng(0)
        )
        assert {key[0] for key in store.strata} == {"WN", "AA", "UA", "F9", "HA"}

    def test_small_strata_stored_whole(self):
        table = _table(rows=5_000)
        store = StratifiedSampleStore(
            table, ("Airline",), per_stratum=500, rng=np.random.default_rng(0)
        )
        airline = table.categorical("Airline")
        ha_size = int((airline.codes == airline.code_of("HA")).sum())
        results = store.execute_avg(
            _avg_query(), get_bounder("bernstein"), delta=1e-6
        )
        ha = results[("HA",)]
        assert ha.samples == min(ha_size, 500)
        if ha_size <= 500:
            assert ha.interval.width == 0.0  # census stratum is exact

    def test_footprint_bounded(self):
        store = StratifiedSampleStore(
            _table(), ("Airline",), per_stratum=100, rng=np.random.default_rng(0)
        )
        assert store.rows_materialized <= 5 * 100


class TestDeclaredWorkload:
    def test_intervals_enclose_truth(self):
        table = _table(seed=1)
        store = StratifiedSampleStore(
            table, ("Airline",), per_stratum=400, rng=np.random.default_rng(2)
        )
        results = store.execute_avg(
            _avg_query(), get_bounder("bernstein+rt"), delta=1e-6
        )
        values = table.continuous("DepDelay")
        airline = table.categorical("Airline")
        for key, result in results.items():
            member = airline.codes == airline.code_of(key[0])
            truth = float(values[member].mean())
            slack = 1e-9 * max(1.0, abs(truth))
            assert result.interval.lo - slack <= truth <= result.interval.hi + slack
            assert result.population == int(member.sum())

    def test_sparse_groups_equal_representation(self):
        """The stratification payoff: sparse groups get the same sample
        budget as dense ones, unlike a uniform scan prefix."""
        store = StratifiedSampleStore(
            _table(rows=100_000), ("Airline",), per_stratum=300,
            rng=np.random.default_rng(3),
        )
        results = store.execute_avg(
            _avg_query(), get_bounder("bernstein"), delta=1e-6
        )
        assert results[("HA",)].samples == 300
        assert results[("WN",)].samples == 300

    def test_no_rows_scanned_beyond_samples(self):
        """Answering touches only materialized rows — the offline win."""
        store = StratifiedSampleStore(
            _table(), ("Airline",), per_stratum=100, rng=np.random.default_rng(4)
        )
        assert store.rows_materialized == 500
        results = store.execute_avg(
            _avg_query(), get_bounder("bernstein"), delta=1e-6
        )
        assert sum(r.samples for r in results.values()) == 500


class TestWorkloadRigidity:
    """The limitation the paper's scramble escapes: anything off-workload
    is refused."""

    def test_other_grouping_refused(self):
        store = StratifiedSampleStore(
            _table(), ("Airline",), per_stratum=100, rng=np.random.default_rng(0)
        )
        with pytest.raises(UnsupportedQueryError, match="stratified on"):
            store.execute_avg(
                _avg_query(group_by=()), get_bounder("bernstein")
            )

    def test_predicate_refused(self):
        store = StratifiedSampleStore(
            _table(), ("Airline",), per_stratum=100, rng=np.random.default_rng(0)
        )
        with pytest.raises(UnsupportedQueryError, match="predicates"):
            store.execute_avg(
                _avg_query(predicate=Eq("Airline", "WN")),
                get_bounder("bernstein"),
            )

    def test_non_avg_refused(self):
        store = StratifiedSampleStore(
            _table(), ("Airline",), per_stratum=100, rng=np.random.default_rng(0)
        )
        query = Query(
            AggregateFunction.COUNT, None, SamplesTaken(100), group_by=("Airline",)
        )
        with pytest.raises(UnsupportedQueryError, match="AVG only"):
            store.execute_avg(query, get_bounder("bernstein"))

    def test_scramble_answers_what_strata_cannot(self):
        """The §6 contrast end-to-end: the ad-hoc (predicated) query the
        strata refuse is served by the scramble with full guarantees."""
        from repro.fastframe import ApproximateExecutor, Scramble

        table = _table(rows=60_000, seed=5)
        store = StratifiedSampleStore(
            table, ("Airline",), per_stratum=200, rng=np.random.default_rng(6)
        )
        adhoc = _avg_query(group_by=(), predicate=Eq("Airline", "UA"))
        with pytest.raises(UnsupportedQueryError):
            store.execute_avg(adhoc, get_bounder("bernstein+rt"))
        scramble = Scramble(table, rng=np.random.default_rng(7))
        result = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(8),
        ).execute(adhoc)
        values = table.continuous("DepDelay")
        airline = table.categorical("Airline")
        truth = float(values[airline.codes == airline.code_of("UA")].mean())
        interval = result.scalar().interval
        slack = 1e-9 * max(1.0, abs(truth))
        assert interval.lo - slack <= truth <= interval.hi + slack
