"""Tests for block bitmap indexes (§4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastframe.bitmap import BlockBitmapIndex, block_group_presence
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table


@pytest.fixture()
def scramble(rng):
    table = Table(
        continuous={"v": np.arange(1_000, dtype=float)},
        categorical={
            "g": rng.choice(["a", "b", "c", "d"], 1_000, p=[0.6, 0.25, 0.1, 0.05]),
            "h": rng.choice(["x", "y"], 1_000),
        },
    )
    return Scramble(table, block_size=10, rng=rng)


@pytest.fixture()
def index(scramble):
    return BlockBitmapIndex(scramble, "g")


class TestConstruction:
    def test_blocks_of_matches_data(self, scramble, index):
        codes = scramble.table.categorical("g").codes
        for code in range(index.cardinality):
            expected = np.unique(np.flatnonzero(codes == code) // 10)
            np.testing.assert_array_equal(index.blocks_of(code), expected)

    def test_block_count_of(self, index):
        for code in range(index.cardinality):
            assert index.block_count_of(code) == index.blocks_of(code).size

    def test_blocks_of_out_of_range(self, index):
        with pytest.raises(IndexError):
            index.blocks_of(99)


class TestProbes:
    def test_probe_agrees_with_data(self, scramble, index):
        codes = scramble.table.categorical("g").codes
        for block in range(0, scramble.num_blocks, 7):
            block_codes = set(codes[scramble.block_rows(block)].tolist())
            for code in range(index.cardinality):
                assert index.probe(block, code) == (code in block_codes)

    def test_probe_counts_charged(self, index):
        index.reset_counters()
        index.probe(0, 0)
        index.probe(1, 1)
        assert index.probe_count == 2
        assert index.batch_probe_count == 0

    def test_probe_batch_matches_scalar(self, scramble, index):
        blocks = np.arange(scramble.num_blocks)
        for code in range(index.cardinality):
            batch = index.probe_batch(blocks, code)
            scalar = np.array([index.probe(int(b), code) for b in blocks])
            np.testing.assert_array_equal(batch, scalar)

    def test_batch_probe_counts_once_per_call(self, index):
        index.reset_counters()
        index.probe_batch(np.arange(50), 0)
        assert index.batch_probe_count == 1

    def test_reset_counters(self, index):
        index.probe(0, 0)
        index.reset_counters()
        assert index.probe_count == 0


class TestGroupPresence:
    def test_single_column_group(self, scramble, index):
        indexes = {"g": index}
        blocks = np.arange(scramble.num_blocks)
        presence = block_group_presence(indexes, blocks, ("g",), (0,), batched=True)
        np.testing.assert_array_equal(presence, index.probe_batch(blocks, 0))

    def test_multi_column_conjunction_is_conservative(self, scramble, index):
        """A block lacking either attribute value is certified group-free;
        presence of both is necessary (but not sufficient) for the group."""
        h_index = BlockBitmapIndex(scramble, "h")
        indexes = {"g": index, "h": h_index}
        blocks = np.arange(scramble.num_blocks)
        presence = block_group_presence(
            indexes, blocks, ("g", "h"), (0, 1), batched=True
        )
        g_codes = scramble.table.categorical("g").codes
        h_codes = scramble.table.categorical("h").codes
        for block in blocks:
            rows = scramble.block_rows(int(block))
            truly_present = bool(np.any((g_codes[rows] == 0) & (h_codes[rows] == 1)))
            if truly_present:
                assert presence[block]  # never misses a real group row

    def test_batched_and_sync_agree(self, scramble, index):
        h_index = BlockBitmapIndex(scramble, "h")
        indexes = {"g": index, "h": h_index}
        blocks = np.arange(0, scramble.num_blocks, 3)
        batched = block_group_presence(indexes, blocks, ("g", "h"), (1, 0), batched=True)
        sync = block_group_presence(indexes, blocks, ("g", "h"), (1, 0), batched=False)
        np.testing.assert_array_equal(batched, sync)

    def test_empty_value_block_list(self, rng):
        """A value occurring in no blocks (possible after filtering) must
        probe to all-False, not crash."""
        table = Table(
            continuous={"v": np.arange(10, dtype=float)},
            categorical={"g": ["a"] * 10},
        )
        scramble = Scramble(table, block_size=5, rng=rng)
        index = BlockBitmapIndex(scramble, "g")
        assert index.cardinality == 1
        np.testing.assert_array_equal(
            index.probe_batch(np.array([0, 1]), 0), [True, True]
        )
