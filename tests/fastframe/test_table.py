"""Tests for tables, categorical encoding, and the catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastframe.catalog import Catalog, ColumnKind, RangeBounds
from repro.fastframe.table import CategoricalColumn, Table


class TestRangeBounds:
    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            RangeBounds(2.0, 1.0)

    def test_width(self):
        assert RangeBounds(-2.0, 3.0).width == 5.0

    def test_contains(self):
        bounds = RangeBounds(0.0, 10.0)
        assert bounds.contains(np.array([0.0, 5.0, 10.0]))
        assert not bounds.contains(np.array([11.0]))
        assert bounds.contains(np.array([]))


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register_continuous("x", np.array([1.0, 5.0]))
        catalog.register_categorical("c")
        assert catalog.kind("x") is ColumnKind.CONTINUOUS
        assert catalog.kind("c") is ColumnKind.CATEGORICAL
        assert catalog.bounds("x") == RangeBounds(1.0, 5.0)

    def test_pad_widens_bounds(self):
        catalog = Catalog()
        catalog.register_continuous("x", np.array([0.0, 10.0]), pad=0.1)
        assert catalog.bounds("x") == RangeBounds(-1.0, 11.0)

    def test_explicit_bounds_must_enclose(self):
        catalog = Catalog()
        with pytest.raises(ValueError, match="enclose"):
            catalog.register_continuous(
                "x", np.array([0.0, 10.0]), bounds=RangeBounds(1.0, 20.0)
            )

    def test_explicit_wider_bounds_allowed(self):
        """§2.2.1: only [a,b] ⊇ [MIN, MAX] is required, not equality."""
        catalog = Catalog()
        catalog.register_continuous(
            "x", np.array([0.0, 10.0]), bounds=RangeBounds(-100.0, 100.0)
        )
        assert catalog.bounds("x").width == 200.0

    def test_unknown_column_error_lists_known(self):
        catalog = Catalog()
        catalog.register_categorical("c")
        with pytest.raises(KeyError, match="'c'"):
            catalog.kind("missing")

    def test_bounds_of_categorical_rejected(self):
        catalog = Catalog()
        catalog.register_categorical("c")
        with pytest.raises(KeyError, match="categorical"):
            catalog.bounds("c")

    def test_column_listings(self):
        catalog = Catalog()
        catalog.register_continuous("x", np.array([0.0]))
        catalog.register_categorical("c")
        assert catalog.continuous_columns() == ("x",)
        assert catalog.categorical_columns() == ("c",)


class TestCategoricalColumn:
    def test_encode_roundtrip(self):
        column = CategoricalColumn.encode(["b", "a", "b", "c"])
        assert column.cardinality == 3
        assert column.decode(column.codes) == ["b", "a", "b", "c"]

    def test_code_of(self):
        column = CategoricalColumn.encode(["x", "y"])
        assert column.dictionary[column.code_of("y")] == "y"
        with pytest.raises(KeyError):
            column.code_of("zzz")

    def test_codes_dtype_compact(self):
        column = CategoricalColumn.encode(np.arange(10))
        assert column.codes.dtype == np.int32


class TestTable:
    def test_build_and_access(self):
        table = Table(
            continuous={"v": np.array([1.0, 2.0, 3.0])},
            categorical={"g": ["a", "b", "a"]},
        )
        assert table.num_rows == 3
        assert table.columns() == ("v", "g")
        np.testing.assert_array_equal(table.continuous("v"), [1.0, 2.0, 3.0])
        assert table.categorical("g").cardinality == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Table(
                continuous={"v": np.array([1.0, 2.0])},
                categorical={"g": ["a"]},
            )

    def test_non_finite_rejected(self):
        """§5.1: rows with N/A or erroneous values are eliminated at load."""
        with pytest.raises(ValueError, match="non-finite"):
            Table(continuous={"v": np.array([1.0, np.nan])})

    def test_unknown_column_errors(self):
        table = Table(continuous={"v": np.array([1.0])})
        with pytest.raises(KeyError):
            table.continuous("w")
        with pytest.raises(KeyError):
            table.categorical("v")

    def test_take_permutes_and_keeps_bounds(self):
        table = Table(continuous={"v": np.array([1.0, 2.0, 3.0])}, range_pad=1.0)
        original_bounds = table.catalog.bounds("v")
        taken = table.take(np.array([2, 0, 1]))
        np.testing.assert_array_equal(taken.continuous("v"), [3.0, 1.0, 2.0])
        assert taken.catalog.bounds("v") == original_bounds

    def test_take_subset_keeps_padded_bounds(self):
        """Catalog bounds survive even when the subset's min/max shrink."""
        table = Table(continuous={"v": np.arange(100.0)})
        taken = table.take(np.arange(10))
        assert taken.catalog.bounds("v") == RangeBounds(0.0, 99.0)
