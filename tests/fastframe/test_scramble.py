"""Tests for scrambles and block layout (Definition 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fastframe.scramble import DEFAULT_BLOCK_SIZE, Scramble
from repro.fastframe.table import Table


def make_table(rows: int = 103) -> Table:
    return Table(
        continuous={"v": np.arange(rows, dtype=float)},
        categorical={"g": np.arange(rows) % 3},
    )


class TestScramble:
    def test_default_block_size_matches_paper(self):
        assert DEFAULT_BLOCK_SIZE == 25

    def test_permutation_preserves_multiset(self, rng):
        table = make_table()
        scramble = Scramble(table, rng=rng)
        np.testing.assert_array_equal(
            np.sort(scramble.table.continuous("v")), table.continuous("v")
        )

    def test_rows_follow_permutation(self, rng):
        table = make_table()
        scramble = Scramble(table, rng=rng)
        np.testing.assert_array_equal(
            scramble.table.continuous("v"),
            table.continuous("v")[scramble.permutation],
        )

    def test_block_count_ceils(self, rng):
        scramble = Scramble(make_table(103), block_size=25, rng=rng)
        assert scramble.num_blocks == 5

    def test_block_rows_and_length(self, rng):
        scramble = Scramble(make_table(103), block_size=25, rng=rng)
        assert scramble.block_rows(0) == slice(0, 25)
        assert scramble.block_rows(4) == slice(100, 103)
        assert scramble.block_length(4) == 3

    def test_block_out_of_range(self, rng):
        scramble = Scramble(make_table(103), block_size=25, rng=rng)
        with pytest.raises(IndexError):
            scramble.block_rows(5)

    def test_rows_of_blocks(self, rng):
        scramble = Scramble(make_table(103), block_size=25, rng=rng)
        rows = scramble.rows_of_blocks(np.array([0, 4]))
        expected = np.concatenate([np.arange(0, 25), np.arange(100, 103)])
        np.testing.assert_array_equal(rows, expected)

    def test_rows_of_blocks_empty(self, rng):
        scramble = Scramble(make_table(), rng=rng)
        assert scramble.rows_of_blocks(np.array([], dtype=int)).size == 0

    def test_block_order_wraps(self, rng):
        scramble = Scramble(make_table(103), block_size=25, rng=rng)
        order = scramble.block_order_from(3)
        np.testing.assert_array_equal(order, [3, 4, 0, 1, 2])

    def test_block_order_covers_all_blocks_once(self, rng):
        scramble = Scramble(make_table(500), block_size=25, rng=rng)
        order = scramble.block_order_from(7)
        assert sorted(order.tolist()) == list(range(scramble.num_blocks))

    def test_rejects_empty_table(self, rng):
        with pytest.raises(ValueError):
            Scramble(Table(), rng=rng)

    def test_rejects_bad_block_size(self, rng):
        with pytest.raises(ValueError):
            Scramble(make_table(), block_size=0, rng=rng)

    def test_reproducible_with_seed(self):
        table = make_table()
        first = Scramble(table, rng=np.random.default_rng(5))
        second = Scramble(table, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(first.permutation, second.permutation)

    def test_scan_prefix_is_uniform_sample(self):
        """Definition 4's purpose: a scan prefix behaves like a
        without-replacement sample — its mean concentrates on the
        dataset mean."""
        table = make_table(50_000)
        truth = table.continuous("v").mean()
        prefix_means = []
        for seed in range(30):
            scramble = Scramble(table, rng=np.random.default_rng(seed))
            rows = scramble.rows_of_blocks(np.arange(40))  # 1000-row prefix
            prefix_means.append(scramble.table.continuous("v")[rows].mean())
        prefix_means = np.array(prefix_means)
        assert abs(prefix_means.mean() - truth) < 600  # unbiased
        assert prefix_means.std() < 1_500  # concentrates
