"""Out-of-core block storage: parity, caching, prefetch, crash safety.

The storage layer's contract is strict: routing gathers through an
mmap-backed block store must leave every query result — estimates,
certified intervals, sample counts, δ spend — byte-identical to resident
in-memory execution, at any parallelism × task_batch, because the store
serves the *same bytes* (float64/int32 round-trip exactly through the
block files).  These tests pin that contract plus the cache/prefetch
accounting and the partial-directory failure modes.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

import repro
from repro.datasets import make_flights_scramble, write_synthetic_block_store
from repro.fastframe.catalog import RangeBounds
from repro.fastframe.query import StorageCounters
from repro.fastframe.scramble import Scramble
from repro.fastframe.storage import (
    BlockCache,
    BlockStoreError,
    InMemoryStore,
    MmapBlockStore,
    attach_block_storage,
    open_block_scramble,
    open_block_store,
    resolve_cache_bytes,
    resolve_storage,
    table_from_store,
    write_block_store,
)
from repro.fastframe.table import Table
from repro.stopping import SamplesTaken

ROWS = 20_000

DASHBOARD_SQL = (
    "SELECT Airline, AVG(DepDelay) FROM flights GROUP BY Airline;"
    "SELECT Origin, AVG(DepDelay) FROM flights WHERE Airline = 'UA' "
    "GROUP BY Origin;"
    "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'"
)


def _scramble(rows: int = ROWS) -> Scramble:
    return make_flights_scramble(rows=rows, seed=3)


def _run_dashboard(scramble, *, start_block=9, **connect_kwargs):
    conn = repro.connect(
        scramble,
        delta=1e-6,
        rng=np.random.default_rng(17),
        **connect_kwargs,
    )
    handles = conn.sql(DASHBOARD_SQL, stopping=SamplesTaken(6_000))
    return conn.gather(handles, start_block=start_block)


def _assert_identical(batch_a, batch_b) -> None:
    """Every estimate, interval bound, sample count, and δ must match
    exactly — not approximately."""
    assert len(batch_a.results) == len(batch_b.results)
    for r_a, r_b in zip(batch_a.results, batch_b.results):
        assert r_a.delta == r_b.delta
        assert set(r_a.groups) == set(r_b.groups)
        for key in r_a.groups:
            g_a, g_b = r_a.groups[key], r_b.groups[key]
            assert g_a.estimate == g_b.estimate
            assert g_a.interval.lo == g_b.interval.lo
            assert g_a.interval.hi == g_b.interval.hi
            assert g_a.samples == g_b.samples


# ----------------------------------------------------------------------
# Round-trip fidelity of the block files themselves
# ----------------------------------------------------------------------


def test_block_store_round_trips_exact_bytes(tmp_path):
    scramble = _scramble(rows=5_000)
    write_block_store(tmp_path, scramble, block_rows=512)
    store = MmapBlockStore(tmp_path, cache=BlockCache(1 << 20))
    try:
        for name in store.continuous_columns():
            disk = store.continuous(name)[np.arange(store.num_rows)]
            np.testing.assert_array_equal(
                disk.view(np.uint64),
                scramble.table.continuous(name).view(np.uint64),
            )
        for name in store.categorical_columns():
            column = scramble.table.categorical(name)
            disk = store.codes(name)[np.arange(store.num_rows)]
            np.testing.assert_array_equal(disk, column.codes)
            assert store.dictionary(name) == column.dictionary
    finally:
        store.close()


def test_dictionary_sidecar_preserves_value_types(tmp_path):
    table = Table()
    table.add_continuous("x", np.arange(6, dtype=np.float64))
    table.add_categorical("mixed", [1, 2.5, "three", 1, 2.5, "three"])
    scramble = Scramble(table, block_size=2, rng=np.random.default_rng(0))
    write_block_store(tmp_path, scramble, block_rows=4)
    store = MmapBlockStore(tmp_path, cache=BlockCache(1 << 20))
    try:
        loaded = store.dictionary("mixed")
        assert loaded == scramble.table.categorical("mixed").dictionary
        assert [type(v) for v in loaded] == [
            type(v) for v in scramble.table.categorical("mixed").dictionary
        ]
    finally:
        store.close()


def test_blocked_column_matches_fancy_indexing(tmp_path):
    scramble = _scramble(rows=3_000)
    write_block_store(tmp_path, scramble, block_rows=256)
    store = MmapBlockStore(tmp_path, cache=BlockCache(1 << 20))
    try:
        rng = np.random.default_rng(5)
        resident = scramble.table.continuous("DepDelay")
        column = store.continuous("DepDelay")
        for rows in (
            rng.integers(scramble.num_rows, size=777),
            np.arange(100, 612),  # contiguous, crossing block boundaries
            np.array([], dtype=np.int64),
            np.array([scramble.num_rows - 1]),
        ):
            np.testing.assert_array_equal(column[rows], resident[rows])
        # Whole-column protocols used by predicates on the full-mode path.
        np.testing.assert_array_equal(np.asarray(column), resident)
        assert "DepDelay" in store.stats.materialized_columns
    finally:
        store.close()


# ----------------------------------------------------------------------
# Byte-identical execution parity
# ----------------------------------------------------------------------


@pytest.mark.parametrize("parallelism", [1, 2])
def test_attached_mmap_matches_memory(parallelism):
    baseline = _run_dashboard(_scramble(), storage="memory", parallelism=1)
    scramble = _scramble()
    batch = _run_dashboard(scramble, storage="mmap", parallelism=parallelism)
    assert scramble.storage is not None
    _assert_identical(baseline, batch)
    counters = batch.metrics.storage_snapshot()
    assert counters  # block I/O happened and was charged to the batch
    assert counters.bytes_read > 0


@pytest.mark.parametrize("engine", ["scalar", "pool"])
def test_engine_parity_under_mmap(engine):
    baseline = _run_dashboard(_scramble(), storage="memory", engine=engine)
    batch = _run_dashboard(_scramble(), storage="mmap", engine=engine)
    _assert_identical(baseline, batch)


def test_open_block_scramble_matches_memory(tmp_path):
    baseline = _run_dashboard(_scramble(), storage="memory")
    resident = _scramble()
    write_block_store(tmp_path, resident, block_rows=2_048)
    scramble = open_block_scramble(tmp_path)
    try:
        batch = _run_dashboard(scramble)
        _assert_identical(baseline, batch)
    finally:
        scramble.storage.close()


def test_storage_counters_identical_across_parallelism():
    """Main-process block I/O accounting is deterministic: the parallel
    driver charges exactly what the serial loop does."""
    serial = _run_dashboard(_scramble(), storage="mmap", parallelism=1)
    parallel = _run_dashboard(_scramble(), storage="mmap", parallelism=2)
    assert serial.metrics.storage_snapshot() == parallel.metrics.storage_snapshot()


# ----------------------------------------------------------------------
# Cache behaviour
# ----------------------------------------------------------------------


def test_cache_smaller_than_dataset_evicts_but_stays_exact(tmp_path):
    baseline = _run_dashboard(_scramble(), storage="memory")
    resident = _scramble()
    write_block_store(tmp_path, resident, block_rows=1_024)
    # Room for ~3 blocks of one float64 column: far below the dataset.
    scramble = open_block_scramble(tmp_path, cache_bytes=3 * 1_024 * 8)
    try:
        batch = _run_dashboard(scramble)
        _assert_identical(baseline, batch)
        assert scramble.storage.stats.cache_evictions > 0
    finally:
        scramble.storage.close()


def test_connections_share_store_and_cache(tmp_path):
    """The cross-connection amortization: a second connection over the
    same block directory hits the blocks the first already paid for."""
    resident = _scramble()
    write_block_store(tmp_path, resident, block_rows=2_048)
    scramble = open_block_scramble(tmp_path)
    try:
        store = scramble.storage
        assert open_block_store(tmp_path) is store
        _run_dashboard(scramble)
        cold_reads = store.stats.blocks_read
        cold_bytes = store.stats.bytes_read
        assert cold_bytes > 0
        # Second connection, same directory: demand hits come from cache.
        _run_dashboard(open_block_scramble(tmp_path))
        warm_bytes = store.stats.bytes_read - cold_bytes
        assert store.stats.blocks_read == cold_reads  # no new block I/O
        assert warm_bytes == 0
        assert store.stats.cache_hits > 0
    finally:
        scramble.storage.close()


def test_cache_budget_is_enforced():
    cache = BlockCache(100)
    a = np.zeros(10, dtype=np.float64)
    assert cache.put(("s", "c", 0), a, 80) == 0
    assert cache.put(("s", "c", 1), a, 80) == 1  # evicts block 0
    assert ("s", "c", 0) not in cache
    assert ("s", "c", 1) in cache
    assert cache.cached_bytes <= 100


# ----------------------------------------------------------------------
# Prefetch
# ----------------------------------------------------------------------


def test_prefetch_hits_are_deterministic_and_counted():
    """Scans long enough for >1 lookahead window mark upcoming blocks;
    demand access of a marked block counts once, on the scan thread."""
    counters = []
    for _ in range(2):
        scramble = _scramble(rows=60_000)  # >1024 blocks => several windows
        attach_block_storage(scramble, block_rows=4_096)
        try:
            _run_dashboard(scramble, start_block=2)
            counters.append(scramble.storage.stats.prefetch_hits)
        finally:
            scramble.storage.close()
            scramble.detach_storage()
    assert counters[0] > 0
    assert counters[0] == counters[1]


def test_prefetch_disabled_reads_identical_bytes(tmp_path):
    """Prefetch only warms OS pages: bytes_read/cache accounting must be
    identical with and without it."""
    resident = _scramble(rows=60_000)
    write_block_store(tmp_path, resident, block_rows=4_096)
    stats = []
    for prefetch in (True, False):
        store = MmapBlockStore(
            tmp_path, cache=BlockCache(1 << 24), prefetch=prefetch
        )
        try:
            scramble = Scramble.from_storage(store, table_from_store(store))
            _run_dashboard(scramble)
            stats.append((store.stats.blocks_read, store.stats.bytes_read))
        finally:
            store.close()
    assert stats[0] == stats[1]


# ----------------------------------------------------------------------
# Crash safety: partial directories fail loudly
# ----------------------------------------------------------------------


def _spill(tmp_path):
    scramble = _scramble(rows=4_000)
    write_block_store(tmp_path, scramble, block_rows=512)
    return scramble


def test_missing_manifest_is_rejected(tmp_path):
    _spill(tmp_path)
    os.remove(tmp_path / "MANIFEST.json")
    with pytest.raises(BlockStoreError, match="manifest"):
        MmapBlockStore(tmp_path)


def test_missing_block_file_is_rejected(tmp_path):
    _spill(tmp_path)
    os.remove(tmp_path / "DepDelay" / "block-000003.bin")
    with pytest.raises(BlockStoreError, match="partial block store"):
        MmapBlockStore(tmp_path)


def test_truncated_block_file_is_rejected(tmp_path):
    _spill(tmp_path)
    path = tmp_path / "DepDelay" / "block-000002.bin"
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 8)
    with pytest.raises(BlockStoreError, match="expected"):
        MmapBlockStore(tmp_path)


def test_missing_dictionary_sidecar_is_rejected(tmp_path):
    _spill(tmp_path)
    os.remove(tmp_path / "Airline" / "dictionary.json")
    with pytest.raises(BlockStoreError, match="dictionary"):
        MmapBlockStore(tmp_path)


def test_foreign_directory_is_rejected(tmp_path):
    (tmp_path / "MANIFEST.json").write_text(json.dumps({"kind": "parquet"}))
    with pytest.raises(BlockStoreError, match="kind"):
        MmapBlockStore(tmp_path)


# ----------------------------------------------------------------------
# Mutation and lifecycle semantics
# ----------------------------------------------------------------------


def test_insert_rows_detaches_attached_storage():
    scramble = _scramble(rows=2_000)
    attach_block_storage(scramble, block_rows=512)
    assert scramble.storage is not None
    scramble.insert_rows(
        continuous={
            name: np.zeros(3) for name in ("DepDelay", "DepTime")
        },
        categorical={
            "Airline": ["AA"] * 3,
            "Origin": ["ORD"] * 3,
            "DayOfWeek": ["Mon"] * 3,
        },
        rng=np.random.default_rng(1),
    )
    assert scramble.storage is None  # spilled bytes went stale


def test_store_owned_scramble_rejects_insert(tmp_path):
    resident = _scramble(rows=2_000)
    write_block_store(tmp_path, resident, block_rows=512)
    scramble = open_block_scramble(tmp_path)
    try:
        with pytest.raises(RuntimeError, match="block directory"):
            scramble.insert_rows(continuous={"DepDelay": np.zeros(1)})
    finally:
        scramble.storage.close()


def test_write_rejects_empty_and_unsafe_names(tmp_path):
    table = Table()
    table.add_continuous("ok", np.arange(4, dtype=np.float64))
    scramble = Scramble(table, block_size=2, rng=np.random.default_rng(0))
    scramble.table._continuous["../evil"] = np.arange(4, dtype=np.float64)
    scramble.table.catalog._kinds["../evil"] = scramble.table.catalog._kinds["ok"]
    scramble.table.catalog._bounds["../evil"] = RangeBounds(0.0, 3.0)
    with pytest.raises(BlockStoreError, match="name"):
        write_block_store(tmp_path / "bad", scramble)


# ----------------------------------------------------------------------
# Surfacing: env knobs, RoundUpdate, synthetic writer
# ----------------------------------------------------------------------


def test_resolve_storage_env(monkeypatch):
    monkeypatch.delenv("REPRO_STORAGE", raising=False)
    assert resolve_storage(None) == "memory"
    monkeypatch.setenv("REPRO_STORAGE", "mmap")
    assert resolve_storage(None) == "mmap"
    assert resolve_storage("memory") == "memory"  # explicit wins
    with pytest.raises(ValueError, match="storage"):
        resolve_storage("tape")


def test_resolve_cache_bytes_env(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_BYTES", raising=False)
    assert resolve_cache_bytes(123) == 123
    monkeypatch.setenv("REPRO_CACHE_BYTES", "4096")
    assert resolve_cache_bytes(None) == 4096
    with pytest.raises(ValueError):
        resolve_cache_bytes(0)


def test_round_updates_carry_storage_counters():
    scramble = _scramble()
    attach_block_storage(scramble, block_rows=2_048)
    try:
        conn = repro.connect(
            scramble, delta=1e-6, rng=np.random.default_rng(17)
        )
        handle = conn.sql(
            "SELECT Airline, AVG(DepDelay) FROM flights GROUP BY Airline",
            stopping=SamplesTaken(6_000),
        )
        updates = list(handle.rounds(start_block=1))
        assert updates
        assert all(isinstance(u.storage, StorageCounters) for u in updates)
        assert updates[-1].storage.bytes_read > 0
    finally:
        scramble.detach_storage()


def test_round_updates_omit_storage_in_memory():
    conn = repro.connect(
        _scramble(), delta=1e-6, rng=np.random.default_rng(17),
        storage="memory",  # pin: the suite may run under REPRO_STORAGE=mmap
    )
    handle = conn.sql(
        "SELECT Airline, AVG(DepDelay) FROM flights GROUP BY Airline",
        stopping=SamplesTaken(6_000),
    )
    updates = list(handle.rounds(start_block=1))
    assert updates
    assert all(u.storage is None for u in updates)


def test_in_memory_store_wraps_table_arrays():
    scramble = _scramble(rows=1_000)
    store = scramble.store
    assert isinstance(store, InMemoryStore)
    assert store.continuous("DepDelay") is scramble.table.continuous("DepDelay")
    assert store.num_rows == scramble.num_rows


def test_write_synthetic_block_store_round_trips(tmp_path):
    resident = write_synthetic_block_store(
        tmp_path, rows=4_000, seed=11, dataset="clustered", block_rows=512
    )
    scramble = open_block_scramble(tmp_path)
    try:
        np.testing.assert_array_equal(
            scramble.column_values("value")[np.arange(4_000)],
            resident.table.continuous("value"),
        )
        conn = repro.connect(scramble, delta=1e-6, rng=np.random.default_rng(2))
        handle = conn.sql(
            "SELECT bucket, AVG(value) FROM t GROUP BY bucket",
            stopping=SamplesTaken(2_000),
        )
        result = handle.result(start_block=0)
        assert result.groups
    finally:
        scramble.storage.close()


def test_zero_copy_gathers_do_not_materialize_value_columns(tmp_path):
    """The gather hot path must never fault whole value columns in —
    only the requested rows' blocks (the out-of-core point)."""
    resident = _scramble()
    write_block_store(tmp_path, resident, block_rows=2_048)
    scramble = open_block_scramble(tmp_path)
    try:
        _run_dashboard(scramble)
        assert "DepDelay" not in scramble.storage.stats.materialized_columns
    finally:
        scramble.storage.close()
