"""Tests for the RangeTrim meta-bounder (Algorithms 4 and 6) — §3."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.bernstein import EmpiricalBernsteinSerflingBounder
from repro.bounders.hoeffding import HoeffdingSerflingBounder
from repro.bounders.range_trim import RangeTrimBounder

value_lists = st.lists(
    st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    min_size=2,
    max_size=120,
)


@pytest.fixture(params=["bernstein", "hoeffding"])
def trimmed(request):
    inner = (
        EmpiricalBernsteinSerflingBounder()
        if request.param == "bernstein"
        else HoeffdingSerflingBounder()
    )
    return RangeTrimBounder(inner)


class TestStateSemantics:
    def test_name_suffix(self, trimmed):
        assert trimmed.name.endswith("+RT")

    def test_first_sample_only_seeds_extrema(self, trimmed):
        """Algorithm 4 lines 3-4: sample 1 initializes a', b' and is not
        fed to the inner bounders."""
        state = trimmed.init_state()
        trimmed.update(state, 42.0)
        assert state.count == 1
        assert state.extrema.min == state.extrema.max == 42.0
        assert trimmed.inner.sample_count(state.left) == 0
        assert trimmed.inner.sample_count(state.right) == 0

    def test_inner_sees_m_minus_one(self, trimmed):
        state = trimmed.init_state()
        for value in (1.0, 2.0, 3.0, 4.0):
            trimmed.update(state, value)
        assert trimmed.sample_count(state) == 4
        assert trimmed.inner.sample_count(state.left) == 3
        assert trimmed.inner.sample_count(state.right) == 3

    def test_clipping_uses_prior_extrema(self):
        """Algorithm 4 lines 7-8: value i is clipped at the extrema of
        values < i, not including itself."""
        inner = EmpiricalBernsteinSerflingBounder()
        trimmed = RangeTrimBounder(inner)
        state = trimmed.init_state()
        trimmed.update(state, 10.0)   # seeds a'=b'=10
        trimmed.update(state, 50.0)   # clipped to min(50, 10) = 10 for left
        assert state.left.mean == pytest.approx(10.0)
        assert state.right.mean == pytest.approx(50.0)  # max(50, 10)
        trimmed.update(state, 0.0)    # left: min(0, 50)=0; right: max(0, 10)=10
        assert state.left.mean == pytest.approx((10.0 + 0.0) / 2)
        assert state.right.mean == pytest.approx((50.0 + 10.0) / 2)

    def test_empty_state_trivial_bounds(self, trimmed):
        state = trimmed.init_state()
        assert trimmed.lbound(state, -1, 1, 100, 0.1) == -1
        assert trimmed.rbound(state, -1, 1, 100, 0.1) == 1

    def test_single_sample_trivial_bounds(self, trimmed):
        state = trimmed.init_state()
        trimmed.update(state, 0.3)
        assert trimmed.lbound(state, 0, 1, 100, 0.1) == 0
        assert trimmed.rbound(state, 0, 1, 100, 0.1) == 1

    @given(value_lists)
    @settings(max_examples=60, deadline=None)
    def test_property_batch_equals_sequential(self, values):
        inner = EmpiricalBernsteinSerflingBounder()
        seq = RangeTrimBounder(inner)
        seq_state = seq.init_state()
        for value in values:
            seq.update(seq_state, value)
        batch = RangeTrimBounder(inner)
        batch_state = batch.init_state()
        batch.update_batch(batch_state, np.array(values))
        assert batch_state.count == seq_state.count
        assert batch_state.extrema.min == seq_state.extrema.min
        assert batch_state.extrema.max == seq_state.extrema.max
        assert batch_state.left.mean == pytest.approx(seq_state.left.mean, abs=1e-9)
        assert batch_state.right.mean == pytest.approx(seq_state.right.mean, abs=1e-9)
        assert batch_state.left.m2 == pytest.approx(seq_state.left.m2, abs=1e-6)

    def test_batch_split_points_do_not_matter(self, rng, trimmed):
        values = rng.normal(0, 10, 500)
        one_shot = trimmed.init_state()
        trimmed.update_batch(one_shot, values)
        chunked = trimmed.init_state()
        for chunk in np.array_split(values, 13):
            trimmed.update_batch(chunked, chunk)
        assert chunked.extrema.max == one_shot.extrema.max
        assert chunked.left.mean == pytest.approx(one_shot.left.mean, rel=1e-12)


class TestPhosElimination:
    def test_lbound_independent_of_b(self, rng, trimmed):
        """Definition 3 / §3.2: the trimmed Lbound never reads b."""
        state = trimmed.init_state()
        trimmed.update_batch(state, rng.uniform(10, 20, 300))
        assert trimmed.lbound(state, 0, 100, 10_000, 0.05) == trimmed.lbound(
            state, 0, 1_000_000, 10_000, 0.05
        )

    def test_rbound_independent_of_a(self, rng, trimmed):
        state = trimmed.init_state()
        trimmed.update_batch(state, rng.uniform(10, 20, 300))
        assert trimmed.rbound(state, 0, 100, 10_000, 0.05) == trimmed.rbound(
            state, -1_000_000, 100, 10_000, 0.05
        )

    def test_tighter_than_inner_when_effective_range_small(self, rng):
        """The headline effect: when (MAX−MIN) ≪ (b−a), RangeTrim's interval
        is tighter — by up to 2×, since each trimmed side still keeps one
        catalog endpoint (§5.4.1: PHOS costs 'roughly twice as many
        samples' for bottleneck groups)."""
        inner = EmpiricalBernsteinSerflingBounder()
        trimmed = RangeTrimBounder(EmpiricalBernsteinSerflingBounder())
        values = rng.uniform(45, 55, 2_000)  # effective range 10 vs 1000
        a, b, n, delta = 0.0, 1_000.0, 1_000_000, 1e-10
        plain_state = inner.init_state()
        inner.update_batch(plain_state, values)
        trim_state = trimmed.init_state()
        trimmed.update_batch(trim_state, values)
        half = delta / 2.0
        plain_width = inner.rbound(plain_state, a, b, n, half) - inner.lbound(
            plain_state, a, b, n, half
        )
        trim_width = trimmed.rbound(trim_state, a, b, n, half) - trimmed.lbound(
            trim_state, a, b, n, half
        )
        assert trim_width < plain_width / 1.5
        # The trimmed lower bound (range [a, max S]) improves most here.
        assert trimmed.lbound(trim_state, a, b, n, half) > inner.lbound(
            plain_state, a, b, n, half
        )

    def test_never_much_worse_than_inner(self, rng):
        """Worst case (data spanning the full range): RangeTrim costs only
        the one withheld sample and the δ bookkeeping — 'without ever
        hurting performance in the worst case' (§7)."""
        inner = HoeffdingSerflingBounder()
        trimmed = RangeTrimBounder(HoeffdingSerflingBounder())
        values = rng.choice([0.0, 1.0], 2_000)
        plain_state = inner.init_state()
        inner.update_batch(plain_state, values)
        trim_state = trimmed.init_state()
        trimmed.update_batch(trim_state, values)
        plain_ci = inner.confidence_interval(plain_state, 0, 1, 100_000, 0.05)
        trim_ci = trimmed.confidence_interval(trim_state, 0, 1, 100_000, 0.05)
        assert trim_ci.width <= plain_ci.width * 1.01


class TestCorrectness:
    def test_bounds_bracket_dataset_mean_typical(self, rng, trimmed):
        data = rng.lognormal(0, 1, 50_000).clip(0, 50)
        sample = rng.choice(data, 3_000, replace=False)
        state = trimmed.init_state()
        trimmed.update_batch(state, sample)
        ci = trimmed.confidence_interval(state, 0, 50, data.size, 0.05)
        assert ci.lo <= data.mean() <= ci.hi

    def test_estimate_close_to_sample_mean(self, rng, trimmed):
        values = rng.normal(5, 2, 1_000)
        state = trimmed.init_state()
        trimmed.update_batch(state, values)
        assert trimmed.estimate(state) == pytest.approx(values.mean(), abs=0.5)

    def test_estimate_raises_on_empty(self, trimmed):
        with pytest.raises(ValueError):
            trimmed.estimate(trimmed.init_state())

    def test_dataset_size_monotonicity(self, rng, trimmed):
        state = trimmed.init_state()
        trimmed.update_batch(state, rng.uniform(0, 1, 200))
        lb = [trimmed.lbound(state, 0, 1, n, 0.05) for n in (400, 4_000, 400_000)]
        rb = [trimmed.rbound(state, 0, 1, n, 0.05) for n in (400, 4_000, 400_000)]
        assert lb[0] >= lb[1] >= lb[2]
        assert rb[0] <= rb[1] <= rb[2]

    def test_composes_with_any_range_based_bounder(self):
        """§3.2: RangeTrim wraps *any* range-based bounder, including
        already-wrapped ones (double wrapping is valid, if pointless)."""
        double = RangeTrimBounder(RangeTrimBounder(HoeffdingSerflingBounder()))
        state = double.init_state()
        double.update_batch(state, np.linspace(0, 1, 50))
        ci = double.confidence_interval(state, 0, 1, 1_000, 0.1)
        assert 0.0 <= ci.lo <= ci.hi <= 1.0
