"""Tests for the bounder interface primitives (Interval, validation)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.base import Interval, validate_bound_args


class TestInterval:
    def test_width_and_midpoint(self):
        interval = Interval(2.0, 6.0)
        assert interval.width == 4.0
        assert interval.midpoint == 4.0

    def test_contains(self):
        interval = Interval(-1.0, 1.0)
        assert 0.0 in interval
        assert -1.0 in interval
        assert 1.0 in interval
        assert 1.5 not in interval

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert Interval(0, 2).intersects(Interval(2, 3))  # touching counts
        assert not Interval(0, 1).intersects(Interval(2, 3))
        assert Interval(0, 10).intersects(Interval(4, 5))  # containment

    def test_intersects_symmetric(self):
        a, b = Interval(0, 2), Interval(1, 3)
        assert a.intersects(b) == b.intersects(a)

    def test_relative_error_positive_interval(self):
        interval = Interval(8.0, 12.0)
        expected = max((12 - 10) / 12, (10 - 8) / 8)
        assert interval.relative_error() == pytest.approx(expected)

    def test_relative_error_straddles_zero(self):
        assert Interval(-1.0, 1.0).relative_error() == math.inf
        assert Interval(0.0, 1.0).relative_error() == math.inf

    def test_relative_error_negative_interval(self):
        interval = Interval(-12.0, -8.0)
        assert math.isfinite(interval.relative_error())

    @given(
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(0.0, 1e6, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_midpoint_inside(self, lo, width):
        interval = Interval(lo, lo + width)
        assert interval.lo <= interval.midpoint <= interval.hi


class TestValidateBoundArgs:
    def test_accepts_valid(self):
        validate_bound_args(0.0, 1.0, 100, 0.05)

    def test_accepts_degenerate_range(self):
        validate_bound_args(1.0, 1.0, 1, 0.5)

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError, match="a <= b"):
            validate_bound_args(1.0, 0.0, 100, 0.05)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError, match="N"):
            validate_bound_args(0.0, 1.0, 0, 0.05)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.1, 1.1])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ValueError, match="delta"):
            validate_bound_args(0.0, 1.0, 100, delta)
