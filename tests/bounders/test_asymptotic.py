"""Tests for the asymptotic (non-SSI) bounders: CLT, Student-t, bootstrap."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.asymptotic import (
    BootstrapBounder,
    CLTBounder,
    StudentTBounder,
    clt_epsilon,
)
from repro.bounders.registry import get_bounder


def _fill(bounder, values):
    state = bounder.init_state()
    bounder.update_batch(state, np.asarray(values, dtype=np.float64))
    return state


class TestCLTEpsilon:
    def test_shrinks_with_sample_size(self):
        eps_small = clt_epsilon(10, 10_000, 1.0, 0.05)
        eps_large = clt_epsilon(1_000, 10_000, 1.0, 0.05)
        assert eps_large < eps_small

    def test_census_has_zero_width(self):
        assert clt_epsilon(500, 500, 1.0, 0.05) == 0.0

    def test_fpc_tightens_bound(self):
        with_fpc = clt_epsilon(400, 500, 1.0, 0.05, finite_population=True)
        without = clt_epsilon(400, 500, 1.0, 0.05, finite_population=False)
        assert with_fpc < without

    def test_empty_sample_is_infinite(self):
        assert math.isinf(clt_epsilon(0, 100, 1.0, 0.05))

    def test_smaller_delta_is_wider(self):
        assert clt_epsilon(50, 1_000, 1.0, 1e-6) > clt_epsilon(50, 1_000, 1.0, 0.05)


class TestCLTBounder:
    def test_flags_non_ssi(self):
        assert CLTBounder.ssi is False
        assert not get_bounder("clt").ssi

    def test_interval_centred_on_mean(self):
        bounder = CLTBounder()
        state = _fill(bounder, [1.0, 2.0, 3.0, 4.0])
        lo = bounder.lbound(state, 0.0, 10.0, 1_000, 0.05)
        hi = bounder.rbound(state, 0.0, 10.0, 1_000, 0.05)
        assert lo < 2.5 < hi
        assert math.isclose(hi - 2.5, 2.5 - lo, rel_tol=1e-12)

    def test_empty_state_gives_trivial_bounds(self):
        bounder = CLTBounder()
        state = bounder.init_state()
        assert bounder.lbound(state, -1.0, 2.0, 100, 0.05) == -1.0
        assert bounder.rbound(state, -1.0, 2.0, 100, 0.05) == 2.0

    def test_tighter_than_hoeffding(self):
        """The whole point of asymptotics: narrow intervals on benign data."""
        rng = np.random.default_rng(0)
        values = rng.normal(50.0, 1.0, size=200)
        clt = CLTBounder()
        hoeffding = get_bounder("hoeffding")
        clt_ci = clt.confidence_interval(_fill(clt, values), 0.0, 100.0, 10_000, 0.05)
        hoef_ci = hoeffding.confidence_interval(
            _fill(hoeffding, values), 0.0, 100.0, 10_000, 0.05
        )
        assert clt_ci.width < hoef_ci.width / 5.0

    def test_zero_variance_collapses(self):
        bounder = CLTBounder()
        state = _fill(bounder, [3.0] * 50)
        ci = bounder.confidence_interval(state, 0.0, 10.0, 1_000, 0.05)
        assert ci.width == pytest.approx(0.0, abs=1e-12)

    def test_validates_arguments(self):
        bounder = CLTBounder()
        state = _fill(bounder, [1.0, 2.0])
        with pytest.raises(ValueError):
            bounder.lbound(state, 5.0, 1.0, 100, 0.05)
        with pytest.raises(ValueError):
            bounder.lbound(state, 0.0, 1.0, 100, 1.5)


class TestStudentT:
    def test_wider_than_clt_at_small_m(self):
        values = [1.0, 4.0, 2.0, 8.0, 3.0]
        clt, t = CLTBounder(), StudentTBounder()
        ci_clt = clt.confidence_interval(_fill(clt, values), 0.0, 10.0, 10_000, 0.05)
        ci_t = t.confidence_interval(_fill(t, values), 0.0, 10.0, 10_000, 0.05)
        assert ci_t.width > ci_clt.width

    def test_single_sample_is_trivial(self):
        bounder = StudentTBounder()
        state = _fill(bounder, [3.0])
        ci = bounder.confidence_interval(state, 0.0, 10.0, 100, 0.05)
        assert ci.lo == 0.0 and ci.hi == 10.0

    def test_converges_to_clt_for_large_m(self):
        rng = np.random.default_rng(1)
        values = rng.normal(5.0, 2.0, size=5_000)
        clt, t = CLTBounder(), StudentTBounder()
        ci_clt = clt.confidence_interval(
            _fill(clt, values), 0.0, 20.0, 1_000_000, 0.05
        )
        ci_t = t.confidence_interval(_fill(t, values), 0.0, 20.0, 1_000_000, 0.05)
        assert ci_t.width == pytest.approx(ci_clt.width, rel=0.01)


class TestBootstrap:
    def test_flags(self):
        assert BootstrapBounder.ssi is False
        assert BootstrapBounder.requires_sample_memory is True

    def test_deterministic_given_state(self):
        bounder = BootstrapBounder(num_resamples=100, seed=7)
        values = np.random.default_rng(2).normal(size=60)
        s1, s2 = _fill(bounder, values), _fill(bounder, values)
        assert bounder.lbound(s1, -5, 5, 1_000, 0.05) == bounder.lbound(
            s2, -5, 5, 1_000, 0.05
        )

    def test_interval_encloses_sample_mean(self):
        bounder = BootstrapBounder(num_resamples=500)
        values = np.random.default_rng(3).exponential(size=80)
        state = _fill(bounder, values)
        ci = bounder.confidence_interval(state, 0.0, 50.0, 10_000, 0.05)
        assert ci.lo <= float(values.mean()) <= ci.hi

    def test_tiny_delta_uses_normal_tail(self):
        """δ below 1/B must widen the interval, not saturate at the extreme
        resample percentile."""
        bounder = BootstrapBounder(num_resamples=100)
        values = np.random.default_rng(4).normal(size=50)
        state = _fill(bounder, values)
        moderate = bounder.confidence_interval(state, -10, 10, 1_000, 0.05)
        extreme = bounder.confidence_interval(state, -10, 10, 1_000, 1e-12)
        assert extreme.width > moderate.width * 2

    def test_rejects_degenerate_resamples(self):
        with pytest.raises(ValueError):
            BootstrapBounder(num_resamples=1)

    def test_empty_state_gives_trivial_bounds(self):
        bounder = BootstrapBounder()
        state = bounder.init_state()
        ci = bounder.confidence_interval(state, 0.0, 1.0, 100, 0.05)
        assert (ci.lo, ci.hi) == (0.0, 1.0)


class TestAsymptoticProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=60),
        st.sampled_from([0.2, 0.05, 0.005]),
    )
    @settings(max_examples=60, deadline=None)
    def test_clt_lbound_below_rbound(self, values, delta):
        bounder = CLTBounder()
        state = _fill(bounder, values)
        lo = bounder.lbound(state, 0.0, 100.0, 10_000, delta)
        hi = bounder.rbound(state, 0.0, 100.0, 10_000, delta)
        assert lo <= hi

    @given(st.integers(min_value=2, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_clt_width_monotone_in_m(self, m):
        """For fixed σ̂ the CLT width strictly shrinks as m grows."""
        assert clt_epsilon(m + 1, 10**9, 1.0, 0.05) < clt_epsilon(m, 10**9, 1.0, 0.05)
