"""QuantileBounder: scalar/pool parity, delta protocol, and soundness.

The order-statistics family reuses Anderson's CSR sample pool, so the
pool tests pin the batched rank kernel (one row-wise sort per equal-count
group) against the scalar order-statistic selection — exact equality, not
1e-9: both paths pick elements of the same multiset.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest

from repro.bounders.quantile import QuantileBounder
from repro.cdfbounds.quantile import empirical_quantile, quantile_rank

from tests.support import bounder_pool_bytes as _pool_bytes

A, B = -10.0, 200.0
DELTA = 1e-5


def _filled_pair(p, sizes, seed=0):
    """A pool and matching scalar states fed the same per-view streams."""
    rng = np.random.default_rng(seed)
    bounder = QuantileBounder(p)
    pool = bounder.init_pool(len(sizes))
    states = [bounder.init_state() for _ in sizes]
    for _ in range(4):
        indices, values = [], []
        for slot, size in enumerate(sizes):
            count = int(rng.integers(0, max(size, 1)))
            chunk = rng.uniform(A + 1.0, B - 50.0, count)
            bounder.update_batch(states[slot], chunk)
            indices.extend([slot] * count)
            values.extend(chunk)
        if indices:
            bounder.update_pool(
                pool, np.array(indices, dtype=np.int64), np.array(values)
            )
    return bounder, pool, states


class TestValidation:
    def test_rejects_bad_p(self):
        for p in (0.0, 1.0, -0.1, 2.0):
            with pytest.raises(ValueError):
                QuantileBounder(p)

    def test_name_carries_level(self):
        assert QuantileBounder(0.95).name == "Quantile(0.95)"


class TestScalar:
    def test_empty_state_trivial_bounds(self):
        bounder = QuantileBounder(0.5)
        state = bounder.init_state()
        assert bounder.lbound(state, A, B, 100, DELTA) == A
        assert bounder.rbound(state, A, B, 100, DELTA) == B
        with pytest.raises(ValueError):
            bounder.estimate(state)

    def test_estimate_is_empirical_quantile(self):
        rng = np.random.default_rng(1)
        values = rng.normal(20, 5, 333)
        for p in (0.25, 0.5, 0.9):
            bounder = QuantileBounder(p)
            state = bounder.init_state()
            bounder.update_batch(state, values)
            assert bounder.estimate(state) == empirical_quantile(values, p)

    def test_bounds_bracket_estimate(self):
        rng = np.random.default_rng(2)
        values = rng.gamma(2.0, 10.0, 800)
        bounder = QuantileBounder(0.5)
        state = bounder.init_state()
        bounder.update_batch(state, values)
        lo = bounder.lbound(state, A, B, 5_000, DELTA / 2)
        hi = bounder.rbound(state, A, B, 5_000, DELTA / 2)
        assert lo <= bounder.estimate(state) <= hi

    def test_exact_at_exhaustion(self):
        """m == n collapses to the exact population quantile even at
        vanishing δ (the clamp is deterministic, no δ spent)."""
        rng = np.random.default_rng(3)
        values = rng.normal(0, 1, 457)
        bounder = QuantileBounder(0.75)
        state = bounder.init_state()
        bounder.update_batch(state, values)
        interval = bounder.confidence_interval(state, -10.0, 10.0, 457, 1e-15)
        exact = empirical_quantile(values, 0.75)
        assert interval.lo == interval.hi == exact

    def test_coverage_without_replacement(self):
        rng = np.random.default_rng(4)
        n, m, trials, delta = 4_000, 300, 200, 0.1
        population = rng.lognormal(2.0, 0.7, n)
        truth = np.sort(population)[quantile_rank(0.5, n) - 1]
        bounder = QuantileBounder(0.5)
        hits = 0
        for _ in range(trials):
            state = bounder.init_state()
            bounder.update_batch(
                state, rng.choice(population, size=m, replace=False)
            )
            interval = bounder.confidence_interval(state, 0.0, 1e4, n, delta)
            hits += int(interval.lo <= truth <= interval.hi)
        coverage = hits / trials
        assert coverage >= 1.0 - delta - 4.0 * math.sqrt(
            delta * (1 - delta) / trials
        )


class TestPoolParity:
    """The grouped pool kernel must equal the scalar reference exactly."""

    def test_bounds_and_estimates_match_scalar(self):
        sizes = [0, 1, 7, 7, 120, 120, 120, 33]
        for p in (0.1, 0.5, 0.95):
            bounder, pool, states = _filled_pair(p, sizes, seed=int(p * 100))
            n_rows = np.full(len(sizes), 2_000, dtype=np.int64)
            lo = bounder.lbound_batch(pool, A, B, n_rows, DELTA)
            hi = bounder.rbound_batch(pool, A, B, n_rows, DELTA)
            for slot, state in enumerate(states):
                assert lo[slot] == bounder.lbound(state, A, B, 2_000, DELTA)
                assert hi[slot] == bounder.rbound(state, A, B, 2_000, DELTA)
                if state.count:
                    est = bounder.estimate_batch(pool, indices=np.array([slot]))
                    assert est[0] == bounder.estimate(state)

    def test_confidence_interval_batch_splits_delta(self):
        sizes = [50, 50, 9]
        bounder, pool, states = _filled_pair(0.5, sizes, seed=9)
        n_rows = np.array([400, 900, 60], dtype=np.int64)
        lo, hi = bounder.confidence_interval_batch(pool, A, B, n_rows, DELTA)
        for slot, state in enumerate(states):
            interval = bounder.confidence_interval(
                state, A, B, int(n_rows[slot]), DELTA
            )
            assert lo[slot] == interval.lo
            assert hi[slot] == interval.hi

    def test_per_slot_population_bounds(self):
        """Each slot's deterministic clamp uses its own N⁺."""
        bounder, pool, states = _filled_pair(0.5, [64, 64], seed=11)
        m = states[0].count
        lo, hi = bounder.confidence_interval_batch(
            pool, A, B, np.array([m, m * 50], dtype=np.int64), DELTA,
            indices=np.array([0, 1]),
        )
        # Slot 0 is exhausted (m == N⁺): exact point answer.
        assert lo[0] == hi[0] == bounder.estimate(states[0])
        assert hi[1] > lo[1]

    def test_empty_slots_fall_back_to_support(self):
        bounder = QuantileBounder(0.5)
        pool = bounder.init_pool(2)
        lo, hi = bounder.confidence_interval_batch(
            pool, A, B, np.array([10, 10], dtype=np.int64), DELTA
        )
        assert list(lo) == [A, A]
        assert list(hi) == [B, B]
        assert list(bounder.estimate_batch(pool, fill=-1.0)) == [-1.0, -1.0]


class TestDeltaProtocol:
    def test_partition_merge_matches_update_pool(self):
        rng = np.random.default_rng(13)
        bounder = QuantileBounder(0.5)
        size = 6
        via_update = bounder.init_pool(size)
        via_delta = bounder.init_pool(size)
        for _ in range(5):
            count = int(rng.integers(1, 400))
            indices = np.sort(rng.integers(0, size, count)).astype(np.int64)
            values = rng.uniform(A + 1.0, B - 20.0, count)
            bounder.update_pool(via_update, indices, values)
            delta = bounder.partition_delta(
                indices, values, size, bounder.delta_context(via_delta)
            )
            bounder.merge_delta(via_delta, delta)
            assert _pool_bytes(via_update) == _pool_bytes(via_delta)

    def test_supports_delta_and_picklable(self):
        bounder = QuantileBounder(0.9)
        assert bounder.supports_delta
        clone = pickle.loads(pickle.dumps(bounder))
        assert clone.p == bounder.p
        delta = bounder.partition_delta(
            np.array([0, 0, 2], dtype=np.int64),
            np.array([1.0, 2.0, 3.0]),
            4,
            None,
        )
        wire = pickle.loads(pickle.dumps(delta))
        pool = bounder.init_pool(4)
        bounder.merge_delta(pool, wire)
        assert list(pool.count) == [2, 0, 1, 0]
