"""Tests for the (empirical) Bernstein-Serfling bounders (Algorithm 2)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.bernstein import (
    KAPPA_EMPIRICAL,
    BernsteinSerflingBounder,
    EmpiricalBernsteinSerflingBounder,
    _serfling_rho,
    bernstein_serfling_epsilon,
    empirical_bernstein_serfling_epsilon,
)
from repro.bounders.hoeffding import hoeffding_serfling_epsilon


class TestSerflingRho:
    def test_small_sample_regime(self):
        """m <= N/2: ρ = 1 − (m−1)/N (Algorithm 2 line 10)."""
        assert _serfling_rho(100, 1_000) == pytest.approx(1 - 99 / 1_000)

    def test_large_sample_regime(self):
        """m > N/2: ρ = (1 − m/N)(1 + 1/m) (Algorithm 2 line 11)."""
        assert _serfling_rho(800, 1_000) == pytest.approx((1 - 0.8) * (1 + 1 / 800))

    def test_continuous_at_boundary(self):
        below = _serfling_rho(500, 1_000)
        above = _serfling_rho(501, 1_000)
        assert abs(below - above) < 0.01

    def test_full_sample_rho_is_zero(self):
        """Sampling the entire dataset: (1 − m/N) = 0 kills the σ term."""
        assert _serfling_rho(1_000, 1_000) == 0.0

    def test_never_negative(self):
        for m in (1, 10, 500, 999, 1000):
            assert _serfling_rho(m, 1_000) >= 0.0


class TestEpsilonFormulas:
    def test_matches_algorithm2_line12(self):
        """ε = σ̂·sqrt(2ρ·log(5/δ)/m) + κ·(b−a)·log(5/δ)/m."""
        m, n, sigma, a, b, delta = 400, 100_000, 2.5, 0.0, 10.0, 0.01
        rho = 1 - (m - 1) / n
        log_term = math.log(5 / delta)
        expected = sigma * math.sqrt(2 * rho * log_term / m) + KAPPA_EMPIRICAL * (
            b - a
        ) * log_term / m
        assert empirical_bernstein_serfling_epsilon(
            m, n, sigma, a, b, delta
        ) == pytest.approx(expected)

    def test_kappa_constant(self):
        assert KAPPA_EMPIRICAL == pytest.approx(7 / 3 + 3 / math.sqrt(2))

    def test_zero_variance_leaves_range_term(self):
        """With σ̂ = 0, only the O((b−a)/m) term remains — the reason
        Bernstein escapes PMA's Θ((b−a)/√m) floor."""
        eps = empirical_bernstein_serfling_epsilon(1_000, 1e9, 0.0, 0, 1, 0.01)
        assert eps == pytest.approx(KAPPA_EMPIRICAL * math.log(5 / 0.01) / 1_000)

    def test_beats_hoeffding_when_variance_small(self):
        """The paper's headline comparison: σ ≪ (b−a) ⇒ Bernstein ≪ Hoeffding.

        The gap grows with m: Bernstein's range term decays as 1/m against
        Hoeffding's 1/√m."""
        n = 10_000_000
        bern = empirical_bernstein_serfling_epsilon(100_000, n, 0.01, 0, 1, 1e-10)
        hoef = hoeffding_serfling_epsilon(100_000, n, 0, 1, 1e-10)
        assert bern < hoef / 5
        # And the ratio widens with m.
        bern_small = empirical_bernstein_serfling_epsilon(1_000, n, 0.01, 0, 1, 1e-10)
        hoef_small = hoeffding_serfling_epsilon(1_000, n, 0, 1, 1e-10)
        assert hoef / bern > hoef_small / bern_small

    def test_loses_to_hoeffding_at_worst_case_variance(self):
        """Two-point data (σ = (b−a)/2): Bernstein's constants are worse."""
        m, n = 1_000, 1_000_000
        bern = empirical_bernstein_serfling_epsilon(m, n, 0.5, 0, 1, 0.05)
        hoef = hoeffding_serfling_epsilon(m, n, 0, 1, 0.05)
        assert bern > hoef

    def test_trivial_for_empty_sample(self):
        assert empirical_bernstein_serfling_epsilon(0, 100, 1.0, 0.0, 2.0, 0.05) == 2.0

    def test_known_variance_variant_tighter_constants(self):
        known = bernstein_serfling_epsilon(500, 100_000, 1.0, 0, 10, 0.01)
        empirical = empirical_bernstein_serfling_epsilon(500, 100_000, 1.0, 0, 10, 0.01)
        assert known < empirical

    @given(
        st.integers(1, 10_000),
        st.floats(0.0, 5.0),
        st.floats(1e-15, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_monotone_in_sigma(self, m, sigma, delta):
        n = 1_000_000
        eps_lo = empirical_bernstein_serfling_epsilon(m, n, sigma, 0, 1, delta)
        eps_hi = empirical_bernstein_serfling_epsilon(m, n, sigma + 1.0, 0, 1, delta)
        assert eps_hi >= eps_lo


class TestEmpiricalBernsteinBounder:
    def setup_method(self):
        self.bounder = EmpiricalBernsteinSerflingBounder()

    def test_empty_state_trivial(self):
        state = self.bounder.init_state()
        assert self.bounder.lbound(state, -2, 3, 10, 0.1) == -2
        assert self.bounder.rbound(state, -2, 3, 10, 0.1) == 3

    def test_bounds_bracket_sample_mean(self, rng):
        state = self.bounder.init_state()
        values = rng.normal(5, 0.5, 400).clip(0, 10)
        self.bounder.update_batch(state, values)
        lo = self.bounder.lbound(state, 0, 10, 1_000_000, 0.05)
        hi = self.bounder.rbound(state, 0, 10, 1_000_000, 0.05)
        assert lo <= values.mean() <= hi

    def test_no_pma_width_shrinks_with_extremes(self, rng):
        """§2.3.3: raising the smallest sample values shrinks the CI."""
        base = rng.uniform(0.0, 0.25, 400)
        state = self.bounder.init_state()
        self.bounder.update_batch(state, base)
        clipped_state = self.bounder.init_state()
        self.bounder.update_batch(clipped_state, np.maximum(base, 0.25))
        wide = self.bounder.confidence_interval(state, 0, 1, 100_000, 0.05)
        narrow = self.bounder.confidence_interval(clipped_state, 0, 1, 100_000, 0.05)
        assert narrow.width < wide.width

    def test_has_phos_lbound_depends_on_b(self, rng):
        """§2.3.3: both CI ends depend on both range bounds."""
        state = self.bounder.init_state()
        self.bounder.update_batch(state, rng.uniform(0.4, 0.6, 200))
        lo_narrow = self.bounder.lbound(state, 0, 1, 100_000, 0.05)
        lo_wide = self.bounder.lbound(state, 0, 100, 100_000, 0.05)
        assert lo_wide < lo_narrow

    def test_dataset_size_monotonicity(self, rng):
        state = self.bounder.init_state()
        self.bounder.update_batch(state, rng.uniform(0, 1, 150))
        lb = [self.bounder.lbound(state, 0, 1, n, 0.05) for n in (300, 3_000, 300_000)]
        rb = [self.bounder.rbound(state, 0, 1, n, 0.05) for n in (300, 3_000, 300_000)]
        assert lb[0] >= lb[1] >= lb[2]
        assert rb[0] <= rb[1] <= rb[2]

    def test_symmetric_error_form(self, rng):
        state = self.bounder.init_state()
        values = rng.uniform(0.3, 0.5, 300)
        self.bounder.update_batch(state, values)
        lo = self.bounder.lbound(state, 0, 1, 100_000, 0.05)
        hi = self.bounder.rbound(state, 0, 1, 100_000, 0.05)
        mean = values.mean()
        assert hi - mean == pytest.approx(mean - lo, rel=1e-9)

    def test_batch_equals_sequential(self, rng):
        values = rng.lognormal(0, 1, 333)
        seq_state = self.bounder.init_state()
        for value in values:
            self.bounder.update(seq_state, float(value))
        batch_state = self.bounder.init_state()
        self.bounder.update_batch(batch_state, values)
        n, delta = 10_000, 0.01
        assert self.bounder.lbound(batch_state, 0, 100, n, delta) == pytest.approx(
            self.bounder.lbound(seq_state, 0, 100, n, delta), rel=1e-9
        )


class TestKnownVarianceBounder:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            BernsteinSerflingBounder(sigma=-1.0)

    def test_oracle_close_to_empirical_at_large_m(self, rng):
        data = rng.normal(0.5, 0.1, 200_000).clip(0, 1)
        sigma = float(data.std())
        oracle = BernsteinSerflingBounder(sigma=sigma)
        empirical = EmpiricalBernsteinSerflingBounder()
        sample = data[:20_000]
        o_state = oracle.init_state()
        oracle.update_batch(o_state, sample)
        e_state = empirical.init_state()
        empirical.update_batch(e_state, sample)
        o_ci = oracle.confidence_interval(o_state, 0, 1, data.size, 1e-10)
        e_ci = empirical.confidence_interval(e_state, 0, 1, data.size, 1e-10)
        # The empirical variant pays only a modest constant-factor premium.
        assert e_ci.width < 3 * o_ci.width
        assert o_ci.width < e_ci.width
