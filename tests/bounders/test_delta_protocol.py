"""The mergeable-delta protocol: partition→merge must equal update_pool.

The contract that makes worker-side bounder kernels sound: for every
delta-capable family, ``merge_delta(pool, partition_delta(idx, vals,
size, ctx))`` must execute the same float program as ``update_pool(pool,
idx, vals)`` — byte-identical pool state, not merely close — because the
parallel driver interleaves both paths (workers ship native deltas for
large windows, small windows partition inline) and the determinism suite
demands bit-equality at any parallelism.  Also pins the CSR sample pool
(Anderson's struct-of-arrays rewrite) against the scalar per-view
buffers.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.bounders.anderson import AndersonBounder, CSRSamplePool
from repro.bounders.registry import get_bounder, native_delta_bounders

from tests.support import bounder_pool_bytes as _pool_bytes

A, B = -5.0, 120.0
DELTA = 1e-7

NATIVE = sorted(native_delta_bounders())


def _stream(rng, size, num_batches=5, max_batch=400):
    """Sorted-index batches with ties in stream order, incl. seed edge cases."""
    for batch in range(num_batches):
        count = int(rng.integers(1, max_batch))
        indices = np.sort(rng.integers(0, size, count)).astype(np.int64)
        values = rng.uniform(A + 1.0, B - 20.0, count)
        yield indices, values


@pytest.mark.parametrize("name", NATIVE)
def test_partition_merge_matches_update_pool(name):
    """Byte-identical pool evolution through either protocol entry."""
    size = 6
    rng = np.random.default_rng(sum(map(ord, name)))
    batches = list(_stream(rng, size))
    bounder = get_bounder(name)
    via_update = bounder.init_pool(size)
    via_delta = bounder.init_pool(size)
    for indices, values in batches:
        bounder.update_pool(via_update, indices, values)
        delta = bounder.partition_delta(
            indices, values, size, bounder.delta_context(via_delta)
        )
        bounder.merge_delta(via_delta, delta)
        assert _pool_bytes(via_update) == _pool_bytes(via_delta), name


@pytest.mark.parametrize("name", NATIVE)
def test_delta_is_picklable_and_pure(name):
    """Deltas cross process boundaries; partitioning must not mutate the
    pool, so a pickled round-trip delta must merge identically."""
    size = 4
    rng = np.random.default_rng(sum(map(ord, name)) + 1)
    bounder = get_bounder(name)
    pool = bounder.init_pool(size)
    reference = bounder.init_pool(size)
    for indices, values in _stream(rng, size, num_batches=3):
        before = _pool_bytes(pool)
        delta = bounder.partition_delta(
            indices, values, size, bounder.delta_context(pool)
        )
        assert _pool_bytes(pool) == before, "partition_delta mutated the pool"
        assert delta.nbytes > 0
        revived = pickle.loads(pickle.dumps(delta))
        bounder.merge_delta(pool, revived)
        bounder.update_pool(reference, indices, values)
    assert _pool_bytes(pool) == _pool_bytes(reference)


@pytest.mark.parametrize("name", NATIVE)
def test_empty_partition_is_a_noop(name):
    size = 3
    bounder = get_bounder(name)
    pool = bounder.init_pool(size)
    bounder.update_pool(pool, np.array([0, 1, 1]), np.array([1.0, 2.0, 3.0]))
    before = _pool_bytes(pool)
    empty = np.zeros(0, dtype=np.int64)
    delta = bounder.partition_delta(
        empty, np.zeros(0), size, bounder.delta_context(pool)
    )
    bounder.merge_delta(pool, delta)
    assert _pool_bytes(pool) == before


def test_moment_delta_bytes_are_o_views():
    """The headline IPC saving: a 10k-row window's delta is 4 arrays of
    pool size, not 10k rows of sorted values."""
    size = 32
    bounder = get_bounder("bernstein")
    rng = np.random.default_rng(0)
    indices = np.sort(rng.integers(0, size, 10_000)).astype(np.int64)
    values = rng.uniform(A, B, indices.size)
    delta = bounder.partition_delta(indices, values, size, None)
    assert delta.nbytes <= 3 * size * 8
    assert delta.nbytes < (indices.nbytes + values.nbytes) / 10


class TestCSRSamplePool:
    def test_append_preserves_stream_order_per_view(self):
        pool = CSRSamplePool(3)
        pool.append_segments([0, 2], [2, 1], np.array([1.0, 2.0, 9.0]))
        pool.append_segments([0, 1, 2], [1, 2, 1], np.array([3.0, 5.0, 6.0, 8.0]))
        np.testing.assert_array_equal(pool.values(0), [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(pool.values(1), [5.0, 6.0])
        np.testing.assert_array_equal(pool.values(2), [9.0, 8.0])
        assert pool.count.tolist() == [3, 2, 2]

    def test_growth_rebuild_keeps_contents(self):
        rng = np.random.default_rng(1)
        pool = CSRSamplePool(5)
        mirror = [[] for _ in range(5)]
        for _ in range(30):
            count = int(rng.integers(1, 50))
            indices = np.sort(rng.integers(0, 5, count)).astype(np.int64)
            values = rng.normal(size=count)
            boundaries = np.flatnonzero(np.diff(indices)) + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [count]))
            pool.append_segments(indices[starts], ends - starts, values)
            for start, end in zip(starts, ends):
                mirror[int(indices[start])].extend(values[start:end].tolist())
        for slot in range(5):
            np.testing.assert_array_equal(pool.values(slot), mirror[slot])

    def test_matrix_gathers_equal_count_views(self):
        pool = CSRSamplePool(4)
        pool.append_segments([0, 1, 3], [2, 2, 2], np.arange(6, dtype=float))
        matrix = pool.matrix(np.array([0, 3]), 2)
        np.testing.assert_array_equal(matrix, [[0.0, 1.0], [4.0, 5.0]])

    def test_growth_leaves_headroom(self):
        """Grown slots must get slack, not an exact-fit region — for a
        stable view population (the executor's case: scrambled data puts
        every occupied view into the first windows) relayouts must be
        logarithmic in the total sample count, not linear in windows."""
        views = 64
        pool = CSRSamplePool(views)
        rebuilds = 0
        rng = np.random.default_rng(3)
        for _ in range(200):  # every view receives rows every window
            counts = rng.integers(1, 40, views).astype(np.int64)
            slots = np.arange(views, dtype=np.int64)
            before = pool._data
            pool.append_segments(
                slots, counts, rng.normal(size=int(counts.sum()))
            )
            rebuilds += pool._data is not before  # _rebuild swaps the buffer
        total = int(pool.count.sum())
        assert (pool._caps >= pool.count).all()
        assert rebuilds <= int(np.log2(total)) + 2, (rebuilds, total)

    def test_fresh_slots_get_a_reserve_at_relayout(self):
        """Never-touched slots are granted FRESH_RESERVE elements at the
        first relayout, so a view arriving a few windows late (with a
        modest first batch) does not force another full relayout."""
        pool = CSRSamplePool(8)
        first = pool.FRESH_RESERVE + 1
        pool.append_segments([0], [first], np.ones(first))
        assert (pool._caps[1:] == pool.FRESH_RESERVE).all()
        before = pool._data
        pool.append_segments([5], [4], np.ones(4))  # fits the reserve
        assert pool._data is before
        np.testing.assert_array_equal(pool.values(5), np.ones(4))

    def test_empty_append_is_noop(self):
        pool = CSRSamplePool(2)
        pool.append_segments(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64), np.zeros(0)
        )
        assert pool.count.tolist() == [0, 0]

    def test_zero_size_pool(self):
        pool = CSRSamplePool(0)
        assert pool.size == 0
        with pytest.raises(ValueError):
            CSRSamplePool(-1)


def test_anderson_csr_bounds_match_scalar_states():
    """The CSR pool's grouped row-wise partition kernel must reproduce the
    scalar per-view SampleState bounds (same trim multiset per view)."""
    bounder = AndersonBounder()
    size = 7
    rng = np.random.default_rng(5)
    pool = bounder.init_pool(size)
    states = [bounder.init_state() for _ in range(size)]
    for indices, values in _stream(rng, size):
        bounder.update_pool(pool, indices, values)
        for slot in range(size):
            mask = indices == slot
            if mask.any():
                bounder.update_batch(states[slot], values[mask])
    n_plus = np.array([4_000 + 11 * i for i in range(size)])
    lo, hi = bounder.confidence_interval_batch(pool, A, B, n_plus, DELTA)
    for slot in range(size):
        expected = bounder.confidence_interval(
            states[slot], A, B, int(n_plus[slot]), DELTA
        )
        assert lo[slot] == pytest.approx(expected.lo, rel=1e-9, abs=1e-9)
        assert hi[slot] == pytest.approx(expected.hi, rel=1e-9, abs=1e-9)


def test_non_delta_bounder_raises_on_protocol_entry():
    bounder = get_bounder("bootstrap")
    assert not bounder.supports_delta
    with pytest.raises(NotImplementedError):
        bounder.partition_delta(np.array([0]), np.array([1.0]), 1)
    with pytest.raises(NotImplementedError):
        bounder.merge_delta(bounder.init_pool(1), None)
