"""Tests for the Maurer-Pontil empirical Bernstein bounder (no FPC)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.bernstein import (
    EmpiricalBernsteinBounder,
    EmpiricalBernsteinSerflingBounder,
    maurer_pontil_epsilon,
)
from repro.bounders.registry import get_bounder


def _fill(bounder, values):
    state = bounder.init_state()
    bounder.update_batch(state, np.asarray(values, dtype=np.float64))
    return state


class TestEpsilon:
    def test_trivial_below_two_samples(self):
        assert maurer_pontil_epsilon(1, 0.0, 0.0, 1.0, 0.05) == 1.0
        assert maurer_pontil_epsilon(0, 0.0, 0.0, 1.0, 0.05) == 1.0

    def test_shrinks_with_m(self):
        widths = [maurer_pontil_epsilon(m, 1.0, 0.0, 10.0, 0.05) for m in (10, 100, 1_000)]
        assert widths == sorted(widths, reverse=True)

    def test_variance_term_dominates_for_large_m(self):
        """ε → σ̃·sqrt(2 log(2/δ)/m): the (b − a)/m term washes out."""
        m, sigma, delta = 1_000_000, 2.0, 0.01
        eps = maurer_pontil_epsilon(m, sigma, 0.0, 1.0, delta)
        limit = sigma * math.sqrt(2.0 * math.log(2.0 / delta) / m)
        assert eps == pytest.approx(limit, rel=0.01)

    def test_zero_variance_leaves_range_term(self):
        eps = maurer_pontil_epsilon(100, 0.0, 0.0, 1.0, 0.05)
        assert 0.0 < eps < 1.0


class TestBounder:
    def test_registered(self):
        bounder = get_bounder("bernstein-no-fpc")
        assert isinstance(bounder, EmpiricalBernsteinBounder)
        assert bounder.ssi is True

    def test_interval_encloses_mean(self):
        bounder = EmpiricalBernsteinBounder()
        values = np.random.default_rng(0).uniform(0.0, 1.0, size=500)
        state = _fill(bounder, values)
        ci = bounder.confidence_interval(state, 0.0, 1.0, 100_000, 0.05)
        assert ci.lo <= float(values.mean()) <= ci.hi

    def test_serfling_variant_tighter_at_high_sampling_fraction(self):
        """The FPC's benefit: at a 90% sampling fraction the Serfling
        variance term shrinks by ~√10 and its width dips below
        Maurer-Pontil's despite Serfling's larger constants (κ ≈ 4.45 and
        log(5/δ) vs κ = 7/3 and log(2/δ))."""
        values = np.random.default_rng(1).uniform(0.0, 1.0, size=900)
        n = 1_000  # 90% of the population sampled
        plain = EmpiricalBernsteinBounder()
        serfling = EmpiricalBernsteinSerflingBounder()
        plain_ci = plain.confidence_interval(_fill(plain, values), 0.0, 1.0, n, 0.05)
        serf_ci = serfling.confidence_interval(
            _fill(serfling, values), 0.0, 1.0, n, 0.05
        )
        assert serf_ci.width < plain_ci.width

    def test_tighter_than_serfling_at_small_sampling_fraction(self):
        """With m ≪ N the FPC gives nothing and Maurer-Pontil's smaller
        constants win — the price [12] pays for the Serfling analysis."""
        values = np.random.default_rng(2).uniform(0.0, 1.0, size=400)
        plain = EmpiricalBernsteinBounder()
        serfling = EmpiricalBernsteinSerflingBounder()
        n = 10_000_000
        plain_ci = plain.confidence_interval(_fill(plain, values), 0.0, 1.0, n, 0.05)
        serf_ci = serfling.confidence_interval(
            _fill(serfling, values), 0.0, 1.0, n, 0.05
        )
        assert plain_ci.width < serf_ci.width
        # Same order of magnitude — the bounds model the same quantity.
        assert plain_ci.width > serf_ci.width / 3.0

    def test_coverage_without_replacement(self):
        """SSI under NR sampling (Table 2's asterisk) — Monte Carlo."""
        rng = np.random.default_rng(3)
        data = rng.exponential(1.0, size=4_000)
        a, b = 0.0, float(data.max())
        truth = float(data.mean())
        bounder = EmpiricalBernsteinBounder()
        misses = 0
        for trial in range(150):
            sample = np.random.default_rng(trial).choice(data, size=60, replace=False)
            state = _fill(bounder, sample)
            ci = bounder.confidence_interval(state, a, b, data.size, 0.1)
            if not ci.lo <= truth <= ci.hi:
                misses += 1
        assert misses / 150 <= 0.1

    @given(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=80),
        st.sampled_from([0.2, 0.01, 1e-6]),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds_ordered_and_clipped(self, values, delta):
        bounder = EmpiricalBernsteinBounder()
        state = _fill(bounder, values)
        ci = bounder.confidence_interval(state, 0.0, 1.0, 10_000, delta)
        assert 0.0 <= ci.lo <= ci.hi <= 1.0
