"""Tests for the Anderson/DKW bounder (Algorithm 3)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.anderson import AndersonBounder, SampleState, anderson_lower_bound
from repro.cdfbounds.dkw import anderson_mean_bounds


class TestSampleState:
    def test_append_and_values(self):
        state = SampleState()
        for value in (1.0, 2.0, 3.0):
            state.append(value)
        assert state.count == 3
        np.testing.assert_array_equal(state.values, [1.0, 2.0, 3.0])

    def test_extend(self):
        state = SampleState()
        state.extend(np.arange(100, dtype=float))
        state.extend(np.arange(5, dtype=float))
        assert state.count == 105
        assert state.values[-1] == 4.0

    def test_growth_beyond_initial_capacity(self):
        state = SampleState()
        for value in range(1000):
            state.append(float(value))
        assert state.count == 1000
        assert state.values[999] == 999.0

    def test_copy_is_independent(self):
        state = SampleState()
        state.append(1.0)
        clone = state.copy()
        clone.append(2.0)
        assert state.count == 1
        assert clone.count == 2


class TestAndersonLowerBound:
    def test_empty_sample_returns_a(self):
        assert anderson_lower_bound(np.array([]), -5.0, 0.05) == -5.0

    def test_tiny_sample_trivial(self):
        """ε >= 1 for small m at small δ: the trivial bound a."""
        sample = np.array([0.5, 0.6])
        assert anderson_lower_bound(sample, 0.0, 1e-12) == 0.0

    def test_matches_manual_computation(self):
        """Algorithm 3: ε·a + (1−ε)·AVG of the floor((1−ε)m) smallest."""
        sample = np.arange(1.0, 101.0)  # 1..100
        a, delta = 0.0, 0.05
        m = sample.size
        eps = math.sqrt(math.log(1 / delta) / (2 * m))
        keep = math.floor((1 - eps) * m)
        expected = eps * a + (1 - eps) * sample[:keep].mean()
        assert anderson_lower_bound(sample, a, delta) == pytest.approx(expected)

    def test_below_sample_mean(self, rng):
        sample = rng.uniform(0, 1, 1000)
        assert anderson_lower_bound(sample, 0.0, 0.05) < sample.mean()

    def test_independent_of_upper_range(self, rng):
        """The PHOS-free signature: Lbound never consults b at all (the
        function does not even take it as an argument) — and the trimmed
        mass comes from the largest *observed* points."""
        sample = rng.uniform(0, 1, 500)
        base = anderson_lower_bound(sample, 0.0, 0.05)
        # Appending one huge value changes the bound only through the
        # sample itself, not through any range parameter.
        assert base == anderson_lower_bound(sample.copy(), 0.0, 0.05)

    def test_depends_on_a(self, rng):
        """PMA's source: the ε mass is pinned to the range endpoint a."""
        sample = rng.uniform(0.4, 0.6, 500)
        near = anderson_lower_bound(sample, 0.39, 0.05)
        far = anderson_lower_bound(sample, -100.0, 0.05)
        assert far < near


class TestAndersonBounder:
    def setup_method(self):
        self.bounder = AndersonBounder()

    def test_requires_sample_memory_flag(self):
        """Table 2's Memory column: Anderson/DKW is the O(m) bounder."""
        assert self.bounder.requires_sample_memory

    def test_empty_state_trivial(self):
        state = self.bounder.init_state()
        assert self.bounder.lbound(state, 0, 1, 100, 0.05) == 0
        assert self.bounder.rbound(state, 0, 1, 100, 0.05) == 1

    def test_bounds_bracket_sample_mean(self, rng):
        state = self.bounder.init_state()
        values = rng.uniform(0, 1, 2000)
        self.bounder.update_batch(state, values)
        lo = self.bounder.lbound(state, 0, 1, 10_000, 0.05)
        hi = self.bounder.rbound(state, 0, 1, 10_000, 0.05)
        assert lo <= values.mean() <= hi

    def test_asymmetric_error(self, rng):
        """Unlike Hoeffding/Bernstein, Anderson's errors are asymmetric
        for skewed samples."""
        state = self.bounder.init_state()
        values = rng.exponential(0.05, 3000).clip(0, 1)
        self.bounder.update_batch(state, values)
        lo = self.bounder.lbound(state, 0, 1, 100_000, 0.05)
        hi = self.bounder.rbound(state, 0, 1, 100_000, 0.05)
        mean = values.mean()
        assert not math.isclose(hi - mean, mean - lo, rel_tol=0.05)

    def test_rbound_mirrors_lbound(self, rng):
        """rbound(S) = (a+b) − lbound((a+b) − S) exactly (Alg. 3 line 11)."""
        values = rng.uniform(2, 5, 800)
        a, b = 0.0, 10.0
        state = self.bounder.init_state()
        self.bounder.update_batch(state, values)
        mirrored = self.bounder.init_state()
        self.bounder.update_batch(mirrored, (a + b) - values)
        assert self.bounder.rbound(state, a, b, 10_000, 0.05) == pytest.approx(
            (a + b) - self.bounder.lbound(mirrored, a, b, 10_000, 0.05)
        )

    def test_estimate(self, rng):
        state = self.bounder.init_state()
        values = rng.normal(3, 1, 100)
        self.bounder.update_batch(state, values)
        assert self.bounder.estimate(state) == pytest.approx(values.mean())

    def test_estimate_empty_raises(self):
        with pytest.raises(ValueError):
            self.bounder.estimate(self.bounder.init_state())

    def test_algorithm3_never_tighter_than_exact_integration(self, rng):
        """Algorithm 3's trimmed-mean form is (slightly) conservative
        relative to exact step-function integration of the DKW band."""
        values = rng.uniform(0, 1, 1500)
        state = self.bounder.init_state()
        self.bounder.update_batch(state, values)
        ci = self.bounder.confidence_interval(state, 0, 1, 10_000, 0.05)
        exact_lo, exact_hi = anderson_mean_bounds(values, 0, 1, 0.05)
        assert ci.lo <= exact_lo + 1e-12
        assert ci.hi >= exact_hi - 1e-12

    @given(st.integers(20, 500), st.floats(0.01, 0.3))
    @settings(max_examples=30, deadline=None)
    def test_property_interval_contains_mean(self, m, delta):
        rng = np.random.default_rng(m)
        values = rng.uniform(0, 1, m)
        state = self.bounder.init_state()
        self.bounder.update_batch(state, values)
        ci = self.bounder.confidence_interval(state, 0, 1, 10 * m, delta)
        assert ci.lo <= values.mean() <= ci.hi
