"""Tests for closed-form widths and sample-size planning."""

from __future__ import annotations

import pytest

from repro.bounders.bernstein import empirical_bernstein_serfling_epsilon
from repro.bounders.hoeffding import hoeffding_serfling_epsilon
from repro.bounders.theory import (
    anderson_width_floor,
    half_width,
    samples_for_width,
    width_ratio,
)


class TestHalfWidth:
    def test_hoeffding_dispatch(self):
        assert half_width("hoeffding", 100, 10_000, 0, 1, 0.05) == pytest.approx(
            hoeffding_serfling_epsilon(100, 10_000, 0, 1, 0.05)
        )

    def test_bernstein_dispatch(self):
        assert half_width(
            "bernstein", 100, 10_000, 0, 1, 0.05, sigma=0.2
        ) == pytest.approx(
            empirical_bernstein_serfling_epsilon(100, 10_000, 0.2, 0, 1, 0.05)
        )

    def test_unknown_bounder_rejected(self):
        with pytest.raises(ValueError, match="unknown bounder"):
            half_width("clt", 100, 1_000, 0, 1, 0.05)

    def test_anderson_floor_scales_with_range(self):
        narrow = anderson_width_floor(400, 0, 1, 0.05)
        wide = anderson_width_floor(400, 0, 10, 0.05)
        assert wide == pytest.approx(10 * narrow)

    def test_anderson_floor_sqrt_m_rate(self):
        """The Θ((b−a)/√m) endpoint-mass floor that makes Anderson PMA."""
        at_m = anderson_width_floor(1_000, 0, 1, 0.05)
        at_4m = anderson_width_floor(4_000, 0, 1, 0.05)
        assert at_4m == pytest.approx(at_m / 2, rel=1e-9)


class TestSamplesForWidth:
    def test_achieves_target(self):
        n, a, b, delta = 1_000_000, 0.0, 1.0, 1e-6
        m = samples_for_width("hoeffding", 0.1, n, a, b, delta)
        assert 2 * half_width("hoeffding", m, n, a, b, delta / 2) <= 0.1
        assert 2 * half_width("hoeffding", m - 1, n, a, b, delta / 2) > 0.1

    def test_bernstein_needs_fewer_when_variance_small(self):
        """The quantitative PMA story: with σ ≪ (b−a), Bernstein reaches a
        target width with far fewer samples."""
        n, delta = 10_000_000, 1e-10
        m_hoeff = samples_for_width("hoeffding", 0.005, n, 0, 1, delta)
        m_bern = samples_for_width("bernstein", 0.005, n, 0, 1, delta, sigma=0.02)
        assert m_bern < m_hoeff / 5

    def test_returns_n_when_unachievable(self):
        """Mirrors F-q5's behaviour: when no sample size suffices, the
        planner reports a full scan."""
        n = 1_000
        m = samples_for_width("hoeffding", 1e-9, n, 0, 1_000, 1e-15)
        assert m == n

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            samples_for_width("hoeffding", 0.0, 1_000, 0, 1, 0.05)


class TestWidthRatio:
    def test_grows_with_range_to_sigma_gap(self):
        """Figure 2's regime quantified: the wider the outlier-inflated
        range relative to σ, the larger Hoeffding's penalty."""
        modest = width_ratio(10_000, 10_000_000, 0, 10, 1e-10, sigma=2.0)
        extreme = width_ratio(10_000, 10_000_000, 0, 1_000, 1e-10, sigma=2.0)
        assert extreme > modest > 1.0

    def test_near_one_for_worst_case_sigma(self):
        ratio = width_ratio(1_000, 1_000_000, 0, 1, 0.05, sigma=0.5)
        assert ratio < 1.5
