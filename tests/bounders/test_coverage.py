"""Monte-Carlo coverage tests: every bounder is SSI (Definition 1).

A (1 − δ) error bounder must fail — return an interval missing the true
dataset mean — with probability below δ *at every sample size*.  These
tests run many independent without-replacement samples at a moderate δ and
check the empirical failure rate.  Since the bounders are conservative,
the observed failure rate is essentially always zero; the assertion allows
the full δ budget plus binomial slack so the test is not flaky.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import available_bounders, get_bounder
from repro.datasets.synthetic import DATASET_GENERATORS

TRIALS = 120
DELTA = 0.2
SLACK = 3 * np.sqrt(DELTA * (1 - DELTA) / TRIALS)  # ≈ 0.11 at 120 trials


def failure_rate(bounder_name: str, data, a, b, m: int, seed: int) -> float:
    rng = np.random.default_rng(seed)
    failures = 0
    truth = data.mean()
    bounder = get_bounder(bounder_name)
    for _ in range(TRIALS):
        sample = data[rng.permutation(data.size)[:m]]
        state = bounder.init_state()
        bounder.update_batch(state, sample)
        ci = bounder.confidence_interval(state, a, b, data.size, DELTA)
        if not ci.lo <= truth <= ci.hi:
            failures += 1
    return failures / TRIALS


#: The registry also holds asymptotic (non-SSI) bounders for the coverage
#: experiments; Definition 1's guarantee only binds the SSI ones (the
#: asymptotic bounders' *violations* are asserted in
#: tests/experiments/test_coverage.py).
SSI_BOUNDERS = sorted(
    name for name in available_bounders() if get_bounder(name).ssi
)


@pytest.mark.parametrize("bounder_name", SSI_BOUNDERS)
@pytest.mark.parametrize("dataset_name", ["uniform", "clustered", "outlier"])
def test_coverage_moderate_sample(bounder_name, dataset_name):
    rng = np.random.default_rng(99)
    data, a, b = DATASET_GENERATORS[dataset_name](20_000, rng)
    rate = failure_rate(bounder_name, data, a, b, m=500, seed=1)
    assert rate <= DELTA + SLACK, f"{bounder_name} on {dataset_name}: {rate}"


@pytest.mark.parametrize("bounder_name", ["bernstein+rt", "hoeffding+rt", "anderson"])
@pytest.mark.parametrize("m", [2, 5, 20, 100])
def test_coverage_is_sample_size_independent(bounder_name, m):
    """SSI means validity at *tiny* sample sizes too — where asymptotic
    (CLT/bootstrap) intervals are known to fail."""
    rng = np.random.default_rng(7)
    data, a, b = DATASET_GENERATORS["lognormal"](5_000, rng)
    rate = failure_rate(bounder_name, data, a, b, m=m, seed=2)
    assert rate <= DELTA + SLACK


def test_two_point_worst_case_coverage():
    """Hoeffding's asymptotic-optimality regime must still be covered by
    every bounder, including the trimmed ones (Theorem 2 holds for any
    data in [a, b])."""
    rng = np.random.default_rng(3)
    data, a, b = DATASET_GENERATORS["two-point"](10_000, rng)
    for bounder_name in ("hoeffding", "bernstein+rt", "anderson"):
        rate = failure_rate(bounder_name, data, a, b, m=200, seed=4)
        assert rate <= DELTA + SLACK


def test_rangetrim_coverage_with_duplicates():
    """The Lemma 4 wrinkle: correctness must survive duplicate values
    (the paper's labelling argument)."""
    rng = np.random.default_rng(5)
    data = rng.choice([0.0, 0.25, 0.5, 0.75, 1.0], size=8_000)
    rate = failure_rate("bernstein+rt", data, 0.0, 1.0, m=300, seed=6)
    assert rate <= DELTA + SLACK


def test_nominal_delta_near_one_sided_budget():
    """With δ close to 1 the intervals may be very tight but must remain
    valid often enough; sanity check that nothing degenerates."""
    rng = np.random.default_rng(11)
    data, a, b = DATASET_GENERATORS["uniform"](5_000, rng)
    bounder = get_bounder("bernstein")
    state = bounder.init_state()
    bounder.update_batch(state, data[:500])
    ci = bounder.confidence_interval(state, a, b, data.size, 0.9)
    assert a <= ci.lo <= ci.hi <= b
