"""Tests for the Hoeffding(-Serfling) bounder (Algorithm 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bounders.hoeffding import (
    HoeffdingBounder,
    HoeffdingSerflingBounder,
    hoeffding_serfling_epsilon,
)


class TestEpsilonFormula:
    def test_matches_paper_formula(self):
        """Algorithm 1 line 8: ε = (b−a)·sqrt(log(1/δ)·(1−(m−1)/N)/(2m))."""
        m, n, a, b, delta = 100, 10_000, 0.0, 1.0, 0.05
        expected = (b - a) * math.sqrt(
            math.log(1 / delta) * (1 - (m - 1) / n) / (2 * m)
        )
        assert hoeffding_serfling_epsilon(m, n, a, b, delta) == pytest.approx(expected)

    def test_no_fpc_variant_is_wider(self):
        with_fpc = hoeffding_serfling_epsilon(100, 1000, 0, 1, 0.05)
        without = hoeffding_serfling_epsilon(100, 1000, 0, 1, 0.05, finite_population=False)
        assert without > with_fpc

    def test_scales_with_range(self):
        narrow = hoeffding_serfling_epsilon(100, 10_000, 0, 1, 0.05)
        wide = hoeffding_serfling_epsilon(100, 10_000, 0, 10, 0.05)
        assert wide == pytest.approx(10 * narrow)

    def test_decreases_with_m(self):
        eps = [hoeffding_serfling_epsilon(m, 10_000, 0, 1, 0.05) for m in (10, 100, 1000)]
        assert eps[0] > eps[1] > eps[2]

    def test_zero_at_full_population_limit(self):
        """Sampling the whole dataset: FPC drives ε to the 1/N floor."""
        eps_full = hoeffding_serfling_epsilon(10_000, 10_000, 0, 1, 1e-10)
        eps_half = hoeffding_serfling_epsilon(5_000, 10_000, 0, 1, 1e-10)
        assert eps_full < eps_half / 10

    def test_trivial_for_empty_sample(self):
        assert hoeffding_serfling_epsilon(0, 100, 0.0, 3.0, 0.05) == 3.0

    def test_dataset_size_monotonicity(self):
        """§3.3: larger N (upper bound) gives a looser ε — never tighter."""
        eps_small = hoeffding_serfling_epsilon(100, 1_000, 0, 1, 0.05)
        eps_large = hoeffding_serfling_epsilon(100, 100_000, 0, 1, 0.05)
        assert eps_large >= eps_small

    @given(
        st.integers(1, 5_000),
        st.integers(5_000, 1_000_000),
        st.floats(1e-15, 0.5),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_positive_and_monotone_in_delta(self, m, n, delta):
        eps = hoeffding_serfling_epsilon(m, n, 0, 1, delta)
        eps_tighter = hoeffding_serfling_epsilon(m, n, 0, 1, min(delta * 2, 0.9))
        assert eps >= 0
        assert eps_tighter <= eps


class TestHoeffdingSerflingBounder:
    def setup_method(self):
        self.bounder = HoeffdingSerflingBounder()

    def test_empty_state_trivial_bounds(self):
        state = self.bounder.init_state()
        assert self.bounder.lbound(state, 0, 1, 100, 0.05) == 0
        assert self.bounder.rbound(state, 0, 1, 100, 0.05) == 1

    def test_bounds_bracket_sample_mean(self, rng):
        state = self.bounder.init_state()
        values = rng.uniform(0, 1, 500)
        self.bounder.update_batch(state, values)
        lo = self.bounder.lbound(state, 0, 1, 100_000, 0.05)
        hi = self.bounder.rbound(state, 0, 1, 100_000, 0.05)
        assert lo <= values.mean() <= hi

    def test_symmetric_error(self, rng):
        """Hoeffding CIs have the form ĝ ± ε (the PHOS-causing symmetry)."""
        state = self.bounder.init_state()
        values = rng.uniform(0.2, 0.4, 300)
        self.bounder.update_batch(state, values)
        lo = self.bounder.lbound(state, 0, 1, 10_000, 0.05)
        hi = self.bounder.rbound(state, 0, 1, 10_000, 0.05)
        mean = values.mean()
        assert hi - mean == pytest.approx(mean - lo, rel=1e-9)

    def test_width_independent_of_values(self, rng):
        """The PMA signature: CI width depends only on (b−a), m, N, δ."""
        low_state = self.bounder.init_state()
        self.bounder.update_batch(low_state, rng.uniform(0.30, 0.40, 200))
        high_state = self.bounder.init_state()
        self.bounder.update_batch(high_state, rng.uniform(0.60, 0.70, 200))
        low_ci = self.bounder.confidence_interval(low_state, 0, 1, 10_000, 0.05)
        high_ci = self.bounder.confidence_interval(high_state, 0, 1, 10_000, 0.05)
        assert low_ci.width == pytest.approx(high_ci.width, rel=1e-9)

    def test_confidence_interval_clipped_to_range(self):
        state = self.bounder.init_state()
        self.bounder.update(state, 0.05)
        ci = self.bounder.confidence_interval(state, 0, 1, 1_000, 0.05)
        assert ci.lo >= 0.0
        assert ci.hi <= 1.0

    def test_estimate_is_sample_mean(self, rng):
        state = self.bounder.init_state()
        values = rng.normal(5, 1, 100)
        self.bounder.update_batch(state, values)
        assert self.bounder.estimate(state) == pytest.approx(values.mean())

    def test_sample_count(self):
        state = self.bounder.init_state()
        for value in (1.0, 2.0, 3.0):
            self.bounder.update(state, value)
        assert self.bounder.sample_count(state) == 3

    def test_dataset_size_monotonicity_property(self, rng):
        """§3.3: Lbound non-increasing and Rbound non-decreasing in N."""
        state = self.bounder.init_state()
        self.bounder.update_batch(state, rng.uniform(0, 1, 100))
        lb = [self.bounder.lbound(state, 0, 1, n, 0.05) for n in (200, 2_000, 200_000)]
        rb = [self.bounder.rbound(state, 0, 1, n, 0.05) for n in (200, 2_000, 200_000)]
        assert lb[0] >= lb[1] >= lb[2]
        assert rb[0] <= rb[1] <= rb[2]

    def test_validates_arguments(self):
        state = self.bounder.init_state()
        self.bounder.update(state, 0.5)
        with pytest.raises(ValueError):
            self.bounder.lbound(state, 1.0, 0.0, 100, 0.05)


class TestHoeffdingBounderNoFpc:
    def test_is_looser_than_serfling(self, rng):
        values = rng.uniform(0, 1, 200)
        plain = HoeffdingBounder()
        serfling = HoeffdingSerflingBounder()
        plain_state = plain.init_state()
        plain.update_batch(plain_state, values)
        serf_state = serfling.init_state()
        serfling.update_batch(serf_state, values)
        plain_ci = plain.confidence_interval(plain_state, 0, 1, 400, 0.05)
        serf_ci = serfling.confidence_interval(serf_state, 0, 1, 400, 0.05)
        assert plain_ci.width >= serf_ci.width

    def test_name(self):
        assert "no FPC" in HoeffdingBounder().name
