"""Reproduction of Table 2: PMA/PHOS profiles of every bounder (§2.3)."""

from __future__ import annotations

import pytest

from repro.bounders.pathology import exhibits_phos, exhibits_pma, pma_width_gap
from repro.bounders.registry import get_bounder

#: Table 2 of the paper, extended with the RangeTrim combinations the
#: evaluation uses.  (Hoeffding+RT keeps PMA — RangeTrim only fixes PHOS.)
TABLE2 = {
    "hoeffding": {"pma": True, "phos": True},
    "bernstein": {"pma": False, "phos": True},
    "anderson": {"pma": True, "phos": False},
    "hoeffding+rt": {"pma": True, "phos": False},
    "bernstein+rt": {"pma": False, "phos": False},
}


@pytest.mark.parametrize("name,expected", sorted(TABLE2.items()))
def test_table2_pma(name, expected):
    assert exhibits_pma(get_bounder(name)) == expected["pma"]


@pytest.mark.parametrize("name,expected", sorted(TABLE2.items()))
def test_table2_phos(name, expected):
    assert exhibits_phos(get_bounder(name)) == expected["phos"]


def test_bernstein_rt_solves_problem_1():
    """Problem 1: an SSI bounder with neither PMA nor PHOS exists —
    Bernstein+RT (§3's headline result)."""
    bounder = get_bounder("bernstein+rt")
    assert not exhibits_pma(bounder)
    assert not exhibits_phos(bounder)


def test_pma_width_gap_zero_for_hoeffding():
    """Literal Definition 2 witness: clipping a Hoeffding sample's small
    values up to a' leaves the CI width exactly unchanged."""
    gap = pma_width_gap(get_bounder("hoeffding"))
    assert gap == pytest.approx(0.0, abs=1e-12)


def test_pma_width_gap_positive_for_bernstein():
    """Bernstein reacts to the milder evidence: the clipped sample's lower
    variance strictly shrinks the CI."""
    gap = pma_width_gap(get_bounder("bernstein"))
    assert gap > 1e-4


def test_pma_width_gap_positive_for_anderson_on_spread_witness():
    """On *spread* witnesses Anderson's trimmed means also react; its PMA
    is the endpoint-mass floor, caught by the asymptotic detector (see
    pathology module docstring for why the literal Definition 2 test
    cannot separate Anderson from Bernstein on non-degenerate samples)."""
    gap = pma_width_gap(get_bounder("anderson"))
    assert gap > 0.0


def test_phos_detector_counts_either_side():
    """A bounder whose Rbound depends on a (even with a b-free Lbound)
    must register PHOS."""

    class LowerTrimmedOnly:
        """Hoeffding with only the lower bound trimmed (synthetic)."""

        name = "half-trimmed"
        requires_sample_memory = False

        def __init__(self):
            from repro.bounders.hoeffding import HoeffdingSerflingBounder
            from repro.bounders.range_trim import RangeTrimBounder

            self._trim = RangeTrimBounder(HoeffdingSerflingBounder())
            self._plain = HoeffdingSerflingBounder()

        def init_state(self):
            return (self._trim.init_state(), self._plain.init_state())

        def update(self, state, value):
            self._trim.update(state[0], value)
            self._plain.update(state[1], value)

        def update_batch(self, state, values):
            self._trim.update_batch(state[0], values)
            self._plain.update_batch(state[1], values)

        def lbound(self, state, a, b, n, delta):
            return self._trim.lbound(state[0], a, b, n, delta)

        def rbound(self, state, a, b, n, delta):
            return self._plain.rbound(state[1], a, b, n, delta)

    assert exhibits_phos(LowerTrimmedOnly())
