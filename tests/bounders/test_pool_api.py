"""Pool (struct-of-arrays) bounder API vs the scalar reference.

Every bounder's pool flavour must evolve slot ``i`` exactly like an
independent scalar state fed the same values in the same order, and
``confidence_interval_batch`` must reproduce the scalar
``confidence_interval`` per slot — within floating-point summation
tolerance.  This is the statistical-honesty contract the vectorized
executor core rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bounders.registry import available_bounders, get_bounder

RTOL = 1e-9
A, B = -5.0, 120.0
DELTA = 1e-7

#: Bounders with deterministic bounds (bootstrap is resampling-based; its
#: pool path is the same loop as its scalar path, so parity is trivial).
POOL_BOUNDERS = sorted(set(available_bounders()) - {"bootstrap"})


def _indexed_stream(rng, size, num_batches=4, max_batch=600):
    """Yield (indices, values) batches: sorted indices, stream order kept."""
    for _ in range(num_batches):
        count = int(rng.integers(1, max_batch))
        indices = np.sort(rng.integers(0, size, count))
        values = rng.uniform(A + 1.0, B - 20.0, count)
        yield indices.astype(np.int64), values


def _scalar_states(bounder, size, batches):
    states = [bounder.init_state() for _ in range(size)]
    for indices, values in batches:
        for slot in range(size):
            mask = indices == slot
            if mask.any():
                bounder.update_batch(states[slot], values[mask])
    return states


@pytest.mark.parametrize("name", POOL_BOUNDERS)
def test_pool_matches_scalar_intervals(name):
    size = 7
    rng = np.random.default_rng(sum(map(ord, name)))
    batches = list(_indexed_stream(rng, size))

    scalar_bounder = get_bounder(name)
    pool_bounder = get_bounder(name)
    states = _scalar_states(scalar_bounder, size, batches)
    pool = pool_bounder.init_pool(size)
    for indices, values in batches:
        pool_bounder.update_pool(pool, indices, values)

    counts = pool_bounder.pool_counts(pool)
    n_plus = np.array([5_000 + 137 * i for i in range(size)])
    lo, hi = pool_bounder.confidence_interval_batch(pool, A, B, n_plus, DELTA)
    for slot in range(size):
        assert counts[slot] == scalar_bounder.sample_count(states[slot])
        expected = scalar_bounder.confidence_interval(
            states[slot], A, B, int(n_plus[slot]), DELTA
        )
        assert lo[slot] == pytest.approx(expected.lo, rel=RTOL, abs=1e-9)
        assert hi[slot] == pytest.approx(expected.hi, rel=RTOL, abs=1e-9)


@pytest.mark.parametrize("name", POOL_BOUNDERS)
def test_pool_subset_indices(name):
    """`indices` must bound exactly the requested slots, aligned."""
    size = 9
    rng = np.random.default_rng(0)
    bounder = get_bounder(name)
    pool = bounder.init_pool(size)
    for indices, values in _indexed_stream(rng, size):
        bounder.update_pool(pool, indices, values)
    subset = np.array([1, 4, 8])
    n_plus = np.array([3_000, 4_000, 5_000])
    lo_sub, hi_sub = bounder.confidence_interval_batch(
        pool, A, B, n_plus, DELTA, indices=subset
    )
    full_n = np.full(size, 1)
    full_n[subset] = n_plus
    lo, hi = bounder.confidence_interval_batch(pool, A, B, full_n, DELTA)
    assert np.allclose(lo_sub, lo[subset], rtol=RTOL)
    assert np.allclose(hi_sub, hi[subset], rtol=RTOL)


def test_range_trim_pool_seed_semantics():
    """The first sample of each view only seeds extrema (Alg. 4 lines 3-4),
    in whatever batch/slot interleaving it arrives."""
    bounder = get_bounder("bernstein+rt")
    reference = get_bounder("bernstein+rt")
    size = 3
    pool = bounder.init_pool(size)
    states = [reference.init_state() for _ in range(size)]
    rng = np.random.default_rng(42)
    # Batch 1: slot 0 gets a single (seed-only) value, slot 1 several.
    batches = [
        (np.array([0, 1, 1, 1]), np.array([10.0, 3.0, 9.0, 1.0])),
        (np.array([0, 0, 2]), np.array([12.0, 4.0, 8.0])),
        (np.array([0, 1, 2, 2]), rng.uniform(0.0, 20.0, 4)),
    ]
    for indices, values in batches:
        bounder.update_pool(pool, indices, values)
        for slot in range(size):
            mask = indices == slot
            if mask.any():
                reference.update_batch(states[slot], values[mask])
    assert pool.count.tolist() == [reference.sample_count(s) for s in states]
    n_plus = np.array([100, 100, 100])
    lo, hi = bounder.confidence_interval_batch(pool, 0.0, 20.0, n_plus, DELTA)
    for slot in range(size):
        expected = reference.confidence_interval(states[slot], 0.0, 20.0, 100, DELTA)
        assert lo[slot] == pytest.approx(expected.lo, rel=RTOL)
        assert hi[slot] == pytest.approx(expected.hi, rel=RTOL)


def test_segmented_prior_extrema_fallback_matches_dense():
    """The skewed-segment fallback path computes the same prior extrema."""
    from repro.bounders.range_trim import _segmented_prior_extrema

    rng = np.random.default_rng(7)
    # One huge segment plus many tiny ones forces the non-dense branch when
    # thresholds are exceeded; compare against a brute-force loop.
    lengths = [500, 1, 2, 1, 3]
    values = rng.normal(size=sum(lengths))
    starts = np.cumsum([0] + lengths[:-1]).astype(np.int64)
    ends = (starts + np.array(lengths)).astype(np.int64)
    carry_max = rng.normal(size=len(lengths))
    carry_min = carry_max - rng.uniform(0.5, 2.0, len(lengths))
    got_max, got_min = _segmented_prior_extrema(values, starts, ends, carry_max, carry_min)
    for i, (s, e) in enumerate(zip(starts, ends)):
        run_max, run_min = carry_max[i], carry_min[i]
        for j in range(s, e):
            assert got_max[j] == run_max
            assert got_min[j] == run_min
            run_max = max(run_max, values[j])
            run_min = min(run_min, values[j])
