"""Tests for the expression AST: evaluation and interval arithmetic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expressions.expr import Abs, Col, Const, Exp, Log, Pow, col
from repro.fastframe.catalog import RangeBounds
from repro.fastframe.table import Table


@pytest.fixture()
def table():
    return Table(
        continuous={
            "x": np.array([1.0, 2.0, 3.0, 4.0]),
            "y": np.array([10.0, 20.0, 30.0, 40.0]),
        }
    )


BOUNDS = {"x": RangeBounds(1.0, 4.0), "y": RangeBounds(10.0, 40.0)}


class TestEvaluation:
    def test_col(self, table):
        np.testing.assert_array_equal(col("x").evaluate(table), [1, 2, 3, 4])

    def test_col_rows_subset(self, table):
        np.testing.assert_array_equal(
            col("x").evaluate(table, np.array([0, 3])), [1, 4]
        )

    def test_arithmetic_sugar(self, table):
        expr = (col("x") * 2 + col("y") / 10) - 1
        np.testing.assert_allclose(expr.evaluate(table), [2, 5, 8, 11])

    def test_right_operators(self, table):
        expr = 10 - col("x")
        np.testing.assert_allclose(expr.evaluate(table), [9, 8, 7, 6])
        expr2 = 2 * col("x")
        np.testing.assert_allclose(expr2.evaluate(table), [2, 4, 6, 8])

    def test_pow_and_neg(self, table):
        expr = -(col("x") ** 2)
        np.testing.assert_allclose(expr.evaluate(table), [-1, -4, -9, -16])

    def test_unary_functions(self, table):
        np.testing.assert_allclose(
            Exp(col("x") * 0).evaluate(table), np.ones(4)
        )
        np.testing.assert_allclose(
            Log(col("y")).evaluate(table), np.log([10, 20, 30, 40])
        )
        np.testing.assert_allclose(
            Abs(col("x") - 2.5).evaluate(table), [1.5, 0.5, 0.5, 1.5]
        )

    def test_evaluate_point_matches_vectorized(self, table):
        expr = (col("x") + col("y")) * 2 - col("x") ** 2
        vector = expr.evaluate(table)
        for i in range(4):
            point = {"x": float(table.continuous("x")[i]), "y": float(table.continuous("y")[i])}
            assert expr.evaluate_point(point) == pytest.approx(vector[i])

    def test_columns(self):
        expr = col("x") * col("y") + 1
        assert expr.columns() == frozenset({"x", "y"})
        assert Const(5).columns() == frozenset()

    def test_pow_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            Pow(col("x"), -1)

    def test_repr_readable(self):
        assert repr(col("x") + 1) == "(x + 1.0)"


class TestIntervalArithmetic:
    def test_add_sub(self):
        interval = (col("x") + col("y")).interval(BOUNDS)
        assert (interval.a, interval.b) == (11.0, 44.0)
        interval = (col("x") - col("y")).interval(BOUNDS)
        assert (interval.a, interval.b) == (1.0 - 40.0, 4.0 - 10.0)

    def test_mul_corners(self):
        bounds = {"x": RangeBounds(-2.0, 3.0), "y": RangeBounds(-1.0, 4.0)}
        interval = (col("x") * col("y")).interval(bounds)
        assert (interval.a, interval.b) == (-8.0, 12.0)

    def test_div(self):
        interval = (col("y") / col("x")).interval(BOUNDS)
        assert (interval.a, interval.b) == (10.0 / 4.0, 40.0 / 1.0)

    def test_div_through_zero_rejected(self):
        bounds = {"x": RangeBounds(-1.0, 1.0)}
        with pytest.raises(ValueError, match="zero"):
            (Const(1.0) / col("x")).interval(bounds)

    def test_even_pow_spanning_zero(self):
        bounds = {"x": RangeBounds(-2.0, 3.0)}
        interval = (col("x") ** 2).interval(bounds)
        assert (interval.a, interval.b) == (0.0, 9.0)

    def test_odd_pow_monotone(self):
        bounds = {"x": RangeBounds(-2.0, 3.0)}
        interval = (col("x") ** 3).interval(bounds)
        assert (interval.a, interval.b) == (-8.0, 27.0)

    def test_abs_spanning_zero(self):
        bounds = {"x": RangeBounds(-5.0, 3.0)}
        interval = Abs(col("x")).interval(bounds)
        assert (interval.a, interval.b) == (0.0, 5.0)

    def test_log_requires_positive_domain(self):
        with pytest.raises(ValueError, match="positive"):
            Log(col("x")).interval({"x": RangeBounds(-1.0, 2.0)})

    @given(
        st.floats(-50, 50),
        st.floats(0.1, 50),
        st.floats(-50, 50),
        st.floats(0.1, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_interval_encloses_samples(self, xa, xw, ya, yw):
        """Interval arithmetic is a sound enclosure: random points inside
        the box always evaluate within the computed interval."""
        bounds = {
            "x": RangeBounds(xa, xa + xw),
            "y": RangeBounds(ya, ya + yw),
        }
        expr = (col("x") * 2 - col("y")) ** 2 + col("x") * col("y")
        interval = expr.interval(bounds)
        rng = np.random.default_rng(0)
        for _ in range(25):
            point = {
                "x": rng.uniform(bounds["x"].a, bounds["x"].b),
                "y": rng.uniform(bounds["y"].a, bounds["y"].b),
            }
            value = expr.evaluate_point(point)
            assert interval.a - 1e-6 <= value <= interval.b + 1e-6
