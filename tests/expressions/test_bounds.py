"""Tests for Appendix B's derived range bounds."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expressions.bounds import (
    box_maximum,
    box_minimum,
    corner_values,
    derive_range_bounds,
    monotone_corner_bounds,
)
from repro.expressions.expr import (
    Abs,
    Exp,
    Log,
    _expr_curvature,
    _expr_monotone,
    col,
)
from repro.fastframe.catalog import RangeBounds


class TestMonotoneCertificates:
    def test_affine_directions(self):
        expr = 2 * col("x") - 3 * col("y") + 1
        bounds = {"x": RangeBounds(0, 1), "y": RangeBounds(0, 1)}
        assert _expr_monotone(expr, bounds) == {"x": 1, "y": -1}

    def test_conflicting_directions_uncertified(self):
        expr = col("x") - col("x") * 3  # net decreasing but via conflict
        bounds = {"x": RangeBounds(0, 1)}
        assert _expr_monotone(expr, bounds) is None

    def test_even_pow_positive_domain(self):
        expr = col("x") ** 2
        assert _expr_monotone(expr, {"x": RangeBounds(1, 5)}) == {"x": 1}
        assert _expr_monotone(expr, {"x": RangeBounds(-5, -1)}) == {"x": -1}
        assert _expr_monotone(expr, {"x": RangeBounds(-1, 1)}) is None

    def test_product_of_nonnegative_monotone(self):
        expr = col("x") * col("y")
        bounds = {"x": RangeBounds(0, 2), "y": RangeBounds(1, 3)}
        assert _expr_monotone(expr, bounds) == {"x": 1, "y": 1}

    def test_exp_log_preserve_directions(self):
        bounds = {"x": RangeBounds(1, 2)}
        assert _expr_monotone(Exp(-col("x")), bounds) == {"x": -1}
        assert _expr_monotone(Log(col("x")), bounds) == {"x": 1}

    def test_division_by_negative_constant_flips(self):
        expr = col("x") / -2.0
        assert _expr_monotone(expr, {"x": RangeBounds(0, 1)}) == {"x": -1}


class TestCurvatureCertificates:
    def test_affine(self):
        expr = 2 * col("x") + 3 * col("y") - 1
        bounds = {"x": RangeBounds(0, 1), "y": RangeBounds(0, 1)}
        assert _expr_curvature(expr, bounds) == "affine"

    def test_square_of_affine_convex(self):
        expr = (2 * col("x") + 3 * col("y") - 1) ** 2
        bounds = {"x": RangeBounds(-3, 1), "y": RangeBounds(-1, 3)}
        assert _expr_curvature(expr, bounds) == "convex"

    def test_negated_square_concave(self):
        expr = -((col("x") - 1) ** 2)
        assert _expr_curvature(expr, {"x": RangeBounds(0, 2)}) == "concave"

    def test_exp_convex_log_concave(self):
        bounds = {"x": RangeBounds(1, 2)}
        assert _expr_curvature(Exp(col("x")), bounds) == "convex"
        assert _expr_curvature(Log(col("x")), bounds) == "concave"

    def test_abs_of_affine_convex(self):
        assert _expr_curvature(Abs(col("x") - 1), {"x": RangeBounds(0, 2)}) == "convex"

    def test_sum_of_convex_is_convex(self):
        expr = (col("x") ** 2) + Abs(col("x"))
        assert _expr_curvature(expr, {"x": RangeBounds(-1, 1)}) == "convex"

    def test_mixed_curvature_uncertified(self):
        expr = (col("x") ** 2) - (col("y") ** 2)
        bounds = {"x": RangeBounds(-1, 1), "y": RangeBounds(-1, 1)}
        assert _expr_curvature(expr, bounds) is None


class TestCornerAndOptim:
    def test_corner_values(self):
        expr = col("x") + 2 * col("y")
        bounds = {"x": RangeBounds(0, 1), "y": RangeBounds(0, 10)}
        assert corner_values(expr, bounds) == (0.0, 21.0)

    def test_monotone_corner_bounds_two_evaluations(self):
        expr = col("x") - col("y")
        bounds = {"x": RangeBounds(0, 1), "y": RangeBounds(0, 10)}
        result = monotone_corner_bounds(expr, bounds, {"x": 1, "y": -1})
        assert (result.a, result.b) == (-10.0, 1.0)

    def test_box_minimum_of_convex(self):
        expr = (col("x") - 0.3) ** 2 + (col("y") + 0.2) ** 2
        bounds = {"x": RangeBounds(-1, 1), "y": RangeBounds(-1, 1)}
        assert box_minimum(expr, bounds) == pytest.approx(0.0, abs=1e-8)

    def test_box_minimum_respects_constraints(self):
        expr = (col("x") - 5.0) ** 2  # unconstrained min at 5, outside box
        bounds = {"x": RangeBounds(0, 1)}
        assert box_minimum(expr, bounds) == pytest.approx(16.0, rel=1e-6)

    def test_box_maximum_of_concave(self):
        expr = -((col("x") - 0.5) ** 2) + 3.0
        bounds = {"x": RangeBounds(0, 1)}
        assert box_maximum(expr, bounds) == pytest.approx(3.0, abs=1e-8)


class TestDeriveRangeBounds:
    def test_appendix_example1(self):
        """Appendix B Example 1: (2c1 + 3c2 − 1)², c1 ∈ [−3,1], c2 ∈ [−1,3]
        derives [0, 100] (min via QP, max at corner (1, 3))."""
        expr = (2 * col("c1") + 3 * col("c2") - 1) ** 2
        bounds = {"c1": RangeBounds(-3, 1), "c2": RangeBounds(-1, 3)}
        derived = derive_range_bounds(expr, bounds)
        assert derived.a == pytest.approx(0.0, abs=1e-6)
        assert derived.b == pytest.approx(100.0)

    def test_monotone_exact(self):
        expr = 2 * col("x") + 3 * col("y")
        bounds = {"x": RangeBounds(0, 1), "y": RangeBounds(0, 1)}
        derived = derive_range_bounds(expr, bounds)
        assert (derived.a, derived.b) == (0.0, 5.0)

    def test_concave_case(self):
        expr = -((col("x") - 0.5) ** 2)
        derived = derive_range_bounds(expr, {"x": RangeBounds(0, 1)})
        assert derived.a == pytest.approx(-0.25)
        assert derived.b == pytest.approx(0.0, abs=1e-6)

    def test_fallback_to_interval(self):
        expr = col("x") * col("y")  # not certifiable over sign-mixed box
        bounds = {"x": RangeBounds(-1, 1), "y": RangeBounds(-2, 2)}
        derived = derive_range_bounds(expr, bounds)
        assert (derived.a, derived.b) == (-2.0, 2.0)

    def test_constant_expression(self):
        from repro.expressions.expr import Const

        derived = derive_range_bounds(Const(7.0), {})
        assert (derived.a, derived.b) == (7.0, 7.0)

    def test_missing_bounds_rejected(self):
        with pytest.raises(KeyError, match="missing"):
            derive_range_bounds(col("x") + col("y"), {"x": RangeBounds(0, 1)})

    @given(
        st.floats(-10, 10),
        st.floats(0.1, 10),
        st.floats(-10, 10),
        st.floats(0.1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_soundness(self, xa, xw, ya, yw):
        """Derived bounds always enclose the expression over the box —
        the invariant the executor's CI correctness rests on."""
        bounds = {
            "x": RangeBounds(xa, xa + xw),
            "y": RangeBounds(ya, ya + yw),
        }
        for expr in (
            2 * col("x") - col("y") + 3,
            (col("x") + col("y")) ** 2,
            Abs(col("x")) + Abs(col("y")),
            col("x") * col("y"),
        ):
            derived = derive_range_bounds(expr, bounds)
            rng = np.random.default_rng(7)
            for _ in range(15):
                point = {
                    "x": rng.uniform(bounds["x"].a, bounds["x"].b),
                    "y": rng.uniform(bounds["y"].a, bounds["y"].b),
                }
                value = expr.evaluate_point(point)
                assert derived.a - 1e-6 <= value <= derived.b + 1e-6
