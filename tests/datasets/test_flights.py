"""Tests for the synthetic Flights generator (the paper-data substitute)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.flights import (
    DEFAULT_AIRLINES,
    FlightsConfig,
    generate_flights,
    make_flights_scramble,
)


class TestSchema:
    def test_columns_match_paper(self, small_table):
        """§5.1: origin airport, airline, departure delay, departure time,
        day of week."""
        assert set(small_table.columns()) == {
            "Origin",
            "Airline",
            "DayOfWeek",
            "DepDelay",
            "DepTime",
        }

    def test_row_count(self, small_table):
        assert small_table.num_rows == 60_000

    def test_airlines_are_figure7b_carriers(self, small_table):
        names = set(small_table.categorical("Airline").dictionary)
        assert names == {spec.name for spec in DEFAULT_AIRLINES}

    def test_ord_exists_and_is_popular(self, small_table):
        origin = small_table.categorical("Origin")
        counts = np.bincount(origin.codes, minlength=origin.cardinality)
        ord_count = counts[origin.code_of("ORD")]
        assert ord_count > 0.02 * small_table.num_rows  # top-rank airport

    def test_day_of_week_domain(self, small_table):
        days = set(small_table.categorical("DayOfWeek").dictionary)
        assert days == set(range(1, 8))

    def test_dep_time_is_hhmm(self, small_table):
        times = small_table.continuous("DepTime")
        hours = times // 100
        minutes = times % 100
        assert hours.min() >= 5
        assert hours.max() <= 23
        assert minutes.max() < 60


class TestDistributionalProperties:
    def test_catalog_bounds_enclose_and_exceed_data(self, small_table):
        """Figure 2's regime: catalog range far wider than the data body."""
        bounds = small_table.catalog.bounds("DepDelay")
        delays = small_table.continuous("DepDelay")
        assert bounds.a <= delays.min()
        assert bounds.b >= delays.max()
        assert bounds.width > 8 * delays.std()

    def test_airline_means_ordered_as_figure7b(self):
        """The carriers' true mean delays preserve NW < DL < … < HP."""
        table = generate_flights(rows=400_000, seed=1)
        airline = table.categorical("Airline")
        delays = table.continuous("DepDelay")
        means = {}
        for code, name in enumerate(airline.dictionary):
            means[name] = delays[airline.codes == code].mean()
        spec_order = [spec.name for spec in DEFAULT_AIRLINES]
        measured = [means[name] for name in spec_order]
        assert measured == sorted(measured), means

    def test_hp_is_max_delay_airline(self):
        """F-q9's ground truth."""
        table = generate_flights(rows=300_000, seed=2)
        airline = table.categorical("Airline")
        delays = table.continuous("DepDelay")
        means = {
            name: delays[airline.codes == code].mean()
            for code, name in enumerate(airline.dictionary)
        }
        assert max(means, key=means.get) == "HP"

    def test_ord_mean_above_ten(self):
        """F-q4's ground truth: ORD's average delay exceeds 10."""
        table = generate_flights(rows=300_000, seed=3)
        origin = table.categorical("Origin")
        delays = table.continuous("DepDelay")
        ord_mean = delays[origin.codes == origin.code_of("ORD")].mean()
        assert ord_mean > 10.0

    def test_some_airports_have_negative_mean(self):
        """F-q5's HAVING < 0 must be non-trivial."""
        table = generate_flights(rows=400_000, seed=4)
        origin = table.categorical("Origin")
        delays = table.continuous("DepDelay")
        counts = np.bincount(origin.codes, minlength=origin.cardinality)
        negative = 0
        for code in range(origin.cardinality):
            if counts[code] > 200 and delays[origin.codes == code].mean() < 0:
                negative += 1
        assert negative >= 2

    def test_airline_spread_grows_with_departure_time(self):
        """Figure 8's mechanism: later departure filters increase the
        variance of per-airline mean delays."""
        table = generate_flights(rows=400_000, seed=5)
        airline = table.categorical("Airline")
        delays = table.continuous("DepDelay")
        times = table.continuous("DepTime")

        def spread(min_time):
            mask = times > min_time
            means = [
                delays[mask & (airline.codes == code)].mean()
                for code in range(airline.cardinality)
            ]
            return np.var(means)

        assert spread(2000) > spread(600)

    def test_zipf_airport_popularity(self, small_table):
        origin = small_table.categorical("Origin")
        counts = np.sort(np.bincount(origin.codes, minlength=origin.cardinality))[::-1]
        # Heavy head: the top 10 airports carry a large share of rows.
        assert counts[:10].sum() > 0.4 * small_table.num_rows

    def test_outliers_rare_but_present_at_scale(self):
        config = FlightsConfig(rows=500_000, outlier_rate=1e-4, seed=6)
        table = generate_flights(config=config)
        delays = table.continuous("DepDelay")
        outliers = (delays > 150).sum()
        assert 10 <= outliers <= 200


class TestReproducibility:
    def test_same_seed_same_data(self):
        first = generate_flights(rows=10_000, seed=11)
        second = generate_flights(rows=10_000, seed=11)
        np.testing.assert_array_equal(
            first.continuous("DepDelay"), second.continuous("DepDelay")
        )

    def test_different_seed_different_data(self):
        first = generate_flights(rows=10_000, seed=11)
        second = generate_flights(rows=10_000, seed=12)
        assert not np.array_equal(
            first.continuous("DepDelay"), second.continuous("DepDelay")
        )

    def test_scramble_convenience(self):
        scramble = make_flights_scramble(rows=5_000, seed=0, block_size=20)
        assert scramble.num_rows == 5_000
        assert scramble.block_size == 20
        assert scramble.table.catalog.bounds("DepDelay").a == -60.0

    def test_shorthand_overrides(self):
        table = generate_flights(rows=1_234, seed=99)
        assert table.num_rows == 1_234
