"""Tests for the microbenchmark distribution generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import (
    DATASET_GENERATORS,
    clustered_data,
    lognormal_data,
    outlier_data,
    two_point_data,
    uniform_data,
)


@pytest.mark.parametrize("name", sorted(DATASET_GENERATORS))
def test_all_generators_respect_bounds(name, rng):
    data, a, b = DATASET_GENERATORS[name](5_000, rng)
    assert data.size == 5_000
    assert data.min() >= a
    assert data.max() <= b


def test_uniform_spans_range(rng):
    data, a, b = uniform_data(50_000, rng)
    assert data.std() == pytest.approx((b - a) / np.sqrt(12), rel=0.05)


def test_two_point_worst_case_variance(rng):
    data, a, b = two_point_data(50_000, rng)
    assert set(np.unique(data)) == {a, b}
    assert data.std() == pytest.approx((b - a) / 2, rel=0.05)


def test_clustered_small_sigma(rng):
    data, a, b = clustered_data(20_000, rng, spread=0.01)
    assert data.std() < 0.02 * (b - a)


def test_outlier_range_inflated(rng):
    data, a, b = outlier_data(200_000, rng)
    body_max = np.quantile(data, 0.999)
    assert b > 50 * body_max  # catalog range dominated by outliers


def test_lognormal_clipped(rng):
    data, a, b = lognormal_data(10_000, rng, cap=100.0)
    assert data.max() <= 100.0
