"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main, parse_stopping
from repro.stopping import AbsoluteAccuracy, RelativeAccuracy, SamplesTaken


class TestParseStopping:
    def test_relative(self):
        stopping = parse_stopping("rel:0.5")
        assert isinstance(stopping, RelativeAccuracy)
        assert stopping.epsilon == 0.5

    def test_absolute(self):
        stopping = parse_stopping("abs:2.0")
        assert isinstance(stopping, AbsoluteAccuracy)
        assert stopping.epsilon == 2.0

    def test_samples(self):
        stopping = parse_stopping("samples:10000")
        assert isinstance(stopping, SamplesTaken)
        assert stopping.m == 10_000

    @pytest.mark.parametrize("spec", ["rel", "nope:1", "rel:abc", ""])
    def test_rejected(self, spec):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            parse_stopping(spec)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table5_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.rows == 500_000 and args.reps == 3

    def test_query_requires_sql(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query"])

    def test_unknown_bounder_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "SELECT 1", "--bounder", "nope"])


class TestCommands:
    def test_list(self):
        out = io.StringIO()
        assert main(["list"], out=out) == 0
        text = out.getvalue()
        assert "F-q1" in text and "bernstein+rt" in text and "table5" in text

    def test_coverage_small(self):
        out = io.StringIO()
        assert main(["coverage", "--trials", "30"], out=out) == 0
        text = out.getvalue()
        assert "CLT" in text and "miss rate" in text

    def test_query_scalar(self):
        out = io.StringIO()
        code = main(
            [
                "query",
                "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'",
                "--rows", "30000",
                "--stopping", "rel:0.5",
                "--delta", "1e-6",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "CI=[" in text and "rows read" in text

    def test_query_group_by_having(self):
        out = io.StringIO()
        code = main(
            [
                "query",
                "SELECT Airline FROM flights GROUP BY Airline "
                "HAVING AVG(DepDelay) > 0",
                "--rows", "30000",
                "--delta", "1e-6",
                "--strategy", "activepeek",
            ],
            out=out,
        )
        assert code == 0
        assert out.getvalue().count("CI=[") >= 2

    def test_fig8_small(self):
        out = io.StringIO()
        code = main(
            ["fig8", "--rows", "20000", "--delta", "1e-6"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Figure 8" in text and "bernstein+rt" in text

    def test_table5_single_query(self):
        out = io.StringIO()
        code = main(
            [
                "table5",
                "--rows", "30000",
                "--queries", "F-q1",
                "--reps", "1",
                "--delta", "1e-6",
            ],
            out=out,
        )
        assert code == 0
        assert "Table 5" in out.getvalue() and "F-q1" in out.getvalue()
