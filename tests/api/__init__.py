"""Tests for the connection/handle front-end (repro.api)."""
