"""Tests for connect(), Connection, QueryHandle, and the fluent builder."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.api import Connection, GatherResult, QueryHandle, connect
from repro.bounders import get_bounder
from repro.fastframe import (
    AggregateFunction,
    Eq,
    Query,
    Scramble,
    ScanStrategy,
    Session,
    Table,
)
from repro.stopping import (
    AbsoluteAccuracy,
    GroupsOrdered,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
)


@pytest.fixture(scope="module")
def table():
    rng = np.random.default_rng(0)
    n = 20_000
    return Table(
        continuous={"x": rng.gamma(2.0, 10.0, n)},
        categorical={
            "g": rng.integers(0, 8, n).astype(str),
            "h": rng.integers(0, 3, n).astype(str),
        },
        range_pad=0.1,
    )


@pytest.fixture(scope="module")
def scramble(table):
    return Scramble(table, rng=np.random.default_rng(1))


def _connect(scramble, **kwargs):
    defaults = dict(delta=1e-6, rng=np.random.default_rng(3))
    defaults.update(kwargs)
    return connect(scramble, **defaults)


class TestConnect:
    def test_accepts_scramble(self, scramble):
        conn = _connect(scramble)
        assert isinstance(conn, Connection)
        assert conn.scramble is scramble

    def test_accepts_table(self, table):
        conn = _connect(table)
        assert conn.scramble.num_rows == table.num_rows
        assert conn.scramble is not table

    def test_rejects_other_sources(self):
        with pytest.raises(TypeError, match="Scramble or a Table"):
            connect({"x": [1.0, 2.0]})

    def test_bounder_by_name_or_instance(self, scramble):
        assert _connect(scramble, bounder="hoeffding").bounder.name == "Hoeffding"
        bounder = get_bounder("bernstein+rt")
        assert _connect(scramble, bounder=bounder).bounder is bounder

    def test_rejects_non_ssi_bounder(self, scramble):
        with pytest.raises(ValueError, match="not SSI"):
            _connect(scramble, bounder="clt")

    def test_require_ssi_escape_hatch(self, scramble):
        conn = _connect(scramble, bounder="clt", require_ssi=False)
        assert not conn.bounder.ssi

    def test_strategy_by_name(self, scramble):
        conn = _connect(scramble, strategy="activepeek")
        assert conn.strategy.name == "ActivePeek"

    def test_ledger_validation_delegated(self, scramble):
        with pytest.raises(ValueError, match="policy"):
            _connect(scramble, policy="greedy")
        with pytest.raises(ValueError, match="session_delta"):
            _connect(scramble, delta=0.0)
        with pytest.raises(ValueError, match="max_queries"):
            _connect(scramble, max_queries=0)


class TestSqlHandles:
    def test_single_statement_returns_one_handle(self, scramble):
        conn = _connect(scramble)
        handle = conn.sql("SELECT g FROM t GROUP BY g HAVING AVG(x) > 20")
        assert isinstance(handle, QueryHandle)
        assert isinstance(handle.stopping, ThresholdSide)
        assert not handle.resolved

    def test_multi_statement_returns_handle_list(self, scramble):
        conn = _connect(scramble)
        handles = conn.sql(
            "SELECT g FROM t GROUP BY g HAVING AVG(x) > 20; "
            "SELECT AVG(x) FROM t WHERE g = '3';",
            stopping=RelativeAccuracy(0.5),
            name="dash",
        )
        assert isinstance(handles, list) and len(handles) == 2
        assert [h.name for h in handles] == ["dash#1", "dash#2"]
        assert isinstance(handles[1].stopping, RelativeAccuracy)

    def test_compile_is_lazy_and_free(self, scramble):
        conn = _connect(scramble)
        conn.sql("SELECT AVG(x) FROM t", stopping=RelativeAccuracy(0.5))
        assert conn.queries_run == 0
        assert conn.spent_delta == 0.0


class TestBuilder:
    def test_fluent_chain_compiles(self, scramble):
        conn = _connect(scramble)
        handle = (
            conn.table()
            .where("h", "1")
            .group_by("g")
            .named("fluent")
            .avg("x", rel=0.05)
        )
        query = handle.query
        assert query.aggregate is AggregateFunction.AVG
        assert query.group_by == ("g",)
        assert query.name == "fluent"
        assert isinstance(query.stopping, RelativeAccuracy)
        assert query.stopping.epsilon == 0.05

    def test_where_forms(self, scramble):
        conn = _connect(scramble)
        base = conn.table().where(Eq("g", "1")).where("h", "2").where("x", ">=", 5)
        handle = base.avg("x", abs=1.0)
        mask = handle.query.predicate.mask(
            scramble.table, np.arange(scramble.num_rows)
        )
        table = scramble.table
        expected = (
            (table.categorical("g").codes == table.categorical("g").code_of("1"))
            & (table.categorical("h").codes == table.categorical("h").code_of("2"))
            & (table.continuous("x") >= 5)
        )
        np.testing.assert_array_equal(mask, expected)

    def test_where_rejects_bad_shapes(self, scramble):
        conn = _connect(scramble)
        with pytest.raises(TypeError, match="where"):
            conn.table().where("x")
        with pytest.raises(TypeError, match="where"):
            conn.table().where("x", "!", 1)

    def test_builder_is_immutable(self, scramble):
        conn = _connect(scramble)
        base = conn.table().group_by("g")
        h1 = base.avg("x", above=20.0)
        h2 = base.count(samples=100)
        assert h1.query.aggregate is AggregateFunction.AVG
        assert h2.query.aggregate is AggregateFunction.COUNT
        assert h1.query.group_by == h2.query.group_by == ("g",)

    @pytest.mark.parametrize(
        "kwargs,expected",
        [
            ({"rel": 0.1}, RelativeAccuracy),
            ({"abs": 2.0}, AbsoluteAccuracy),
            ({"samples": 50}, SamplesTaken),
            ({"above": 10.0}, ThresholdSide),
            ({"below": 10.0}, ThresholdSide),
            ({"top": 3}, TopKSeparated),
            ({"bottom": 2}, TopKSeparated),
            ({"ordered": True}, GroupsOrdered),
            ({"stopping": SamplesTaken(10)}, SamplesTaken),
        ],
    )
    def test_stopping_keywords(self, scramble, kwargs, expected):
        conn = _connect(scramble)
        handle = conn.table().group_by("g").avg("x", **kwargs)
        assert isinstance(handle.stopping, expected)

    def test_exactly_one_stopping_specifier(self, scramble):
        conn = _connect(scramble)
        with pytest.raises(TypeError, match="exactly one"):
            conn.table().avg("x")
        with pytest.raises(TypeError, match="exactly one"):
            conn.table().avg("x", rel=0.1, abs=2.0)

    def test_zero_threshold_is_a_real_specifier(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().group_by("g").avg("x", above=0.0)
        assert isinstance(handle.stopping, ThresholdSide)
        assert handle.stopping.threshold == 0.0
        with pytest.raises(TypeError, match="exactly one"):
            conn.table().avg("x", above=0.0, rel=0.5)

    def test_median_terminal(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().group_by("g").median("x", rel=0.2)
        assert handle.query.aggregate is AggregateFunction.MEDIAN
        assert handle.query.percentile is None
        assert handle.query.quantile_p == 0.5

    def test_percentile_terminal(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().percentile("x", 0.95, abs=2.0)
        assert handle.query.aggregate is AggregateFunction.PERCENTILE
        assert handle.query.percentile == 0.95
        with pytest.raises(ValueError, match="percentile"):
            conn.table().percentile("x", 1.5, abs=2.0)

    def test_non_positive_topk_rejected(self, scramble):
        conn = _connect(scramble)
        for bad in ({"top": 0}, {"bottom": 0}, {"top": -2}):
            with pytest.raises(ValueError, match="positive integer"):
                conn.table().group_by("g").avg("x", **bad)


class TestHandleResolution:
    def test_result_charges_once_and_caches(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().where("g", "2").avg("x", rel=0.5)
        first = handle.result(start_block=5)
        assert conn.queries_run == 1
        assert handle.resolved
        assert handle.delta == pytest.approx(conn.session_delta / 100)
        assert first.delta == handle.delta
        assert handle.result() is first
        assert conn.queries_run == 1  # no double charge

    def test_ledger_settles_cost_counters(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().avg("x", rel=0.5)
        result = handle.result(start_block=0)
        entry = conn.audit()[0]
        assert entry.rows_read == result.metrics.rows_read > 0

    def test_even_policy_capacity_enforced(self, scramble):
        conn = _connect(scramble, max_queries=1)
        conn.table().avg("x", rel=0.5).result(start_block=0)
        with pytest.raises(RuntimeError, match="run all of them"):
            conn.table().avg("x", rel=0.5).result(start_block=0)

    def test_rounds_streams_and_seals(self, scramble):
        # Rounds fire between windows; shrink the lookahead window below
        # the (small) test scramble so several rounds occur.
        strategy = ScanStrategy()
        strategy.window_blocks = 160
        conn = _connect(
            scramble,
            round_rows=4_000,
            strategy=strategy,
            rng=np.random.default_rng(11),
        )
        handle = conn.table().group_by("g").avg("x", abs=2.0)
        updates = list(handle.rounds(start_block=2))
        assert len(updates) >= 2
        assert [u.round_index for u in updates] == list(
            range(1, len(updates) + 1)
        )
        assert updates[0].rows_read < updates[-1].rows_read
        for update in updates:
            assert set(map(len, update.groups)) == {1}  # decoded 1-col keys
        # Widths shrink (or stay) as rounds accumulate samples.
        first = max(s.interval.width for s in updates[0].groups.values())
        last = max(s.interval.width for s in updates[-1].groups.values())
        assert last <= first
        # The iteration sealed the handle.
        assert handle.resolved
        assert handle.result().metrics.rounds == len(updates)
        assert conn.queries_run == 1

    def test_rounds_matches_plain_result(self, scramble):
        def kwargs():
            strategy = ScanStrategy()
            strategy.window_blocks = 160
            return dict(
                round_rows=4_000,
                strategy=strategy,
                rng=np.random.default_rng(11),
            )

        conn_a = _connect(scramble, **kwargs())
        conn_b = _connect(scramble, **kwargs())
        h_a = conn_a.table().group_by("g").avg("x", abs=2.0)
        h_b = conn_b.table().group_by("g").avg("x", abs=2.0)
        list(h_a.rounds(start_block=2))
        streamed = h_a.result()
        plain = h_b.result(start_block=2)
        assert set(streamed.groups) == set(plain.groups)
        for key in streamed.groups:
            assert streamed.groups[key].interval.lo == pytest.approx(
                plain.groups[key].interval.lo, rel=1e-9, abs=1e-9
            )
            assert streamed.groups[key].interval.hi == pytest.approx(
                plain.groups[key].interval.hi, rel=1e-9, abs=1e-9
            )
        assert streamed.metrics.rows_read == plain.metrics.rows_read

    def test_abandoned_rounds_blocks_reexecution(self, scramble):
        conn = _connect(scramble, round_rows=2_000)
        handle = conn.table().group_by("g").avg("x", abs=2.0)
        iterator = handle.rounds(start_block=0)
        next(iterator)  # charge, then abandon
        iterator.close()
        with pytest.raises(RuntimeError, match="charged but never"):
            handle.result()

    def test_rounds_on_resolved_handle_refuses(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().avg("x", rel=0.5)
        handle.result(start_block=0)
        with pytest.raises(RuntimeError, match="already resolved"):
            next(iter(handle.rounds(start_block=0)))
        assert conn.queries_run == 1  # no second charge

    def test_rounds_validates_at_call_time_not_first_iteration(self, scramble):
        # The consumed-handle contract: rounds() is eager — a resolved
        # handle raises at the call itself, before any iteration.
        conn = _connect(scramble)
        handle = conn.table().avg("x", rel=0.5)
        handle.result(start_block=0)
        with pytest.raises(RuntimeError, match="already resolved"):
            handle.rounds(start_block=0)  # never iterated
        assert conn.queries_run == 1

    def test_rounds_charges_delta_at_call_time(self, scramble):
        conn = _connect(scramble)
        handle = conn.table().group_by("g").avg("x", abs=2.0)
        iterator = handle.rounds(start_block=0)
        # δ is committed the moment rounds() returns, not at first next().
        assert conn.queries_run == 1
        assert handle.delta is not None
        # An un-iterated but charged handle is spent, like an abandoned one.
        with pytest.raises(RuntimeError, match="charged but never"):
            handle.result()
        for _ in iterator:
            pass
        assert handle.resolved


class TestAbandonedRoundsMetrics:
    """Regression: an abandoned rounds() iterator must not leak its cost
    counters into the next execution's ExecutionMetrics.

    The bitmap-index probe counters live on the scramble's cached indexes
    and are merged-and-reset into a run's metrics at finalize().  An
    abandoned rounds() iterator never reached finalize(), so its probes
    sat on the shared indexes and the *next* query over the same scramble
    double-counted them.  rounds() now seals the abandoned run's
    accounting when the generator is closed.
    """

    @staticmethod
    def _make_scramble():
        # > 1 lookahead window (25,600 rows at the default geometry), so a
        # rounds() iterator can be abandoned before the scan is exhausted.
        rng = np.random.default_rng(17)
        n = 60_000
        table = Table(
            continuous={"x": rng.gamma(2.0, 10.0, n)},
            categorical={
                "g": rng.integers(0, 8, n).astype(str),
                "h": rng.integers(0, 3, n).astype(str),
            },
            range_pad=0.1,
        )
        return Scramble(table, rng=np.random.default_rng(18))

    @staticmethod
    def _connect(scramble, strategy, parallelism):
        # ActivePeek probes the bitmap index every window — the counters
        # whose attribution the regression is about.  The scan+parallel
        # leg instead probes through the predicate mask, with a lookahead
        # selection prefetched (and pending) at abandonment time.
        return connect(
            scramble,
            delta=1e-6,
            strategy=strategy,
            round_rows=5_000,
            engine="pool",
            parallelism=parallelism,
            rng=np.random.default_rng(3),
        )

    def _victim(self, conn):
        # An unachievable target: the iterator cannot complete on its
        # own, so closing it after one update abandons it mid-scan; the
        # WHERE clause gives the scan strategy predicate probes.
        return conn.table().where("h", "1").group_by("g").avg("x", abs=1e-9)

    def _follow_up_metrics(self, strategy, parallelism, abandon: bool):
        scramble = self._make_scramble()
        conn = self._connect(scramble, strategy, parallelism)
        if abandon:
            iterator = self._victim(conn).rounds(start_block=0)
            next(iterator)
            iterator.close()
        return self._victim(conn).result(start_block=0).metrics

    @pytest.mark.parametrize(
        "strategy,parallelism",
        [("activepeek", 1), ("scan", 2)],
        ids=["activepeek-serial", "scan-parallel-prefetch"],
    )
    def test_abandoned_rounds_does_not_double_count_next_metrics(
        self, strategy, parallelism
    ):
        clean = self._follow_up_metrics(strategy, parallelism, abandon=False)
        after_abandonment = self._follow_up_metrics(
            strategy, parallelism, abandon=True
        )
        assert clean.batch_probes > 0  # the counters under test exist
        assert after_abandonment.batch_probes == clean.batch_probes
        assert after_abandonment.index_probes == clean.index_probes
        assert after_abandonment.blocks_fetched == clean.blocks_fetched
        assert after_abandonment.values_gathered == clean.values_gathered
        assert after_abandonment.rows_read == clean.rows_read

    def test_abandonment_still_poisons_the_handle(self):
        scramble = self._make_scramble()
        conn = self._connect(scramble, "activepeek", 1)
        handle = conn.table().group_by("g").avg("x", abs=1e-9)
        iterator = handle.rounds(start_block=0)
        next(iterator)
        iterator.close()
        # Sealing the abandoned run's accounting must not resolve the
        # handle: its δ is spent and re-execution stays refused.
        assert not handle.resolved
        with pytest.raises(RuntimeError, match="charged but never"):
            handle.result()


class TestGather:
    def _handles(self, conn):
        return [
            conn.sql("SELECT g FROM t GROUP BY g HAVING AVG(x) > 20"),
            conn.table().where("g", "3").avg("x", rel=0.3),
            conn.table().group_by("g").count(abs=2_000.0),
        ]

    def test_gather_resolves_all_handles(self, scramble):
        conn = _connect(scramble)
        handles = self._handles(conn)
        batch = conn.gather(handles, start_block=7)
        assert isinstance(batch, GatherResult)
        assert len(batch) == 3
        for handle, result in zip(handles, batch):
            assert handle.resolved
            assert handle.result() is result
        assert conn.queries_run == 3

    def test_shared_cursor_reads_fewer_rows(self, scramble):
        conn = _connect(scramble)
        batch = conn.gather(self._handles(conn), start_block=7)
        assert batch.rows_read_shared < batch.rows_read_sequential
        assert 0.0 < batch.savings < 1.0
        # The union can never beat the most expensive single query.
        assert batch.rows_read_shared >= max(
            r.metrics.rows_read for r in batch.results
        )

    def test_gather_rejects_foreign_and_spent_handles(self, scramble):
        conn = _connect(scramble)
        other = _connect(scramble)
        with pytest.raises(ValueError, match="at least one"):
            conn.gather([])
        with pytest.raises(ValueError, match="different connection"):
            conn.gather([other.table().avg("x", rel=0.5)])
        spent = conn.table().avg("x", rel=0.5)
        spent.result(start_block=0)
        with pytest.raises(RuntimeError, match="already executed"):
            conn.gather([spent])
        duplicate = conn.table().avg("x", rel=0.5)
        with pytest.raises(ValueError, match="distinct"):
            conn.gather([duplicate, duplicate])

    def test_invalid_query_charges_nothing_and_poisons_nothing(self, scramble):
        """Lazy handles surface bad columns at resolution; the failure
        must not spend δ or strand the co-gathered valid handles."""
        conn = _connect(scramble)
        valid = conn.table().group_by("g").avg("x", abs=2.0)
        bogus = conn.table().avg("nonexistent", rel=0.5)
        with pytest.raises(KeyError):
            conn.gather([valid, bogus], start_block=0)
        assert conn.queries_run == 0
        assert conn.spent_delta == 0.0
        assert valid.result(start_block=0).groups  # still usable
        with pytest.raises(KeyError):
            conn.table().avg("nonexistent", rel=0.5).result(start_block=0)
        assert conn.queries_run == 1  # only the valid resolution charged

    def test_capacity_overflow_charges_nothing(self, scramble):
        conn = _connect(scramble, max_queries=2)
        handles = [conn.table().avg("x", rel=0.5) for _ in range(3)]
        with pytest.raises(RuntimeError, match="only 2 left"):
            conn.gather(handles, start_block=0)
        # The whole-batch pre-check fired before any charge: the budget is
        # untouched and every handle is still freshly usable.
        assert conn.queries_run == 0
        assert conn.spent_delta == 0.0
        assert conn.gather(handles[:2], start_block=0).results

    def test_gather_accepts_a_bare_handle(self, scramble):
        """conn.gather(conn.sql(text)) must work whatever the statement
        count — sql() returns a bare handle for one-statement scripts."""
        conn = _connect(scramble)
        batch = conn.gather(
            conn.sql("SELECT g FROM t GROUP BY g HAVING AVG(x) > 20"),
            start_block=4,
        )
        assert len(batch) == 1 and batch.handles[0].resolved

    def test_single_handle_gather_matches_sequential(self, scramble):
        conn_a = _connect(scramble)
        conn_b = _connect(scramble)
        batch = conn_a.gather(
            [conn_a.table().group_by("g").avg("x", abs=2.0)], start_block=4
        )
        solo = conn_b.table().group_by("g").avg("x", abs=2.0).result(start_block=4)
        gathered = batch[0]
        assert gathered.metrics.rows_read == solo.metrics.rows_read
        assert batch.rows_read_shared == solo.metrics.rows_read
        for key in solo.groups:
            assert gathered.groups[key].interval.lo == pytest.approx(
                solo.groups[key].interval.lo, rel=1e-9, abs=1e-9
            )


class TestBackwardCompatibility:
    def test_top_level_shims_warn_but_work(self, scramble):
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            executor = repro.ApproximateExecutor(
                scramble,
                get_bounder("bernstein+rt"),
                delta=1e-6,
                rng=np.random.default_rng(0),
            )
        query = Query(
            AggregateFunction.AVG, "x", RelativeAccuracy(0.5), group_by=("g",)
        )
        result = executor.execute(query, start_block=0)
        assert len(result.groups) == 8

        with pytest.warns(DeprecationWarning, match="repro.connect"):
            session = repro.Session(
                scramble, get_bounder("bernstein+rt"), session_delta=1e-6
            )
        assert session.execute(query, start_block=0).groups

    def test_session_is_rebuilt_on_connection(self, scramble):
        session = Session(
            scramble,
            get_bounder("bernstein+rt"),
            session_delta=1e-6,
            policy="harmonic",
            rng=np.random.default_rng(0),
        )
        assert isinstance(session.connection, Connection)
        query = Query(
            AggregateFunction.AVG, "x", RelativeAccuracy(0.5), name="compat"
        )
        session.execute(query, start_block=0)
        assert session.queries_run == session.connection.queries_run == 1
        assert session.audit()[0].name == "compat"
        assert session.spent_delta == session.connection.spent_delta
