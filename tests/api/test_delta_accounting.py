"""δ accounting under batching: gather() must spend exactly what the same
queries would spend resolved sequentially, under both ledger policies.

The §4.1 union bound only cares about the *sum* of allocated error
probabilities, but the contract here is stronger and exact: allocation
happens at charge time in resolution order, so the k-th query of a batch
receives bit-for-bit the δ the k-th query of a sequential session would.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.api import connect
from repro.bounders import get_bounder
from repro.fastframe import Scramble, Session, Table

POLICIES = ("even", "harmonic")
SESSION_DELTA = 1e-6


@pytest.fixture(scope="module")
def scramble():
    rng = np.random.default_rng(2)
    n = 20_000
    table = Table(
        continuous={"x": rng.gamma(2.0, 10.0, n)},
        categorical={"g": rng.integers(0, 8, n).astype(str)},
        range_pad=0.1,
    )
    return Scramble(table, rng=np.random.default_rng(3))


def _connection(scramble, policy):
    return connect(
        scramble,
        delta=SESSION_DELTA,
        policy=policy,
        max_queries=10,
        rng=np.random.default_rng(5),
    )


def _dashboard(conn):
    return [
        conn.sql("SELECT g FROM t GROUP BY g HAVING AVG(x) > 20"),
        conn.table().where("g", "3").avg("x", rel=0.3),
        conn.table().group_by("g").count(abs=2_000.0),
        conn.table().group_by("g").avg("x", top=2),
    ]


def _expected_deltas(policy, count):
    if policy == "even":
        return [SESSION_DELTA / 10] * count
    return [
        (6.0 / math.pi**2) * SESSION_DELTA / k**2 for k in range(1, count + 1)
    ]


@pytest.mark.parametrize("policy", POLICIES)
def test_gather_spends_exactly_sequential_deltas(scramble, policy):
    batched = _connection(scramble, policy)
    batch = batched.gather(_dashboard(batched), start_block=7)

    sequential = _connection(scramble, policy)
    results = [
        handle.result(start_block=7) for handle in _dashboard(sequential)
    ]

    batched_deltas = [entry.delta for entry in batched.audit()]
    sequential_deltas = [entry.delta for entry in sequential.audit()]
    assert batched_deltas == sequential_deltas  # exact, not approx
    assert batched_deltas == _expected_deltas(policy, len(results))
    assert batched.spent_delta == sequential.spent_delta
    assert batch.results[0].delta == batched_deltas[0]


@pytest.mark.parametrize("policy", POLICIES)
def test_gather_spends_exactly_what_legacy_session_would(scramble, policy):
    """The old Session front door and the new gather path share one ledger
    semantics: identical allocations for identical query sequences."""
    batched = _connection(scramble, policy)
    handles = _dashboard(batched)
    batched.gather(handles, start_block=7)

    session = Session(
        scramble,
        get_bounder("bernstein+rt"),
        session_delta=SESSION_DELTA,
        policy=policy,
        max_queries=10,
        rng=np.random.default_rng(5),
    )
    for handle in _dashboard(session.connection):
        session.execute(handle.query, start_block=7)

    assert [e.delta for e in batched.audit()] == [
        e.delta for e in session.audit()
    ]
    assert batched.spent_delta == session.spent_delta


@pytest.mark.parametrize("policy", POLICIES)
def test_batched_intervals_match_sequential(scramble, policy):
    """The acceptance contract: batching changes the physical scan, never
    the statistics — every interval matches sequential to <= 1e-9."""
    batched = _connection(scramble, policy)
    batch = batched.gather(_dashboard(batched), start_block=7)

    sequential = _connection(scramble, policy)
    results = [
        handle.result(start_block=7) for handle in _dashboard(sequential)
    ]

    for gathered, solo in zip(batch.results, results):
        assert set(gathered.groups) == set(solo.groups)
        assert gathered.metrics.rows_read == solo.metrics.rows_read
        for key, expected in solo.groups.items():
            got = gathered.groups[key]
            for left, right in (
                (got.interval.lo, expected.interval.lo),
                (got.interval.hi, expected.interval.hi),
                (got.count_interval.lo, expected.count_interval.lo),
                (got.count_interval.hi, expected.count_interval.hi),
                (got.estimate, expected.estimate),
            ):
                if np.isfinite(left) or np.isfinite(right):
                    assert left == pytest.approx(right, rel=1e-9, abs=1e-9)
            assert got.samples == expected.samples


def test_even_policy_capacity_counts_batched_queries(scramble):
    conn = connect(
        scramble,
        delta=SESSION_DELTA,
        policy="even",
        max_queries=2,
        rng=np.random.default_rng(5),
    )
    conn.gather(
        [
            conn.table().avg("x", rel=0.5),
            conn.table().group_by("g").avg("x", abs=5.0),
        ],
        start_block=0,
    )
    with pytest.raises(RuntimeError, match="run all of them"):
        conn.table().avg("x", rel=0.5).result(start_block=0)
