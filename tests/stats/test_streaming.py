"""Unit and property tests for streaming moment statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.streaming import ExtremaState, MomentState

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestMomentState:
    def test_empty_state(self):
        state = MomentState()
        assert state.count == 0
        assert state.mean == 0.0
        assert state.variance == 0.0
        assert state.std == 0.0

    def test_single_value(self):
        state = MomentState()
        state.update(5.0)
        assert state.count == 1
        assert state.mean == 5.0
        assert state.variance == 0.0

    def test_mean_matches_numpy(self, rng):
        values = rng.normal(3.0, 2.0, 1000)
        state = MomentState()
        for value in values:
            state.update(float(value))
        assert state.mean == pytest.approx(values.mean(), rel=1e-12)

    def test_variance_matches_numpy_biased(self, rng):
        values = rng.normal(0.0, 4.0, 500)
        state = MomentState()
        for value in values:
            state.update(float(value))
        assert state.variance == pytest.approx(values.var(), rel=1e-10)

    def test_batch_equals_sequential(self, rng):
        values = rng.lognormal(0, 1, 777)
        sequential = MomentState()
        for value in values:
            sequential.update(float(value))
        batched = MomentState()
        batched.update_batch(values)
        assert batched.count == sequential.count
        assert batched.mean == pytest.approx(sequential.mean, rel=1e-12)
        assert batched.m2 == pytest.approx(sequential.m2, rel=1e-9)

    def test_batch_in_chunks(self, rng):
        values = rng.normal(0, 1, 1000)
        whole = MomentState()
        whole.update_batch(values)
        chunked = MomentState()
        for chunk in np.array_split(values, 7):
            chunked.update_batch(chunk)
        assert chunked.mean == pytest.approx(whole.mean, rel=1e-12)
        assert chunked.variance == pytest.approx(whole.variance, rel=1e-9)

    def test_empty_batch_is_noop(self):
        state = MomentState()
        state.update(1.0)
        state.update_batch(np.array([]))
        assert state.count == 1

    def test_merge(self, rng):
        left_values = rng.normal(10, 3, 400)
        right_values = rng.normal(-5, 1, 300)
        left = MomentState()
        left.update_batch(left_values)
        right = MomentState()
        right.update_batch(right_values)
        left.merge(right)
        combined = np.concatenate([left_values, right_values])
        assert left.count == 700
        assert left.mean == pytest.approx(combined.mean(), rel=1e-12)
        assert left.variance == pytest.approx(combined.var(), rel=1e-9)

    def test_merge_into_empty(self):
        left = MomentState()
        right = MomentState()
        right.update_batch(np.array([1.0, 2.0, 3.0]))
        left.merge(right)
        assert left.count == 3
        assert left.mean == pytest.approx(2.0)

    def test_reflection_flips_mean_keeps_variance(self, rng):
        values = rng.uniform(0, 10, 200)
        state = MomentState()
        state.update_batch(values)
        reflected = state.reflected(0.0, 10.0)
        assert reflected.mean == pytest.approx(10.0 - state.mean, rel=1e-12)
        assert reflected.variance == pytest.approx(state.variance, rel=1e-12)
        assert reflected.count == state.count

    def test_reflection_matches_reflected_data(self, rng):
        values = rng.uniform(-3, 7, 150)
        state = MomentState()
        state.update_batch(values)
        direct = MomentState()
        direct.update_batch((-3.0 + 7.0) - values)
        reflected = state.reflected(-3.0, 7.0)
        assert reflected.mean == pytest.approx(direct.mean, rel=1e-12)
        assert reflected.variance == pytest.approx(direct.variance, rel=1e-9)

    def test_copy_is_independent(self):
        state = MomentState()
        state.update(1.0)
        clone = state.copy()
        clone.update(100.0)
        assert state.count == 1
        assert clone.count == 2

    def test_variance_never_negative_after_cancellation(self):
        # Huge offset stresses floating-point cancellation.
        state = MomentState()
        state.update_batch(np.full(100, 1e12) + np.linspace(0, 1e-4, 100))
        assert state.variance >= 0.0

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_property_matches_numpy(self, values):
        array = np.array(values)
        state = MomentState()
        state.update_batch(array)
        assert state.count == len(values)
        assert math.isclose(state.mean, array.mean(), rel_tol=1e-9, abs_tol=1e-6)
        assert state.variance >= 0.0
        assert math.isclose(
            state.variance, array.var(), rel_tol=1e-6, abs_tol=1e-4
        )

    @given(
        st.lists(finite_floats, min_size=1, max_size=80),
        st.lists(finite_floats, min_size=1, max_size=80),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_merge_associative_with_concat(self, left_values, right_values):
        left = MomentState()
        left.update_batch(np.array(left_values))
        right = MomentState()
        right.update_batch(np.array(right_values))
        left.merge(right)
        combined = np.array(left_values + right_values)
        assert math.isclose(
            left.mean, combined.mean(), rel_tol=1e-9, abs_tol=1e-6
        )


class TestExtremaState:
    def test_empty(self):
        state = ExtremaState()
        assert state.empty
        assert state.min == math.inf
        assert state.max == -math.inf

    def test_update(self):
        state = ExtremaState()
        for value in (3.0, -1.0, 7.0, 2.0):
            state.update(value)
        assert state.min == -1.0
        assert state.max == 7.0
        assert not state.empty

    def test_batch_matches_sequential(self, rng):
        values = rng.normal(0, 5, 300)
        sequential = ExtremaState()
        for value in values:
            sequential.update(float(value))
        batched = ExtremaState()
        batched.update_batch(values)
        assert batched.min == sequential.min
        assert batched.max == sequential.max

    def test_empty_batch_noop(self):
        state = ExtremaState()
        state.update_batch(np.array([]))
        assert state.empty

    def test_copy_is_independent(self):
        state = ExtremaState()
        state.update(1.0)
        clone = state.copy()
        clone.update(99.0)
        assert state.max == 1.0

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_min_max(self, values):
        state = ExtremaState()
        state.update_batch(np.array(values))
        assert state.min == min(values)
        assert state.max == max(values)
