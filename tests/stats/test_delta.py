"""Tests for error-probability budget accounting."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.delta import DEFAULT_DELTA, DeltaBudget, optstop_round_delta


class TestOptstopRoundDelta:
    def test_round_deltas_sum_to_delta(self):
        """Theorem 4: Σ_k (6/π²)·δ/k² = δ (Basel identity)."""
        delta = 0.05
        total = sum(optstop_round_delta(delta, k) for k in range(1, 200_000))
        assert total == pytest.approx(delta, rel=1e-4)

    def test_first_round_largest(self):
        deltas = [optstop_round_delta(0.1, k) for k in range(1, 10)]
        assert deltas == sorted(deltas, reverse=True)

    def test_decay_rate_is_quadratic(self):
        assert optstop_round_delta(0.1, 2) == pytest.approx(
            optstop_round_delta(0.1, 1) / 4.0
        )

    def test_rejects_bad_round(self):
        with pytest.raises(ValueError, match="round_index"):
            optstop_round_delta(0.1, 0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError, match="delta"):
            optstop_round_delta(1.5, 1)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_property_positive_and_below_delta(self, k):
        value = optstop_round_delta(0.2, k)
        assert 0.0 < value < 0.2


class TestDeltaBudget:
    def test_default_delta_matches_paper(self):
        assert DEFAULT_DELTA == 1e-15

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DeltaBudget(0.0)
        with pytest.raises(ValueError):
            DeltaBudget(1.0)

    def test_split_even(self):
        budget = DeltaBudget(0.1)
        assert budget.split_even(10).delta == pytest.approx(0.01)

    def test_split_even_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            DeltaBudget(0.1).split_even(0)

    def test_split_sides(self):
        lo, hi = DeltaBudget(0.1).split_sides()
        assert lo.delta == hi.delta == pytest.approx(0.05)

    def test_for_round_matches_function(self):
        budget = DeltaBudget(0.3)
        assert budget.for_round(5).delta == pytest.approx(
            optstop_round_delta(0.3, 5)
        )

    def test_split_unknown_n_default_alpha(self):
        """§4.1: α = 0.99 sends 1% of the budget to the N⁺ bound."""
        n_plus_delta, ci_budget = DeltaBudget(0.1).split_unknown_n()
        assert n_plus_delta == pytest.approx(0.001)
        assert ci_budget.delta == pytest.approx(0.099)
        assert n_plus_delta + ci_budget.delta == pytest.approx(0.1)

    def test_split_unknown_n_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            DeltaBudget(0.1).split_unknown_n(alpha=1.0)

    def test_composed_budget_never_exceeds_total(self):
        """A realistic composition stays within the union bound."""
        total = DeltaBudget(1e-6)
        per_view = total.split_even(25)
        spent = 0.0
        for round_index in range(1, 50):
            round_budget = per_view.for_round(round_index)
            n_plus, ci = round_budget.split_unknown_n()
            spent += 25 * (n_plus + ci.delta)
        assert spent <= total.delta * (1 + 1e-9)

    @given(
        st.floats(min_value=1e-12, max_value=0.5),
        st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_splits_shrink(self, delta, parts):
        budget = DeltaBudget(delta)
        assert budget.split_even(parts).delta <= budget.delta
        assert math.isclose(budget.split_even(parts).delta * parts, delta)
