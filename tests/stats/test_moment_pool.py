"""Property tests: MomentPool slots vs scalar streaming states.

The struct-of-arrays pool must evolve each slot exactly like an
independent :class:`MomentState` fed the same values (up to
floating-point summation order) — the invariant the vectorized
executor's parity rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats.streaming import MomentPool, MomentState

RTOL = 1e-9


def _random_batches(rng, size, num_batches, scale=1.0, offset=0.0):
    for _ in range(num_batches):
        count = int(rng.integers(0, 400))
        indices = np.sort(rng.integers(0, size, count)).astype(np.int64)
        values = rng.normal(offset, scale, count)
        yield indices, values


@pytest.mark.parametrize("seed", range(8))
def test_moment_pool_matches_scalar_states(seed):
    rng = np.random.default_rng(seed)
    size = int(rng.integers(1, 12))
    scale = float(rng.uniform(0.1, 100.0))
    offset = float(rng.uniform(-1e4, 1e4))
    pool = MomentPool(size)
    states = [MomentState() for _ in range(size)]
    for indices, values in _random_batches(rng, size, 6, scale, offset):
        pool.update_indexed(indices, values)
        for slot in range(size):
            mask = indices == slot
            if mask.any():
                states[slot].update_batch(values[mask])
    for slot, state in enumerate(states):
        assert pool.count[slot] == state.count
        assert pool.mean[slot] == pytest.approx(state.mean, rel=RTOL, abs=1e-12)
        assert pool.m2[slot] == pytest.approx(state.m2, rel=1e-6, abs=1e-6 * scale**2)
        assert pool.variance[slot] == pytest.approx(
            state.variance, rel=1e-6, abs=1e-9 * scale**2
        )


def test_moment_pool_empty_batches_are_noops():
    pool = MomentPool(3)
    pool.update_indexed(np.array([], dtype=np.int64), np.array([]))
    assert pool.count.sum() == 0
    assert pool.mean.tolist() == [0.0, 0.0, 0.0]


def test_moment_pool_single_slot_matches_update_batch():
    """One slot receiving everything reduces to MomentState.update_batch."""
    rng = np.random.default_rng(3)
    values = rng.gamma(3.0, 50.0, 10_000)
    pool = MomentPool(1)
    pool.update_indexed(np.zeros(values.size, dtype=np.int64), values)
    state = MomentState()
    state.update_batch(values)
    assert pool.count[0] == state.count
    assert pool.mean[0] == pytest.approx(state.mean, rel=1e-12)
    assert pool.m2[0] == pytest.approx(state.m2, rel=1e-9)


def test_moment_pool_mean_accuracy_near_pairwise():
    """The corrected two-pass mean must not inherit bincount's sequential
    summation error (the exhausted-census exactness depends on this)."""
    rng = np.random.default_rng(9)
    values = rng.normal(59.7, 17.0, 20_000)
    pool = MomentPool(1)
    pool.update_indexed(np.zeros(values.size, dtype=np.int64), values)
    assert pool.mean[0] == pytest.approx(float(values.mean()), abs=5e-13)


def test_std_of_matches_full_std():
    rng = np.random.default_rng(21)
    pool = MomentPool(6)
    for indices, values in _random_batches(rng, 6, 4, scale=30.0):
        pool.update_indexed(indices, values)
    subset = np.array([0, 2, 5])
    assert np.allclose(pool.std_of(subset), pool.std[subset], rtol=1e-12)


def test_merge_arrays_matches_pairwise_merge():
    rng = np.random.default_rng(11)
    size = 5
    pool = MomentPool(size)
    states = [MomentState() for _ in range(size)]
    for _ in range(3):
        counts = rng.integers(0, 50, size)
        means = rng.normal(0, 10, size)
        m2s = rng.uniform(0, 100, size) * np.maximum(counts - 1, 0)
        pool.merge_arrays(counts, means, m2s)
        for slot in range(size):
            states[slot]._merge(int(counts[slot]), float(means[slot]), float(m2s[slot]))
    for slot, state in enumerate(states):
        assert pool.count[slot] == state.count
        assert pool.mean[slot] == pytest.approx(state.mean, rel=RTOL, abs=1e-12)
        assert pool.m2[slot] == pytest.approx(state.m2, rel=1e-9, abs=1e-9)
