"""Tests for SQL→Query compilation, including all nine Figure 5 queries."""

import numpy as np
import pytest

from repro.expressions import Expression
from repro.fastframe import AggregateFunction, And, Compare, Eq, In, Not
from repro.sql import SqlCompileError, parse_query
from repro.stopping import (
    GroupsOrdered,
    RelativeAccuracy,
    ThresholdSide,
    TopKSeparated,
)

#: The paper's Figure 5, verbatim (modulo whitespace), with the stopping
#: condition Table 4 assigns to each.
FIGURE5_SQL = {
    "F-q1": "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'",
    "F-q2": (
        "SELECT Airline FROM flights "
        "GROUP BY Airline HAVING AVG(DepDelay) > 0"
    ),
    "F-q3": (
        "SELECT Airline FROM flights WHERE DepTime > 10:50pm "
        "GROUP BY Airline ORDER BY AVG(DepDelay) ASC LIMIT 2"
    ),
    "F-q4": (
        "SELECT (CASE WHEN AVG(DepDelay) > 10 THEN 1 ELSE 0 END) "
        "FROM flights WHERE Origin = 'ORD'"
    ),
    "F-q5": (
        "SELECT Origin FROM flights "
        "GROUP BY Origin HAVING AVG(DepDelay) < 0"
    ),
    "F-q6": (
        "SELECT DayOfWeek, Origin FROM flights "
        "WHERE DepTime > 1:50pm GROUP BY DayOfWeek, Origin "
        "ORDER BY AVG(DepDelay) DESC LIMIT 5"
    ),
    "F-q7": (
        "SELECT DayOfWeek, AVG(DepDelay) FROM flights "
        "WHERE Airline = 'HP' GROUP BY DayOfWeek "
        "ORDER BY AVG(DepDelay)"
    ),
    "F-q8": (
        "SELECT Origin FROM flights GROUP BY Origin "
        "ORDER BY AVG(DepDelay) DESC LIMIT 1"
    ),
    "F-q9": (
        "SELECT Airline FROM flights GROUP BY Airline "
        "ORDER BY AVG(DepDelay) DESC LIMIT 1"
    ),
}


class TestFigure5:
    def test_fq1(self):
        query = parse_query(FIGURE5_SQL["F-q1"], stopping=RelativeAccuracy(0.5))
        assert query.aggregate is AggregateFunction.AVG
        assert query.column == "DepDelay"
        assert isinstance(query.predicate, Eq)
        assert isinstance(query.stopping, RelativeAccuracy)

    def test_fq2(self):
        query = parse_query(FIGURE5_SQL["F-q2"])
        assert query.group_by == ("Airline",)
        assert isinstance(query.stopping, ThresholdSide)
        assert query.stopping.threshold == 0.0

    def test_fq3(self):
        query = parse_query(FIGURE5_SQL["F-q3"])
        assert isinstance(query.predicate, Compare)
        assert query.predicate.threshold == 2250.0
        assert isinstance(query.stopping, TopKSeparated)
        assert query.stopping.k == 2 and query.stopping.largest is False

    def test_fq4(self):
        query = parse_query(FIGURE5_SQL["F-q4"])
        assert isinstance(query.stopping, ThresholdSide)
        assert query.stopping.threshold == 10.0
        assert query.group_by == ()

    def test_fq5(self):
        query = parse_query(FIGURE5_SQL["F-q5"])
        assert query.group_by == ("Origin",)
        assert isinstance(query.stopping, ThresholdSide)

    def test_fq6(self):
        query = parse_query(FIGURE5_SQL["F-q6"])
        assert query.group_by == ("DayOfWeek", "Origin")
        assert query.predicate.threshold == 1350.0
        assert query.stopping.k == 5 and query.stopping.largest is True

    def test_fq7(self):
        query = parse_query(FIGURE5_SQL["F-q7"])
        assert isinstance(query.stopping, GroupsOrdered)
        assert isinstance(query.predicate, Eq)

    @pytest.mark.parametrize("name", ["F-q8", "F-q9"])
    def test_top1_queries(self, name):
        query = parse_query(FIGURE5_SQL[name])
        assert query.stopping.k == 1 and query.stopping.largest is True

    def test_matches_programmatic_builders(self):
        """SQL compilation and the handwritten builders agree on structure."""
        from repro.experiments import build_query

        sql_query = parse_query(FIGURE5_SQL["F-q3"])
        built = build_query("F-q3")
        assert sql_query.aggregate is built.aggregate
        assert sql_query.column == built.column
        assert sql_query.group_by == built.group_by
        assert type(sql_query.stopping) is type(built.stopping)
        assert sql_query.stopping.k == built.stopping.k
        assert sql_query.predicate.threshold == built.predicate.threshold


class TestPredicateLowering:
    def test_not_equal(self):
        query = parse_query(
            "SELECT AVG(x) FROM t WHERE Origin != 'ORD'",
            stopping=RelativeAccuracy(0.5),
        )
        assert isinstance(query.predicate, Not)
        assert isinstance(query.predicate.inner, Eq)

    def test_in_list(self):
        query = parse_query(
            "SELECT AVG(x) FROM t WHERE Origin IN ('ORD', 'SFO')",
            stopping=RelativeAccuracy(0.5),
        )
        assert isinstance(query.predicate, In)
        assert query.predicate.values == ("ORD", "SFO")

    def test_flipped_comparison(self):
        query = parse_query(
            "SELECT AVG(x) FROM t WHERE 1000 < DepTime",
            stopping=RelativeAccuracy(0.5),
        )
        assert isinstance(query.predicate, Compare)
        assert query.predicate.op == ">"

    def test_and_or_combination(self):
        query = parse_query(
            "SELECT AVG(x) FROM t WHERE a = 'p' AND (b = 'q' OR c > 1)",
            stopping=RelativeAccuracy(0.5),
        )
        assert isinstance(query.predicate, And)

    def test_string_ordering_rejected(self):
        with pytest.raises(SqlCompileError, match="not defined for string"):
            parse_query(
                "SELECT AVG(x) FROM t WHERE Origin > 'ORD'",
                stopping=RelativeAccuracy(0.5),
            )


class TestExpressionAggregates:
    def test_arithmetic_argument_becomes_expression(self):
        query = parse_query(
            "SELECT AVG(2 * DepDelay + 1) FROM flights",
            stopping=RelativeAccuracy(0.5),
        )
        assert isinstance(query.column, Expression)

    def test_bare_column_stays_string(self):
        query = parse_query(
            "SELECT AVG(DepDelay) FROM flights", stopping=RelativeAccuracy(0.5)
        )
        assert query.column == "DepDelay"

    def test_count_star(self):
        query = parse_query(
            "SELECT COUNT(*) FROM flights WHERE Origin = 'ORD'",
            stopping=RelativeAccuracy(0.5),
        )
        assert query.aggregate is AggregateFunction.COUNT
        assert query.column is None

    def test_sum(self):
        query = parse_query(
            "SELECT SUM(DepDelay) FROM flights", stopping=RelativeAccuracy(0.5)
        )
        assert query.aggregate is AggregateFunction.SUM


class TestQuantileCompilation:
    def test_median_compiles(self):
        query = parse_query(
            "SELECT g, MEDIAN(x) FROM t GROUP BY g",
            stopping=RelativeAccuracy(0.3),
        )
        assert query.aggregate is AggregateFunction.MEDIAN
        assert query.column == "x"
        assert query.percentile is None
        assert query.quantile_p == 0.5

    def test_percentile_level_threads_through(self):
        query = parse_query(
            "SELECT PERCENTILE(x, 0.95) FROM t",
            stopping=RelativeAccuracy(0.3),
        )
        assert query.aggregate is AggregateFunction.PERCENTILE
        assert query.percentile == 0.95
        assert query.quantile_p == 0.95

    def test_median_topk_infers_separation(self):
        query = parse_query(
            "SELECT g FROM t GROUP BY g ORDER BY MEDIAN(x) DESC LIMIT 3"
        )
        assert query.aggregate is AggregateFunction.MEDIAN
        assert isinstance(query.stopping, TopKSeparated)
        assert query.stopping.k == 3
        assert query.stopping.largest

    def test_percentile_having_threshold(self):
        query = parse_query(
            "SELECT g FROM t GROUP BY g HAVING PERCENTILE(x, 0.9) > 25"
        )
        assert isinstance(query.stopping, ThresholdSide)
        assert query.stopping.threshold == 25.0

    def test_median_sql_matches_exact(self):
        from repro.bounders import get_bounder
        from repro.datasets import make_flights_scramble
        from repro.fastframe import ApproximateExecutor, ExactExecutor

        scramble = make_flights_scramble(rows=20_000, seed=0)
        query = parse_query(
            "SELECT Airline, MEDIAN(DepDelay) FROM flights GROUP BY Airline",
            stopping=RelativeAccuracy(0.25),
        )
        executor = ApproximateExecutor(
            scramble,
            get_bounder("bernstein+rt"),
            delta=1e-6,
            rng=np.random.default_rng(0),
        )
        approx = executor.execute(query)
        exact = ExactExecutor(scramble).execute(query)
        assert set(approx.groups) == set(exact.groups)
        for key, truth in exact.groups.items():
            group = approx.groups[key]
            assert (
                group.interval.lo - 1e-9
                <= truth.estimate
                <= group.interval.hi + 1e-9
            ), key


class TestCompileErrors:
    def test_no_aggregate(self):
        with pytest.raises(SqlCompileError, match="no aggregate"):
            parse_query("SELECT Origin FROM flights GROUP BY Origin")

    def test_two_distinct_aggregates(self):
        with pytest.raises(SqlCompileError, match="distinct aggregates"):
            parse_query(
                "SELECT AVG(x), SUM(y) FROM t", stopping=RelativeAccuracy(0.5)
            )

    def test_missing_stopping(self):
        with pytest.raises(SqlCompileError, match="stopping"):
            parse_query("SELECT AVG(x) FROM t")

    def test_ungrouped_bare_column(self):
        with pytest.raises(SqlCompileError, match="GROUP BY"):
            parse_query(
                "SELECT Origin, AVG(x) FROM t", stopping=RelativeAccuracy(0.5)
            )

    def test_order_by_non_aggregate(self):
        with pytest.raises(SqlCompileError, match="ORDER BY"):
            parse_query("SELECT AVG(x) FROM t ORDER BY y")

    def test_having_against_expression(self):
        with pytest.raises(SqlCompileError, match="numeric literal"):
            parse_query(
                "SELECT a FROM t GROUP BY a HAVING AVG(x) > AVG(x)"
            )


class TestEndToEnd:
    def test_sql_query_executes_and_matches_exact(self):
        from repro.bounders import get_bounder
        from repro.datasets import make_flights_scramble
        from repro.fastframe import ApproximateExecutor, ExactExecutor

        scramble = make_flights_scramble(rows=40_000, seed=0)
        query = parse_query(FIGURE5_SQL["F-q2"])
        executor = ApproximateExecutor(
            scramble,
            get_bounder("bernstein+rt"),
            delta=1e-6,
            rng=np.random.default_rng(0),
        )
        approx = executor.execute(query)
        exact = ExactExecutor(scramble).execute(query)
        exact_above = {k for k, g in exact.groups.items() if g.estimate > 0.0}
        assert approx.keys_above(0.0) == exact_above
