"""Property-based tests for the SQL pipeline: generated queries must lex,
parse, and compile without crashing, and compiled structure must match the
generating components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastframe import AggregateFunction
from repro.sql import parse, parse_query, tokenize
from repro.stopping import (
    GroupsOrdered,
    RelativeAccuracy,
    ThresholdSide,
    TopKSeparated,
)

_IDENT = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper()
    not in {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "ASC", "DESC", "AND", "OR", "NOT", "IN", "AS", "AVG", "SUM", "COUNT",
        "CASE", "WHEN", "THEN", "ELSE", "END",
    }
)
_NUMBER = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda x: round(x, 3))
_STRING = st.from_regex(r"[A-Za-z0-9 ]{1,12}", fullmatch=True)
_AGG = st.sampled_from(["AVG", "SUM"])
_CMP = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])


@st.composite
def _where_clause(draw) -> str:
    column = draw(_IDENT)
    kind = draw(st.sampled_from(["eq", "cmp", "in", "and", "not"]))
    if kind == "eq":
        value = draw(_STRING)
        return f"{column} = '{value}'"
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">="]))
        return f"{column} {op} {draw(_NUMBER)}"
    if kind == "in":
        values = draw(st.lists(_STRING, min_size=1, max_size=3))
        body = ", ".join(f"'{value}'" for value in values)
        return f"{column} IN ({body})"
    if kind == "and":
        left = draw(_where_clause())
        right = draw(_where_clause())
        return f"({left}) AND ({right})"
    inner = draw(_where_clause())
    return f"NOT ({inner})"


@st.composite
def _query_sql(draw) -> tuple[str, dict]:
    """A random single-aggregate SELECT plus its expected structure."""
    agg = draw(_AGG)
    value_column = draw(_IDENT)
    table = draw(_IDENT)
    group_column = draw(_IDENT)
    shape = draw(st.sampled_from(["scalar", "having", "order_limit", "order"]))
    where = draw(st.one_of(st.none(), _where_clause()))
    where_sql = f" WHERE {where}" if where else ""
    expected: dict = {"aggregate": agg, "column": value_column}
    if shape == "scalar":
        sql = f"SELECT {agg}({value_column}) FROM {table}{where_sql}"
        expected["stopping"] = RelativeAccuracy
        expected["group_by"] = ()
    elif shape == "having":
        threshold = draw(_NUMBER)
        op = draw(st.sampled_from(["<", ">"]))
        sql = (
            f"SELECT {group_column} FROM {table}{where_sql} "
            f"GROUP BY {group_column} HAVING {agg}({value_column}) {op} {threshold}"
        )
        expected["stopping"] = ThresholdSide
        expected["group_by"] = (group_column,)
        expected["threshold"] = threshold
    elif shape == "order_limit":
        k = draw(st.integers(min_value=1, max_value=9))
        direction = draw(st.sampled_from(["ASC", "DESC"]))
        sql = (
            f"SELECT {group_column} FROM {table}{where_sql} "
            f"GROUP BY {group_column} "
            f"ORDER BY {agg}({value_column}) {direction} LIMIT {k}"
        )
        expected["stopping"] = TopKSeparated
        expected["group_by"] = (group_column,)
        expected["k"] = k
        expected["largest"] = direction == "DESC"
    else:
        sql = (
            f"SELECT {group_column}, {agg}({value_column}) FROM {table}{where_sql} "
            f"GROUP BY {group_column} ORDER BY {agg}({value_column})"
        )
        expected["stopping"] = GroupsOrdered
        expected["group_by"] = (group_column,)
    return sql, expected


class TestSqlProperties:
    @given(_query_sql())
    @settings(max_examples=150, deadline=None)
    def test_generated_queries_compile(self, sql_and_expected):
        sql, expected = sql_and_expected
        query = parse_query(sql, stopping=RelativeAccuracy(0.5))
        assert query.aggregate is AggregateFunction[expected["aggregate"]]
        assert query.column == expected["column"]
        assert query.group_by == expected["group_by"]
        assert isinstance(query.stopping, expected["stopping"])
        if "threshold" in expected:
            assert query.stopping.threshold == expected["threshold"]
        if "k" in expected:
            assert query.stopping.k == expected["k"]
            assert query.stopping.largest == expected["largest"]

    @given(_query_sql())
    @settings(max_examples=100, deadline=None)
    def test_tokenize_parse_stable(self, sql_and_expected):
        """Lexing is deterministic and parsing a statement twice yields
        equal ASTs (dataclass equality)."""
        sql, _ = sql_and_expected
        assert tokenize(sql) == tokenize(sql)
        assert parse(sql) == parse(sql)

    @given(st.text(alphabet="SELECT FROMWHERE()<>=',.0123456789abc", max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_garbage_never_crashes_unexpectedly(self, text):
        """Arbitrary near-SQL garbage either parses or raises the two
        documented error types — never an unhandled exception."""
        from repro.sql import SqlCompileError, SqlSyntaxError

        try:
            parse_query(text, stopping=RelativeAccuracy(0.5))
        except (SqlSyntaxError, SqlCompileError, KeyError):
            pass
