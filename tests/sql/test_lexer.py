"""Tests for the SQL tokenizer."""

import pytest

from repro.sql.lexer import SqlSyntaxError, TokenType, tokenize


def _values(sql):
    return [(t.type, t.value) for t in tokenize(sql) if t.type is not TokenType.END]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        assert _values("select FROM Where") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
            (TokenType.KEYWORD, "WHERE"),
        ]

    def test_identifiers_preserve_case(self):
        assert _values("DepDelay origin_2") == [
            (TokenType.IDENTIFIER, "DepDelay"),
            (TokenType.IDENTIFIER, "origin_2"),
        ]

    def test_numbers(self):
        assert _values("10 2.5 .5 1e3") == [
            (TokenType.NUMBER, 10.0),
            (TokenType.NUMBER, 2.5),
            (TokenType.NUMBER, 0.5),
            (TokenType.NUMBER, 1000.0),
        ]

    def test_strings_with_escape(self):
        assert _values("'ORD' 'O''Hare'") == [
            (TokenType.STRING, "ORD"),
            (TokenType.STRING, "O'Hare"),
        ]

    def test_operators_longest_match(self):
        assert _values("<= >= <> != < > =") == [
            (TokenType.OPERATOR, "<="),
            (TokenType.OPERATOR, ">="),
            (TokenType.OPERATOR, "<>"),
            (TokenType.OPERATOR, "!="),
            (TokenType.OPERATOR, "<"),
            (TokenType.OPERATOR, ">"),
            (TokenType.OPERATOR, "="),
        ]

    def test_punctuation(self):
        assert _values("(a, b);") == [
            (TokenType.PUNCT, "("),
            (TokenType.IDENTIFIER, "a"),
            (TokenType.PUNCT, ","),
            (TokenType.IDENTIFIER, "b"),
            (TokenType.PUNCT, ")"),
            (TokenType.PUNCT, ";"),
        ]

    def test_end_token_present(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.END


class TestTimeLiterals:
    def test_pm(self):
        assert _values("1:50pm") == [(TokenType.NUMBER, 1350.0)]

    def test_am(self):
        assert _values("9:05am") == [(TokenType.NUMBER, 905.0)]

    def test_noon_and_midnight(self):
        assert _values("12:00pm 12:00am") == [
            (TokenType.NUMBER, 1200.0),
            (TokenType.NUMBER, 0.0),
        ]

    def test_24_hour(self):
        assert _values("22:50") == [(TokenType.NUMBER, 2250.0)]

    def test_invalid_minutes(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("10:75pm")

    def test_invalid_hour(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("25:00")


class TestComments:
    def test_hash_comment(self):
        assert _values("# hello\nSELECT") == [(TokenType.KEYWORD, "SELECT")]

    def test_dash_comment(self):
        assert _values("SELECT -- trailing\nFROM") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
        ]


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected character"):
            tokenize("SELECT @")

    def test_error_carries_position(self):
        try:
            tokenize("ab @")
        except SqlSyntaxError as exc:
            assert exc.position == 3
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
