"""Tests for the SQL BETWEEN predicate."""

import numpy as np
import pytest

from repro.fastframe import And, Compare
from repro.sql import SqlCompileError, SqlSyntaxError, parse, parse_query
from repro.sql.ast import Between, ColumnRef, NumberLiteral
from repro.stopping import RelativeAccuracy


class TestParsing:
    def test_between_shape(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE DepTime BETWEEN 9:00am AND 5:00pm")
        assert stmt.where == Between(
            ColumnRef("DepTime"), NumberLiteral(900.0), NumberLiteral(1700.0)
        )

    def test_between_composes_with_and(self):
        stmt = parse(
            "SELECT AVG(x) FROM t WHERE a BETWEEN 1 AND 2 AND b > 3"
        )
        # the first AND binds to BETWEEN; the second joins the conjunction
        assert stmt.where.op == "AND"
        assert isinstance(stmt.where.parts[0], Between)

    def test_between_requires_and(self):
        with pytest.raises(SqlSyntaxError, match="AND"):
            parse("SELECT AVG(x) FROM t WHERE a BETWEEN 1 2")


class TestCompilation:
    def test_lowers_to_conjunction(self):
        query = parse_query(
            "SELECT AVG(DepDelay) FROM flights WHERE DepTime BETWEEN 1000 AND 2000",
            stopping=RelativeAccuracy(0.5),
        )
        assert isinstance(query.predicate, And)
        low, high = query.predicate.parts
        assert isinstance(low, Compare) and low.op == ">=" and low.threshold == 1000.0
        assert isinstance(high, Compare) and high.op == "<=" and high.threshold == 2000.0

    def test_string_endpoints_rejected(self):
        with pytest.raises(SqlCompileError, match="numeric"):
            parse_query(
                "SELECT AVG(x) FROM t WHERE a BETWEEN 'p' AND 'q'",
                stopping=RelativeAccuracy(0.5),
            )

    def test_executes_end_to_end(self):
        from repro.bounders import get_bounder
        from repro.datasets import make_flights_scramble
        from repro.fastframe import ApproximateExecutor, ExactExecutor

        scramble = make_flights_scramble(rows=30_000, seed=0)
        query = parse_query(
            "SELECT AVG(DepDelay) FROM flights "
            "WHERE DepTime BETWEEN 12:00pm AND 6:00pm",
            stopping=RelativeAccuracy(0.5),
        )
        approx = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(1),
        ).execute(query)
        truth = ExactExecutor(scramble).execute(query).scalar().estimate
        interval = approx.scalar().interval
        slack = 1e-9 * max(1.0, abs(truth))
        assert interval.lo - slack <= truth <= interval.hi + slack
