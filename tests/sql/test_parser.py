"""Tests for the SQL parser (AST shapes)."""

import pytest

from repro.sql.ast import (
    AggregateCall,
    BinaryArith,
    BoolOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    InList,
    NotOp,
    NumberLiteral,
    StringLiteral,
)
from repro.sql.lexer import SqlSyntaxError
from repro.sql.parser import parse


class TestSelectShapes:
    def test_scalar_aggregate(self):
        stmt = parse("SELECT AVG(DepDelay) FROM flights")
        assert stmt.table == "flights"
        assert stmt.select[0].expression == AggregateCall("AVG", ColumnRef("DepDelay"))
        assert stmt.where is None and stmt.group_by == ()

    def test_count_star(self):
        stmt = parse("SELECT COUNT(*) FROM flights")
        assert stmt.select[0].expression == AggregateCall("COUNT", None)

    def test_alias(self):
        stmt = parse("SELECT AVG(x) AS mean_x FROM t")
        assert stmt.select[0].alias == "mean_x"

    def test_multiple_select_items(self):
        stmt = parse("SELECT DayOfWeek, AVG(DepDelay) FROM flights GROUP BY DayOfWeek")
        assert stmt.select[0].expression == ColumnRef("DayOfWeek")
        assert isinstance(stmt.select[1].expression, AggregateCall)

    def test_group_by_multiple(self):
        stmt = parse("SELECT a, b, AVG(x) FROM t GROUP BY a, b")
        assert stmt.group_by == ("a", "b")

    def test_order_by_limit(self):
        stmt = parse("SELECT a FROM t GROUP BY a ORDER BY AVG(x) DESC LIMIT 5")
        assert stmt.order_by.ascending is False
        assert stmt.limit == 5

    def test_order_by_default_ascending(self):
        stmt = parse("SELECT a FROM t GROUP BY a ORDER BY AVG(x)")
        assert stmt.order_by.ascending is True
        assert stmt.limit is None

    def test_trailing_semicolon(self):
        assert parse("SELECT AVG(x) FROM t;").table == "t"


class TestWhereShapes:
    def test_string_equality(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE Origin = 'ORD'")
        assert stmt.where == Comparison("=", ColumnRef("Origin"), StringLiteral("ORD"))

    def test_numeric_comparison(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE DepTime > 1:50pm")
        assert stmt.where == Comparison(">", ColumnRef("DepTime"), NumberLiteral(1350.0))

    def test_and_or_precedence(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, BoolOp) and stmt.where.op == "OR"
        assert isinstance(stmt.where.parts[1], BoolOp)
        assert stmt.where.parts[1].op == "AND"

    def test_parenthesized_condition(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert isinstance(stmt.where, BoolOp) and stmt.where.op == "AND"
        assert isinstance(stmt.where.parts[0], BoolOp)

    def test_not(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, NotOp)

    def test_in_list(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE Origin IN ('ORD', 'SFO')")
        assert stmt.where == InList(
            ColumnRef("Origin"), (StringLiteral("ORD"), StringLiteral("SFO"))
        )

    def test_parenthesized_value_comparison(self):
        stmt = parse("SELECT AVG(x) FROM t WHERE (a + b) > 0")
        assert isinstance(stmt.where, Comparison)
        assert isinstance(stmt.where.left, BinaryArith)


class TestExpressions:
    def test_arithmetic_precedence(self):
        stmt = parse("SELECT AVG(a + b * c) FROM t")
        argument = stmt.select[0].expression.argument
        assert argument.op == "+"
        assert argument.right.op == "*"

    def test_parentheses_override(self):
        stmt = parse("SELECT AVG((a + b) * c) FROM t")
        argument = stmt.select[0].expression.argument
        assert argument.op == "*"

    def test_unary_minus(self):
        stmt = parse("SELECT AVG(-a) FROM t")
        argument = stmt.select[0].expression.argument
        assert type(argument).__name__ == "UnaryMinus"

    def test_case_when(self):
        stmt = parse(
            "SELECT (CASE WHEN AVG(DepDelay) > 10 THEN 1 ELSE 0 END) FROM flights"
        )
        case = stmt.select[0].expression
        assert isinstance(case, CaseWhen)
        assert case.condition == Comparison(
            ">", AggregateCall("AVG", ColumnRef("DepDelay")), NumberLiteral(10.0)
        )
        assert case.then_value == NumberLiteral(1.0)


class TestHaving:
    def test_having_comparison(self):
        stmt = parse(
            "SELECT Airline FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 0"
        )
        assert stmt.having == Comparison(
            ">", AggregateCall("AVG", ColumnRef("DepDelay")), NumberLiteral(0.0)
        )


class TestQuantileAggregates:
    def test_median(self):
        stmt = parse("SELECT g, MEDIAN(x) FROM t GROUP BY g")
        assert stmt.select[1].expression == AggregateCall(
            "MEDIAN", ColumnRef("x")
        )

    def test_percentile_with_level(self):
        stmt = parse("SELECT PERCENTILE(x, 0.95) FROM t")
        assert stmt.select[0].expression == AggregateCall(
            "PERCENTILE", ColumnRef("x"), 0.95
        )

    def test_percentile_in_order_by(self):
        stmt = parse(
            "SELECT g FROM t GROUP BY g "
            "ORDER BY PERCENTILE(x, 0.5) DESC LIMIT 2"
        )
        assert stmt.order_by.key == AggregateCall(
            "PERCENTILE", ColumnRef("x"), 0.5
        )
        assert stmt.limit == 2

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT PERCENTILE(x) FROM t",        # missing level
            "SELECT PERCENTILE(x, ) FROM t",      # dangling comma
            "SELECT PERCENTILE(x, g) FROM t",     # non-numeric level
            "SELECT PERCENTILE(x, 0) FROM t",     # level at the boundary
            "SELECT PERCENTILE(x, 1) FROM t",     # level at the boundary
            "SELECT PERCENTILE(x, 1.5) FROM t",   # level out of range
            "SELECT MEDIAN(x, 0.5) FROM t",       # MEDIAN takes no level
        ],
    )
    def test_rejected(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)


class TestLimitGuard:
    """LIMIT 0 / negative LIMITs are rejected at parse time with a clear
    message (they used to surface as an opaque compiler error)."""

    def test_limit_zero_rejected_with_clear_message(self):
        with pytest.raises(SqlSyntaxError, match="LIMIT must be a positive"):
            parse("SELECT g FROM t GROUP BY g ORDER BY AVG(x) DESC LIMIT 0")

    @pytest.mark.parametrize("bad", ["-1", "-3"])
    def test_negative_limit_rejected(self, bad):
        # "-" never fuses with the number in LIMIT position, so negatives
        # die on the integer check rather than the positivity one.
        with pytest.raises(SqlSyntaxError):
            parse(f"SELECT g FROM t GROUP BY g ORDER BY AVG(x) DESC LIMIT {bad}")

    def test_positive_limit_still_parses(self):
        assert parse(
            "SELECT g FROM t GROUP BY g ORDER BY AVG(x) DESC LIMIT 1"
        ).limit == 1


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "AVG(x) FROM t",                      # missing SELECT
            "SELECT AVG(x)",                      # missing FROM
            "SELECT AVG(x) FROM",                 # missing table
            "SELECT AVG(x FROM t",                # unbalanced paren
            "SELECT AVG(x) FROM t WHERE",         # dangling WHERE
            "SELECT AVG(x) FROM t LIMIT 2.5",     # fractional limit
            "SELECT AVG(x) FROM t GROUP BY",      # dangling GROUP BY
            "SELECT AVG(x) FROM t trailing",      # trailing garbage
            "SELECT AVG(x) FROM t WHERE a IN ()", # empty IN
            "SELECT CASE WHEN AVG(x) > 1 THEN 1 END FROM t",  # missing ELSE
        ],
    )
    def test_rejected(self, sql):
        with pytest.raises(SqlSyntaxError):
            parse(sql)
