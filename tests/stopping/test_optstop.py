"""Tests for the OptStop meta-algorithm (Algorithm 5, Theorem 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bounders.base import Interval
from repro.bounders.registry import get_bounder
from repro.stopping.optstop import (
    OptStopResult,
    RunningIntersection,
    fixed_size_interval,
    optional_stopping,
    stream_batches,
)


class TestRunningIntersection:
    def test_starts_trivial(self):
        running = RunningIntersection()
        assert running.lo == -np.inf
        assert running.hi == np.inf

    def test_fold_tightens_monotonically(self):
        running = RunningIntersection()
        running.fold(Interval(0.0, 10.0))
        running.fold(Interval(2.0, 12.0))
        assert running.interval == Interval(2.0, 10.0)
        running.fold(Interval(-5.0, 9.0))
        assert running.interval == Interval(2.0, 9.0)

    def test_fold_never_loosens(self):
        running = RunningIntersection()
        running.fold(Interval(3.0, 4.0))
        running.fold(Interval(0.0, 10.0))
        assert running.interval == Interval(3.0, 4.0)

    def test_disjoint_folds_collapse_to_midpoint(self):
        running = RunningIntersection()
        running.fold(Interval(0.0, 1.0))
        running.fold(Interval(2.0, 3.0))
        assert running.lo == running.hi == pytest.approx(1.5)


class TestOptionalStopping:
    def test_stops_when_predicate_fires(self, rng):
        data = rng.uniform(0, 1, 50_000)
        result = optional_stopping(
            data,
            get_bounder("bernstein"),
            0.0,
            1.0,
            delta=0.05,
            should_stop=lambda interval, est: interval.width < 0.2,
            batch_size=1_000,
            rng=rng,
        )
        assert result.stopped_early
        assert result.interval.width < 0.2
        assert result.samples < data.size
        assert result.rounds == result.samples // 1_000

    def test_exhausts_without_stopping(self, rng):
        data = rng.uniform(0, 1, 2_000)
        result = optional_stopping(
            data,
            get_bounder("hoeffding"),
            0.0,
            1.0,
            delta=1e-15,
            should_stop=lambda interval, est: interval.width < 1e-9,
            batch_size=500,
            rng=rng,
        )
        assert not result.stopped_early
        assert result.samples == data.size

    def test_interval_contains_truth(self, rng):
        data = rng.lognormal(0, 1, 30_000).clip(0, 40)
        result = optional_stopping(
            data,
            get_bounder("bernstein+rt"),
            0.0,
            40.0,
            delta=0.01,
            should_stop=lambda interval, est: interval.width < 1.0,
            batch_size=2_000,
            rng=rng,
        )
        assert result.interval.lo <= data.mean() <= result.interval.hi

    def test_monte_carlo_coverage_under_repeated_looks(self):
        """The whole point of the δ-decay: despite recomputing bounds
        every round and stopping adaptively, the failure rate stays
        below δ (Theorem 4) — unlike naive per-round (1−δ) intervals,
        the mistake the paper calls out in [20]."""
        rng = np.random.default_rng(0)
        data = rng.uniform(0, 1, 5_000)
        truth = data.mean()
        delta = 0.2
        trials, failures = 80, 0
        for seed in range(trials):
            result = optional_stopping(
                data,
                get_bounder("bernstein"),
                0.0,
                1.0,
                delta=delta,
                should_stop=lambda interval, est: interval.width < 0.15,
                batch_size=250,
                rng=np.random.default_rng(seed),
            )
            if not result.interval.lo <= truth <= result.interval.hi:
                failures += 1
        assert failures / trials <= delta + 3 * math.sqrt(delta * (1 - delta) / trials)

    def test_rejects_empty_data(self, rng):
        with pytest.raises(ValueError):
            optional_stopping(
                np.array([]), get_bounder("hoeffding"), 0, 1, 0.05,
                should_stop=lambda i, e: True, rng=rng,
            )

    def test_rejects_bad_batch_size(self, rng):
        with pytest.raises(ValueError):
            optional_stopping(
                np.array([1.0]), get_bounder("hoeffding"), 0, 2, 0.05,
                should_stop=lambda i, e: True, batch_size=0, rng=rng,
            )

    def test_n_upper_bound_allowed(self, rng):
        """§3.3 monotonicity: passing an upper bound on N stays valid."""
        data = rng.uniform(0, 1, 3_000)
        result = optional_stopping(
            data, get_bounder("bernstein"), 0, 1, 0.05,
            should_stop=lambda i, e: False, batch_size=1_000, rng=rng,
            n=1_000_000,
        )
        assert result.interval.lo <= data.mean() <= result.interval.hi

    def test_rejects_n_below_data_size(self, rng):
        with pytest.raises(ValueError, match="upper bound"):
            optional_stopping(
                np.arange(10.0), get_bounder("hoeffding"), 0, 10, 0.05,
                should_stop=lambda i, e: True, rng=rng, n=5,
            )


class TestFixedSizeInterval:
    def test_uses_exactly_m_samples(self, rng):
        data = rng.uniform(0, 1, 10_000)
        result = fixed_size_interval(data, get_bounder("bernstein"), 500, 0, 1, 0.05, rng=rng)
        assert result.samples == 500
        assert result.rounds == 1
        assert result.interval.lo <= result.estimate <= result.interval.hi

    def test_rejects_bad_m(self, rng):
        data = np.arange(10.0)
        with pytest.raises(ValueError):
            fixed_size_interval(data, get_bounder("hoeffding"), 0, 0, 10, 0.05, rng=rng)
        with pytest.raises(ValueError):
            fixed_size_interval(data, get_bounder("hoeffding"), 11, 0, 10, 0.05, rng=rng)

    def test_full_budget_beats_optstop_round_budget(self, rng):
        """Condition Ê skips the δ-decay: a single full-budget interval is
        tighter than the same sample under OptStop's round-1 δ′."""
        data = rng.uniform(0, 1, 20_000)
        fixed = fixed_size_interval(
            data, get_bounder("bernstein"), 5_000, 0, 1, 0.05,
            rng=np.random.default_rng(1),
        )
        stopped = optional_stopping(
            data, get_bounder("bernstein"), 0, 1, 0.05,
            should_stop=lambda i, e: True, batch_size=5_000,
            rng=np.random.default_rng(1),
        )
        assert fixed.interval.width < stopped.interval.width


class TestStreamBatches:
    def test_covers_data_exactly_once(self, rng):
        data = np.arange(100.0)
        batches = list(stream_batches(data, 7, rng))
        combined = np.concatenate(batches)
        assert combined.size == 100
        np.testing.assert_array_equal(np.sort(combined), data)

    def test_batch_sizes(self, rng):
        batches = list(stream_batches(np.arange(10.0), 4, rng))
        assert [b.size for b in batches] == [4, 4, 2]
