"""Tests for stopping conditions Ê-Ï and their active-group rules (§4.2-4.3)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bounders.base import Interval
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    GroupsOrdered,
    GroupSnapshot,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
    relative_error,
)


def snap(lo, hi, estimate=None, samples=100, exhausted=False):
    interval = Interval(lo, hi)
    if estimate is None:
        estimate = interval.midpoint
    return GroupSnapshot(
        interval=interval, estimate=estimate, samples=samples, exhausted=exhausted
    )


class TestRelativeError:
    def test_matches_paper_statistic(self):
        """max{(g_r − ĝ)/g_r, (ĝ − g_l)/g_l} (Table 4 / condition Ì)."""
        interval, est = Interval(8.0, 12.0), 10.0
        assert relative_error(interval, est) == pytest.approx(
            max((12 - 10) / 12, (10 - 8) / 8)
        )

    def test_infinite_when_straddling_zero(self):
        assert relative_error(Interval(-1, 1), 0.0) == math.inf

    def test_negative_interval_finite(self):
        assert math.isfinite(relative_error(Interval(-12, -8), -10.0))


class TestSamplesTaken:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            SamplesTaken(0)

    def test_active_until_m_reached(self):
        cond = SamplesTaken(100)
        groups = {"a": snap(0, 1, samples=50), "b": snap(0, 1, samples=150)}
        assert cond.active_groups(groups) == {"a"}
        assert not cond.satisfied(groups)

    def test_satisfied_when_all_reach_m(self):
        cond = SamplesTaken(100)
        groups = {"a": snap(0, 1, samples=100)}
        assert cond.satisfied(groups)

    def test_exhausted_groups_never_active(self):
        cond = SamplesTaken(100)
        groups = {"a": snap(0, 1, samples=10, exhausted=True)}
        assert cond.satisfied(groups)


class TestAbsoluteAccuracy:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            AbsoluteAccuracy(0.0)

    def test_active_while_wide(self):
        cond = AbsoluteAccuracy(1.0)
        groups = {"wide": snap(0, 5), "narrow": snap(0, 0.5)}
        assert cond.active_groups(groups) == {"wide"}

    def test_boundary_width_still_active(self):
        """Width == ε does not satisfy the strict < of condition Ë."""
        cond = AbsoluteAccuracy(1.0)
        assert cond.active_groups({"g": snap(0, 1.0)}) == {"g"}


class TestRelativeAccuracy:
    def test_active_by_relative_width(self):
        cond = RelativeAccuracy(0.5)
        groups = {
            "tight": snap(9, 11, estimate=10),
            "loose": snap(1, 30, estimate=10),
        }
        assert cond.active_groups(groups) == {"loose"}

    def test_zero_straddling_never_satisfies(self):
        cond = RelativeAccuracy(10.0)
        assert cond.active_groups({"g": snap(-1, 1, estimate=0)}) == {"g"}


class TestThresholdSide:
    def test_active_while_threshold_inside(self):
        cond = ThresholdSide(0.0)
        groups = {
            "above": snap(1, 3),
            "below": snap(-3, -1),
            "unknown": snap(-1, 1),
        }
        assert cond.active_groups(groups) == {"unknown"}
        assert not cond.satisfied(groups)

    def test_satisfied_when_all_sides_determined(self):
        cond = ThresholdSide(5.0)
        groups = {"a": snap(6, 8), "b": snap(0, 4)}
        assert cond.satisfied(groups)

    def test_threshold_on_boundary_is_active(self):
        """Closed intervals: v ∈ [g_l, g_r] includes the endpoints."""
        cond = ThresholdSide(3.0)
        assert cond.active_groups({"g": snap(3.0, 5.0)}) == {"g"}


class TestTopKSeparated:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKSeparated(0)

    def test_trivially_satisfied_with_few_groups(self):
        cond = TopKSeparated(5)
        groups = {"a": snap(0, 10), "b": snap(0, 10)}
        assert cond.satisfied(groups)
        assert cond.active_groups(groups) == set()

    def test_separated_top1(self):
        cond = TopKSeparated(1)
        groups = {
            "winner": snap(10, 12),
            "mid": snap(5, 8),
            "low": snap(0, 3),
        }
        assert cond.satisfied(groups)

    def test_not_separated_when_overlapping(self):
        cond = TopKSeparated(1)
        groups = {"winner": snap(8, 12), "rival": snap(7, 9)}
        assert not cond.satisfied(groups)

    def test_active_groups_use_midpoint_rule(self):
        """§4.3 Î: active iff the inner bound crosses the midpoint between
        the K-th and (K+1)-th ranked estimates."""
        cond = TopKSeparated(1)
        groups = {
            "top": snap(6, 14, estimate=10),   # lo 6 < midpoint 7.5 -> active
            "second": snap(2, 7, estimate=5),  # hi 7 < 7.5? no: 7 <= 7.5 -> not crossing
            "third": snap(0, 8, estimate=4),   # hi 8 >= 7.5 -> active
        }
        active = cond.active_groups(groups)
        assert "top" in active
        assert "third" in active
        assert "second" not in active

    def test_bottom_k_mirrors(self):
        cond = TopKSeparated(1, largest=False)
        groups = {
            "best": snap(0, 2, estimate=1),
            "rest": snap(5, 9, estimate=7),
        }
        assert cond.satisfied(groups)

    def test_bottom_k_active_rule(self):
        cond = TopKSeparated(1, largest=False)
        groups = {
            "best": snap(0, 5, estimate=2),    # hi 5 >= midpoint 4 -> active
            "other": snap(3, 9, estimate=6),   # lo 3 <= 4 -> active
            "far": snap(8, 10, estimate=9),    # lo 8 > 4 -> inactive
        }
        active = cond.active_groups(groups)
        assert active == {"best", "other"}


class TestTopKDominance:
    """Dominance termination and early retirement for condition Î."""

    def test_dominated_rest_group_retires_immediately(self):
        """A rest view whose upper bound sits below K lower bounds stops
        sampling even though the midpoint rule would keep it active."""
        cond = TopKSeparated(2)
        groups = {
            "a": snap(9.5, 12.0, estimate=11.0),
            "b": snap(9.0, 11.5, estimate=10.0),
            "d": snap(3.0, 9.2, estimate=6.0),   # hi 9.2 >= bar 9.0 -> live
            "c": snap(2.0, 8.5, estimate=5.0),   # hi 8.5 >= midpoint 8.0
        }
        # midpoint between 2nd and 3rd estimates is 8.0, so the old rule
        # would keep "c" active; dominance (8.5 < 2nd-largest lo = 9.0)
        # retires it now.
        assert not cond.satisfied(groups)
        active = cond.active_groups(groups)
        assert "c" not in active
        assert "d" in active

    def test_satisfied_with_overlapping_leaders(self):
        """Leaders may still overlap each other: only the rest must be
        certifiably outside the selection."""
        cond = TopKSeparated(2)
        groups = {
            "a": snap(9.5, 12.0, estimate=11.0),
            "b": snap(9.0, 11.5, estimate=10.0),
            "c": snap(2.0, 8.5, estimate=5.0),
        }
        assert cond.satisfied(groups)
        assert cond.active_groups(groups) == set()

    def test_bottom_k_retirement_mirrors(self):
        cond = TopKSeparated(2, largest=False)
        groups = {
            "a": snap(-12.0, -9.5, estimate=-11.0),
            "b": snap(-11.5, -9.0, estimate=-10.0),
            "d": snap(-9.2, -3.0, estimate=-6.0),
            "c": snap(-8.5, -2.0, estimate=-5.0),
        }
        assert not cond.satisfied(groups)
        active = cond.active_groups(groups)
        assert "c" not in active
        assert "d" in active

    def test_full_separation_still_satisfies(self):
        """The classic full-separation certificate implies dominance, so
        the new test never fires later than the old one."""
        cond = TopKSeparated(2)
        groups = {
            "a": snap(10.0, 12.0),
            "b": snap(8.0, 9.5),
            "c": snap(0.0, 7.0),
            "d": snap(1.0, 6.0),
        }
        assert cond.satisfied(groups)


class TestTopKTieParity:
    """S3: the mapping and columns paths share one stable ranking rule, so
    tie-heavy snapshots partition identically in both representations."""

    @staticmethod
    def _columns_from(groups):
        from repro.stopping.conditions import SnapshotColumns

        keys = list(groups)
        return SnapshotColumns(
            keys=np.arange(len(keys)),
            lo=np.array([groups[k].interval.lo for k in keys]),
            hi=np.array([groups[k].interval.hi for k in keys]),
            estimate=np.array([groups[k].estimate for k in keys]),
            samples=np.array([groups[k].samples for k in keys]),
            exhausted=np.array([groups[k].exhausted for k in keys]),
        )

    def test_tie_heavy_partition_matches_ranked_order(self):
        cond = TopKSeparated(3)
        rng = np.random.default_rng(17)
        # Estimates drawn from 4 distinct values over 12 groups: ties
        # everywhere.  Ranking must be stable on insertion/row order.
        estimates = rng.choice([1.0, 2.0, 2.0, 5.0], size=12)
        groups = {
            f"g{i}": snap(e - 1.0, e + 1.0, estimate=float(e))
            for i, e in enumerate(estimates)
        }
        selected, rest = cond._partition(groups)
        keys = list(groups)
        order = cond._ranked_order(np.asarray(estimates, dtype=np.float64))
        assert selected == [keys[row] for row in order[:3]]
        assert rest == [keys[row] for row in order[3:]]

    @pytest.mark.parametrize("largest", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_mapping_and_columns_paths_agree(self, largest, seed):
        """satisfied/active answers are identical across representations
        on randomized tie-heavy snapshots."""
        cond = TopKSeparated(2, largest=largest)
        rng = np.random.default_rng(seed)
        size = int(rng.integers(3, 10))
        estimates = rng.choice([0.0, 1.0, 1.0, 3.0, 7.0], size=size)
        widths = rng.uniform(0.1, 4.0, size=size)
        groups = {
            i: snap(
                float(e - w),
                float(e + w),
                estimate=float(e),
                exhausted=bool(rng.random() < 0.2),
            )
            for i, (e, w) in enumerate(zip(estimates, widths))
        }
        columns = self._columns_from(groups)
        assert cond.satisfied(groups) == cond.satisfied_columns(columns)
        active = cond.active_groups(groups)
        mask = cond.active_mask(columns)
        assert {i for i in groups if i in active} == {
            int(i) for i in np.flatnonzero(mask)
        }


class TestGroupsOrdered:
    def test_satisfied_when_disjoint(self):
        cond = GroupsOrdered()
        groups = {"a": snap(0, 1), "b": snap(2, 3), "c": snap(4, 5)}
        assert cond.satisfied(groups)
        assert cond.active_groups(groups) == set()

    def test_overlapping_pair_active(self):
        cond = GroupsOrdered()
        groups = {"a": snap(0, 2), "b": snap(1, 3), "c": snap(10, 11)}
        assert cond.active_groups(groups) == {"a", "b"}

    def test_containment_counts_as_overlap(self):
        cond = GroupsOrdered()
        groups = {"big": snap(0, 10), "inner": snap(4, 5), "out": snap(20, 21)}
        assert cond.active_groups(groups) == {"big", "inner"}

    def test_non_adjacent_overlap_detected(self):
        """A wide interval overlapping a far one must be caught even when
        the between-neighbour intervals do not overlap it... (exact
        all-pairs semantics via rank counting)."""
        cond = GroupsOrdered()
        groups = {
            "wide": snap(0, 100),
            "near": snap(1, 2),
            "far": snap(50, 60),
        }
        assert cond.active_groups(groups) == {"wide", "near", "far"}

    def test_touching_intervals_overlap(self):
        cond = GroupsOrdered()
        groups = {"a": snap(0, 1), "b": snap(1, 2)}
        assert cond.active_groups(groups) == {"a", "b"}

    def test_single_group_trivially_ordered(self):
        cond = GroupsOrdered()
        assert cond.satisfied({"only": snap(0, 100)})

    def test_exhausted_groups_not_reported_active(self):
        cond = GroupsOrdered()
        groups = {
            "done": snap(0, 2, exhausted=True),
            "live": snap(1, 3),
        }
        assert cond.active_groups(groups) == {"live"}
        # but the overlap still prevents satisfaction
        assert not cond.satisfied(groups)
