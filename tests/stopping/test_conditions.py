"""Tests for stopping conditions Ê-Ï and their active-group rules (§4.2-4.3)."""

from __future__ import annotations

import math

import pytest

from repro.bounders.base import Interval
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    GroupsOrdered,
    GroupSnapshot,
    RelativeAccuracy,
    SamplesTaken,
    ThresholdSide,
    TopKSeparated,
    relative_error,
)


def snap(lo, hi, estimate=None, samples=100, exhausted=False):
    interval = Interval(lo, hi)
    if estimate is None:
        estimate = interval.midpoint
    return GroupSnapshot(
        interval=interval, estimate=estimate, samples=samples, exhausted=exhausted
    )


class TestRelativeError:
    def test_matches_paper_statistic(self):
        """max{(g_r − ĝ)/g_r, (ĝ − g_l)/g_l} (Table 4 / condition Ì)."""
        interval, est = Interval(8.0, 12.0), 10.0
        assert relative_error(interval, est) == pytest.approx(
            max((12 - 10) / 12, (10 - 8) / 8)
        )

    def test_infinite_when_straddling_zero(self):
        assert relative_error(Interval(-1, 1), 0.0) == math.inf

    def test_negative_interval_finite(self):
        assert math.isfinite(relative_error(Interval(-12, -8), -10.0))


class TestSamplesTaken:
    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            SamplesTaken(0)

    def test_active_until_m_reached(self):
        cond = SamplesTaken(100)
        groups = {"a": snap(0, 1, samples=50), "b": snap(0, 1, samples=150)}
        assert cond.active_groups(groups) == {"a"}
        assert not cond.satisfied(groups)

    def test_satisfied_when_all_reach_m(self):
        cond = SamplesTaken(100)
        groups = {"a": snap(0, 1, samples=100)}
        assert cond.satisfied(groups)

    def test_exhausted_groups_never_active(self):
        cond = SamplesTaken(100)
        groups = {"a": snap(0, 1, samples=10, exhausted=True)}
        assert cond.satisfied(groups)


class TestAbsoluteAccuracy:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            AbsoluteAccuracy(0.0)

    def test_active_while_wide(self):
        cond = AbsoluteAccuracy(1.0)
        groups = {"wide": snap(0, 5), "narrow": snap(0, 0.5)}
        assert cond.active_groups(groups) == {"wide"}

    def test_boundary_width_still_active(self):
        """Width == ε does not satisfy the strict < of condition Ë."""
        cond = AbsoluteAccuracy(1.0)
        assert cond.active_groups({"g": snap(0, 1.0)}) == {"g"}


class TestRelativeAccuracy:
    def test_active_by_relative_width(self):
        cond = RelativeAccuracy(0.5)
        groups = {
            "tight": snap(9, 11, estimate=10),
            "loose": snap(1, 30, estimate=10),
        }
        assert cond.active_groups(groups) == {"loose"}

    def test_zero_straddling_never_satisfies(self):
        cond = RelativeAccuracy(10.0)
        assert cond.active_groups({"g": snap(-1, 1, estimate=0)}) == {"g"}


class TestThresholdSide:
    def test_active_while_threshold_inside(self):
        cond = ThresholdSide(0.0)
        groups = {
            "above": snap(1, 3),
            "below": snap(-3, -1),
            "unknown": snap(-1, 1),
        }
        assert cond.active_groups(groups) == {"unknown"}
        assert not cond.satisfied(groups)

    def test_satisfied_when_all_sides_determined(self):
        cond = ThresholdSide(5.0)
        groups = {"a": snap(6, 8), "b": snap(0, 4)}
        assert cond.satisfied(groups)

    def test_threshold_on_boundary_is_active(self):
        """Closed intervals: v ∈ [g_l, g_r] includes the endpoints."""
        cond = ThresholdSide(3.0)
        assert cond.active_groups({"g": snap(3.0, 5.0)}) == {"g"}


class TestTopKSeparated:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            TopKSeparated(0)

    def test_trivially_satisfied_with_few_groups(self):
        cond = TopKSeparated(5)
        groups = {"a": snap(0, 10), "b": snap(0, 10)}
        assert cond.satisfied(groups)
        assert cond.active_groups(groups) == set()

    def test_separated_top1(self):
        cond = TopKSeparated(1)
        groups = {
            "winner": snap(10, 12),
            "mid": snap(5, 8),
            "low": snap(0, 3),
        }
        assert cond.satisfied(groups)

    def test_not_separated_when_overlapping(self):
        cond = TopKSeparated(1)
        groups = {"winner": snap(8, 12), "rival": snap(7, 9)}
        assert not cond.satisfied(groups)

    def test_active_groups_use_midpoint_rule(self):
        """§4.3 Î: active iff the inner bound crosses the midpoint between
        the K-th and (K+1)-th ranked estimates."""
        cond = TopKSeparated(1)
        groups = {
            "top": snap(6, 14, estimate=10),   # lo 6 < midpoint 7.5 -> active
            "second": snap(2, 7, estimate=5),  # hi 7 < 7.5? no: 7 <= 7.5 -> not crossing
            "third": snap(0, 8, estimate=4),   # hi 8 >= 7.5 -> active
        }
        active = cond.active_groups(groups)
        assert "top" in active
        assert "third" in active
        assert "second" not in active

    def test_bottom_k_mirrors(self):
        cond = TopKSeparated(1, largest=False)
        groups = {
            "best": snap(0, 2, estimate=1),
            "rest": snap(5, 9, estimate=7),
        }
        assert cond.satisfied(groups)

    def test_bottom_k_active_rule(self):
        cond = TopKSeparated(1, largest=False)
        groups = {
            "best": snap(0, 5, estimate=2),    # hi 5 >= midpoint 4 -> active
            "other": snap(3, 9, estimate=6),   # lo 3 <= 4 -> active
            "far": snap(8, 10, estimate=9),    # lo 8 > 4 -> inactive
        }
        active = cond.active_groups(groups)
        assert active == {"best", "other"}


class TestGroupsOrdered:
    def test_satisfied_when_disjoint(self):
        cond = GroupsOrdered()
        groups = {"a": snap(0, 1), "b": snap(2, 3), "c": snap(4, 5)}
        assert cond.satisfied(groups)
        assert cond.active_groups(groups) == set()

    def test_overlapping_pair_active(self):
        cond = GroupsOrdered()
        groups = {"a": snap(0, 2), "b": snap(1, 3), "c": snap(10, 11)}
        assert cond.active_groups(groups) == {"a", "b"}

    def test_containment_counts_as_overlap(self):
        cond = GroupsOrdered()
        groups = {"big": snap(0, 10), "inner": snap(4, 5), "out": snap(20, 21)}
        assert cond.active_groups(groups) == {"big", "inner"}

    def test_non_adjacent_overlap_detected(self):
        """A wide interval overlapping a far one must be caught even when
        the between-neighbour intervals do not overlap it... (exact
        all-pairs semantics via rank counting)."""
        cond = GroupsOrdered()
        groups = {
            "wide": snap(0, 100),
            "near": snap(1, 2),
            "far": snap(50, 60),
        }
        assert cond.active_groups(groups) == {"wide", "near", "far"}

    def test_touching_intervals_overlap(self):
        cond = GroupsOrdered()
        groups = {"a": snap(0, 1), "b": snap(1, 2)}
        assert cond.active_groups(groups) == {"a", "b"}

    def test_single_group_trivially_ordered(self):
        cond = GroupsOrdered()
        assert cond.satisfied({"only": snap(0, 100)})

    def test_exhausted_groups_not_reported_active(self):
        cond = GroupsOrdered()
        groups = {
            "done": snap(0, 2, exhausted=True),
            "live": snap(1, 3),
        }
        assert cond.active_groups(groups) == {"live"}
        # but the overlap still prevents satisfaction
        assert not cond.satisfied(groups)
