"""Tests for OptStop round schedules: arithmetic (Algorithm 5) vs geometric."""

import math

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.stats.delta import geometric_round_delta, optstop_round_delta
from repro.stopping.optstop import optional_stopping


class TestGeometricDecay:
    def test_telescopes_to_delta(self):
        delta = 0.01
        total = sum(geometric_round_delta(delta, k) for k in range(1, 200))
        assert total == pytest.approx(delta, rel=1e-12)

    def test_halving(self):
        assert geometric_round_delta(0.1, 2) == pytest.approx(
            geometric_round_delta(0.1, 1) / 2.0
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            geometric_round_delta(0.1, 0)
        with pytest.raises(ValueError):
            geometric_round_delta(1.5, 1)

    def test_binding_delta_larger_than_arithmetic_late(self):
        """At the round reached after m samples, the geometric schedule's
        δ is far larger (→ tighter width) than the arithmetic schedule's.

        After m = B·2^K samples the geometric schedule is at round K+1 with
        δ·2^{−(K+1)}, while the arithmetic schedule is at round 2^K with
        δ·(6/π²)/4^K — exponentially smaller in K.
        """
        delta, big_k = 1e-9, 10
        geometric = geometric_round_delta(delta, big_k + 1)
        arithmetic = optstop_round_delta(delta, 2**big_k)
        assert geometric > arithmetic * 100


class TestGeometricSchedule:
    def _run(self, schedule, seed=0, target=0.5, **kwargs):
        rng = np.random.default_rng(seed)
        data = rng.normal(10.0, 3.0, size=60_000)
        defaults = dict(
            bounder=get_bounder("bernstein+rt"),
            a=float(data.min()),
            b=float(data.max()),
            delta=1e-9,
            should_stop=lambda interval, estimate: interval.width < target,
            batch_size=1_000,
            rng=np.random.default_rng(seed + 1),
        )
        defaults.update(kwargs)
        return optional_stopping(data, schedule=schedule, **defaults), data

    def test_unknown_schedule_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="schedule"):
            optional_stopping(
                rng.normal(size=100),
                get_bounder("hoeffding"),
                a=-5.0, b=5.0, delta=0.1,
                should_stop=lambda interval, estimate: False,
                schedule="fibonacci",
            )

    def test_round_counts_logarithmic(self):
        arithmetic, _ = self._run("arithmetic", target=0.0)  # never stops
        geometric, _ = self._run("geometric", target=0.0)
        assert geometric.rounds <= math.ceil(math.log2(arithmetic.rounds)) + 2
        assert arithmetic.samples == geometric.samples == 60_000

    def test_both_schedules_cover_truth(self):
        for schedule in ("arithmetic", "geometric"):
            result, data = self._run(schedule, seed=3, target=0.4)
            truth = float(data.mean())
            assert result.interval.lo <= truth <= result.interval.hi

    def test_geometric_tighter_after_long_run(self):
        """Run both schedules to exhaustion with a tiny batch size (many
        arithmetic rounds): the geometric schedule's final interval is
        tighter because its binding δ decayed only logarithmically."""
        arithmetic, _ = self._run("arithmetic", seed=5, target=0.0, batch_size=250)
        geometric, _ = self._run("geometric", seed=5, target=0.0, batch_size=250)
        assert geometric.interval.width < arithmetic.interval.width

    def test_geometric_stops_with_more_samples_granularity(self):
        """The cost side: geometric rounds are coarse, so the sample count
        at stop is a power-of-two multiple of the batch size."""
        result, _ = self._run("geometric", seed=7, target=1.0)
        assert result.stopped_early
        # samples = B·(2^k − 1) for the k rounds ingested
        k = result.rounds
        assert result.samples == 1_000 * (2**k - 1)
