"""Shared test utilities (imported as ``tests.support``)."""

from __future__ import annotations

from repro.bounders.anderson import CSRSamplePool
from repro.bounders.range_trim import RangeTrimPool
from repro.stats.streaming import MomentPool


def bounder_pool_bytes(pool) -> tuple:
    """Canonical byte snapshot of any built-in bounder pool.

    Used by the delta-protocol unit tests and the parallel determinism
    suite to assert byte-identical bounder-state evolution; extend it
    when a bounder family introduces a new pool type.
    """
    if isinstance(pool, MomentPool):
        return ("moment", pool.count.tobytes(), pool.mean.tobytes(), pool.m2.tobytes())
    if isinstance(pool, RangeTrimPool):
        return (
            "range_trim",
            bounder_pool_bytes(pool.left),
            bounder_pool_bytes(pool.right),
            pool.min.tobytes(),
            pool.max.tobytes(),
            pool.count.tobytes(),
        )
    if isinstance(pool, CSRSamplePool):
        return (
            "csr",
            pool.count.tobytes(),
            tuple(pool.values(slot).tobytes() for slot in range(pool.size)),
        )
    raise TypeError(f"unknown bounder pool type {type(pool).__name__}")
