"""End-to-end integration: the full paper pipeline on one small scramble.

These tests exercise the complete stack — generator → scramble → bitmap
indexes → executor (every bounder × strategy) → stopping conditions →
correctness against Exact — the workflow a downstream user runs.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bounders import EVALUATED_BOUNDERS, get_bounder
from repro.experiments import ALL_QUERIES, build_query, check_correctness
from repro.fastframe import ApproximateExecutor, ExactExecutor, get_strategy

DELTA = 1e-6


def test_package_exports_quickstart_symbols():
    assert repro.__version__
    for name in ("ApproximateExecutor", "ExactExecutor", "Query", "get_bounder"):
        assert hasattr(repro, name)
    # The out-of-core storage surface must survive packaging: everything
    # the examples and benches import off the top-level package.
    for name in (
        "BlockStoreError",
        "MmapBlockStore",
        "StorageCounters",
        "attach_block_storage",
        "open_block_scramble",
        "write_block_store",
    ):
        assert hasattr(repro, name)
    import repro.fastframe as fastframe

    for name in fastframe.__all__:
        assert hasattr(fastframe, name), name


@pytest.mark.parametrize("query_name", sorted(ALL_QUERIES))
def test_every_flights_query_correct_with_best_bounder(small_scramble, query_name):
    """All nine paper queries give answers matching Exact under
    Bernstein+RT with ActivePeek — §5.4's headline correctness claim."""
    query = build_query(query_name)
    exact = ExactExecutor(small_scramble).execute(query)
    executor = ApproximateExecutor(
        small_scramble,
        get_bounder("bernstein+rt"),
        strategy=get_strategy("activepeek"),
        delta=DELTA,
        rng=np.random.default_rng(1),
    )
    result = executor.execute(query)
    assert check_correctness(query, result, exact, epsilon_slack=1e-9), query_name


@pytest.mark.parametrize("bounder_name", EVALUATED_BOUNDERS)
def test_every_bounder_correct_on_threshold_query(small_scramble, bounder_name):
    query = build_query("F-q2")
    exact = ExactExecutor(small_scramble).execute(query)
    executor = ApproximateExecutor(
        small_scramble,
        get_bounder(bounder_name),
        delta=DELTA,
        rng=np.random.default_rng(2),
    )
    result = executor.execute(query)
    assert check_correctness(query, result, exact), bounder_name


def test_bernstein_reads_less_than_hoeffding_on_easy_query(small_scramble):
    """The paper's core quantitative claim at small scale: the PMA-free
    bounder terminates with fewer rows on a comfortably-separated
    threshold query."""
    query = build_query("F-q2")

    def rows_for(name):
        executor = ApproximateExecutor(
            small_scramble,
            get_bounder(name),
            delta=DELTA,
            rng=np.random.default_rng(3),
        )
        return executor.execute(query).metrics.rows_read

    assert rows_for("bernstein+rt") <= rows_for("hoeffding")


def test_repeated_runs_always_sound(small_scramble):
    """Mini coverage test of the full executor: across seeds, intervals
    always enclose the exact aggregate (δ=1e-6 makes failures
    effectively impossible)."""
    query = build_query("F-q1", epsilon=1.0)
    exact = ExactExecutor(small_scramble).execute(query).scalar().estimate
    for seed in range(8):
        executor = ApproximateExecutor(
            small_scramble,
            get_bounder("bernstein+rt"),
            delta=DELTA,
            rng=np.random.default_rng(seed),
        )
        group = executor.execute(query).scalar()
        assert group.interval.lo - 1e-9 <= exact <= group.interval.hi + 1e-9
