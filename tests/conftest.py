"""Shared fixtures for the test suite.

The ``small_scramble`` fixture is session-scoped: the synthetic flights
table is expensive relative to individual tests, and every consumer treats
it as read-only (executors never mutate the scramble).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import generate_flights, make_flights_scramble

SMALL_ROWS = 60_000


@pytest.fixture(scope="session")
def small_scramble():
    """A 60k-row flights scramble shared across integration tests."""
    return make_flights_scramble(rows=SMALL_ROWS, seed=7)


@pytest.fixture(scope="session")
def small_table():
    """A 60k-row flights table (unshuffled)."""
    return generate_flights(rows=SMALL_ROWS, seed=7)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
