"""Failure-injection and robustness tests across module boundaries.

Production systems fail at the seams; these tests pin down the error
behaviour of the public API for malformed inputs, degenerate data, and
misuse, so failures are loud, early, and informative.
"""

import numpy as np
import pytest

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    Compare,
    Eq,
    ExactExecutor,
    Query,
    Scramble,
    Table,
)
from repro.stopping import AbsoluteAccuracy, RelativeAccuracy, SamplesTaken


@pytest.fixture(scope="module")
def scramble():
    return make_flights_scramble(rows=10_000, seed=0)


class TestTableMisuse:
    def test_missing_continuous_column(self, scramble):
        with pytest.raises(KeyError, match="no continuous column"):
            scramble.table.continuous("NoSuchColumn")

    def test_missing_categorical_column(self, scramble):
        with pytest.raises(KeyError, match="no categorical column"):
            scramble.table.categorical("NoSuchColumn")

    def test_nan_rejected_at_load(self):
        with pytest.raises(ValueError, match="non-finite"):
            Table(continuous={"x": np.array([1.0, np.nan])})

    def test_inf_rejected_at_load(self):
        with pytest.raises(ValueError, match="non-finite"):
            Table(continuous={"x": np.array([1.0, np.inf])})

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            Table(
                continuous={"x": np.ones(3)},
                categorical={"g": ["a", "b"]},
            )

    def test_empty_table_cannot_scramble(self):
        with pytest.raises(ValueError, match="empty"):
            Scramble(Table())


class TestQueryMisuse:
    def test_count_with_column_rejected(self):
        with pytest.raises(ValueError, match="COUNT"):
            Query(AggregateFunction.COUNT, "DepDelay", SamplesTaken(10))

    def test_avg_without_column_rejected(self):
        with pytest.raises(ValueError, match="require a column"):
            Query(AggregateFunction.AVG, None, SamplesTaken(10))

    def test_unknown_predicate_value(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", SamplesTaken(100),
            predicate=Eq("Origin", "NOT_AN_AIRPORT"),
        )
        executor = ApproximateExecutor(scramble, get_bounder("bernstein"))
        with pytest.raises(KeyError, match="not in the column dictionary"):
            executor.execute(query)

    def test_group_by_continuous_column_rejected(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", SamplesTaken(100),
            group_by=("DepTime",),  # continuous, not categorical
        )
        executor = ApproximateExecutor(scramble, get_bounder("bernstein"))
        with pytest.raises(KeyError, match="no categorical column"):
            executor.execute(query)

    def test_bad_stopping_parameters(self):
        with pytest.raises(ValueError):
            SamplesTaken(0)
        with pytest.raises(ValueError):
            AbsoluteAccuracy(0.0)
        with pytest.raises(ValueError):
            RelativeAccuracy(-0.5)


class TestDegenerateData:
    def test_constant_column_certifies_instantly(self):
        table = Table(continuous={"x": np.full(50_000, 7.0)})
        scramble = Scramble(table, rng=np.random.default_rng(0))
        query = Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(0.5))
        result = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-9,
            round_rows=5_000, rng=np.random.default_rng(1),
        ).execute(query, start_block=0)
        group = result.scalar()
        assert group.interval.lo <= 7.0 <= group.interval.hi
        assert result.metrics.stopped_early

    def test_single_row_table(self):
        table = Table(continuous={"x": np.array([3.0])})
        scramble = Scramble(table, rng=np.random.default_rng(0))
        approx = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6
        ).execute(Query(AggregateFunction.AVG, "x", SamplesTaken(1)))
        assert approx.scalar().interval.lo == pytest.approx(3.0)
        assert approx.scalar().interval.hi == pytest.approx(3.0)

    def test_predicate_matching_nothing(self, scramble):
        query = Query(
            AggregateFunction.AVG, "DepDelay", SamplesTaken(100),
            predicate=Compare("DepTime", ">", 1e12),
        )
        approx = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(0),
        ).execute(query)
        # The only view is certified empty and dropped, matching Exact.
        exact = ExactExecutor(scramble).execute(query)
        assert len(approx.groups) == len(exact.groups) == 0

    def test_two_distinct_values(self):
        """Hoeffding's worst case: half at each endpoint — still covered."""
        rng = np.random.default_rng(2)
        table = Table(continuous={"x": rng.choice([0.0, 1.0], size=40_000)})
        scramble = Scramble(table, rng=np.random.default_rng(3))
        result = ApproximateExecutor(
            scramble, get_bounder("hoeffding"), delta=1e-6,
            rng=np.random.default_rng(4),
        ).execute(Query(AggregateFunction.AVG, "x", AbsoluteAccuracy(0.05)))
        truth = float(table.continuous("x").mean())
        group = result.scalar()
        # ulp slack: the run exhausts the data and both sides reduce to the
        # same exact mean computed in different summation orders.
        assert group.interval.lo - 1e-12 <= truth <= group.interval.hi + 1e-12


class TestExecutorMisuse:
    def test_bad_start_block(self, scramble):
        query = Query(AggregateFunction.AVG, "DepDelay", SamplesTaken(10))
        executor = ApproximateExecutor(scramble, get_bounder("bernstein"))
        with pytest.raises(IndexError):
            executor.execute(query, start_block=10**9)

    def test_delta_validated_at_bound_time(self, scramble):
        executor = ApproximateExecutor(
            scramble, get_bounder("bernstein"), delta=2.0
        )
        query = Query(AggregateFunction.AVG, "DepDelay", SamplesTaken(10))
        with pytest.raises(ValueError, match="delta"):
            executor.execute(query)


class TestSqlExpressionIntegration:
    def test_expression_aggregate_end_to_end(self, scramble):
        """Appendix B through the SQL door: AVG over an arithmetic
        expression compiles, derives range bounds, and certifies."""
        from repro.sql import parse_query

        query = parse_query(
            "SELECT AVG(2 * DepDelay + 10) FROM flights",
            stopping=RelativeAccuracy(0.5),
        )
        approx = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-6,
            rng=np.random.default_rng(5),
        ).execute(query)
        truth = float(2.0 * scramble.table.continuous("DepDelay").mean() + 10.0)
        group = approx.scalar()
        slack = 1e-9 * max(1.0, abs(truth))
        assert group.interval.lo - slack <= truth <= group.interval.hi + slack
