"""Tests for the F-q1..F-q9 query builders (Figure 5 / Table 4)."""

from __future__ import annotations

import pytest

from repro.experiments.queries import ALL_QUERIES, GROUP_BY_QUERIES, build_query, fq1, fq3
from repro.fastframe.predicate import Compare, Eq
from repro.fastframe.query import AggregateFunction
from repro.stopping.conditions import (
    GroupsOrdered,
    RelativeAccuracy,
    ThresholdSide,
    TopKSeparated,
)


def test_all_nine_queries_defined():
    assert set(ALL_QUERIES) == {f"F-q{i}" for i in range(1, 10)}


def test_group_by_queries_subset():
    assert set(GROUP_BY_QUERIES) <= set(ALL_QUERIES)
    for name in GROUP_BY_QUERIES:
        assert build_query(name).group_by, name


def test_build_query_unknown():
    with pytest.raises(KeyError):
        build_query("F-q10")


def test_fq1_stopping_condition():
    """Table 4: F-q1 stops on relative accuracy (Ì)."""
    query = fq1(airport="ORD", epsilon=0.25)
    assert isinstance(query.stopping, RelativeAccuracy)
    assert query.stopping.epsilon == 0.25
    assert isinstance(query.predicate, Eq)
    assert query.aggregate is AggregateFunction.AVG


def test_fq2_threshold():
    query = build_query("F-q2", thresh=5.0)
    assert isinstance(query.stopping, ThresholdSide)
    assert query.stopping.threshold == 5.0
    assert query.group_by == ("Airline",)


def test_fq3_bottom_two():
    """Table 4: F-q3 stops when the bottom 2 airlines separate (Î)."""
    query = fq3(min_dep_time=1200)
    assert isinstance(query.stopping, TopKSeparated)
    assert query.stopping.k == 2
    assert not query.stopping.largest
    assert isinstance(query.predicate, Compare)
    assert query.predicate.threshold == 1200


def test_fq4_fixed_threshold_ten():
    query = build_query("F-q4")
    assert isinstance(query.stopping, ThresholdSide)
    assert query.stopping.threshold == 10.0
    assert query.group_by == ()


def test_fq5_negative_delay_airports():
    query = build_query("F-q5")
    assert isinstance(query.stopping, ThresholdSide)
    assert query.stopping.threshold == 0.0
    assert query.group_by == ("Origin",)


def test_fq6_top5_two_column_group():
    query = build_query("F-q6")
    assert query.group_by == ("DayOfWeek", "Origin")
    assert isinstance(query.stopping, TopKSeparated)
    assert query.stopping.k == 5


def test_fq7_groups_ordered():
    query = build_query("F-q7")
    assert isinstance(query.stopping, GroupsOrdered)
    assert isinstance(query.predicate, Eq)


def test_fq8_fq9_top1():
    for name, group in (("F-q8", ("Origin",)), ("F-q9", ("Airline",))):
        query = build_query(name)
        assert isinstance(query.stopping, TopKSeparated)
        assert query.stopping.k == 1
        assert query.group_by == group


def test_describe_mentions_pieces():
    text = build_query("F-q2").describe()
    assert "AVG(DepDelay)" in text
    assert "GROUP BY Airline" in text
