"""Tests for the SSI-vs-asymptotic coverage experiment (§1 motivation)."""

import numpy as np
import pytest

from repro.bounders.registry import get_bounder
from repro.experiments.coverage import (
    CoverageCell,
    measure_coverage,
    run_coverage_experiment,
    skewed_dataset,
)


class TestSkewedDataset:
    def test_size_and_outliers(self):
        data = skewed_dataset(n=1_000, outlier_fraction=0.01, outlier_value=500.0)
        assert data.size == 1_000
        assert (data == 500.0).sum() == 10

    def test_at_least_one_outlier(self):
        data = skewed_dataset(n=100, outlier_fraction=1e-6, outlier_value=99.0)
        assert (data == 99.0).sum() == 1

    def test_shuffled(self):
        """Outliers must not all sit at the end of the array."""
        data = skewed_dataset(n=5_000, outlier_fraction=0.01, outlier_value=123.0)
        positions = np.flatnonzero(data == 123.0)
        assert positions.min() < 2_500 < positions.max()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            skewed_dataset(outlier_fraction=1.5)


class TestMeasureCoverage:
    def test_ssi_bounder_respects_delta(self):
        data = skewed_dataset(n=800, rng=np.random.default_rng(0))
        cell = measure_coverage(
            get_bounder("bernstein+rt"),
            data,
            sample_size=50,
            delta=0.05,
            trials=200,
            rng=np.random.default_rng(1),
        )
        assert cell.miss_rate <= 0.05
        assert cell.ssi is True

    def test_clt_undercovers_on_skewed_data(self):
        """The paper's motivating failure: CLT misses far more than δ when
        the sample usually contains no outlier."""
        data = skewed_dataset(
            n=2_000, outlier_fraction=0.005, outlier_value=1_000.0,
            rng=np.random.default_rng(0),
        )
        cell = measure_coverage(
            get_bounder("clt"),
            data,
            sample_size=30,
            delta=0.05,
            trials=300,
            rng=np.random.default_rng(2),
        )
        assert cell.miss_rate > 0.10
        assert cell.ssi is False

    def test_narrower_means_the_tradeoff_exists(self):
        data = skewed_dataset(n=1_000, rng=np.random.default_rng(0))
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        clt = measure_coverage(get_bounder("clt"), data, 40, 0.05, 50, rng_a)
        hoef = measure_coverage(get_bounder("hoeffding"), data, 40, 0.05, 50, rng_b)
        assert clt.mean_width < hoef.mean_width

    def test_rejects_oversized_sample(self):
        data = skewed_dataset(n=100)
        with pytest.raises(ValueError):
            measure_coverage(
                get_bounder("clt"), data, 101, 0.05, 10, np.random.default_rng(0)
            )

    def test_explicit_bounds_override(self):
        data = np.array([0.0, 1.0, 2.0, 3.0] * 20)
        cell = measure_coverage(
            get_bounder("hoeffding"),
            data,
            sample_size=10,
            delta=0.1,
            trials=20,
            rng=np.random.default_rng(0),
            bounds=(-10.0, 10.0),
        )
        # Wider catalog bounds widen Hoeffding CIs but never break coverage.
        assert cell.misses == 0


class TestRunCoverageExperiment:
    def test_grid_shape(self):
        cells = run_coverage_experiment(
            bounder_names=("hoeffding", "clt"),
            sample_sizes=(20, 50),
            trials=30,
            seed=0,
        )
        assert len(cells) == 4
        assert {c.bounder for c in cells} == {"Hoeffding", "CLT"}

    def test_ssi_flag_partition(self):
        cells = run_coverage_experiment(
            bounder_names=("bernstein+rt", "bootstrap"),
            sample_sizes=(25,),
            trials=20,
            seed=1,
        )
        flags = {c.bounder: c.ssi for c in cells}
        assert flags["Bernstein+RT"] is True
        assert flags["Bootstrap"] is False

    def test_reproducible(self):
        kwargs = dict(
            bounder_names=("clt",), sample_sizes=(30,), trials=50, seed=42
        )
        first = run_coverage_experiment(**kwargs)
        second = run_coverage_experiment(**kwargs)
        assert first[0].misses == second[0].misses
        assert first[0].mean_width == second[0].mean_width

    def test_cell_miss_rate(self):
        cell = CoverageCell("x", 10, trials=200, misses=7, mean_width=1.0, ssi=True)
        assert cell.miss_rate == pytest.approx(0.035)
