"""Tests for the experiment runners (small-scale smoke of Tables 5/6)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.format import format_sweep, format_table5, format_table6
from repro.experiments.queries import build_query
from repro.experiments.runner import (
    check_correctness,
    run_query_once,
    run_table5,
    run_table6,
    warm_metadata,
)
from repro.experiments.sweeps import (
    airports_by_selectivity,
    sweep_fig7a_relative_error,
    sweep_fig8_min_dep_time,
)
from repro.fastframe.exact import ExactExecutor

#: Moderate delta so the tiny test scramble can terminate early.
TEST_DELTA = 1e-6


class TestRunQueryOnce:
    def test_returns_result_with_metrics(self, small_scramble):
        query = build_query("F-q1", epsilon=1.0)
        result = run_query_once(
            small_scramble, query, "bernstein+rt", delta=TEST_DELTA
        )
        assert result.metrics.rows_read > 0
        assert result.scalar().interval.width >= 0


class TestCheckCorrectness:
    def test_threshold_semantics(self, small_scramble):
        query = build_query("F-q2")
        exact = ExactExecutor(small_scramble).execute(query)
        approx = run_query_once(small_scramble, query, "bernstein+rt", delta=TEST_DELTA)
        assert check_correctness(query, approx, exact)

    def test_topk_semantics(self, small_scramble):
        query = build_query("F-q9")
        exact = ExactExecutor(small_scramble).execute(query)
        approx = run_query_once(small_scramble, query, "bernstein+rt", delta=TEST_DELTA)
        assert check_correctness(query, approx, exact)

    def test_relative_accuracy_semantics(self, small_scramble):
        query = build_query("F-q1", epsilon=1.0)
        exact = ExactExecutor(small_scramble).execute(query)
        approx = run_query_once(small_scramble, query, "bernstein+rt", delta=TEST_DELTA)
        assert check_correctness(query, approx, exact, epsilon_slack=1e-9)


class TestTables:
    def test_table5_rows_structure(self, small_scramble):
        rows = run_table5(
            small_scramble,
            query_names=("F-q1", "F-q9"),
            bounders=("hoeffding", "bernstein+rt"),
            reps=1,
            delta=TEST_DELTA,
        )
        assert [row.query_name for row in rows] == ["F-q1", "F-q9"]
        for row in rows:
            assert row.baseline.approach == "Exact"
            assert len(row.approaches) == 2
            for cell in row.approaches:
                assert cell.correct, (row.query_name, cell.approach)
                assert math.isfinite(cell.speedup_wall)
                assert cell.blocks_fetched > 0

    def test_table5_formatting(self, small_scramble):
        rows = run_table5(
            small_scramble,
            query_names=("F-q1",),
            bounders=("bernstein+rt",),
            reps=1,
            delta=TEST_DELTA,
        )
        text = format_table5(rows)
        assert "Table 5" in text
        assert "F-q1" in text
        assert "Bernstein+RT" in text

    def test_table6_rows_structure(self, small_scramble):
        rows = run_table6(
            small_scramble,
            query_names=("F-q5",),
            strategies=("scan", "activepeek"),
            reps=1,
            delta=TEST_DELTA,
        )
        assert rows[0].baseline.approach == "Scan"
        assert [cell.approach for cell in rows[0].approaches] == ["ActivePeek"]
        assert rows[0].approaches[0].correct

    def test_table6_formatting(self, small_scramble):
        rows = run_table6(
            small_scramble,
            query_names=("F-q5",),
            strategies=("scan", "activepeek"),
            reps=1,
            delta=TEST_DELTA,
        )
        assert "Table 6" in format_table6(rows)


class TestSweeps:
    def test_airports_span_selectivity(self, small_scramble):
        airports = airports_by_selectivity(small_scramble, count=5)
        selectivities = [sel for _, sel in airports]
        assert selectivities == sorted(selectivities, reverse=True)
        assert selectivities[0] > 10 * selectivities[-1]

    def test_fig7a_errors_within_requested(self, small_scramble):
        warm_metadata(small_scramble, build_query("F-q1"))
        result = sweep_fig7a_relative_error(
            small_scramble,
            epsilons=(2.0, 1.0),
            bounders=("bernstein+rt",),
            delta=TEST_DELTA,
        )
        series = result.series_by_name("bernstein+rt")
        for requested, actual in zip(result.x_values, series.values):
            assert actual <= requested

    def test_fig8_series_shape(self, small_scramble):
        result = sweep_fig8_min_dep_time(
            small_scramble,
            min_dep_times=(1000, 2000),
            bounders=("bernstein+rt",),
            delta=TEST_DELTA,
        )
        series = result.series_by_name("bernstein+rt")
        assert len(series.values) == 2
        assert all(v > 0 for v in series.values)
        assert "Figure 8" in format_sweep(result)

    def test_series_by_name_missing(self, small_scramble):
        result = sweep_fig8_min_dep_time(
            small_scramble,
            min_dep_times=(1000,),
            bounders=("bernstein+rt",),
            delta=TEST_DELTA,
        )
        with pytest.raises(KeyError):
            result.series_by_name("clt")
