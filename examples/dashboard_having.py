"""Dashboard scenario: which airlines exceed a delay threshold?

Reproduces the paper's motivating query shape (Figure 1 / F-q2): a
GROUP BY ... HAVING AVG(...) > t query whose aggregates drive both the
display (per-airline CIs shown to the analyst) and an automated filter
(the HAVING clause).  Early stopping via the threshold-side condition
certifies each airline's side of the threshold — subset/superset errors
are impossible up to the δ = 1e-9 failure probability, unlike CLT or
bootstrap intervals (§1).

The script also contrasts the four evaluated bounders' costs, a miniature
of the paper's Table 5.

Run:  python examples/dashboard_having.py
"""

from __future__ import annotations

import numpy as np

from repro.bounders import EVALUATED_BOUNDERS, get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    ExactExecutor,
    Query,
    get_strategy,
)
from repro.stopping import ThresholdSide

THRESHOLD = 8.0  # minutes of average departure delay


def main() -> None:
    print("building a 500k-row flights scramble ...")
    scramble = make_flights_scramble(rows=500_000, seed=1)

    # SELECT Airline FROM flights GROUP BY Airline
    #   HAVING AVG(DepDelay) > 8
    query = Query(
        AggregateFunction.AVG,
        "DepDelay",
        ThresholdSide(THRESHOLD),
        group_by=("Airline",),
        name="dashboard",
    )

    exact = ExactExecutor(scramble).execute(query)
    truth = {key for key, group in exact.groups.items() if group.estimate > THRESHOLD}

    print(f"\n{'bounder':14s} {'rows read':>10s} {'blocks':>8s} {'correct':>8s}")
    for name in EVALUATED_BOUNDERS:
        executor = ApproximateExecutor(
            scramble,
            get_bounder(name),
            strategy=get_strategy("activepeek"),
            delta=1e-9,
            rng=np.random.default_rng(7),
        )
        result = executor.execute(query)
        correct = result.keys_above(THRESHOLD) == truth
        print(
            f"{get_bounder(name).name:14s} {result.metrics.rows_read:10,d} "
            f"{result.metrics.blocks_fetched:8,d} {str(correct):>8s}"
        )

    # Render the dashboard from the best bounder's final state.
    executor = ApproximateExecutor(
        scramble,
        get_bounder("bernstein+rt"),
        strategy=get_strategy("activepeek"),
        delta=1e-9,
        rng=np.random.default_rng(7),
    )
    result = executor.execute(query)
    print(f"\nairlines with AVG(DepDelay) > {THRESHOLD} (certified):")
    for key in sorted(result.keys_above(THRESHOLD)):
        group = result.groups[key]
        print(
            f"  {key[0]}: estimate {group.estimate:6.2f}  "
            f"CI [{group.interval.lo:6.2f}, {group.interval.hi:6.2f}]  "
            f"({group.samples:,} samples)"
        )


if __name__ == "__main__":
    main()
