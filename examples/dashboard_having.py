"""Dashboard scenario: which airlines exceed a delay threshold?

Reproduces the paper's motivating query shape (Figure 1 / F-q2): a
GROUP BY ... HAVING AVG(...) > t query whose aggregates drive both the
display (per-airline CIs shown to the analyst) and an automated filter
(the HAVING clause).  Early stopping via the threshold-side condition
certifies each airline's side of the threshold — subset/superset errors
are impossible up to the δ = 1e-9 failure probability, unlike CLT or
bootstrap intervals (§1).

The script uses the connection front-end end to end: the fluent builder
compiles the query lazily, ``handle.rounds()`` streams the progressive
per-round intervals a live dashboard would render, and a bounder
mini-ablation (a miniature of the paper's Table 5) runs each contender on
its own single-query connection.

Run:  python examples/dashboard_having.py
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.bounders import EVALUATED_BOUNDERS, get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import ExactExecutor

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "500000"))
THRESHOLD = 8.0  # minutes of average departure delay


def _handle(conn):
    """SELECT Airline FROM flights GROUP BY Airline
       HAVING AVG(DepDelay) > 8 — as a lazy builder handle."""
    return (
        conn.table()
        .group_by("Airline")
        .named("dashboard")
        .avg("DepDelay", above=THRESHOLD)
    )


def main() -> None:
    print(f"building a {ROWS:,}-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=1)

    conn = repro.connect(
        scramble,
        strategy="activepeek",
        delta=1e-9,
        max_queries=1,
        rng=np.random.default_rng(7),
    )
    handle = _handle(conn)

    exact = ExactExecutor(scramble).execute(handle.query)
    truth = {key for key, group in exact.groups.items() if group.estimate > THRESHOLD}

    # Progressive resolution: what a live dashboard repaints every round.
    print("\nstreaming rounds (undecided airlines shrink each round):")
    final = None
    for update in handle.rounds():
        undecided = sum(
            1
            for snap in update.groups.values()
            if snap.interval.lo <= THRESHOLD <= snap.interval.hi
        )
        print(
            f"  round {update.round_index:>2}: {update.rows_read:>9,} rows read, "
            f"{undecided:>2} airlines still straddle the threshold"
        )
        final = update
    assert final is not None

    result = handle.result()  # sealed by the rounds() iteration
    correct = result.keys_above(THRESHOLD) == truth
    print(f"\ncertified HAVING set matches exact evaluation: {correct}")
    print(f"airlines with AVG(DepDelay) > {THRESHOLD} (certified):")
    for key in sorted(result.keys_above(THRESHOLD)):
        group = result.groups[key]
        print(
            f"  {key[0]}: estimate {group.estimate:6.2f}  "
            f"CI [{group.interval.lo:6.2f}, {group.interval.hi:6.2f}]  "
            f"({group.samples:,} samples)"
        )

    # Bounder mini-ablation (a miniature of Table 5), one connection each.
    print(f"\n{'bounder':14s} {'rows read':>10s} {'blocks':>8s} {'correct':>8s}")
    for name in EVALUATED_BOUNDERS:
        contender = repro.connect(
            scramble,
            bounder=name,
            strategy="activepeek",
            delta=1e-9,
            max_queries=1,
            rng=np.random.default_rng(7),
        )
        outcome = _handle(contender).result()
        ok = outcome.keys_above(THRESHOLD) == truth
        print(
            f"{get_bounder(name).name:14s} {outcome.metrics.rows_read:10,d} "
            f"{outcome.metrics.blocks_fetched:8,d} {str(ok):>8s}"
        )


if __name__ == "__main__":
    main()
