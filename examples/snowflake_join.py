"""Approximate aggregation over a snowflake-schema join view.

The paper's extensibility claim (§1): the guarantees carry over to "queries
over views formed from joins in a snowflake schema" because the joined view
is materialized offline and scrambled once, after which every filtered or
grouped subset is again an aggregate view amenable to scan-based
without-replacement sampling.

This example builds a two-level snowflake —

    flights(DepDelay, Origin) --> airports(code, state) --> regions(state, name)

— denormalizes it, scrambles the joined view, and answers "average delay by
*region*" (a column that exists on no single base table) with certified
intervals, comparing against exact evaluation.

Run:  python examples/snowflake_join.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    Dimension,
    ExactExecutor,
    ForeignKey,
    Query,
    Scramble,
    Table,
)
from repro.stopping import GroupsOrdered

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "400000"))

AIRPORTS = ["ORD", "MDW", "SFO", "LAX", "JFK", "LGA", "AUS", "DFW"]
STATES = ["IL", "IL", "CA", "CA", "NY", "NY", "TX", "TX"]
REGIONS = {"IL": "midwest", "CA": "west", "NY": "east", "TX": "south"}


def build_schema(rows: int, seed: int):
    rng = np.random.default_rng(seed)
    origins = rng.choice(AIRPORTS, size=rows)
    # Regional signal: western airports run late, eastern ones early.
    base = {"midwest": 12.0, "west": 18.0, "east": 6.0, "south": 9.0}
    state_of = dict(zip(AIRPORTS, STATES))
    means = np.array([base[REGIONS[state_of[o]]] for o in origins])
    delays = rng.normal(means, 25.0)

    fact = Table(
        continuous={"DepDelay": delays},
        categorical={"Origin": origins},
    )
    regions = Dimension(
        name="region",
        table=Table(
            categorical={
                "state_code": sorted(set(STATES)),
                "name": [REGIONS[s] for s in sorted(set(STATES))],
            }
        ),
        key="state_code",
    )
    airports = Dimension(
        name="airport",
        table=Table(categorical={"code": AIRPORTS, "state": STATES}),
        key="code",
        foreign_keys=(ForeignKey("state", regions),),
    )
    return fact, ForeignKey("Origin", airports)


def main() -> None:
    from repro.fastframe.snowflake import denormalize

    print("building a 400k-row flights fact table + snowflake dimensions ...")
    fact, fk = build_schema(rows=ROWS, seed=0)

    view = denormalize(fact, [fk])
    print(f"joined view columns: {', '.join(view.columns())}")

    scramble = Scramble(view, rng=np.random.default_rng(1))
    query = Query(
        AggregateFunction.AVG,
        "DepDelay",
        GroupsOrdered(),          # stop once the region ordering is certain
        group_by=("airport.name",),
        name="delay-by-region",
    )
    approx = ApproximateExecutor(
        scramble,
        get_bounder("bernstein+rt"),
        delta=1e-9,
        rng=np.random.default_rng(2),
    ).execute(query)
    exact = ExactExecutor(scramble).execute(query)

    print(
        f"\nrows read: {approx.metrics.rows_read:,} of {scramble.num_rows:,} "
        f"({approx.metrics.rows_read / scramble.num_rows:.1%})"
    )
    print(f"{'region':<10} {'approx avg':>10} {'interval':>20} {'exact':>8}")
    for key in approx.ordering():
        group = approx.groups[key]
        truth = exact.groups[key].estimate
        print(
            f"{key[0]:<10} {group.estimate:>10.2f} "
            f"[{group.interval.lo:>8.2f}, {group.interval.hi:>7.2f}] {truth:>8.2f}"
        )
    print(
        f"\nordering matches exact: {approx.ordering() == exact.ordering()}"
    )


if __name__ == "__main__":
    main()
