"""Quickstart: approximate AVG with a guaranteed confidence interval.

Builds a synthetic flights scramble, asks for the average departure delay
of flights out of ORD with a relative-accuracy contract, and compares the
approximate answer (and its certified interval) against exact evaluation.

This script intentionally sticks to the pre-1.1 eager API through the
top-level deprecation shims (``repro.ApproximateExecutor``): it must keep
working unchanged, warnings aside, as proof of backward compatibility.
See ``examples/multiquery_session.py`` for the current
``repro.connect()`` front door.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import AggregateFunction, Eq, ExactExecutor, Query
from repro.stopping import RelativeAccuracy

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "500000"))


def main() -> None:
    print(f"building a {ROWS:,}-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=0)

    # SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'
    # stop once the relative error is certifiably below 30%.
    query = Query(
        AggregateFunction.AVG,
        "DepDelay",
        RelativeAccuracy(0.3),
        predicate=Eq("Origin", "ORD"),
        name="quickstart",
    )

    # The deprecated top-level alias: warns, then behaves identically.
    executor = repro.ApproximateExecutor(
        scramble,
        get_bounder("bernstein+rt"),  # the paper's best: no PMA, no PHOS
        delta=1e-9,                    # failure probability of the interval
        rng=np.random.default_rng(42),
    )
    approx = executor.execute(query)
    group = approx.scalar()

    exact = ExactExecutor(scramble).execute(query).scalar()

    print(f"\napproximate AVG(DepDelay | ORD) = {group.estimate:.3f}")
    print(f"certified 1-1e-9 interval       = [{group.interval.lo:.3f}, {group.interval.hi:.3f}]")
    print(f"exact answer                    = {exact.estimate:.3f}")
    print(f"interval encloses exact answer  = {exact.estimate in group.interval}")
    print(
        f"\nrows read: {approx.metrics.rows_read:,} of {scramble.num_rows:,} "
        f"({approx.metrics.rows_read / scramble.num_rows:.1%}), "
        f"stopped early: {approx.metrics.stopped_early}"
    )


if __name__ == "__main__":
    main()
