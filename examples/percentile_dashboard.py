"""Grouped p95 latency dashboard with certified quantile intervals.

The operational question every latency dashboard answers: *which services
have the worst tail latency?*  This is ORDER BY PERCENTILE(latency, 0.95)
DESC LIMIT 3 over a per-service GROUP BY — and with DKW-certified
quantile intervals it stops early twice over:

* the scan terminates once the three worst services' p95 intervals are
  certifiably above everyone else's (condition Î's dominance test), and
* a healthy service whose p95 *upper* bound already sits below three p95
  *lower* bounds retires immediately — no more samples are spent on it
  even while the leaders are still separating among themselves.

Run:  python examples/percentile_dashboard.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.fastframe import ApproximateExecutor, ExactExecutor, get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.table import Table
from repro.sql import parse_query

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "400000"))

#: Per-service lognormal latency profiles (median ms, tail spread).  Three
#: services are genuinely slow in the tail; the rest are healthy and
#: should retire early.
SERVICES = {
    "checkout": (120.0, 0.9),
    "search": (95.0, 0.8),
    "recommend": (80.0, 0.85),
    "auth": (20.0, 0.3),
    "catalog": (35.0, 0.4),
    "cart": (30.0, 0.35),
    "profile": (25.0, 0.3),
    "static": (8.0, 0.2),
}

SQL = (
    "SELECT service, PERCENTILE(latency_ms, 0.95) FROM requests "
    "GROUP BY service ORDER BY PERCENTILE(latency_ms, 0.95) DESC LIMIT 3"
)


def build_requests(rows: int, seed: int) -> Scramble:
    rng = np.random.default_rng(seed)
    names = list(SERVICES)
    codes = rng.integers(0, len(names), rows)
    medians = np.array([SERVICES[name][0] for name in names])
    spreads = np.array([SERVICES[name][1] for name in names])
    latency = medians[codes] * rng.lognormal(0.0, spreads[codes], rows)
    table = Table(
        continuous={"latency_ms": latency},
        categorical={"service": np.array(names, dtype=object)[codes]},
        range_pad=0.05,
    )
    return Scramble(table, rng=np.random.default_rng(seed + 1))


def main() -> None:
    print(f"building a {ROWS:,}-row request log ...")
    scramble = build_requests(ROWS, seed=3)

    print(f"\n{SQL}\n")
    query = parse_query(SQL)

    executor = ApproximateExecutor(
        scramble,
        get_bounder("bernstein+rt"),  # quantile queries swap in DKW bounds
        strategy=get_strategy("activesync"),
        delta=1e-6,
        rng=np.random.default_rng(11),
    )
    result = executor.execute(query)

    print("certified worst-p95 services (early-stopped):")
    for key in result.top_k(3):
        group = result.groups[key]
        print(
            f"  {key[0]:10s} p95 ≈ {group.estimate:8.1f} ms   "
            f"CI [{group.interval.lo:8.1f}, {group.interval.hi:8.1f}]   "
            f"samples={group.samples:,}"
        )

    print(f"\nrows read: {result.metrics.rows_read:,} of {ROWS:,}")

    # The dominance certificate that retired the healthy services: their
    # p95 *upper* bounds sit below the 3rd-largest p95 *lower* bound.
    bar = sorted(
        (g.interval.lo for g in result.groups.values()), reverse=True
    )[2]
    print(f"retirement bar (3rd-largest p95 lower bound): {bar:.1f} ms")
    print("services certifiably outside the worst three:")
    for key in result.ordering()[3:]:
        group = result.groups[key]
        print(
            f"  {key[0]:10s} p95 ≤ {group.interval.hi:6.1f} ms "
            f"< {bar:.1f}  (retired, samples={group.samples:,})"
        )

    exact = ExactExecutor(scramble).execute(query)
    exact_top = [key[0] for key in exact.top_k(3)]
    approx_top = [key[0] for key in result.top_k(3)]
    print(f"\nexact worst three: {exact_top}")
    assert set(approx_top) == set(exact_top), "certified top-3 must match exact"
    print("certified selection matches the exact answer.")


if __name__ == "__main__":
    main()
