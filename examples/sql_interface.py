"""Run the paper's Figure 5 queries straight from SQL text.

The SQL front-end compiles the paper's query language to executable
FastFrame queries, inferring each stopping condition from the SQL itself:
HAVING thresholds become threshold-side tests (condition Í), ORDER BY …
LIMIT K becomes top-K separation (condition Î), and a plain ORDER BY on the
aggregate becomes full-ordering determination (condition Ï).

Run:  python examples/sql_interface.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import ApproximateExecutor
from repro.sql import parse_query
from repro.stopping import RelativeAccuracy

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "500000"))

QUERIES = {
    "avg delay out of ORD (accuracy contract)": (
        "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'",
        RelativeAccuracy(0.3),
    ),
    "airlines with positive average delay (HAVING)": (
        "SELECT Airline FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 0",
        None,
    ),
    "two most punctual late-night airlines (ORDER BY ... LIMIT)": (
        "SELECT Airline FROM flights WHERE DepTime > 10:50pm "
        "GROUP BY Airline ORDER BY AVG(DepDelay) ASC LIMIT 2",
        None,
    ),
}


def main() -> None:
    print("building a 500k-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=0)

    for title, (sql, stopping) in QUERIES.items():
        query = parse_query(sql, stopping=stopping, name=title)
        executor = ApproximateExecutor(
            scramble,
            get_bounder("bernstein+rt"),
            delta=1e-9,
            rng=np.random.default_rng(1),
        )
        result = executor.execute(query)
        print(f"\n=== {title}")
        print(f"    SQL: {sql}")
        print(f"    stopping condition: {query.stopping!r}")
        print(
            f"    rows read: {result.metrics.rows_read:,} "
            f"({result.metrics.rows_read / scramble.num_rows:.1%} of the data)"
        )
        if query.group_by:
            shown = 0
            for key, group in sorted(
                result.groups.items(), key=lambda kv: kv[1].estimate
            ):
                label = ", ".join(map(str, key))
                print(
                    f"      {label:<12} avg={group.estimate:>7.2f}  "
                    f"CI=[{group.interval.lo:.2f}, {group.interval.hi:.2f}]"
                )
                shown += 1
                if shown >= 5:
                    print(f"      ... ({len(result.groups) - shown} more groups)")
                    break
        else:
            group = result.scalar()
            print(
                f"      estimate={group.estimate:.3f}  "
                f"CI=[{group.interval.lo:.3f}, {group.interval.hi:.3f}]"
            )


if __name__ == "__main__":
    main()
