"""Offline stratified samples vs the online scramble (§6's AQP divide).

Offline AQP systems (BlinkDB-family) materialize per-stratum samples for a
*declared* workload; the paper's scramble supports *ad-hoc* queries.  This
script shows both sides of that tradeoff on one dataset:

1. the declared GROUP BY query — the stratified store answers from a few
   thousand materialized rows while the scramble must scan two orders of
   magnitude more to feed its sparsest group;
2. an ad-hoc filtered query — the strata refuse it outright (answering
   would be statistically unsound), while the scramble certifies it.

Run:  python examples/offline_vs_online.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    Compare,
    Query,
    Scramble,
    StratifiedSampleStore,
    Table,
    UnsupportedQueryError,
)
from repro.stopping import SamplesTaken

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "300000"))


def build_table(seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    airlines = rng.choice(
        ["WN", "AA", "UA", "F9", "HA"], size=ROWS, p=[0.7, 0.15, 0.1, 0.04, 0.01]
    )
    base = {"WN": 8.0, "AA": 10.0, "UA": 12.0, "F9": 14.0, "HA": 4.0}
    delays = rng.normal([base[a] for a in airlines], 20.0)
    times = rng.uniform(0.0, 2400.0, size=ROWS)
    return Table(
        continuous={"DepDelay": delays, "DepTime": times},
        categorical={"Airline": airlines},
    )


def main() -> None:
    table = build_table()
    store = StratifiedSampleStore(
        table, ("Airline",), per_stratum=1_000, rng=np.random.default_rng(1)
    )
    scramble = Scramble(table, rng=np.random.default_rng(1))

    # --- declared workload: AVG(DepDelay) GROUP BY Airline -------------
    declared = Query(
        AggregateFunction.AVG, "DepDelay", SamplesTaken(1_000),
        group_by=("Airline",),
    )
    offline = store.execute_avg(declared, get_bounder("bernstein+rt"), delta=1e-9)
    online = ApproximateExecutor(
        scramble, get_bounder("bernstein+rt"), delta=1e-9,
        rng=np.random.default_rng(2),
    ).execute(declared, start_block=0)

    print("declared workload: AVG(DepDelay) GROUP BY Airline")
    print(f"  offline strata rows touched : {store.rows_materialized:,}")
    print(f"  online scramble rows scanned: {online.metrics.rows_read:,}")
    sparse_off = offline[("HA",)]
    sparse_on = online.groups[("HA",)]
    print(
        f"  sparse group HA (1% of rows): offline {sparse_off.samples} samples "
        f"(width {sparse_off.interval.width:.2f}) vs online {sparse_on.samples} "
        f"samples (width {sparse_on.interval.width:.2f})"
    )

    # --- ad-hoc query: the strata cannot serve it ----------------------
    adhoc = Query(
        AggregateFunction.AVG, "DepDelay", SamplesTaken(5_000),
        predicate=Compare("DepTime", ">", 1350.0),
    )
    print("\nad-hoc query: AVG(DepDelay) WHERE DepTime > 1:50pm")
    try:
        store.execute_avg(adhoc, get_bounder("bernstein+rt"))
    except UnsupportedQueryError as exc:
        print(f"  offline strata: REFUSED ({str(exc).splitlines()[0][:60]}...)")
    result = ApproximateExecutor(
        scramble, get_bounder("bernstein+rt"), delta=1e-9,
        rng=np.random.default_rng(3),
    ).execute(adhoc)
    group = result.scalar()
    print(
        f"  online scramble: {group.estimate:.2f} in "
        f"[{group.interval.lo:.2f}, {group.interval.hi:.2f}] "
        f"({result.metrics.rows_read:,} rows scanned)"
    )
    print(
        "\none shuffle, any query - the workload-independence the paper "
        "buys by\nscrambling instead of stratifying."
    )


if __name__ == "__main__":
    main()
