"""The §7 future-work optimizer: when to sample, when to scan exactly.

The paper's conclusion proposes "an optimizer that intelligently determines
when to leverage traditional data layouts and index structures for exact
query processing and when to leverage a scramble for approximate results
with exact quality".  Table 5 shows why: loosely constrained queries stop
after a sliver of the data, while queries bottlenecked on sparse or
near-threshold groups degenerate to full scans where approximate execution
only adds bounder overhead (F-q5 ran *slower* than Exact under Hoeffding).

``QueryPlanner`` forecasts which regime a query falls into from a small
pilot sample plus the closed-form width formulas, then recommends a mode.
This script plans a spectrum of queries and checks the recommendations
against actual measured scan fractions.

Run:  python examples/query_planner.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    Eq,
    Query,
    QueryPlanner,
)
from repro.stopping import AbsoluteAccuracy, ThresholdSide

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "400000"))

QUERIES = {
    "loose accuracy (width 20)": Query(
        AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(20.0)
    ),
    "moderate accuracy (width 3)": Query(
        AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(3.0)
    ),
    "needle accuracy (width 0.01)": Query(
        AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(0.01)
    ),
    "threshold far from mean": Query(
        AggregateFunction.AVG, "DepDelay", ThresholdSide(-50.0),
        predicate=Eq("Origin", "ORD"),
    ),
    "threshold near the mean": Query(
        AggregateFunction.AVG, "DepDelay", ThresholdSide(12.0),
        predicate=Eq("Origin", "ORD"),
    ),
}


def main() -> None:
    print("building a 400k-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=0)
    planner = QueryPlanner(
        scramble, bounder_name="bernstein+rt", delta=1e-9, pilot_rows=min(20_000, ROWS // 4)
    )

    print(f"\n{'query':<30} {'plan':<12} {'predicted scan':>14} {'actual scan':>12}")
    print("-" * 72)
    for title, query in QUERIES.items():
        plan = planner.plan(query)
        result = ApproximateExecutor(
            scramble, get_bounder("bernstein+rt"), delta=1e-9,
            rng=np.random.default_rng(1),
        ).execute(query, start_block=0)
        actual = result.metrics.rows_read / scramble.num_rows
        print(
            f"{title:<30} {plan.mode:<12} {plan.scan_fraction:>13.1%} {actual:>11.1%}"
        )

    print(
        "\nqueries the planner marks 'exact' are the ones where sampling"
        "\ndegenerates to a full scan plus bounder overhead (Table 5's"
        "\nF-q5 regime); 'approximate' queries terminate early as predicted."
    )


if __name__ == "__main__":
    main()
