"""Appendix B scenario: CIs for aggregates over derived expressions.

The catalog stores range bounds per *column*, but analysts aggregate
*expressions* — e.g. a squared deviation or a unit conversion.  Appendix B
derives range bounds for the expression from the per-column bounds
(monotone corners, convex corner-max + box-constrained minimum, or
interval arithmetic), and the executor feeds those derived bounds to any
range-based error bounder.

This script reproduces the appendix's Example 1 and then runs a live
aggregate over a derived expression with a certified interval.

Run:  python examples/expression_aggregates.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.expressions import col, derive_range_bounds
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    ExactExecutor,
    Query,
    RangeBounds,
)
from repro.stopping import SamplesTaken

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "300000"))


def example_1() -> None:
    """Appendix B, Example 1: AVG((2·c1 + 3·c2 − 1)²)."""
    expr = (2 * col("c1") + 3 * col("c2") - 1) ** 2
    bounds = {"c1": RangeBounds(-3, 1), "c2": RangeBounds(-1, 3)}
    derived = derive_range_bounds(expr, bounds)
    print(f"Example 1: derived range bounds for {expr!r}")
    print(f"  c1 in [-3, 1], c2 in [-1, 3]  ->  [{derived.a:.0f}, {derived.b:.0f}]")
    print("  (paper's answer: [0, 100])\n")


def live_aggregate() -> None:
    """AVG of squared delay deviation — a dispersion-style dashboard stat."""
    print("building a 300k-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=3)

    # AVG((DepDelay - 10)^2): convex in DepDelay; derived bounds come from
    # the corner maximum and the box-constrained minimum.
    expr = (col("DepDelay") - 10.0) ** 2
    delay_bounds = scramble.table.catalog.bounds("DepDelay")
    derived = derive_range_bounds(expr, {"DepDelay": delay_bounds})
    print(
        f"DepDelay catalog bounds [{delay_bounds.a:.0f}, {delay_bounds.b:.0f}] "
        f"-> derived bounds for (DepDelay-10)^2: [{derived.a:.1f}, {derived.b:.1f}]"
    )

    query = Query(AggregateFunction.AVG, expr, SamplesTaken(60_000), name="dispersion")
    executor = ApproximateExecutor(
        scramble, get_bounder("bernstein+rt"), delta=1e-9,
        rng=np.random.default_rng(5),
    )
    approx = executor.execute(query).scalar()
    exact = ExactExecutor(scramble).execute(query).scalar()

    print(f"\napproximate AVG((DepDelay-10)^2) = {approx.estimate:10.2f}")
    print(f"certified interval               = [{approx.interval.lo:.2f}, {approx.interval.hi:.2f}]")
    print(f"exact answer                     = {exact.estimate:10.2f}")
    print(f"interval encloses exact          = {exact.estimate in approx.interval}")


def main() -> None:
    example_1()
    live_aggregate()


if __name__ == "__main__":
    main()
