"""Why guarantees matter: asymptotic CIs silently fail on skewed data.

The paper's introduction (§1) argues that CLT/bootstrap confidence
intervals are "compact without correctness": they are much tighter than
conservative SSI intervals, but on skewed data at small sample sizes they
miss the true aggregate far more often than the promised δ — which, when a
downstream HAVING clause consumes the interval, turns into subset/superset
errors [52].

This script measures exactly that tradeoff on a salary-like distribution
(almost all mass small, a handful of large outliers — Figure 2's regime):
the empirical miss rate and mean interval width of each bounder at a 95%
confidence target.

Run:  python examples/asymptotic_vs_ssi.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.experiments.coverage import run_coverage_experiment, skewed_dataset

TRIALS = int(os.environ.get("REPRO_EXAMPLE_TRIALS", "400"))

DELTA = 0.05  # 95% confidence target
BOUNDERS = ("hoeffding", "bernstein+rt", "clt", "student-t", "bootstrap")
SAMPLE_SIZES = (20, 50, 100, 300)


def main() -> None:
    data = skewed_dataset(
        n=2_000, outlier_fraction=0.005, outlier_value=1_000.0,
        rng=np.random.default_rng(0),
    )
    print(
        f"dataset: {data.size} salaries, mean={data.mean():.2f}, "
        f"max={data.max():.0f} (0.5% outliers)"
    )
    print(f"target: 1 - delta = {1 - DELTA:.0%} coverage\n")

    cells = run_coverage_experiment(
        bounder_names=BOUNDERS,
        sample_sizes=SAMPLE_SIZES,
        delta=DELTA,
        trials=TRIALS,
        data=data,
        seed=0,
    )

    header = f"{'bounder':<16} {'SSI':<5} " + " ".join(
        f"{'m=' + str(m):>14}" for m in SAMPLE_SIZES
    )
    print(header)
    print("-" * len(header))
    by_bounder: dict[str, list] = {}
    for cell in cells:
        by_bounder.setdefault(cell.bounder, []).append(cell)
    for name, row in by_bounder.items():
        row.sort(key=lambda c: c.sample_size)
        misses = " ".join(
            f"{c.miss_rate:>6.1%}/{c.mean_width:>6.1f}" for c in row
        )
        print(f"{name:<16} {'yes' if row[0].ssi else 'NO':<5} {misses}")

    print("\n(each cell: empirical miss rate / mean CI width)")
    print(
        "\nSSI bounders never exceed the 5% miss budget; the asymptotic\n"
        "bounders buy their narrow intervals with silent failures at small m\n"
        "- precisely the subset/superset error the paper's guarantees rule out."
    )


if __name__ == "__main__":
    main()
