"""Out-of-core dashboard: a block-store scramble bigger than its cache.

The storage layer (PR 10) lets a connection serve queries from a
scramble that never lives in memory: ``write_block_store`` spills the
permuted columns to per-column block files, ``open_block_scramble``
serves them back through zero-copy ``np.memmap`` views, and an LRU block
cache with a byte budget sits between the scan and the files.  This
script makes the cache deliberately *smaller than the dataset* — blocks
are evicted mid-scan — and shows that a 6-query dashboard still produces
results **exactly identical** (same estimates, same certified interval
endpoints, same sample counts, same δ spend) to resident in-memory
execution, because the block files round-trip the same float64/int32
bytes the arrays held.

Along the way it prints the block-I/O ledger the connection surfaces on
its round updates: blocks and bytes read from disk, cache hits and
evictions, and prefetch hits from the async page-warming that rides the
scan's ``peek_window`` pipelining split.

Run:  python examples/outofcore_dashboard.py
"""

from __future__ import annotations

import os
import shutil
import tempfile

import numpy as np

import repro
from repro.datasets import make_flights_scramble
from repro.fastframe.storage import open_block_scramble, write_block_store

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "400000"))
BLOCK_ROWS = 4_096  # small blocks so even modest ROWS spans many of them


def _dashboard(conn):
    """Six concurrent queries over one shared scan (the paper's §4.1
    multi-query session shape)."""
    return [
        conn.table().group_by("Airline").named("having-hi").avg("DepDelay", above=9.0),
        conn.table().group_by("Airline").named("having-lo").avg("DepDelay", above=7.5),
        conn.table().where("Origin", "ORD").named("ord-avg").avg("DepDelay", rel=0.2),
        conn.table().group_by("Airline").named("top3").avg("DepDelay", top=3),
        conn.table().group_by("Airline").named("counts").count(rel=0.05),
        conn.table().named("deptime").avg("DepTime", rel=0.01),
    ]


def _connect(scramble):
    return repro.connect(scramble, delta=1e-6, rng=np.random.default_rng(17))


def _store_bytes(directory: str) -> int:
    return sum(
        os.path.getsize(os.path.join(root, name))
        for root, _, names in os.walk(directory)
        for name in names
    )


def main() -> None:
    print(f"building a {ROWS:,}-row flights scramble ...")
    resident = make_flights_scramble(rows=ROWS, seed=1)

    directory = tempfile.mkdtemp(prefix="repro-outofcore-example-")
    try:
        write_block_store(directory, resident, block_rows=BLOCK_ROWS)
        store_bytes = _store_bytes(directory)
        # A budget far below the dataset: blocks must be evicted mid-scan.
        cache_bytes = max(store_bytes // 8, 4 * BLOCK_ROWS * 8)
        print(
            f"spilled {store_bytes:,} bytes of block files to {directory}\n"
            f"cache budget: {cache_bytes:,} bytes "
            f"({100.0 * cache_bytes / store_bytes:.0f}% of the store)"
        )

        # Reference: the same dashboard on the resident in-memory arrays.
        ref_conn = _connect(resident)
        reference = ref_conn.gather(_dashboard(ref_conn))

        # Out-of-core: every gather reads through the mmap block store.
        scramble = open_block_scramble(directory, cache_bytes=cache_bytes)
        try:
            conn = _connect(scramble)
            batch = conn.gather(_dashboard(conn))

            print("\ncertified results (served entirely from block files):")
            for result in batch.results:
                top = sorted(
                    result.groups.items(),
                    key=lambda item: -item[1].estimate,
                )[:3]
                rendered = ", ".join(
                    f"{'/'.join(map(str, key)) or 'all'}: "
                    f"{group.estimate:,.2f} "
                    f"[{group.interval.lo:,.2f}, {group.interval.hi:,.2f}]"
                    for key, group in top
                )
                print(f"  {result.query.name:>9s}  {rendered}")

            exact = True
            for got, want in zip(batch.results, reference.results):
                assert set(got.groups) == set(want.groups)
                for key, group in got.groups.items():
                    other = want.groups[key]
                    exact &= (
                        group.estimate == other.estimate
                        and group.interval.lo == other.interval.lo
                        and group.interval.hi == other.interval.hi
                        and group.samples == other.samples
                    )
            assert exact, "out-of-core results diverged from in-memory"
            print(
                "\nevery estimate, interval endpoint, and sample count is "
                "byte-identical to in-memory execution"
            )

            storage = batch.metrics.storage_snapshot()
            stats = scramble.storage.stats
            assert stats.cache_evictions > 0, "cache never overflowed?"
            print(
                f"\nblock I/O ledger ({len(batch.results)} queries, "
                f"{batch.metrics.rounds} shared windows):\n"
                f"  blocks read from disk : {storage.blocks_read:,} "
                f"({storage.bytes_read:,} bytes)\n"
                f"  cache hits            : {storage.cache_hits:,}\n"
                f"  cache evictions       : {storage.cache_evictions:,} "
                "(budget smaller than the dataset)\n"
                f"  prefetch hits         : {storage.prefetch_hits:,} "
                "(blocks warmed off the peeked next window)"
            )
        finally:
            scramble.storage.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
