"""Top-K scenario: find the worst airline with certified ordering.

Reproduces F-q9's shape — ORDER BY AVG(DepDelay) DESC LIMIT 1 — with the
top-1-separated stopping condition (Î): the scan terminates as soon as
the leader's confidence interval clears every rival's, so the returned
airline is the true maximizer w.h.p. even though only a fraction of the
data was read.  Active scanning focuses I/O on the airlines whose
intervals still straddle the separation boundary (§4.3).

Run:  python examples/topk_airlines.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    ExactExecutor,
    Query,
    get_strategy,
)
from repro.stopping import TopKSeparated

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "500000"))


def main() -> None:
    print("building a 500k-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=2)

    # SELECT Airline FROM flights GROUP BY Airline
    #   ORDER BY AVG(DepDelay) DESC LIMIT 1
    query = Query(
        AggregateFunction.AVG,
        "DepDelay",
        TopKSeparated(1, largest=True),
        group_by=("Airline",),
        name="top-airline",
    )

    for strategy_name in ("scan", "activesync", "activepeek"):
        executor = ApproximateExecutor(
            scramble,
            get_bounder("bernstein+rt"),
            strategy=get_strategy(strategy_name),
            delta=1e-9,
            rng=np.random.default_rng(11),
        )
        result = executor.execute(query)
        winner = result.top_k(1)[0]
        print(
            f"{strategy_name:11s}: worst airline = {winner[0]}  "
            f"rows={result.metrics.rows_read:,}  "
            f"blocks fetched={result.metrics.blocks_fetched:,}  "
            f"skipped={result.metrics.blocks_skipped:,}  "
            f"sync probes={result.metrics.index_probes:,}  "
            f"batch probes={result.metrics.batch_probes:,}"
        )

    exact = ExactExecutor(scramble).execute(query)
    print(f"\nexact worst airline: {exact.top_k(1)[0][0]}")
    print("per-airline exact means:")
    for key in exact.ordering():
        print(f"  {key[0]}: {exact.groups[key].estimate:6.2f}")


if __name__ == "__main__":
    main()
