"""Multi-query sessions: one scramble, many queries, one joint guarantee.

"The up-front shuffling cost need only be paid once in order to facilitate
many queries, although care must be taken to set the error probability
delta small enough when running multiple queries to avoid losing error
bounder guarantees" (§4.1).  The :class:`~repro.fastframe.session.Session`
makes that bookkeeping explicit: it allocates each query a slice of a
session-level delta (evenly for a declared capacity, or with an open-ended
1/k^2 decay), keeps a ledger, and guarantees that *every* interval issued
across the whole session is simultaneously valid with probability at least
1 - session_delta.

Run:  python examples/multiquery_session.py
"""

from __future__ import annotations

import numpy as np

from repro.bounders import get_bounder
from repro.datasets import make_flights_scramble
from repro.fastframe import Session
from repro.sql import parse_query
from repro.stopping import RelativeAccuracy

DASHBOARD = [
    ("late airlines", "SELECT Airline FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 9", None),
    ("early airports", "SELECT Origin FROM flights GROUP BY Origin HAVING AVG(DepDelay) < 0", None),
    ("ORD delay", "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'", RelativeAccuracy(0.3)),
    ("worst airline", "SELECT Airline FROM flights GROUP BY Airline ORDER BY AVG(DepDelay) DESC LIMIT 1", None),
]


def main() -> None:
    print("building a 500k-row flights scramble (paid once for the session) ...")
    scramble = make_flights_scramble(rows=500_000, seed=0)

    session = Session(
        scramble,
        get_bounder("bernstein+rt"),
        session_delta=1e-9,          # joint budget for the whole dashboard
        policy="harmonic",           # open-ended: any number of queries
        rng=np.random.default_rng(1),
    )

    for title, sql, stopping in DASHBOARD:
        query = parse_query(sql, stopping=stopping, name=title)
        result = session.execute(query)
        rows_pct = result.metrics.rows_read / scramble.num_rows
        if query.group_by:
            summary = f"{len(result.groups)} groups"
        else:
            group = result.scalar()
            summary = f"{group.estimate:.2f} in [{group.interval.lo:.2f}, {group.interval.hi:.2f}]"
        print(f"  ran {title!r}: {summary} ({rows_pct:.1%} of rows)")

    print("\nsession delta ledger (union bound over all queries):")
    print(f"{'#':>3} {'query':<16} {'delta allocated':>16} {'rows read':>12} {'early stop':>11}")
    for entry in session.audit():
        print(
            f"{entry.index:>3} {entry.name:<16} {entry.delta:>16.3e} "
            f"{entry.rows_read:>12,} {str(entry.stopped_early):>11}"
        )
    print(
        f"\nspent {session.spent_delta:.3e} of the {session.session_delta:.0e} "
        "session budget; every interval above holds simultaneously w.h.p."
    )


if __name__ == "__main__":
    main()
