"""Multi-query dashboards: one scramble, one scan, one joint guarantee.

"The up-front shuffling cost need only be paid once in order to facilitate
many queries, although care must be taken to set the error probability
delta small enough when running multiple queries to avoid losing error
bounder guarantees" (§4.1).  :func:`repro.connect` makes both halves of
that sentence concrete:

* every query resolved on the connection is charged a slice of one joint
  delta budget (evenly for a declared capacity, or with an open-ended
  1/k^2 decay), so *every* interval the dashboard ever shows is
  simultaneously valid with probability at least 1 - delta;
* ``conn.gather([...])`` resolves the whole dashboard off **one** shared
  scan cursor — each pass over the scramble feeds every unfinished
  query's view pool, and a block wanted by k queries is fetched once
  instead of k times.

Run:  python examples/multiquery_session.py
"""

from __future__ import annotations

import os

import numpy as np

import repro
from repro.datasets import make_flights_scramble
from repro.stopping import RelativeAccuracy

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "500000"))

DASHBOARD = [
    ("late airlines", "SELECT Airline FROM flights GROUP BY Airline HAVING AVG(DepDelay) > 9", None),
    ("early airports", "SELECT Origin FROM flights GROUP BY Origin HAVING AVG(DepDelay) < 0", None),
    ("ORD delay", "SELECT AVG(DepDelay) FROM flights WHERE Origin = 'ORD'", RelativeAccuracy(0.3)),
    ("worst airline", "SELECT Airline FROM flights GROUP BY Airline ORDER BY AVG(DepDelay) DESC LIMIT 1", None),
]


def main() -> None:
    print(f"building a {ROWS:,}-row flights scramble (paid once for the session) ...")
    scramble = make_flights_scramble(rows=ROWS, seed=0)

    conn = repro.connect(
        scramble,
        delta=1e-9,                  # joint budget for the whole dashboard
        policy="harmonic",           # open-ended: any number of queries
        rng=np.random.default_rng(1),
    )

    # Handles are lazy: compiling the dashboard costs nothing yet.
    handles = [
        conn.sql(sql, stopping=stopping, name=title)
        for title, sql, stopping in DASHBOARD
    ]

    # One shared scan resolves all four queries together.
    batch = conn.gather(handles)
    for handle, result in zip(handles, batch):
        rows_pct = result.metrics.rows_read / scramble.num_rows
        if handle.query.group_by:
            summary = f"{len(result.groups)} groups"
        else:
            group = result.scalar()
            summary = f"{group.estimate:.2f} in [{group.interval.lo:.2f}, {group.interval.hi:.2f}]"
        print(f"  ran {handle.name!r}: {summary} ({rows_pct:.1%} of rows)")

    print(
        f"\nshared scan: {batch.rows_read_shared:,} rows fetched vs "
        f"{batch.rows_read_sequential:,} if run one at a time "
        f"({batch.savings:.1%} saved by the shared cursor)"
    )

    print("\nsession delta ledger (union bound over all queries):")
    print(f"{'#':>3} {'query':<16} {'delta allocated':>16} {'rows read':>12} {'early stop':>11}")
    for entry in conn.audit():
        print(
            f"{entry.index:>3} {entry.name:<16} {entry.delta:>16.3e} "
            f"{entry.rows_read:>12,} {str(entry.stopped_early):>11}"
        )
    print(
        f"\nspent {conn.spent_delta:.3e} of the {conn.session_delta:.0e} "
        "session budget; every interval above holds simultaneously w.h.p."
    )


if __name__ == "__main__":
    main()
