"""Extensibility: plug a custom SSI bounder into RangeTrim and the executor.

RangeTrim wraps *any* range-based error bounder (§3.2), and the executor
accepts any object implementing the §2.2.2 interface.  This script defines
a maximal-ignorance "median-of-bounds" toy bounder that simply takes the
tighter of Hoeffding-Serfling and empirical Bernstein-Serfling per side
(valid after a union bound: each side's δ is split across the two
inequalities), registers it, RangeTrim-wraps it, and runs a flights query.

Run:  python examples/custom_bounder.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import (
    EmpiricalBernsteinSerflingBounder,
    ErrorBounder,
    HoeffdingSerflingBounder,
    RangeTrimBounder,
)
from repro.datasets import make_flights_scramble
from repro.fastframe import AggregateFunction, ApproximateExecutor, ExactExecutor, Query
from repro.stats.streaming import MomentState
from repro.stopping import AbsoluteAccuracy

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "300000"))


class BestOfBothBounder(ErrorBounder):
    """max(Hoeffding-Serfling, Bernstein-Serfling) lower bound per side.

    Splitting each side's δ across the two inequalities (union bound)
    keeps the combination SSI: with probability ≥ 1 − δ both inequalities
    hold, so the tighter of the two one-sided bounds is valid.
    """

    name = "BestOfBoth"

    def __init__(self) -> None:
        self._hoeffding = HoeffdingSerflingBounder()
        self._bernstein = EmpiricalBernsteinSerflingBounder()

    def init_state(self) -> MomentState:
        return MomentState()

    def update(self, state: MomentState, value: float) -> None:
        state.update(value)

    def update_batch(self, state: MomentState, values) -> None:
        state.update_batch(values)

    def sample_count(self, state: MomentState) -> int:
        return state.count

    def estimate(self, state: MomentState) -> float:
        return state.mean

    def lbound(self, state, a, b, n, delta):
        half = delta / 2.0  # union bound across the two inequalities
        return max(
            self._hoeffding.lbound(state, a, b, n, half),
            self._bernstein.lbound(state, a, b, n, half),
        )

    def rbound(self, state, a, b, n, delta):
        half = delta / 2.0
        return min(
            self._hoeffding.rbound(state, a, b, n, half),
            self._bernstein.rbound(state, a, b, n, half),
        )


def main() -> None:
    print("building a 300k-row flights scramble ...")
    scramble = make_flights_scramble(rows=ROWS, seed=4)
    query = Query(
        AggregateFunction.AVG, "DepDelay", AbsoluteAccuracy(3.0), name="custom"
    )
    exact = ExactExecutor(scramble).execute(query).scalar()

    for bounder in (BestOfBothBounder(), RangeTrimBounder(BestOfBothBounder())):
        executor = ApproximateExecutor(
            scramble, bounder, delta=1e-9, rng=np.random.default_rng(13)
        )
        result = executor.execute(query)
        group = result.scalar()
        print(
            f"{bounder.name:16s} rows={result.metrics.rows_read:9,d}  "
            f"CI=[{group.interval.lo:6.2f}, {group.interval.hi:6.2f}]  "
            f"sound={exact.estimate in group.interval}"
        )
    print(f"exact answer: {exact.estimate:.3f}")


if __name__ == "__main__":
    main()
