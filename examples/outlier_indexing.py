"""Outlier indexing [18] and RangeTrim, separately and together.

The paper frames Chaudhuri et al.'s outlier index as "an offline analogy of
our own RangeTrim technique": both shrink the range that drives a
conservative bounder's width — the index by physically separating the tail
rows (answered exactly), RangeTrim by substituting the observed sample
extremes for the catalog bounds online.  For simple aggregates "the two
approaches are orthogonal, and could be leveraged together" (§6).

This script measures all four combinations on Figure 2's salary regime
(a tight body, a few enormous outliers) at a fixed sampling budget.

Run:  python examples/outlier_indexing.py
"""

from __future__ import annotations

import os

import numpy as np

from repro.bounders import get_bounder
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    OutlierIndexedStore,
    Query,
    Scramble,
    Table,
)
from repro.stopping import SamplesTaken

ROWS = int(os.environ.get("REPRO_EXAMPLE_ROWS", "200000"))
BUDGET = SamplesTaken(20_000)
DELTA = 1e-9


def build_salaries(seed: int = 0) -> Table:
    rng = np.random.default_rng(seed)
    salaries = rng.normal(50.0, 5.0, size=ROWS)          # the body
    outliers = rng.choice(ROWS, size=ROWS // 500, replace=False)
    salaries[outliers] = 5_000.0                          # the executives
    return Table(continuous={"salary": salaries})


def plain_width(scramble: Scramble, bounder_name: str) -> float:
    executor = ApproximateExecutor(
        scramble, get_bounder(bounder_name), delta=DELTA,
        rng=np.random.default_rng(2),
    )
    query = Query(AggregateFunction.AVG, "salary", BUDGET)
    return executor.execute(query, start_block=0).scalar().interval.width


def indexed_width(store: OutlierIndexedStore, bounder_name: str) -> float:
    result = store.execute_avg(
        BUDGET, get_bounder(bounder_name), delta=DELTA,
        rng=np.random.default_rng(2), start_block=0,
    )
    return result.interval.width


def main() -> None:
    table = build_salaries()
    truth = float(table.continuous("salary").mean())
    print(
        f"salaries: {ROWS:,} rows, mean {truth:.2f}, "
        f"range [{table.continuous('salary').min():.0f}, "
        f"{table.continuous('salary').max():.0f}] (0.2% outliers at 5,000)"
    )

    scramble = Scramble(table, rng=np.random.default_rng(1))
    store = OutlierIndexedStore(
        table, "salary", outlier_fraction=0.005, rng=np.random.default_rng(1)
    )
    tight = store.inlier_bounds()
    print(
        f"outlier index: {store.outlier_rows} rows stored exactly; inlier "
        f"range tightened to [{tight.a:.1f}, {tight.b:.1f}]\n"
    )

    combos = {
        "Hoeffding (plain)": lambda: plain_width(scramble, "hoeffding"),
        "Hoeffding + outlier index": lambda: indexed_width(store, "hoeffding"),
        "Hoeffding + RangeTrim": lambda: plain_width(scramble, "hoeffding+rt"),
        "Bernstein + RangeTrim": lambda: plain_width(scramble, "bernstein+rt"),
        "Bernstein + RT + index": lambda: indexed_width(store, "bernstein+rt"),
    }
    print(f"{'technique':<28} {'CI width at 20k samples':>24}")
    print("-" * 54)
    for name, run in combos.items():
        print(f"{name:<28} {run():>24.3f}")

    print(
        "\nthe split of labour: when outliers are PRESENT in the sampled "
        "view, only\nphysically removing them helps - RangeTrim's observed "
        "max IS the outlier,\nso Hoeffding+RT matches plain Hoeffding, while "
        "the index collapses the\nwidth 100x.  (RangeTrim's own wins come on "
        "filtered views that happen to\ncontain no outliers, where the "
        "catalog range is phantom - Figure 2.)\nBernstein helps either way "
        "(no PMA), and index+RT+Bernstein is tightest:\nthe orthogonality "
        "the paper points out in Section 6."
    )


if __name__ == "__main__":
    main()
