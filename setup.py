"""Legacy setup shim: offline environments lack the `wheel` package that
PEP 660 editable installs require, so `pip install -e . --no-build-isolation`
falls back to this classic setuptools path.

With no pyproject.toml/setup.cfg in the repo, everything a built wheel
ships must be declared here: the src layout is mapped explicitly so every
subpackage (including repro.fastframe.storage and friends added since the
first export audit) lands in site-packages — a bare ``setup()`` would
build an empty wheel that imports from nowhere.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "Reproduction of 'Rapid Approximate Aggregation with "
        "Distribution-Sensitive Interval Guarantees' (ICDE 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
