"""Legacy setup shim: offline environments lack the `wheel` package that
PEP 660 editable installs require, so `pip install -e . --no-build-isolation`
falls back to this classic setuptools path."""
from setuptools import setup

setup()
