"""Factory registry mapping experiment names to bounder instances.

The evaluation (§5.2) names its error-bounding strategies ``Hoeffding``,
``Hoeffding+RT``, ``Bernstein``, and ``Bernstein+RT``; this registry lets
the experiment harness and benches construct them by name.  Fresh instances
are returned on every call (bounders are stateless, but RangeTrim wrappers
hold an inner-bounder reference, and callers may want to monkeypatch one
without aliasing).
"""

from __future__ import annotations

from typing import Callable

from repro.bounders.anderson import AndersonBounder
from repro.bounders.asymptotic import BootstrapBounder, CLTBounder, StudentTBounder
from repro.bounders.base import ErrorBounder
from repro.bounders.bernstein import (
    EmpiricalBernsteinBounder,
    EmpiricalBernsteinSerflingBounder,
)
from repro.bounders.hoeffding import HoeffdingBounder, HoeffdingSerflingBounder
from repro.bounders.range_trim import RangeTrimBounder

__all__ = [
    "get_bounder",
    "available_bounders",
    "native_delta_bounders",
    "register_bounder",
    "EVALUATED_BOUNDERS",
]

_REGISTRY: dict[str, Callable[[], ErrorBounder]] = {
    "hoeffding": HoeffdingSerflingBounder,
    "hoeffding-no-fpc": HoeffdingBounder,
    "hoeffding+rt": lambda: RangeTrimBounder(HoeffdingSerflingBounder()),
    "bernstein": EmpiricalBernsteinSerflingBounder,
    "bernstein+rt": lambda: RangeTrimBounder(EmpiricalBernsteinSerflingBounder()),
    "bernstein-no-fpc": EmpiricalBernsteinBounder,
    "anderson": AndersonBounder,
    "anderson+rt": lambda: RangeTrimBounder(AndersonBounder()),
    # Asymptotic (non-SSI) bounders — the intro's "compactness without
    # correctness" family, available for the coverage experiments.
    "clt": CLTBounder,
    "student-t": StudentTBounder,
    "bootstrap": BootstrapBounder,
}

#: The four approximate strategies evaluated head-to-head in Table 5.
EVALUATED_BOUNDERS = ("hoeffding", "hoeffding+rt", "bernstein", "bernstein+rt")


def get_bounder(name: str) -> ErrorBounder:
    """Construct a fresh bounder by registry name (case-insensitive).

    Raises
    ------
    KeyError
        If the name is unknown; the error lists the available names.
    """
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown bounder {name!r}; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key]()


def available_bounders() -> tuple[str, ...]:
    """Names accepted by :func:`get_bounder`."""
    return tuple(sorted(_REGISTRY))


def native_delta_bounders() -> tuple[str, ...]:
    """Registry names whose bounders ship worker-computable pool deltas.

    These are the families implementing the mergeable-delta protocol
    (``supports_delta`` is True): parallel ingest returns only O(views)
    delta arrays for them, while the others fall back to shipping the
    sorted per-row values for a main-process ``update_pool`` replay.
    """
    return tuple(
        name for name in sorted(_REGISTRY) if _REGISTRY[name]().supports_delta
    )


def register_bounder(name: str, factory: Callable[[], ErrorBounder]) -> None:
    """Register a custom bounder factory under ``name``.

    Extension point: any SSI range-based bounder implementing the
    :class:`~repro.bounders.base.ErrorBounder` interface can participate in
    the executor and experiment harness — including RangeTrim-wrapped ones,
    since RangeTrim composes with *any* range-based bounder (§3.2).
    """
    key = name.strip().lower()
    if key in _REGISTRY:
        raise ValueError(f"bounder name {name!r} is already registered")
    _REGISTRY[key] = factory
