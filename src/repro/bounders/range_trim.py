"""The RangeTrim meta-bounder (Algorithms 4 and 6, §3) — the paper's core.

RangeTrim converts any symmetric, range-based SSI error bounder into an
asymmetric one without **PHOS**: the confidence *lower* bound becomes
independent of the catalog upper range bound ``b`` (it uses the sample MAX
instead), and the *upper* bound independent of ``a`` (it uses the sample
MIN).  When the effective range ``(MAX − MIN)`` of the filtered data is much
smaller than the catalog range ``(b − a)`` — outliers, selective predicates,
sparse groups — the trimmed bounds are dramatically tighter.

Correctness (Theorem 2) rests on Lemma 4: conditioned on the value of
``max S``, the remaining sample ``S − {max S}`` is a uniform
without-replacement sample from ``D_{< max S}``, whose average is at most
``AVG(D)``; so a valid lower bound for ``AVG(D_{< max S})`` computed with
range ``[a, max S]`` and dataset size ``N − 1`` is a valid lower bound for
``AVG(D)``.  Symmetrically for ``min S`` and the upper bound.

The streaming formulation (Algorithm 6) maintains two inner-bounder states:

* ``S_l`` is fed ``min(v, b')`` — each value clipped at the running max
  *before* this value arrived — and is queried with range ``[a, b']``;
* ``S_r`` is fed ``max(v, a')`` and is queried with range ``[a', b]``;

plus O(1) extra memory for the running extrema ``a', b'``.  The very first
sample only initializes the extrema and is never fed to the inner states,
mirroring Algorithm 4 (the inner bounders see ``m − 1`` samples and are
queried with dataset size ``N − 1``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.bounders.base import (
    BounderDelta,
    ErrorBounder,
    segment_bounds,
    validate_bound_args,
)
from repro.stats.streaming import ExtremaState

__all__ = ["RangeTrimBounder", "RangeTrimState", "RangeTrimPool", "RangeTrimDelta"]

#: Recompute sets at or below this size take the scalar-dispatch mirror of
#: the batch bound path (bit-identical; see ``_confidence_interval_small``).
#: numpy dispatch costs ~3-5µs per call regardless of array size, so a
#: round that touches a handful of dirty views spends more time entering
#: ufuncs than computing; the Python-float loop crosses over near ~40 slots.
_SCALAR_DISPATCH_MAX = 16


@dataclass
class RangeTrimPool:
    """Struct-of-arrays bank of :class:`RangeTrimState` slots.

    ``left`` / ``right`` are *inner-bounder pools* (whatever the inner
    bounder's :meth:`~repro.bounders.base.ErrorBounder.init_pool` returns);
    ``min`` / ``max`` / ``count`` are per-slot arrays mirroring the scalar
    state's extrema and total sample count.
    """

    left: Any
    right: Any
    min: np.ndarray
    max: np.ndarray
    count: np.ndarray


class RangeTrimDelta(BounderDelta):
    """Mergeable delta for Algorithm 6's composite clip state.

    Carries the two inner-bounder deltas (built from the clipped streams)
    plus the per-segment extrema and counts that update the pool's
    running ``a'``/``b'``.  Building it needs the pool's *prior* extrema
    and counts (the clip context), so :meth:`RangeTrimBounder.
    partition_delta` takes them via ``delta_context`` — still pure: the
    context is a read-only snapshot.
    """

    __slots__ = ("slots", "seg_min", "seg_max", "seg_counts", "left", "right")

    def __init__(
        self,
        slots: np.ndarray,
        seg_min: np.ndarray,
        seg_max: np.ndarray,
        seg_counts: np.ndarray,
        left: BounderDelta,
        right: BounderDelta,
    ) -> None:
        self.slots = slots
        self.seg_min = seg_min
        self.seg_max = seg_max
        self.seg_counts = seg_counts
        self.left = left
        self.right = right

    @property
    def nbytes(self) -> int:
        return (
            self.slots.nbytes
            + self.seg_min.nbytes
            + self.seg_max.nbytes
            + self.seg_counts.nbytes
            + self.left.nbytes
            + self.right.nbytes
        )


def _segmented_prior_extrema(
    values: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    carry_max: np.ndarray,
    carry_min: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-element *exclusive* running max/min within segments, with carry.

    ``prior_max[j]`` for the ``k``-th element of segment ``i`` is
    ``max(carry_max[i], values of the segment's first k − 1 elements)`` —
    exactly the "extrema of all earlier samples" that Algorithm 6 clips
    against.  Per-segment sliced accumulation when segments are few (the
    low-cardinality hot case: two in-place sweeps per segment, no index
    scatter), dense 2-D accumulation when many segments make the padding
    affordable, per-segment again for pathologically skewed sizes — all
    exact (max/min prefixes round nothing), so the paths are
    bit-interchangeable.
    """
    total = values.size
    lengths = ends - starts
    num_segments = starts.size
    longest = int(lengths.max()) if num_segments else 0
    prior_max = np.empty(total, dtype=np.float64)
    prior_min = np.empty(total, dtype=np.float64)
    if (
        num_segments > 64
        and num_segments * (longest + 1) <= max(4 * total, 4096)
    ):
        rows = np.repeat(np.arange(num_segments, dtype=np.int64), lengths)
        cols = np.arange(total, dtype=np.int64) - np.repeat(starts, lengths)
        grid = np.full((num_segments, longest + 1), -math.inf, dtype=np.float64)
        grid[:, 0] = carry_max
        grid[rows, cols + 1] = values
        np.maximum.accumulate(grid, axis=1, out=grid)
        prior_max[:] = grid[rows, cols]
        grid = np.full((num_segments, longest + 1), math.inf, dtype=np.float64)
        grid[:, 0] = carry_min
        grid[rows, cols + 1] = values
        np.minimum.accumulate(grid, axis=1, out=grid)
        prior_min[:] = grid[rows, cols]
    else:
        for i in range(num_segments):
            start, end = int(starts[i]), int(ends[i])
            segment = values[start:end]
            prior_max[start] = carry_max[i]
            prior_min[start] = carry_min[i]
            if end - start > 1:
                np.maximum(
                    np.maximum.accumulate(segment[:-1]),
                    carry_max[i],
                    out=prior_max[start + 1 : end],
                )
                np.minimum(
                    np.minimum.accumulate(segment[:-1]),
                    carry_min[i],
                    out=prior_min[start + 1 : end],
                )
    return prior_max, prior_min


@dataclass
class RangeTrimState:
    """Composite state: two inner-bounder states plus running extrema.

    ``count`` tracks the total number of samples consumed *including* the
    initial extrema-only sample, so ``count == inner count + 1`` once any
    sample has been seen.
    """

    left: Any
    right: Any
    extrema: ExtremaState
    count: int = 0


class RangeTrimBounder(ErrorBounder):
    """Wrap an inner range-based SSI bounder, eliminating PHOS (Algorithm 6).

    Parameters
    ----------
    inner:
        Any SSI range-based error bounder (one whose only distributional
        assumption is that data fall in the supplied ``[a, b]``), e.g.
        :class:`~repro.bounders.hoeffding.HoeffdingSerflingBounder` or
        :class:`~repro.bounders.bernstein.EmpiricalBernsteinSerflingBounder`.
        Pairing with Bernstein yields the paper's headline bounder with
        neither PMA nor PHOS (Problem 1).

    Notes
    -----
    The wrapped ``lbound`` never reads ``b`` (it substitutes the sample MAX)
    and ``rbound`` never reads ``a``; both still *accept* the catalog bounds
    to satisfy the common interface, and the full two-sided
    :meth:`confidence_interval` clips the result to ``[a, b]``, which is
    always sound.
    """

    def __init__(self, inner: ErrorBounder) -> None:
        self.inner = inner
        self.name = f"{inner.name}+RT"
        self.requires_sample_memory = inner.requires_sample_memory

    def init_state(self) -> RangeTrimState:
        return RangeTrimState(
            left=self.inner.init_state(),
            right=self.inner.init_state(),
            extrema=ExtremaState(),
        )

    def update(self, state: RangeTrimState, value: float) -> None:
        if state.count == 0:
            # Algorithm 4 lines 3-4: the first sample only seeds a', b'.
            state.extrema.update(value)
            state.count = 1
            return
        # Clip against the extrema of *previous* samples (Alg. 4 lines 7-8),
        # then fold the raw value into the extrema (lines 9-10).
        self.inner.update(state.left, min(value, state.extrema.max))
        self.inner.update(state.right, max(value, state.extrema.min))
        state.extrema.update(value)
        state.count += 1

    def update_batch(self, state: RangeTrimState, values: np.ndarray) -> None:
        """Vectorized, order-exact equivalent of per-element :meth:`update`.

        Element ``i`` must be clipped against the extrema of all *earlier*
        elements (previous batches plus ``values[:i]``); this is computed
        with shifted running min/max accumulations.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if state.count == 0:
            self.update(state, float(values[0]))
            values = values[1:]
            if values.size == 0:
                return
        run_max = np.maximum.accumulate(values)
        run_min = np.minimum.accumulate(values)
        # prior_max[i] = max(extrema.max, values[:i]) — extrema *before* i.
        prior_max = np.empty_like(values)
        prior_max[0] = state.extrema.max
        np.maximum(run_max[:-1], state.extrema.max, out=prior_max[1:])
        prior_min = np.empty_like(values)
        prior_min[0] = state.extrema.min
        np.minimum(run_min[:-1], state.extrema.min, out=prior_min[1:])
        self.inner.update_batch(state.left, np.minimum(values, prior_max))
        self.inner.update_batch(state.right, np.maximum(values, prior_min))
        state.extrema.update_batch(values)
        state.count += values.size

    def sample_count(self, state: RangeTrimState) -> int:
        return state.count

    def estimate(self, state: RangeTrimState) -> float:
        """Point estimate: mean of the left-clipped stream.

        Clipping at the running max alters no value except re-occurrences
        above the prior max, so this tracks the plain sample mean closely;
        the executor reports it alongside the CI.
        """
        if state.count == 0:
            raise ValueError("no samples observed yet")
        if state.count == 1:
            return state.extrema.min  # the single seeded value
        left_mean = self.inner.estimate(state.left)
        right_mean = self.inner.estimate(state.right)
        return 0.5 * (left_mean + right_mean)

    def lbound(self, state: RangeTrimState, a: float, b: float, n: int, delta: float) -> float:
        """Algorithm 4 line 12, left half: inner Lbound with ``b -> b'``.

        Independent of ``b`` by construction (PHOS-free).
        """
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return a
        b_prime = state.extrema.max
        inner_n = max(n - 1, 1)
        if state.count == 1:
            # Inner state is empty; the trivial inner bound is the trimmed
            # range's lower endpoint.
            return a
        return self.inner.lbound(state.left, min(a, b_prime), b_prime, inner_n, delta)

    def rbound(self, state: RangeTrimState, a: float, b: float, n: int, delta: float) -> float:
        """Algorithm 4 line 12, right half: inner Rbound with ``a -> a'``."""
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return b
        a_prime = state.extrema.min
        inner_n = max(n - 1, 1)
        if state.count == 1:
            return b
        return self.inner.rbound(state.right, a_prime, max(b, a_prime), inner_n, delta)

    # -- pool flavour ---------------------------------------------------

    def init_pool(self, size: int) -> RangeTrimPool:
        return RangeTrimPool(
            left=self.inner.init_pool(size),
            right=self.inner.init_pool(size),
            min=np.full(size, np.inf, dtype=np.float64),
            max=np.full(size, -np.inf, dtype=np.float64),
            count=np.zeros(size, dtype=np.int64),
        )

    def pool_counts(self, pool: RangeTrimPool) -> np.ndarray:
        return pool.count.copy()

    def pool_size(self, pool: RangeTrimPool) -> int:
        return pool.count.size

    @property
    def supports_delta(self) -> bool:
        """Delta-capable exactly when the inner bounder is (the inner
        deltas are components of :class:`RangeTrimDelta`)."""
        return self.inner.supports_delta

    def delta_context(self, pool: RangeTrimPool):
        """The clip context: per-view extrema + counts, plus inner contexts.

        Read-only references — pickling snapshots them for worker tasks,
        and the serial path reads them before any merge mutates the pool.
        """
        return (
            pool.min,
            pool.max,
            pool.count,
            self.inner.delta_context(pool.left),
            self.inner.delta_context(pool.right),
        )

    def partition_delta(
        self, indices: np.ndarray, values: np.ndarray, size: int, context=None
    ) -> RangeTrimDelta:
        """Segmented clip-then-partition (pure; Algorithm 6's O(rows) half).

        ``indices`` must be sorted with ties in stream order.  Per segment
        (= per view receiving rows this window): the first-ever sample only
        seeds the extrema; every other sample is clipped against the
        extrema of all *earlier* samples of its view (context carry +
        exclusive running extrema) before entering the inner deltas.
        """
        if context is None:
            raise ValueError(
                "RangeTrimBounder.partition_delta requires the delta_context "
                "(per-view extrema and counts) of the target pool"
            )
        carry_min, carry_max, pool_counts, left_ctx, right_ctx = context
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.size == 0:
            empty_i = np.zeros(0, dtype=np.int64)
            empty_f = np.zeros(0, dtype=np.float64)
            return RangeTrimDelta(
                empty_i,
                empty_f,
                empty_f,
                empty_i,
                self.inner.partition_delta(empty_i, empty_f, size, left_ctx),
                self.inner.partition_delta(empty_i, empty_f, size, right_ctx),
            )
        slots, starts, ends, feed, left_values, right_values = self._clip_segments(
            indices, values, carry_min, carry_max, pool_counts
        )
        if feed.all():
            # No fresh views this window (the steady state): every element
            # feeds the inners, so skip four full boolean-mask copies.
            fed_indices = indices
            fed_left, fed_right = left_values, right_values
        else:
            fed_indices = indices[feed]
            fed_left, fed_right = left_values[feed], right_values[feed]
        left = self.inner.partition_delta(fed_indices, fed_left, size, left_ctx)
        right = self.inner.partition_delta(fed_indices, fed_right, size, right_ctx)
        return RangeTrimDelta(
            slots,
            np.minimum.reduceat(values, starts),
            np.maximum.reduceat(values, starts),
            ends - starts,
            left,
            right,
        )

    @staticmethod
    def _clip_segments(
        indices: np.ndarray,
        values: np.ndarray,
        carry_min: np.ndarray,
        carry_max: np.ndarray,
        counts: np.ndarray,
    ):
        """Algorithm 6's segmented clip over one sorted stream (pure).

        The ONE copy of the clip arithmetic, shared by
        :meth:`partition_delta` (reading a context snapshot) and the
        legacy :meth:`update_pool` fallback (reading the pool directly):
        segments the stream, computes each element's exclusive prior
        extrema with the per-view carries, masks out the first-ever
        sample of fresh views (Algorithm 4 lines 3-4: it only seeds the
        extrema), and returns ``(slots, starts, ends, feed, left_values,
        right_values)`` with the clipped streams.
        """
        starts, ends = segment_bounds(indices)
        slots = indices[starts]
        prior_max, prior_min = _segmented_prior_extrema(
            values, starts, ends, carry_max[slots], carry_min[slots]
        )
        seed_positions = starts[counts[slots] == 0]
        feed = np.ones(indices.size, dtype=bool)
        feed[seed_positions] = False
        return (
            slots,
            starts,
            ends,
            feed,
            np.minimum(values, prior_max),
            np.maximum(values, prior_min),
        )

    def merge_delta(self, pool: RangeTrimPool, delta: RangeTrimDelta) -> None:
        """O(present views) fold: inner merges, then extrema and counts —
        the same operations, in the same order, as the mutate-in-place
        path, so partition→merge is bit-identical to :meth:`update_pool`."""
        self.inner.merge_delta(pool.left, delta.left)
        self.inner.merge_delta(pool.right, delta.right)
        slots = delta.slots
        pool.max[slots] = np.maximum(pool.max[slots], delta.seg_max)
        pool.min[slots] = np.minimum(pool.min[slots], delta.seg_min)
        pool.count[slots] += delta.seg_counts

    def update_pool(
        self, pool: RangeTrimPool, indices: np.ndarray, values: np.ndarray
    ) -> None:
        """Vectorized Algorithm 6 across views: segmented clip-then-feed.

        With a delta-capable inner this *is* the partition→merge pair run
        in place; the explicit loop below serves inners that implement
        only the legacy mutate-in-place pool API.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if indices.size == 0:
            return
        if self.supports_delta:
            self.merge_delta(
                pool,
                self.partition_delta(
                    indices, values, self.pool_size(pool), self.delta_context(pool)
                ),
            )
            return
        slots, starts, ends, feed, left_values, right_values = self._clip_segments(
            indices, values, pool.min, pool.max, pool.count
        )
        self.inner.update_pool(pool.left, indices[feed], left_values[feed])
        self.inner.update_pool(pool.right, indices[feed], right_values[feed])
        pool.max[slots] = np.maximum(pool.max[slots], np.maximum.reduceat(values, starts))
        pool.min[slots] = np.minimum(pool.min[slots], np.minimum.reduceat(values, starts))
        pool.count[slots] += ends - starts

    def lbound_batch(self, pool: RangeTrimPool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.count.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        trivial = pool.count[indices] < 2  # empty or extrema-seed only
        b_prime = np.where(trivial, b_arr, pool.max[indices])
        inner_n = np.maximum(np.asarray(n) - 1, 1)
        inner_lo = self.inner.lbound_batch(
            pool.left, np.minimum(a_arr, b_prime), b_prime, inner_n, delta, indices
        )
        return np.where(trivial, a_arr, inner_lo)

    def rbound_batch(self, pool: RangeTrimPool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.count.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        trivial = pool.count[indices] < 2
        a_prime = np.where(trivial, a_arr, pool.min[indices])
        inner_n = np.maximum(np.asarray(n) - 1, 1)
        inner_hi = self.inner.rbound_batch(
            pool.right, a_prime, np.maximum(b_arr, a_prime), inner_n, delta, indices
        )
        return np.where(trivial, b_arr, inner_hi)

    def confidence_interval_batch(self, pool, a, b, n, delta, indices=None):
        """Both sides from one pass over the shared gathers.

        Same arithmetic, in the same order, as the generic
        lbound→rbound pair — the trivial mask, trimmed extrema gathers,
        and inner N−1 are just computed once instead of twice, so the
        result is bit-identical while halving the per-round gather
        overhead on small pools.
        """
        if indices is None:
            indices = np.arange(pool.count.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if (
            indices.size <= _SCALAR_DISPATCH_MAX
            and np.ndim(a) == 0
            and np.ndim(b) == 0
            and getattr(self.inner, "supports_scalar_bounds", False)
        ):
            return self._confidence_interval_small(
                pool, float(a), float(b), n, delta, indices
            )
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        trivial = pool.count[indices] < 2
        half = delta / 2.0
        inner_n = np.maximum(np.asarray(n) - 1, 1)
        b_prime = np.where(trivial, b_arr, pool.max[indices])
        a_prime = np.where(trivial, a_arr, pool.min[indices])
        inner_lo = self.inner.lbound_batch(
            pool.left, np.minimum(a_arr, b_prime), b_prime, inner_n, half, indices
        )
        inner_hi = self.inner.rbound_batch(
            pool.right, a_prime, np.maximum(b_arr, a_prime), inner_n, half, indices
        )
        lo = np.where(trivial, a_arr, inner_lo)
        hi = np.where(trivial, b_arr, inner_hi)
        return self._clip_interval_arrays(lo, hi, a, b)

    def _confidence_interval_small(
        self, pool: RangeTrimPool, a: float, b: float, n, delta: float,
        indices: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scalar-dispatch mirror of :meth:`confidence_interval_batch`.

        Per-slot Python-float transliteration of the fused batch path —
        same IEEE-754 operations in the same order, so the returned
        arrays are bit-identical to the vectorized program (pinned by the
        kernel test-suite).  Worth it because a round that recomputes
        only a few dirty views pays numpy's per-call dispatch ~60 times
        in the batch path; here it pays it twice.
        """
        n_arr = np.broadcast_to(np.asarray(n), indices.shape)
        half = delta / 2.0
        lo_out = np.empty(indices.size, dtype=np.float64)
        hi_out = np.empty(indices.size, dtype=np.float64)
        for position in range(indices.size):
            slot = int(indices[position])
            inner_n = max(n_arr[position] - 1, 1)
            if int(pool.count[slot]) < 2:
                lo, hi = a, b
            else:
                b_prime = float(pool.max[slot])
                a_prime = float(pool.min[slot])
                lo = self.inner.lbound_one(
                    pool.left, slot, min(a, b_prime), b_prime, inner_n, half
                )
                hi = self.inner.rbound_one(
                    pool.right, slot, a_prime, max(b, a_prime), inner_n, half
                )
            # _clip_interval_arrays, one lane.
            lo = min(max(lo, a), b)
            hi = min(max(hi, a), b)
            if lo > hi:
                mid = 0.5 * (lo + hi)
                lo = hi = mid
            lo_out[position] = lo
            hi_out[position] = hi
        return lo_out, hi_out
