"""The RangeTrim meta-bounder (Algorithms 4 and 6, §3) — the paper's core.

RangeTrim converts any symmetric, range-based SSI error bounder into an
asymmetric one without **PHOS**: the confidence *lower* bound becomes
independent of the catalog upper range bound ``b`` (it uses the sample MAX
instead), and the *upper* bound independent of ``a`` (it uses the sample
MIN).  When the effective range ``(MAX − MIN)`` of the filtered data is much
smaller than the catalog range ``(b − a)`` — outliers, selective predicates,
sparse groups — the trimmed bounds are dramatically tighter.

Correctness (Theorem 2) rests on Lemma 4: conditioned on the value of
``max S``, the remaining sample ``S − {max S}`` is a uniform
without-replacement sample from ``D_{< max S}``, whose average is at most
``AVG(D)``; so a valid lower bound for ``AVG(D_{< max S})`` computed with
range ``[a, max S]`` and dataset size ``N − 1`` is a valid lower bound for
``AVG(D)``.  Symmetrically for ``min S`` and the upper bound.

The streaming formulation (Algorithm 6) maintains two inner-bounder states:

* ``S_l`` is fed ``min(v, b')`` — each value clipped at the running max
  *before* this value arrived — and is queried with range ``[a, b']``;
* ``S_r`` is fed ``max(v, a')`` and is queried with range ``[a', b]``;

plus O(1) extra memory for the running extrema ``a', b'``.  The very first
sample only initializes the extrema and is never fed to the inner states,
mirroring Algorithm 4 (the inner bounders see ``m − 1`` samples and are
queried with dataset size ``N − 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.bounders.base import ErrorBounder, validate_bound_args
from repro.stats.streaming import ExtremaState

__all__ = ["RangeTrimBounder", "RangeTrimState"]


@dataclass
class RangeTrimState:
    """Composite state: two inner-bounder states plus running extrema.

    ``count`` tracks the total number of samples consumed *including* the
    initial extrema-only sample, so ``count == inner count + 1`` once any
    sample has been seen.
    """

    left: Any
    right: Any
    extrema: ExtremaState
    count: int = 0


class RangeTrimBounder(ErrorBounder):
    """Wrap an inner range-based SSI bounder, eliminating PHOS (Algorithm 6).

    Parameters
    ----------
    inner:
        Any SSI range-based error bounder (one whose only distributional
        assumption is that data fall in the supplied ``[a, b]``), e.g.
        :class:`~repro.bounders.hoeffding.HoeffdingSerflingBounder` or
        :class:`~repro.bounders.bernstein.EmpiricalBernsteinSerflingBounder`.
        Pairing with Bernstein yields the paper's headline bounder with
        neither PMA nor PHOS (Problem 1).

    Notes
    -----
    The wrapped ``lbound`` never reads ``b`` (it substitutes the sample MAX)
    and ``rbound`` never reads ``a``; both still *accept* the catalog bounds
    to satisfy the common interface, and the full two-sided
    :meth:`confidence_interval` clips the result to ``[a, b]``, which is
    always sound.
    """

    def __init__(self, inner: ErrorBounder) -> None:
        self.inner = inner
        self.name = f"{inner.name}+RT"
        self.requires_sample_memory = inner.requires_sample_memory

    def init_state(self) -> RangeTrimState:
        return RangeTrimState(
            left=self.inner.init_state(),
            right=self.inner.init_state(),
            extrema=ExtremaState(),
        )

    def update(self, state: RangeTrimState, value: float) -> None:
        if state.count == 0:
            # Algorithm 4 lines 3-4: the first sample only seeds a', b'.
            state.extrema.update(value)
            state.count = 1
            return
        # Clip against the extrema of *previous* samples (Alg. 4 lines 7-8),
        # then fold the raw value into the extrema (lines 9-10).
        self.inner.update(state.left, min(value, state.extrema.max))
        self.inner.update(state.right, max(value, state.extrema.min))
        state.extrema.update(value)
        state.count += 1

    def update_batch(self, state: RangeTrimState, values: np.ndarray) -> None:
        """Vectorized, order-exact equivalent of per-element :meth:`update`.

        Element ``i`` must be clipped against the extrema of all *earlier*
        elements (previous batches plus ``values[:i]``); this is computed
        with shifted running min/max accumulations.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        if state.count == 0:
            self.update(state, float(values[0]))
            values = values[1:]
            if values.size == 0:
                return
        run_max = np.maximum.accumulate(values)
        run_min = np.minimum.accumulate(values)
        # prior_max[i] = max(extrema.max, values[:i]) — extrema *before* i.
        prior_max = np.empty_like(values)
        prior_max[0] = state.extrema.max
        np.maximum(run_max[:-1], state.extrema.max, out=prior_max[1:])
        prior_min = np.empty_like(values)
        prior_min[0] = state.extrema.min
        np.minimum(run_min[:-1], state.extrema.min, out=prior_min[1:])
        self.inner.update_batch(state.left, np.minimum(values, prior_max))
        self.inner.update_batch(state.right, np.maximum(values, prior_min))
        state.extrema.update_batch(values)
        state.count += values.size

    def sample_count(self, state: RangeTrimState) -> int:
        return state.count

    def estimate(self, state: RangeTrimState) -> float:
        """Point estimate: mean of the left-clipped stream.

        Clipping at the running max alters no value except re-occurrences
        above the prior max, so this tracks the plain sample mean closely;
        the executor reports it alongside the CI.
        """
        if state.count == 0:
            raise ValueError("no samples observed yet")
        if state.count == 1:
            return state.extrema.min  # the single seeded value
        left_mean = self.inner.estimate(state.left)
        right_mean = self.inner.estimate(state.right)
        return 0.5 * (left_mean + right_mean)

    def lbound(self, state: RangeTrimState, a: float, b: float, n: int, delta: float) -> float:
        """Algorithm 4 line 12, left half: inner Lbound with ``b -> b'``.

        Independent of ``b`` by construction (PHOS-free).
        """
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return a
        b_prime = state.extrema.max
        inner_n = max(n - 1, 1)
        if state.count == 1:
            # Inner state is empty; the trivial inner bound is the trimmed
            # range's lower endpoint.
            return a
        return self.inner.lbound(state.left, min(a, b_prime), b_prime, inner_n, delta)

    def rbound(self, state: RangeTrimState, a: float, b: float, n: int, delta: float) -> float:
        """Algorithm 4 line 12, right half: inner Rbound with ``a -> a'``."""
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return b
        a_prime = state.extrema.min
        inner_n = max(n - 1, 1)
        if state.count == 1:
            return b
        return self.inner.rbound(state.right, a_prime, max(b, a_prime), inner_n, delta)
