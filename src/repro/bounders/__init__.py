"""Error bounders: the paper's core algorithmic contribution (S1-S7).

This subpackage implements the full §2.2.2 bounder interface, the three
surveyed SSI bounders (Hoeffding-Serfling, empirical Bernstein-Serfling,
Anderson/DKW), the RangeTrim meta-bounder of §3, pathology detectors for
PMA and PHOS, and closed-form width/planning helpers.
"""

from repro.bounders.anderson import AndersonBounder
from repro.bounders.asymptotic import BootstrapBounder, CLTBounder, StudentTBounder
from repro.bounders.base import BounderDelta, ErrorBounder, Interval
from repro.bounders.bernstein import (
    BernsteinSerflingBounder,
    EmpiricalBernsteinBounder,
    EmpiricalBernsteinSerflingBounder,
)
from repro.bounders.hoeffding import HoeffdingBounder, HoeffdingSerflingBounder
from repro.bounders.pathology import exhibits_phos, exhibits_pma, pathology_profile
from repro.bounders.range_trim import RangeTrimBounder
from repro.bounders.registry import (
    EVALUATED_BOUNDERS,
    available_bounders,
    get_bounder,
    native_delta_bounders,
    register_bounder,
)

__all__ = [
    "AndersonBounder",
    "BernsteinSerflingBounder",
    "BootstrapBounder",
    "BounderDelta",
    "CLTBounder",
    "StudentTBounder",
    "EmpiricalBernsteinBounder",
    "EmpiricalBernsteinSerflingBounder",
    "ErrorBounder",
    "EVALUATED_BOUNDERS",
    "HoeffdingBounder",
    "HoeffdingSerflingBounder",
    "Interval",
    "RangeTrimBounder",
    "available_bounders",
    "native_delta_bounders",
    "exhibits_phos",
    "exhibits_pma",
    "get_bounder",
    "pathology_profile",
    "register_bounder",
]
