"""Empirical detectors for the paper's bounder pathologies (§2.3).

The paper defines two pathologies of conservative error bounders:

* **PMA — pessimistic mass allocation (Definition 2)**: unseen probability
  mass is pinned at the range endpoints ``a``/``b`` regardless of observed
  evidence, so replacing a sample's extreme values with milder ones can
  leave the CI width unchanged.
* **PHOS — phantom outlier sensitivity (Definition 3)**: the confidence
  *lower* bound depends on the *upper* range bound ``b`` (or the upper
  bound on ``a``) even when no extreme values were observed.

PHOS is directly testable from Definition 3: perturb ``b`` holding the
sample and ``a`` fixed and observe whether ``Lbound`` moves (and mirrored
for ``Rbound`` / ``a``).  :func:`exhibits_phos` implements exactly that.

PMA needs more care.  Taken fully literally, Definition 2's witness sample
``S'`` (every value clipped to a common ``a'``) is a point mass, for which
*any* variance-sensitive bounder also reports an unchanged width (σ̂ = 0 on
both sides) — the definition's intent is clearly about *non-degenerate*
evidence.  We therefore provide two complementary detectors:

* :func:`pma_width_gap` — the literal Definition 2 experiment on a spread
  witness sample: the width change caused by clipping the sample's smallest
  values up to ``a'``.  A gap of (near) zero on spread samples is a PMA
  witness; Hoeffding produces exactly zero, Bernstein and Anderson do not.
* :func:`exhibits_pma` — the asymptotic endpoint-mass test that reproduces
  Table 2's classification exactly: on a (near) zero-spread sample, a
  PMA-free bounder's width must decay strictly faster than the
  ``Θ((b − a)/√m)`` rate that corresponds to parking Θ(1/√m) unseen mass at
  the range endpoints.  Hoeffding (width ``Θ((b−a)/√m)``) and Anderson/DKW
  (irreducible ``ε·(b − a)`` endpoint term) are PMA; Bernstein's
  zero-spread width is ``Θ((b − a)/m)`` and is not.
"""

from __future__ import annotations

import numpy as np

from repro.bounders.base import ErrorBounder

__all__ = [
    "exhibits_phos",
    "exhibits_pma",
    "pma_width_gap",
    "pathology_profile",
]

_DEFAULT_DELTA = 1e-6


def _state_from(bounder: ErrorBounder, values: np.ndarray):
    state = bounder.init_state()
    bounder.update_batch(state, np.asarray(values, dtype=np.float64))
    return state


def exhibits_phos(
    bounder: ErrorBounder,
    sample: np.ndarray | None = None,
    a: float = 0.0,
    b: float = 1.0,
    n: int = 10_000,
    delta: float = _DEFAULT_DELTA,
    rel_tol: float = 1e-12,
) -> bool:
    """Definition 3 test: does Lbound depend on ``b`` (or Rbound on ``a``)?

    The sample (default: 50 points spread over the middle of ``[a, b]``) is
    held fixed while the opposite range endpoint is pushed outward; any
    movement of the bound beyond relative tolerance is phantom outlier
    sensitivity.
    """
    if sample is None:
        sample = np.linspace(a + 0.3 * (b - a), a + 0.6 * (b - a), 50)
    state = _state_from(bounder, sample)
    span = b - a

    lo_base = bounder.lbound(state, a, b, n, delta)
    lo_wide = bounder.lbound(state, a, b + 3.0 * span, n, delta)
    if abs(lo_wide - lo_base) > rel_tol * max(1.0, abs(lo_base)):
        return True

    hi_base = bounder.rbound(state, a, b, n, delta)
    hi_wide = bounder.rbound(state, a - 3.0 * span, b, n, delta)
    return abs(hi_wide - hi_base) > rel_tol * max(1.0, abs(hi_base))


def pma_width_gap(
    bounder: ErrorBounder,
    a: float = 0.0,
    b: float = 1.0,
    a_prime: float | None = None,
    m: int = 400,
    n: int = 100_000,
    delta: float = _DEFAULT_DELTA,
) -> float:
    """Literal Definition 2 experiment: width(S) − width(S′).

    ``S`` spreads ``m`` values over ``[a, a')`` and ``S'`` clips them all up
    to ``a'``.  A gap of zero means the bounder ignored the milder evidence
    (Hoeffding); a positive gap means the CI tightened (Bernstein,
    Anderson on spread witnesses).
    """
    if a_prime is None:
        a_prime = a + 0.25 * (b - a)
    sample = np.linspace(a, a_prime, m, endpoint=False)
    clipped = np.maximum(sample, a_prime)
    width_orig = _two_sided_width(bounder, sample, a, b, n, delta)
    width_clip = _two_sided_width(bounder, clipped, a, b, n, delta)
    return width_orig - width_clip


def _two_sided_width(
    bounder: ErrorBounder, values: np.ndarray, a: float, b: float, n: int, delta: float
) -> float:
    """Raw (unclipped) two-sided width, δ/2 per side.

    The detectors deliberately bypass ``confidence_interval``'s [a, b]
    clipping: Definition 2/3 concern the *bounding formulas*, and clipping
    would make even Hoeffding's width spuriously value-dependent whenever
    a bound crosses a range endpoint.
    """
    state = _state_from(bounder, values)
    half = delta / 2.0
    return bounder.rbound(state, a, b, n, half) - bounder.lbound(state, a, b, n, half)


def exhibits_pma(
    bounder: ErrorBounder,
    a: float = 0.0,
    b: float = 1.0,
    delta: float = _DEFAULT_DELTA,
    sample_sizes: tuple[int, ...] = (1_000, 16_000, 256_000),
) -> bool:
    """Asymptotic endpoint-mass test reproducing Table 2 (see module doc).

    On near-zero-spread samples at the range center, the normalized width
    ``width · √m / (b − a)`` of a PMA bounder stays bounded away from zero
    as ``m`` grows (it keeps parking Θ(1/√m) mass at the endpoints), while a
    PMA-free bounder's normalized width vanishes.  We declare PMA when the
    normalized width fails to shrink by at least 2× per 16× sample-size
    step (a √m-rate bounder shrinks by exactly 1×, an m-rate bounder by 4×).
    """
    center = 0.5 * (a + b)
    spread = 1e-9 * (b - a)
    normalized = []
    for m in sample_sizes:
        sample = np.linspace(center - spread, center + spread, m)
        n = 100 * m  # keep the sampling fraction small and constant
        width = _two_sided_width(bounder, sample, a, b, n, delta)
        normalized.append(width * np.sqrt(m) / (b - a))
    for prev, curr in zip(normalized, normalized[1:]):
        if curr > prev / 2.0:
            return True
    return False


def pathology_profile(bounder: ErrorBounder) -> dict[str, bool]:
    """The bounder's (PMA, PHOS) profile — one row of the paper's Table 2."""
    return {
        "pma": exhibits_pma(bounder),
        "phos": exhibits_phos(bounder),
    }
