"""Anderson/DKW error bounder (Algorithm 3, §2.2.3).

Anderson [10] observed that high-probability bounds on a distribution's CDF
translate to bounds on its mean via ``μ = b − ∫ F`` (Lemma 2), and used the
DKW inequality (Lemma 3) to obtain the CDF bounds.  The paper's Theorem 1
shows DKW remains valid for without-replacement samples from a finite
dataset, so the bounder applies unchanged in the AQP setting.

Algorithm 3's lower bound trims the ε-fraction largest observed points and
re-allocates mass ε to the lower range endpoint ``a``:

    Lbound = ε·a + (1 − ε)·AVG({x ∈ S : F̂(x) <= 1 − ε}),
    ε = sqrt(log(1/δ) / (2m)).

Because the unseen mass is pinned to the range *endpoint* rather than
guided by the observed values, this bounder exhibits **PMA**; but since the
lower bound never consults ``b`` (the trimmed mass *comes from* the largest
observed points), it is free of **PHOS** — the mirror image of Bernstein's
pathology profile (Table 2).  Its state is the full sample, O(m) memory.

**Pooled state.**  The scalar engine keeps one :class:`SampleState` buffer
per view; the pool flavour stores every view's samples in a single
:class:`CSRSamplePool` — one flat float64 array with per-view offsets and
amortized-doubling reserved regions, CSR-style.  Ingest appends a whole
window's per-view segments with one vectorized scatter, and the bound
kernels batch ``np.partition`` row-wise over same-length segment groups
instead of looping views.  The pool's mergeable delta
(:class:`AndersonDelta`) is the per-view value segments themselves — the
irreducible O(m) payload — with the per-row ``view_idx`` array compressed
to per-segment ``(slot, length)`` pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bounders.base import (
    BounderDelta,
    ErrorBounder,
    segment_bounds,
    validate_bound_args,
)
from repro.cdfbounds.dkw import dkw_epsilon

__all__ = [
    "AndersonBounder",
    "SampleState",
    "CSRSamplePool",
    "AndersonDelta",
    "anderson_lower_bound",
]


@dataclass
class SampleState:
    """O(m) state holding every observed value (Table 2's "Memory" column).

    Values are kept in an amortized-growth buffer so batch appends are O(1)
    amortized per element.
    """

    _buffer: np.ndarray = field(default_factory=lambda: np.empty(16, dtype=np.float64))
    count: int = 0

    def append(self, value: float) -> None:
        """Append one value."""
        self._reserve(self.count + 1)
        self._buffer[self.count] = value
        self.count += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a batch of values."""
        values = np.asarray(values, dtype=np.float64)
        self._reserve(self.count + values.size)
        self._buffer[self.count : self.count + values.size] = values
        self.count += values.size

    def _reserve(self, capacity: int) -> None:
        if capacity <= self._buffer.size:
            return
        new_size = max(capacity, 2 * self._buffer.size)
        grown = np.empty(new_size, dtype=np.float64)
        grown[: self.count] = self._buffer[: self.count]
        self._buffer = grown

    @property
    def values(self) -> np.ndarray:
        """View of the observed values (do not mutate)."""
        return self._buffer[: self.count]

    def copy(self) -> "SampleState":
        state = SampleState()
        state.extend(self.values)
        return state


class CSRSamplePool:
    """Pooled O(m) sample buffers: one flat array + per-view offsets.

    The struct-of-arrays replacement for a list of per-view
    :class:`SampleState` buffers: slot ``i``'s samples live at
    ``data[starts[i] : starts[i] + count[i]]`` inside a reserved region of
    ``caps[i]`` elements.  Appends scatter a whole window's per-view
    segments in O(len) with no per-view Python loop; when any region
    overflows, the layout is rebuilt with doubled capacities for the
    overflowing views (amortized O(1) per element).  Append order per view
    is stream order, so slot ``i``'s contents are element-for-element what
    the scalar :class:`SampleState` fed the same stream would hold.
    """

    __slots__ = ("size", "count", "_caps", "_starts", "_data")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self.size = size
        self.count = np.zeros(size, dtype=np.int64)
        self._caps = np.zeros(size, dtype=np.int64)
        self._starts = np.zeros(size, dtype=np.int64)
        self._data = np.empty(0, dtype=np.float64)

    def values(self, slot: int) -> np.ndarray:
        """View of one slot's samples in stream order (do not mutate)."""
        start = int(self._starts[slot])
        return self._data[start : start + int(self.count[slot])]

    def matrix(self, slots: np.ndarray, m: int) -> np.ndarray:
        """Dense ``(len(slots), m)`` matrix of slots holding ``m`` samples.

        The batch-kernel gather: every requested slot must have exactly
        ``m`` samples (callers group slots by count first).
        """
        slots = np.asarray(slots, dtype=np.int64)
        cols = self._starts[slots][:, None] + np.arange(m, dtype=np.int64)[None, :]
        return self._data[cols]

    def append_segments(
        self, slots: np.ndarray, seg_counts: np.ndarray, values: np.ndarray
    ) -> None:
        """Append per-view segments (concatenated in slot order) in O(len).

        ``slots`` are strictly ascending slot ids, ``seg_counts[j]``
        elements of ``values`` belong to ``slots[j]``, in stream order.
        """
        slots = np.asarray(slots, dtype=np.int64)
        seg_counts = np.asarray(seg_counts, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        need = self.count.copy()
        need[slots] += seg_counts
        if (need > self._caps).any():
            self._rebuild(need)
        element_slots = np.repeat(slots, seg_counts)
        within = np.arange(values.size, dtype=np.int64) - np.repeat(
            np.cumsum(seg_counts) - seg_counts, seg_counts
        )
        self._data[
            self._starts[element_slots] + self.count[element_slots] + within
        ] = values
        self.count[slots] += seg_counts

    #: Reserved elements granted to never-touched slots at the first
    #: relayout, so views whose first rows arrive a few windows late do
    #: not each force another full relayout (matches SampleState's
    #: initial buffer).
    FRESH_RESERVE = 16

    def _rebuild(self, need: np.ndarray) -> None:
        """Re-lay the flat buffer, granting every slot doubling headroom.

        Each relayout costs O(total data), so every occupied slot — not
        just the one that overflowed — leaves with twice its needed
        capacity, and never-touched slots with a small reserve: the next
        relayout then requires some slot to double its occupancy.  For a
        stable view population growing at comparable rates — the
        executor's case: scrambled data spreads every occupied view
        across all windows — relayouts are logarithmic in the total
        sample count, i.e. appends are amortized O(1) per element.  A
        view whose *first* batch exceeds the reserve still costs one
        relayout when it appears; that is inherent to a contiguous
        per-view layout and bounded by one relayout per distinct view.
        """
        new_caps = np.maximum(self._caps, 2 * need)
        new_caps[need == 0] = np.maximum(
            new_caps[need == 0], self.FRESH_RESERVE
        )
        new_starts = np.zeros(self.size, dtype=np.int64)
        if self.size:
            np.cumsum(new_caps[:-1], out=new_starts[1:])
        new_data = np.empty(int(new_caps.sum()), dtype=np.float64)
        total = int(self.count.sum())
        if total:
            rows = np.repeat(np.arange(self.size, dtype=np.int64), self.count)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(self.count) - self.count, self.count
            )
            new_data[new_starts[rows] + within] = self._data[
                self._starts[rows] + within
            ]
        self._caps = new_caps
        self._starts = new_starts
        self._data = new_data


class AndersonDelta(BounderDelta):
    """Mergeable delta for the O(m) family: the value segments themselves.

    Anderson's state *is* the sample, so the per-row values are the
    irreducible payload; the delta compresses the per-row ``view_idx``
    array into per-segment ``(slot, length)`` pairs — O(present views)
    instead of O(rows) of int64.
    """

    __slots__ = ("slots", "seg_counts", "values")

    def __init__(
        self, slots: np.ndarray, seg_counts: np.ndarray, values: np.ndarray
    ) -> None:
        self.slots = slots
        self.seg_counts = seg_counts
        self.values = values

    @property
    def nbytes(self) -> int:
        return self.slots.nbytes + self.seg_counts.nbytes + self.values.nbytes


def anderson_lower_bound(sample: np.ndarray, a: float, delta: float) -> float:
    """Algorithm 3's Lbound: trimmed mean with ε mass pinned at ``a``.

    Note the bound depends on ``a`` but *not* on the upper range bound — the
    defining PHOS-free property.  When ε >= 1 (tiny samples at small δ) the
    trivial bound ``a`` is returned.
    """
    sample = np.asarray(sample, dtype=np.float64)
    m = sample.size
    if m == 0:
        return a
    eps = dkw_epsilon(m, delta, two_sided=False)
    if eps >= 1.0:
        return a
    # Keep values whose empirical CDF rank satisfies rank/m <= 1 - eps,
    # i.e. the floor((1 - eps) * m) smallest values.
    keep = int(math.floor((1.0 - eps) * m))
    if keep <= 0:
        return a
    kept = np.partition(sample, keep - 1)[:keep]
    return eps * a + (1.0 - eps) * float(kept.mean())


class AndersonBounder(ErrorBounder):
    """Anderson/DKW error bounder (Algorithm 3).

    Works for sampling both with and without replacement (Theorem 1), and
    — unlike the other bounders in this package — does not consult the
    dataset size ``N`` at all, so it has no finite-population tightening.
    """

    name = "Anderson"
    requires_sample_memory = True

    def init_state(self) -> SampleState:
        return SampleState()

    def update(self, state: SampleState, value: float) -> None:
        state.append(value)

    def update_batch(self, state: SampleState, values: np.ndarray) -> None:
        state.extend(values)

    def sample_count(self, state: SampleState) -> int:
        return state.count

    def estimate(self, state: SampleState) -> float:
        if state.count == 0:
            raise ValueError("no samples observed yet")
        return float(state.values.mean())

    def lbound(self, state: SampleState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        return anderson_lower_bound(state.values, a, delta)

    def rbound(self, state: SampleState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        # Algorithm 3 line 11: reflect the sample about (a + b)/2.
        return (a + b) - anderson_lower_bound((a + b) - state.values, a, delta)

    # -- pool flavour ---------------------------------------------------
    # The pool is a CSRSamplePool: one flat sample buffer with per-view
    # offsets.  Ingest is a vectorized segment append; bounds batch
    # np.partition row-wise over groups of equal-count views (ε and the
    # trim cutoff depend only on (m, δ), so grouping by count is exact).
    # The batch CI skips the per-call argument validation and bounds only
    # the requested slots.

    supports_delta = True

    def init_pool(self, size: int) -> CSRSamplePool:
        return CSRSamplePool(size)

    def pool_counts(self, pool: CSRSamplePool) -> np.ndarray:
        return pool.count.copy()

    def pool_size(self, pool: CSRSamplePool) -> int:
        return pool.size

    def partition_delta(
        self, indices: np.ndarray, values: np.ndarray, size: int, context=None
    ) -> AndersonDelta:
        """Compress the sorted stream into per-view segments (pure)."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        starts, ends = segment_bounds(indices)
        return AndersonDelta(indices[starts], ends - starts, values)

    def merge_delta(self, pool: CSRSamplePool, delta: AndersonDelta) -> None:
        pool.append_segments(delta.slots, delta.seg_counts, delta.values)

    def update_pool(
        self, pool: CSRSamplePool, indices: np.ndarray, values: np.ndarray
    ) -> None:
        self.merge_delta(pool, self.partition_delta(indices, values, pool.size))

    @staticmethod
    def _lower_bound_rows(matrix: np.ndarray, a_rows: np.ndarray, delta: float) -> np.ndarray:
        """Algorithm 3's Lbound per row of an equal-length sample matrix.

        The batched form of :func:`anderson_lower_bound`: one row-wise
        ``np.partition`` selects every row's trim set at once (ε and the
        trim cutoff depend only on the shared row length).  ``a_rows``
        carries per-row range endpoints — RangeTrim queries its inner
        bounder with per-view trimmed ranges.  The kept multiset per row
        is exactly the scalar function's (the k smallest values are
        unique as a multiset), so results agree to summation order.
        """
        m = matrix.shape[1]
        eps = dkw_epsilon(m, delta, two_sided=False)
        if eps >= 1.0:
            return np.array(a_rows, dtype=np.float64, copy=True)
        keep = int(math.floor((1.0 - eps) * m))
        if keep <= 0:
            return np.array(a_rows, dtype=np.float64, copy=True)
        kept = np.partition(matrix, keep - 1, axis=1)[:, :keep]
        return eps * a_rows + (1.0 - eps) * kept.mean(axis=1)

    def lbound_batch(self, pool: CSRSamplePool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        out = np.empty(indices.size, dtype=np.float64)
        counts = pool.count[indices]
        for m in np.unique(counts):
            group = counts == m
            if m == 0:
                out[group] = a_arr[group]
                continue
            out[group] = self._lower_bound_rows(
                pool.matrix(indices[group], int(m)), a_arr[group], delta
            )
        return out

    def rbound_batch(self, pool: CSRSamplePool, a, b, n, delta, indices=None):
        """Mirror of :meth:`lbound_batch` via per-row sample reflection."""
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        out = np.empty(indices.size, dtype=np.float64)
        counts = pool.count[indices]
        span = a_arr + b_arr
        for m in np.unique(counts):
            group = counts == m
            if m == 0:
                out[group] = b_arr[group]
                continue
            reflected = span[group][:, None] - pool.matrix(indices[group], int(m))
            out[group] = span[group] - self._lower_bound_rows(
                reflected, a_arr[group], delta
            )
        return out

    def confidence_interval_batch(
        self,
        pool: CSRSamplePool,
        a: float,
        b: float,
        n: np.ndarray,
        delta: float,
        indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        half = delta / 2.0
        lo = self.lbound_batch(pool, a, b, n, half, indices)
        hi = self.rbound_batch(pool, a, b, n, half, indices)
        return self._clip_interval_arrays(lo, hi, a, b)
