"""Anderson/DKW error bounder (Algorithm 3, §2.2.3).

Anderson [10] observed that high-probability bounds on a distribution's CDF
translate to bounds on its mean via ``μ = b − ∫ F`` (Lemma 2), and used the
DKW inequality (Lemma 3) to obtain the CDF bounds.  The paper's Theorem 1
shows DKW remains valid for without-replacement samples from a finite
dataset, so the bounder applies unchanged in the AQP setting.

Algorithm 3's lower bound trims the ε-fraction largest observed points and
re-allocates mass ε to the lower range endpoint ``a``:

    Lbound = ε·a + (1 − ε)·AVG({x ∈ S : F̂(x) <= 1 − ε}),
    ε = sqrt(log(1/δ) / (2m)).

Because the unseen mass is pinned to the range *endpoint* rather than
guided by the observed values, this bounder exhibits **PMA**; but since the
lower bound never consults ``b`` (the trimmed mass *comes from* the largest
observed points), it is free of **PHOS** — the mirror image of Bernstein's
pathology profile (Table 2).  Its state is the full sample, O(m) memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.bounders.base import ErrorBounder, validate_bound_args
from repro.cdfbounds.dkw import dkw_epsilon

__all__ = ["AndersonBounder", "SampleState", "anderson_lower_bound"]


@dataclass
class SampleState:
    """O(m) state holding every observed value (Table 2's "Memory" column).

    Values are kept in an amortized-growth buffer so batch appends are O(1)
    amortized per element.
    """

    _buffer: np.ndarray = field(default_factory=lambda: np.empty(16, dtype=np.float64))
    count: int = 0

    def append(self, value: float) -> None:
        """Append one value."""
        self._reserve(self.count + 1)
        self._buffer[self.count] = value
        self.count += 1

    def extend(self, values: np.ndarray) -> None:
        """Append a batch of values."""
        values = np.asarray(values, dtype=np.float64)
        self._reserve(self.count + values.size)
        self._buffer[self.count : self.count + values.size] = values
        self.count += values.size

    def _reserve(self, capacity: int) -> None:
        if capacity <= self._buffer.size:
            return
        new_size = max(capacity, 2 * self._buffer.size)
        grown = np.empty(new_size, dtype=np.float64)
        grown[: self.count] = self._buffer[: self.count]
        self._buffer = grown

    @property
    def values(self) -> np.ndarray:
        """View of the observed values (do not mutate)."""
        return self._buffer[: self.count]

    def copy(self) -> "SampleState":
        state = SampleState()
        state.extend(self.values)
        return state


def anderson_lower_bound(sample: np.ndarray, a: float, delta: float) -> float:
    """Algorithm 3's Lbound: trimmed mean with ε mass pinned at ``a``.

    Note the bound depends on ``a`` but *not* on the upper range bound — the
    defining PHOS-free property.  When ε >= 1 (tiny samples at small δ) the
    trivial bound ``a`` is returned.
    """
    sample = np.asarray(sample, dtype=np.float64)
    m = sample.size
    if m == 0:
        return a
    eps = dkw_epsilon(m, delta, two_sided=False)
    if eps >= 1.0:
        return a
    # Keep values whose empirical CDF rank satisfies rank/m <= 1 - eps,
    # i.e. the floor((1 - eps) * m) smallest values.
    keep = int(math.floor((1.0 - eps) * m))
    if keep <= 0:
        return a
    kept = np.partition(sample, keep - 1)[:keep]
    return eps * a + (1.0 - eps) * float(kept.mean())


class AndersonBounder(ErrorBounder):
    """Anderson/DKW error bounder (Algorithm 3).

    Works for sampling both with and without replacement (Theorem 1), and
    — unlike the other bounders in this package — does not consult the
    dataset size ``N`` at all, so it has no finite-population tightening.
    """

    name = "Anderson"
    requires_sample_memory = True

    def init_state(self) -> SampleState:
        return SampleState()

    def update(self, state: SampleState, value: float) -> None:
        state.append(value)

    def update_batch(self, state: SampleState, values: np.ndarray) -> None:
        state.extend(values)

    def sample_count(self, state: SampleState) -> int:
        return state.count

    def estimate(self, state: SampleState) -> float:
        if state.count == 0:
            raise ValueError("no samples observed yet")
        return float(state.values.mean())

    def lbound(self, state: SampleState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        return anderson_lower_bound(state.values, a, delta)

    def rbound(self, state: SampleState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        # Algorithm 3 line 11: reflect the sample about (a + b)/2.
        return (a + b) - anderson_lower_bound((a + b) - state.values, a, delta)

    # -- pool flavour ---------------------------------------------------
    # The pool is the base class's list-of-states bank: Anderson's state is
    # the full O(m) sample, so ingest batches per present view (bounded by
    # the distinct views in a window, via iter_segments) and the bound's
    # per-view partition is irreducible.  The batch CI below skips the
    # per-call argument validation and bounds only the requested slots.

    def confidence_interval_batch(
        self,
        pool,
        a: float,
        b: float,
        n: np.ndarray,
        delta: float,
        indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if indices is None:
            indices = np.arange(len(pool), dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        half = delta / 2.0
        lo = np.empty(indices.size, dtype=np.float64)
        hi = np.empty(indices.size, dtype=np.float64)
        for position, slot in enumerate(indices):
            values = pool[int(slot)].values
            lo[position] = anderson_lower_bound(values, a, half)
            hi[position] = (a + b) - anderson_lower_bound((a + b) - values, a, half)
        return self._clip_interval_arrays(lo, hi, a, b)
