"""DKW-backed quantile error bounder: certified MEDIAN / PERCENTILE(p).

The order-statistics sibling of :class:`~repro.bounders.anderson.
AndersonBounder`: both keep the full sample (O(m) state, Table 2's memory
column) and both spend δ on a DKW band (Lemma 3, valid without replacement
by Theorem 1) — but where Anderson integrates the band into mean bounds,
this bounder *inverts* it at level ``p`` into rank bounds
(:mod:`repro.cdfbounds.quantile`):

    ``Lbound = x_(⌈m(p − ε)⌉)``, ``Rbound = x_(⌈m(p + ε)⌉)``,
    ``ε = sqrt(log(1/δ) / (2m))`` per side,

with out-of-range ranks falling back to the support endpoints, tightened
per side by the probability-1 finite-population rank clamp driven by the
executor's certified ``N⁺`` (monotone-safe, §3.3), which collapses to the
exact population quantile at exhaustion.

**Pooled state.**  The pool *is* Anderson's :class:`CSRSamplePool` — the
flat CSR sample buffer and its O(views) mergeable delta
(:class:`AndersonDelta`) are family-agnostic, so parallel workers ship
quantile deltas through the identical partition→merge pair.  The bound
kernel groups views by equal sample count (``ε`` and the DKW ranks depend
only on ``(m, p, δ)``), sorts each group's sample matrix row-wise once, and
gathers both endpoints per row with per-slot ranks (the deterministic clamp
varies with each view's ``N⁺``).  Selected order statistics are identical
bit-for-bit to the scalar path — both pick elements of the same multiset.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bounders.anderson import AndersonDelta, CSRSamplePool, SampleState
from repro.bounders.base import ErrorBounder, segment_bounds, validate_bound_args
from repro.cdfbounds.dkw import dkw_epsilon
from repro.cdfbounds.quantile import quantile_rank

__all__ = ["QuantileBounder"]


class QuantileBounder(ErrorBounder):
    """(1 − δ) bounds on a view's ``p``-quantile by DKW-band inversion.

    Unlike the mean bounders this certifies ``F⁻¹(p)`` — the inverse-CDF
    quantile ``x_(⌈p·n⌉)`` of the view's rows — so the executor constructs
    one instance per MEDIAN/PERCENTILE query rather than sharing a
    session-wide bounder.  SSI by construction: the DKW band holds at
    every sample size, and the rank clamp holds with probability 1.
    """

    requires_sample_memory = True

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile level p must be in (0, 1), got {p}")
        self.p = float(p)
        self.name = f"Quantile({self.p:g})"

    # -- rank arithmetic ------------------------------------------------
    # One copy of the combined DKW + deterministic rank rule, shared by
    # the scalar bounds and (in vectorized form) the pool kernel.  Ranks
    # are 1-based; 0 means "below the sample" (endpoint a) and m + 1
    # means "above the sample" (endpoint b).

    def _lower_rank(self, m: int, n: int, delta: float) -> int:
        eps = dkw_epsilon(m, delta, two_sided=False)
        dkw = int(math.ceil(m * (self.p - eps)))
        r = quantile_rank(self.p, n)
        return min(max(max(dkw, r - (n - m)), 0), m)

    def _upper_rank(self, m: int, n: int, delta: float) -> int:
        eps = dkw_epsilon(m, delta, two_sided=False)
        dkw = int(math.ceil(m * (self.p + eps)))
        r = quantile_rank(self.p, n)
        det = r if r <= m else m + 1
        return max(min(min(dkw, m + 1), det), 1)

    # -- scalar flavour -------------------------------------------------

    def init_state(self) -> SampleState:
        return SampleState()

    def update(self, state: SampleState, value: float) -> None:
        state.append(value)

    def update_batch(self, state: SampleState, values: np.ndarray) -> None:
        state.extend(values)

    def sample_count(self, state: SampleState) -> int:
        return state.count

    def estimate(self, state: SampleState) -> float:
        """The sample ``p``-quantile ``x_(⌈p·m⌉)`` (exact at exhaustion)."""
        if state.count == 0:
            raise ValueError("no samples observed yet")
        rank = quantile_rank(self.p, state.count)
        return float(np.partition(state.values, rank - 1)[rank - 1])

    def lbound(self, state: SampleState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        m = state.count
        if m == 0:
            return a
        rank = self._lower_rank(m, max(n, m), delta)
        if rank <= 0:
            return a
        return float(np.partition(state.values, rank - 1)[rank - 1])

    def rbound(self, state: SampleState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        m = state.count
        if m == 0:
            return b
        rank = self._upper_rank(m, max(n, m), delta)
        if rank > m:
            return b
        return float(np.partition(state.values, rank - 1)[rank - 1])

    # -- pool flavour ---------------------------------------------------
    # The pool, the ingest scatter, and the mergeable delta are exactly
    # Anderson's CSR machinery; only the bound kernel differs.

    supports_delta = True

    def init_pool(self, size: int) -> CSRSamplePool:
        return CSRSamplePool(size)

    def pool_counts(self, pool: CSRSamplePool) -> np.ndarray:
        return pool.count.copy()

    def pool_size(self, pool: CSRSamplePool) -> int:
        return pool.size

    def partition_delta(
        self, indices: np.ndarray, values: np.ndarray, size: int, context=None
    ) -> AndersonDelta:
        """Compress the sorted stream into per-view segments (pure)."""
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        starts, ends = segment_bounds(indices)
        return AndersonDelta(indices[starts], ends - starts, values)

    def merge_delta(self, pool: CSRSamplePool, delta: AndersonDelta) -> None:
        pool.append_segments(delta.slots, delta.seg_counts, delta.values)

    def update_pool(
        self, pool: CSRSamplePool, indices: np.ndarray, values: np.ndarray
    ) -> None:
        self.merge_delta(pool, self.partition_delta(indices, values, pool.size))

    def _rank_arrays(
        self, m: int, n_rows: np.ndarray, delta: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized ``(_lower_rank, _upper_rank)`` over per-slot N⁺."""
        eps = dkw_epsilon(m, delta, two_sided=False)
        n_rows = np.maximum(n_rows.astype(np.int64), m)
        r = np.minimum(np.maximum(np.ceil(self.p * n_rows).astype(np.int64), 1), n_rows)
        dkw_lo = int(math.ceil(m * (self.p - eps)))
        dkw_hi = int(math.ceil(m * (self.p + eps)))
        lo = np.minimum(np.maximum(np.maximum(dkw_lo, r - (n_rows - m)), 0), m)
        det_hi = np.where(r <= m, r, m + 1)
        hi = np.maximum(np.minimum(min(dkw_hi, m + 1), det_hi), 1)
        return lo, hi

    @staticmethod
    def _select_rows(
        sorted_rows: np.ndarray, ranks: np.ndarray, fallback: np.ndarray
    ) -> np.ndarray:
        """Per-row 1-based order statistics; out-of-range ranks → fallback."""
        m = sorted_rows.shape[1]
        in_range = (ranks >= 1) & (ranks <= m)
        cols = np.clip(ranks, 1, m) - 1
        picked = sorted_rows[np.arange(sorted_rows.shape[0]), cols]
        return np.where(in_range, picked, fallback)

    def lbound_batch(self, pool: CSRSamplePool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        n_arr = np.broadcast_to(np.asarray(n, dtype=np.int64), indices.shape)
        out = np.empty(indices.size, dtype=np.float64)
        counts = pool.count[indices]
        for m in np.unique(counts):
            group = counts == m
            if m == 0:
                out[group] = a_arr[group]
                continue
            ranks, _ = self._rank_arrays(int(m), n_arr[group], delta)
            sorted_rows = np.sort(pool.matrix(indices[group], int(m)), axis=1)
            out[group] = self._select_rows(sorted_rows, ranks, a_arr[group])
        return out

    def rbound_batch(self, pool: CSRSamplePool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        n_arr = np.broadcast_to(np.asarray(n, dtype=np.int64), indices.shape)
        out = np.empty(indices.size, dtype=np.float64)
        counts = pool.count[indices]
        for m in np.unique(counts):
            group = counts == m
            if m == 0:
                out[group] = b_arr[group]
                continue
            _, ranks = self._rank_arrays(int(m), n_arr[group], delta)
            sorted_rows = np.sort(pool.matrix(indices[group], int(m)), axis=1)
            out[group] = self._select_rows(sorted_rows, ranks, b_arr[group])
        return out

    def confidence_interval_batch(
        self,
        pool: CSRSamplePool,
        a: float,
        b: float,
        n: np.ndarray,
        delta: float,
        indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Both endpoints from ONE row-wise sort per equal-count group."""
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        half = delta / 2.0
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        n_arr = np.broadcast_to(np.asarray(n, dtype=np.int64), indices.shape)
        lo = np.empty(indices.size, dtype=np.float64)
        hi = np.empty(indices.size, dtype=np.float64)
        counts = pool.count[indices]
        for m in np.unique(counts):
            group = counts == m
            if m == 0:
                lo[group] = a_arr[group]
                hi[group] = b_arr[group]
                continue
            lo_ranks, hi_ranks = self._rank_arrays(int(m), n_arr[group], half)
            sorted_rows = np.sort(pool.matrix(indices[group], int(m)), axis=1)
            lo[group] = self._select_rows(sorted_rows, lo_ranks, a_arr[group])
            hi[group] = self._select_rows(sorted_rows, hi_ranks, b_arr[group])
        return self._clip_interval_arrays(lo, hi, a, b)

    def estimate_batch(
        self, pool: CSRSamplePool, indices: np.ndarray | None = None, fill: float = 0.0
    ) -> np.ndarray:
        """Per-slot sample ``p``-quantiles (``fill`` for empty slots)."""
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        out = np.full(indices.size, fill, dtype=np.float64)
        counts = pool.count[indices]
        for m in np.unique(counts):
            group = counts == m
            if m == 0:
                continue
            rank = quantile_rank(self.p, int(m))
            matrix = np.partition(pool.matrix(indices[group], int(m)), rank - 1, axis=1)
            out[group] = matrix[:, rank - 1]
        return out
