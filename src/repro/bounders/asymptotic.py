"""Asymptotic (non-SSI) error bounders: CLT and bootstrap CIs (§1).

The paper's introduction contrasts two families of error bounders:
*conservative* bounders built on concentration inequalities (everything in
:mod:`repro.bounders.hoeffding`, :mod:`repro.bounders.bernstein`, …) whose
guarantees hold at every sample size, and *asymptotic* bounders — central
limit theorem (CLT) intervals [61, 34] and bootstrap intervals [24, 25, 71]
— which "are correct in the limit as the sample size approaches infinity,
but provide no real guarantees for any given finite instance, potentially
leading to failures downstream" (§1).

This module implements both asymptotic families so that the reproduction
can quantify the paper's motivating claim: when used for early stopping,
asymptotic CIs are tighter but *fail more often than δ*, producing subset /
superset errors [52].  See :mod:`repro.experiments.coverage` for the
Monte-Carlo failure-rate experiment and ``benchmarks/bench_coverage.py``.

Both bounders set ``ssi = False``; the approximate executor refuses to pair
them with guarantee-requiring workflows unless explicitly told otherwise.

Notes on finite populations
---------------------------
The classical CLT applies to i.i.d. sampling; for without-replacement
sampling from a finite population the correct limit theorem is Hájek's [34],
which rescales the variance by the finite-population correction (FPC)
``(N − m)/(N − 1)``.  :class:`CLTBounder` applies the FPC so its intervals
are the textbook survey-sampling intervals.  The bootstrap resamples *with*
replacement from the observed sample, ignoring the sampling fraction — the
standard practice the paper's citations use.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as _scipy_stats

from repro.bounders.base import (
    ErrorBounder,
    MomentPoolBounderMixin,
    validate_bound_args,
)
from repro.stats.streaming import MomentPool, MomentState

__all__ = [
    "CLTBounder",
    "StudentTBounder",
    "BootstrapBounder",
    "clt_epsilon",
]


def clt_epsilon(
    m: int,
    n: int,
    sigma_hat: float,
    delta: float,
    finite_population: bool = True,
) -> float:
    """One-sided CLT half-width ``z_{1−δ} · σ̂/√m · sqrt(FPC)``.

    Parameters
    ----------
    m:
        Sample size (``math.inf`` is returned for m < 1: no data, no
        asymptotics).
    n:
        Population size, used only for the finite-population correction.
    sigma_hat:
        Sample standard deviation.
    delta:
        One-sided error probability; the normal quantile ``z_{1−δ}`` is
        used, so δ = 1e-15 gives z ≈ 7.94.
    finite_population:
        Apply Hájek's FPC ``(N − m)/(N − 1)`` for without-replacement
        sampling.  With m = N the width collapses to zero (a census).
    """
    if m < 1:
        return math.inf
    z = float(_scipy_stats.norm.ppf(1.0 - delta))
    fpc = 1.0
    if finite_population and n > 1:
        fpc = max((n - m) / (n - 1), 0.0)
    return z * sigma_hat / math.sqrt(m) * math.sqrt(fpc)


class CLTBounder(MomentPoolBounderMixin, ErrorBounder):
    """Normal-approximation CI: ``ĝ ± z_{1−δ}·σ̂/√m·sqrt(FPC)``.

    This is the interval BlinkDB-style systems display [7, 6, 5].  It is
    *not* SSI: per the Berry-Esseen theorem its coverage error shrinks as
    ``O(1/√m)`` with constants depending on the unknown third absolute
    normalized moment (§1, footnote 1), so for skewed data and small m it
    can fail far more often than δ.  Pool state is a
    :class:`~repro.stats.streaming.MomentPool`, with the worker-computable
    mergeable delta (``partition_delta``/``merge_delta``) inherited from
    :class:`~repro.bounders.base.MomentPoolBounderMixin` — the asymptotic
    family rides the same Chan/Golub/LeVeque moment merge as Hoeffding and
    Bernstein.
    """

    name = "CLT"
    ssi = False

    def __init__(self, finite_population: bool = True) -> None:
        self.finite_population = finite_population

    def init_state(self) -> MomentState:
        return MomentState()

    def update(self, state: MomentState, value: float) -> None:
        state.update(value)

    def update_batch(self, state: MomentState, values: np.ndarray) -> None:
        state.update_batch(values)

    def sample_count(self, state: MomentState) -> int:
        return state.count

    def estimate(self, state: MomentState) -> float:
        return state.mean

    def _epsilon(self, state: MomentState, n: int, delta: float) -> float:
        return clt_epsilon(
            state.count, n, state.std, delta, finite_population=self.finite_population
        )

    def lbound(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return a
        return state.mean - self._epsilon(state, n, delta)

    def rbound(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return b
        return state.mean + self._epsilon(state, n, delta)

    def _epsilon_batch(
        self, pool: MomentPool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        m = pool.count[indices].astype(np.float64)
        n = np.asarray(n, dtype=np.float64)
        z = float(_scipy_stats.norm.ppf(1.0 - delta))
        fpc = np.ones_like(m)
        if self.finite_population:
            big = n > 1
            fpc = np.where(big, np.maximum((n - m) / np.maximum(n - 1.0, 1.0), 0.0), 1.0)
        eps = z * pool.std_of(indices) / np.sqrt(np.maximum(m, 1.0)) * np.sqrt(fpc)
        return np.where(m < 1, math.inf, eps)


class StudentTBounder(CLTBounder):
    """Student's t CI [61]: like :class:`CLTBounder` with t-quantiles.

    Uses the unbiased variance (``m2 / (m − 1)``) and ``t_{m−1}`` quantiles,
    the exact interval when the data are normal — and still only asymptotic
    otherwise.  Degenerates to the trivial ``[a, b]`` bounds for m < 2.
    """

    name = "Student-t"

    def _epsilon(self, state: MomentState, n: int, delta: float) -> float:
        m = state.count
        if m < 2:
            return math.inf
        t = float(_scipy_stats.t.ppf(1.0 - delta, df=m - 1))
        unbiased_std = math.sqrt(max(state.m2 / (m - 1), 0.0))
        fpc = 1.0
        if self.finite_population and n > 1:
            fpc = max((n - m) / (n - 1), 0.0)
        return t * unbiased_std / math.sqrt(m) * math.sqrt(fpc)

    def _epsilon_batch(
        self, pool: MomentPool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        m = pool.count[indices].astype(np.float64)
        n = np.asarray(n, dtype=np.float64)
        m_safe = np.maximum(m, 2.0)
        t = _scipy_stats.t.ppf(1.0 - delta, df=m_safe - 1.0)
        unbiased_std = np.sqrt(np.maximum(pool.m2[indices] / (m_safe - 1.0), 0.0))
        fpc = np.ones_like(m)
        if self.finite_population:
            big = n > 1
            fpc = np.where(big, np.maximum((n - m) / np.maximum(n - 1.0, 1.0), 0.0), 1.0)
        eps = t * unbiased_std / np.sqrt(m_safe) * np.sqrt(fpc)
        return np.where(m < 2, math.inf, eps)


@dataclass
class _BootstrapState:
    """Sample values plus running moments (the bootstrap needs both)."""

    values: list = field(default_factory=list)
    moments: MomentState = field(default_factory=MomentState)


class BootstrapBounder(ErrorBounder):
    """Percentile-bootstrap CI [24, 25]: quantiles of resampled means.

    Stores the full sample (``requires_sample_memory``, like Anderson/DKW in
    Table 2) and, per bound request, draws ``num_resamples`` with-replacement
    resamples of the observed values, computing the empirical δ and 1 − δ
    quantiles of the resample means.

    With δ = 1e-15 a literal percentile is meaningless below ~10¹⁵
    resamples, so like production systems we fall back to the normal
    approximation of the bootstrap distribution (mean ± z·std of resample
    means) once δ < 1/num_resamples — this keeps the bounder usable at the
    paper's operating point while remaining honestly non-SSI.

    Parameters
    ----------
    num_resamples:
        Bootstrap replicates per bound computation (default 200, typical
        for interactive AQP).
    seed:
        Seed for the resampling generator (bounds are deterministic given
        the state and seed).
    """

    name = "Bootstrap"
    ssi = False
    requires_sample_memory = True

    def __init__(self, num_resamples: int = 200, seed: int = 0) -> None:
        if num_resamples < 2:
            raise ValueError(f"num_resamples must be >= 2, got {num_resamples}")
        self.num_resamples = num_resamples
        self.seed = seed

    def init_state(self) -> _BootstrapState:
        return _BootstrapState()

    def update(self, state: _BootstrapState, value: float) -> None:
        state.values.append(float(value))
        state.moments.update(float(value))

    def update_batch(self, state: _BootstrapState, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        state.values.extend(values.tolist())
        state.moments.update_batch(values)

    def sample_count(self, state: _BootstrapState) -> int:
        return state.moments.count

    def estimate(self, state: _BootstrapState) -> float:
        return state.moments.mean

    def _resample_means(self, state: _BootstrapState) -> np.ndarray:
        values = np.asarray(state.values, dtype=np.float64)
        # Deterministic given the sample: the seed is mixed with the sample
        # size so successive rounds of OptStop see fresh resamples.
        rng = np.random.default_rng((self.seed, values.size))
        indices = rng.integers(0, values.size, size=(self.num_resamples, values.size))
        return values[indices].mean(axis=1)

    def _quantile_bound(self, state: _BootstrapState, delta: float, upper: bool) -> float:
        means = self._resample_means(state)
        if delta < 1.0 / self.num_resamples:
            # Normal approximation of the bootstrap distribution (see class
            # docstring): percentiles are vacuous this far into the tail.
            z = float(_scipy_stats.norm.ppf(1.0 - delta))
            spread = float(means.std())
            center = float(means.mean())
            return center + z * spread if upper else center - z * spread
        q = 1.0 - delta if upper else delta
        return float(np.quantile(means, q))

    def lbound(self, state: _BootstrapState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.moments.count == 0:
            return a
        return self._quantile_bound(state, delta, upper=False)

    def rbound(self, state: _BootstrapState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.moments.count == 0:
            return b
        return self._quantile_bound(state, delta, upper=True)
