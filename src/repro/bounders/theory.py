"""Closed-form CI widths and sample-size planning (S7).

The paper's analysis compares bounders through the asymptotic size of their
half-widths: Hoeffding-Serfling is ``O((b − a)/√m)`` while (empirical)
Bernstein-Serfling is ``O(σ/√m + (b − a)/m)`` (§2.2.3).  This module exposes
the exact finite-sample half-width formulas as plain functions of the
sufficient statistics and provides inverse planning — the number of samples
needed to reach a target width — used by the ablation benches to quantify
the cost of PMA and PHOS analytically.
"""

from __future__ import annotations

import math

from repro.bounders.bernstein import (
    bernstein_serfling_epsilon,
    empirical_bernstein_serfling_epsilon,
)
from repro.bounders.hoeffding import hoeffding_serfling_epsilon
from repro.cdfbounds.dkw import dkw_epsilon

__all__ = [
    "half_width",
    "samples_for_width",
    "width_ratio",
    "anderson_width_floor",
]

#: Names accepted by :func:`half_width` and :func:`samples_for_width`.
_WIDTH_FUNCS = ("hoeffding", "bernstein", "bernstein-known", "anderson-floor")


def half_width(
    bounder: str,
    m: int,
    n: int,
    a: float,
    b: float,
    delta: float,
    sigma: float = 0.0,
) -> float:
    """Symmetric CI half-width ε for ``m`` of ``N`` samples.

    Parameters
    ----------
    bounder:
        One of ``"hoeffding"`` (Hoeffding-Serfling), ``"bernstein"``
        (empirical Bernstein-Serfling, with σ̂ = ``sigma``),
        ``"bernstein-known"`` (known-variance variant), or
        ``"anderson-floor"`` (the irreducible ε·(b − a) endpoint-mass term
        of the Anderson/DKW bound — see :func:`anderson_width_floor`).
    sigma:
        The (empirical) standard deviation entering Bernstein's width.
    """
    if bounder == "hoeffding":
        return hoeffding_serfling_epsilon(m, n, a, b, delta)
    if bounder == "bernstein":
        return empirical_bernstein_serfling_epsilon(m, n, sigma, a, b, delta)
    if bounder == "bernstein-known":
        return bernstein_serfling_epsilon(m, n, sigma, a, b, delta)
    if bounder == "anderson-floor":
        return anderson_width_floor(m, a, b, delta)
    raise ValueError(f"unknown bounder {bounder!r}; expected one of {_WIDTH_FUNCS}")


def anderson_width_floor(m: int, a: float, b: float, delta: float) -> float:
    """The data-independent part of the Anderson/DKW CI width.

    Even for a zero-spread sample, Algorithm 3 allocates mass ε to each
    range endpoint, leaving a width of at least ``ε·(b − a)`` with
    ``ε = sqrt(log(2/δ)/(2m))`` (δ/2 per side).  This Θ((b − a)/√m) floor is
    what makes Anderson/DKW exhibit PMA despite being PHOS-free (§2.3.3).
    """
    if m < 1:
        return b - a
    return min(dkw_epsilon(m, delta / 2.0, two_sided=False), 1.0) * (b - a)


def samples_for_width(
    bounder: str,
    target_width: float,
    n: int,
    a: float,
    b: float,
    delta: float,
    sigma: float = 0.0,
) -> int:
    """Smallest ``m`` whose two-sided CI width is below ``target_width``.

    The two-sided width is ``2 · ε(m; δ/2)``.  Monotonicity of every width
    formula in ``m`` permits binary search; returns ``n`` (a full scan) when
    even exhausting the dataset cannot certify the target — matching the
    executor's behaviour of degenerating to Exact (§5.4.1, F-q5 discussion).
    """
    if target_width <= 0.0:
        raise ValueError(f"target_width must be positive, got {target_width}")

    def width_at(m: int) -> float:
        return 2.0 * half_width(bounder, m, n, a, b, delta / 2.0, sigma=sigma)

    if width_at(n) > target_width:
        return n
    lo, hi = 1, n
    while lo < hi:
        mid = (lo + hi) // 2
        if width_at(mid) <= target_width:
            hi = mid
        else:
            lo = mid + 1
    return lo


def width_ratio(
    m: int,
    n: int,
    a: float,
    b: float,
    delta: float,
    sigma: float,
) -> float:
    """Hoeffding-to-Bernstein width ratio at equal sample size.

    Quantifies the PMA penalty: the ratio grows like
    ``(b − a) / (σ·√2 + κ(b − a)/√m · …)`` → large when σ ≪ (b − a), the
    outlier-inflated-range regime motivating the paper (Figure 2).
    """
    hoeff = half_width("hoeffding", m, n, a, b, delta)
    bern = half_width("bernstein", m, n, a, b, delta, sigma=sigma)
    if bern <= 0.0:
        return math.inf
    return hoeff / bern
