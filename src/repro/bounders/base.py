"""The error-bounder interface of §2.2.2.

The paper presents every conservative error bounder in terms of a small
interface so that bounders can be maintained incrementally inside a DBMS
aggregation pipeline:

* ``init_state()``       — initialize the state needed for error bounds;
* ``update_state(S, v)`` — fold a newly-seen value into the state;
* ``Lbound(S, a, b, N, δ)`` — confidence lower bound for the dataset AVG;
* ``Rbound(S, a, b, N, δ)`` — confidence upper bound, typically implemented
  in terms of ``Lbound`` after reflecting the state about ``(a + b) / 2``.

:class:`ErrorBounder` is the abstract base class realizing this interface.
A bounder is **SSI** (sample-size independent, Definition 1) when, for every
sample size, the probability that ``[Lbound, Rbound]`` fails to enclose
``AVG(D)`` is below the requested ``delta``.  All bounders in this package
are SSI; the test-suite verifies this with Monte-Carlo coverage tests.

All bounders here additionally satisfy the *dataset-size monotonicity*
property of §3.3: for ``N' > N``, ``Lbound(..., N', δ) <= Lbound(..., N, δ)``
and ``Rbound(..., N', δ) >= Rbound(..., N, δ)``, so that an upper bound on
the (possibly unknown) dataset size can be used safely (Theorem 3).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, NamedTuple

import numpy as np

__all__ = ["Interval", "ErrorBounder", "validate_bound_args"]


class Interval(NamedTuple):
    """A closed confidence interval ``[lo, hi]`` for an aggregate."""

    lo: float
    hi: float

    @property
    def width(self) -> float:
        """Interval width ``hi - lo`` (the paper's compactness metric)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Interval midpoint."""
        return 0.5 * (self.lo + self.hi)

    def __contains__(self, value: object) -> bool:
        return self.lo <= float(value) <= self.hi  # type: ignore[arg-type]

    def intersects(self, other: "Interval") -> bool:
        """True if this interval overlaps ``other`` (closed intervals)."""
        return self.lo <= other.hi and other.lo <= self.hi

    def relative_error(self) -> float:
        """The paper's relative-accuracy statistic for stopping condition Ì.

        ``max{(hi - mid)/hi, (mid - lo)/lo}`` — the worst-case relative
        deviation of the midpoint estimate from any value in the interval.
        Returns ``inf`` when a bound touches zero or the signs disagree, in
        which case no relative guarantee is possible.
        """
        mid = self.midpoint
        if self.lo <= 0.0 <= self.hi:
            return math.inf
        return max(abs(self.hi - mid) / abs(self.hi), abs(mid - self.lo) / abs(self.lo))


def validate_bound_args(a: float, b: float, n: int, delta: float) -> None:
    """Validate the shared ``(a, b, N, δ)`` arguments of Lbound/Rbound.

    Raises
    ------
    ValueError
        If the range is inverted, the dataset size is non-positive, or the
        error probability is outside (0, 1).
    """
    if not a <= b:
        raise ValueError(f"range bounds must satisfy a <= b, got a={a}, b={b}")
    if n < 1:
        raise ValueError(f"dataset size N must be >= 1, got {n}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


class ErrorBounder(ABC):
    """Abstract base class for SSI error bounders (§2.2.2 interface).

    Subclasses implement :meth:`init_state`, :meth:`update`, and
    :meth:`lbound`; :meth:`rbound` has a default implementation via state
    reflection that subclasses may override.  States are plain objects owned
    by the bounder; callers treat them as opaque.

    The convention for *empty* states (no samples yet) is that bounds are
    trivial: ``lbound -> a`` and ``rbound -> b``.
    """

    #: Human-readable name used in experiment tables (e.g. "Bernstein+RT").
    name: str = "bounder"

    #: True if the bounder needs memory growing with the sample (Table 2's
    #: "Memory" column distinguishes O(1) from O(m) bounders).
    requires_sample_memory: bool = False

    #: True for sample-size-independent bounders (Definition 1), whose
    #: failure probability is below δ at *every* sample size.  Asymptotic
    #: bounders (:mod:`repro.bounders.asymptotic`) set this to False: their
    #: coverage only converges to 1 − δ as the sample grows, so they must
    #: never drive early termination when correctness guarantees are
    #: required (§1, "compactness without correctness").
    ssi: bool = True

    @abstractmethod
    def init_state(self) -> Any:
        """Return a fresh, empty state object."""

    @abstractmethod
    def update(self, state: Any, value: float) -> None:
        """Fold a single newly-seen value into ``state`` (in place)."""

    def update_batch(self, state: Any, values: np.ndarray) -> None:
        """Fold a batch of values into ``state`` (in place).

        Semantically equivalent to calling :meth:`update` per element in
        order; subclasses override with vectorized implementations.
        """
        for value in np.asarray(values, dtype=np.float64):
            self.update(state, float(value))

    @abstractmethod
    def lbound(self, state: Any, a: float, b: float, n: int, delta: float) -> float:
        """(1 − δ) confidence lower bound for ``AVG(D)``.

        Parameters
        ----------
        state:
            State produced by :meth:`init_state` / :meth:`update`.
        a, b:
            A-priori range bounds with ``[a, b] ⊇ [MIN(D), MAX(D)]``.
        n:
            Size of the finite dataset ``D`` (or any upper bound on it;
            see the dataset-size monotonicity property, §3.3).
        delta:
            Maximum allowed probability that the returned value exceeds
            ``AVG(D)``.
        """

    @abstractmethod
    def rbound(self, state: Any, a: float, b: float, n: int, delta: float) -> float:
        """(1 − δ) confidence upper bound for ``AVG(D)`` (mirror of lbound)."""

    @abstractmethod
    def sample_count(self, state: Any) -> int:
        """Number of values folded into ``state`` so far."""

    def estimate(self, state: Any) -> float:
        """Point estimate of the aggregate from ``state`` (the sample mean).

        Subclasses whose state does not directly track a mean override this.
        """
        raise NotImplementedError

    def confidence_interval(
        self, state: Any, a: float, b: float, n: int, delta: float
    ) -> Interval:
        """(1 − δ) two-sided CI, union bounding δ/2 per side (§2.2.3).

        The result is clipped to ``[a, b]`` — always sound because
        ``AVG(D)`` necessarily lies in the a-priori range.
        """
        half = delta / 2.0
        lo = self.lbound(state, a, b, n, half)
        hi = self.rbound(state, a, b, n, half)
        lo = min(max(lo, a), b)
        hi = max(min(hi, b), a)
        if lo > hi:
            # Numerically possible only for near-degenerate inputs; collapse
            # to the midpoint, which both one-sided bounds certify.
            lo = hi = 0.5 * (lo + hi)
        return Interval(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"
