"""The error-bounder interface of §2.2.2.

The paper presents every conservative error bounder in terms of a small
interface so that bounders can be maintained incrementally inside a DBMS
aggregation pipeline:

* ``init_state()``       — initialize the state needed for error bounds;
* ``update_state(S, v)`` — fold a newly-seen value into the state;
* ``Lbound(S, a, b, N, δ)`` — confidence lower bound for the dataset AVG;
* ``Rbound(S, a, b, N, δ)`` — confidence upper bound, typically implemented
  in terms of ``Lbound`` after reflecting the state about ``(a + b) / 2``.

The executor's vectorized core additionally drives a *pool* flavour of the
same interface — one state slot per aggregate view, updated and bounded for
every view at once (``init_pool`` / ``update_pool`` /
``confidence_interval_batch``).  The base class provides loop fall-backs so
any scalar bounder participates unchanged; the built-in bounders override
them with numpy implementations whose per-slot results match the scalar
path up to floating-point summation order.

**Mergeable deltas.**  Pool ingest is further split at the pure/stateful
boundary into a three-phase protocol so that the O(rows) half can run in a
worker process:

* ``delta_context(pool)`` — a picklable, read-only snapshot of whatever
  pool state the pure partition consults (``None`` for most families;
  RangeTrim's clip needs the per-view extrema and counts);
* ``partition_delta(indices, values, size, context)`` — a **pure
  function** of one window's sorted ``(view_idx, values)`` stream that
  pre-aggregates it into a :class:`BounderDelta` (per-view moments,
  segmented extrema, or sample segments, per family);
* ``merge_delta(pool, delta)`` — the O(views) main-process fold.

``update_pool(pool, indices, values)`` remains the mutate-in-place entry
point and the **loop fall-back** for third-party bounders that implement
only the scalar interface: bounders with ``supports_delta = False`` keep
working unchanged (the executor replays their sorted values serially).
For delta-capable bounders the serial path and the parallel workers run
the *identical* partition→merge pair over the identical sorted stream, so
results are bit-for-bit independent of where the partition ran.

:class:`ErrorBounder` is the abstract base class realizing this interface.
A bounder is **SSI** (sample-size independent, Definition 1) when, for every
sample size, the probability that ``[Lbound, Rbound]`` fails to enclose
``AVG(D)`` is below the requested ``delta``.  All bounders in this package
are SSI; the test-suite verifies this with Monte-Carlo coverage tests.

All bounders here additionally satisfy the *dataset-size monotonicity*
property of §3.3: for ``N' > N``, ``Lbound(..., N', δ) <= Lbound(..., N, δ)``
and ``Rbound(..., N', δ) >= Rbound(..., N, δ)``, so that an upper bound on
the (possibly unknown) dataset size can be used safely (Theorem 3).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, NamedTuple

import numpy as np

__all__ = [
    "Interval",
    "ErrorBounder",
    "MomentPoolBounderMixin",
    "BounderDelta",
    "MomentDelta",
    "validate_bound_args",
    "iter_segments",
    "segment_bounds",
]


def segment_bounds(sorted_indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(starts, ends)`` of the equal-value runs in a sorted index array.

    The ONE copy of the sorted-stream segmentation arithmetic: the loop
    fall-backs (:func:`iter_segments`) and every segment-shaped
    ``partition_delta`` kernel (Anderson's sample segments, RangeTrim's
    clip segments) share it.  The number of runs is bounded by the
    distinct views actually receiving rows, never the full view count.
    """
    if sorted_indices.size == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    if sorted_indices[0] == sorted_indices[-1]:
        # Single run (the scalar-query / low-cardinality hot case): skip
        # the O(n) boundary scan entirely.
        return (
            np.zeros(1, dtype=np.int64),
            np.array([sorted_indices.size], dtype=np.int64),
        )
    boundaries = np.flatnonzero(np.diff(sorted_indices)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [sorted_indices.size]))
    return starts, ends


def iter_segments(sorted_indices: np.ndarray):
    """Yield ``(start, end, slot)`` runs of equal values in a sorted array.

    Shared by the loop fall-backs of the pool bounder API and by bounders
    whose per-slot state is irreducibly per-view (Anderson's O(m) sample
    buffers).
    """
    starts, ends = segment_bounds(sorted_indices)
    for start, end in zip(starts, ends):
        yield int(start), int(end), int(sorted_indices[start])


_iter_segments = iter_segments


class Interval(NamedTuple):
    """A closed confidence interval ``[lo, hi]`` for an aggregate."""

    lo: float
    hi: float

    @property
    def width(self) -> float:
        """Interval width ``hi - lo`` (the paper's compactness metric)."""
        return self.hi - self.lo

    @property
    def midpoint(self) -> float:
        """Interval midpoint."""
        return 0.5 * (self.lo + self.hi)

    def __contains__(self, value: object) -> bool:
        return self.lo <= float(value) <= self.hi  # type: ignore[arg-type]

    def intersects(self, other: "Interval") -> bool:
        """True if this interval overlaps ``other`` (closed intervals)."""
        return self.lo <= other.hi and other.lo <= self.hi

    def relative_error(self) -> float:
        """The paper's relative-accuracy statistic for stopping condition Ì.

        ``max{(hi - mid)/hi, (mid - lo)/lo}`` — the worst-case relative
        deviation of the midpoint estimate from any value in the interval.
        Returns ``inf`` when a bound touches zero or the signs disagree, in
        which case no relative guarantee is possible.
        """
        mid = self.midpoint
        if self.lo <= 0.0 <= self.hi:
            return math.inf
        return max(abs(self.hi - mid) / abs(self.hi), abs(mid - self.lo) / abs(self.lo))


class BounderDelta:
    """Base class for per-window mergeable bounder-state deltas.

    A delta is the pure, pre-aggregated form of one window's sorted
    ``(view_idx, values)`` stream for one bounder family — everything
    :meth:`ErrorBounder.merge_delta` needs to fold the window into a pool
    without replaying the per-row values.  Deltas must be picklable (they
    cross process boundaries) and expose :attr:`nbytes` so the parallel
    driver can account the IPC payload
    (:attr:`~repro.fastframe.query.ExecutionMetrics.delta_bytes_returned`).
    """

    __slots__ = ()

    @property
    def nbytes(self) -> int:
        """Payload size in bytes (sum of the delta's array buffers)."""
        raise NotImplementedError


class MomentDelta(BounderDelta):
    """Per-view batch moments: the delta of every ``MomentPool`` family.

    Exactly the ``(counts, means, m2s)`` triple of
    :meth:`repro.stats.streaming.MomentPool.batch_stats`; merging is one
    vectorized Chan/Golub/LeVeque :meth:`~repro.stats.streaming.MomentPool.
    merge_arrays` — the same float program ``update_pool`` runs in place,
    so partition→merge is bit-identical to the mutate-in-place path.
    """

    __slots__ = ("counts", "means", "m2s")

    def __init__(self, counts: np.ndarray, means: np.ndarray, m2s: np.ndarray):
        self.counts = counts
        self.means = means
        self.m2s = m2s

    @property
    def nbytes(self) -> int:
        return self.counts.nbytes + self.means.nbytes + self.m2s.nbytes


def validate_bound_args(a: float, b: float, n: int, delta: float) -> None:
    """Validate the shared ``(a, b, N, δ)`` arguments of Lbound/Rbound.

    Raises
    ------
    ValueError
        If the range is inverted, the dataset size is non-positive, or the
        error probability is outside (0, 1).
    """
    if not a <= b:
        raise ValueError(f"range bounds must satisfy a <= b, got a={a}, b={b}")
    if n < 1:
        raise ValueError(f"dataset size N must be >= 1, got {n}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


class ErrorBounder(ABC):
    """Abstract base class for SSI error bounders (§2.2.2 interface).

    Subclasses implement :meth:`init_state`, :meth:`update`, and
    :meth:`lbound`; :meth:`rbound` has a default implementation via state
    reflection that subclasses may override.  States are plain objects owned
    by the bounder; callers treat them as opaque.

    The convention for *empty* states (no samples yet) is that bounds are
    trivial: ``lbound -> a`` and ``rbound -> b``.
    """

    #: Human-readable name used in experiment tables (e.g. "Bernstein+RT").
    name: str = "bounder"

    #: True if the bounder needs memory growing with the sample (Table 2's
    #: "Memory" column distinguishes O(1) from O(m) bounders).
    requires_sample_memory: bool = False

    #: True for sample-size-independent bounders (Definition 1), whose
    #: failure probability is below δ at *every* sample size.  Asymptotic
    #: bounders (:mod:`repro.bounders.asymptotic`) set this to False: their
    #: coverage only converges to 1 − δ as the sample grows, so they must
    #: never drive early termination when correctness guarantees are
    #: required (§1, "compactness without correctness").
    ssi: bool = True

    @abstractmethod
    def init_state(self) -> Any:
        """Return a fresh, empty state object."""

    @abstractmethod
    def update(self, state: Any, value: float) -> None:
        """Fold a single newly-seen value into ``state`` (in place)."""

    def update_batch(self, state: Any, values: np.ndarray) -> None:
        """Fold a batch of values into ``state`` (in place).

        Semantically equivalent to calling :meth:`update` per element in
        order; subclasses override with vectorized implementations.
        """
        for value in np.asarray(values, dtype=np.float64):
            self.update(state, float(value))

    @abstractmethod
    def lbound(self, state: Any, a: float, b: float, n: int, delta: float) -> float:
        """(1 − δ) confidence lower bound for ``AVG(D)``.

        Parameters
        ----------
        state:
            State produced by :meth:`init_state` / :meth:`update`.
        a, b:
            A-priori range bounds with ``[a, b] ⊇ [MIN(D), MAX(D)]``.
        n:
            Size of the finite dataset ``D`` (or any upper bound on it;
            see the dataset-size monotonicity property, §3.3).
        delta:
            Maximum allowed probability that the returned value exceeds
            ``AVG(D)``.
        """

    @abstractmethod
    def rbound(self, state: Any, a: float, b: float, n: int, delta: float) -> float:
        """(1 − δ) confidence upper bound for ``AVG(D)`` (mirror of lbound)."""

    @abstractmethod
    def sample_count(self, state: Any) -> int:
        """Number of values folded into ``state`` so far."""

    def estimate(self, state: Any) -> float:
        """Point estimate of the aggregate from ``state`` (the sample mean).

        Subclasses whose state does not directly track a mean override this.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Pool (struct-of-arrays) flavour — one state slot per aggregate view.
    # Defaults delegate to the scalar methods per slot so any bounder is
    # pool-capable; numpy overrides in subclasses remove the Python loop.
    # ------------------------------------------------------------------

    def init_pool(self, size: int) -> Any:
        """Bank of ``size`` fresh states (default: a list of scalar states)."""
        return [self.init_state() for _ in range(size)]

    def update_pool(self, pool: Any, indices: np.ndarray, values: np.ndarray) -> None:
        """Fold ``values[j]`` into pool slot ``indices[j]`` for all j.

        ``indices`` must be sorted ascending with ties in stream order (the
        executor's stable sort by group code guarantees this); order matters
        for stream-sensitive bounders like RangeTrim.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        for start, end, slot in _iter_segments(indices):
            self.update_batch(pool[slot], values[start:end])

    # ------------------------------------------------------------------
    # Mergeable-delta protocol — the worker-computable form of
    # update_pool.  Families with supports_delta = True implement the
    # pair; everything else keeps the loop fall-back above (the executor
    # ships the sorted values and replays update_pool in place).
    # ------------------------------------------------------------------

    #: True when this bounder implements :meth:`partition_delta` /
    #: :meth:`merge_delta` so pool ingest can be split into a pure
    #: worker-side partition and an O(views) main-process merge.
    supports_delta: bool = False

    def delta_context(self, pool: Any) -> Any:
        """Read-only, picklable snapshot of the pool state
        :meth:`partition_delta` consults (``None`` for stateless
        partitions).  Must stay valid until the window's delta is merged;
        the executor guarantees no pool mutation in between.
        """
        return None

    def partition_delta(
        self, indices: np.ndarray, values: np.ndarray, size: int, context: Any = None
    ) -> BounderDelta:
        """Pre-aggregate one window's sorted stream into a mergeable delta.

        ``indices`` must be sorted ascending with ties in stream order
        (the executor's stable sort guarantees this), ``size`` is the pool
        slot count, and ``context`` is this bounder's
        :meth:`delta_context`.  **Pure**: must not touch any pool state,
        so it is safe to run in a worker process over shared-memory
        buffers.  The contract that keeps parallelism bit-identical:
        ``merge_delta(pool, partition_delta(idx, vals, size, ctx))`` must
        execute the same float program as ``update_pool(pool, idx, vals)``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the mergeable-delta "
            "protocol (supports_delta is False); use update_pool"
        )

    def merge_delta(self, pool: Any, delta: BounderDelta) -> None:
        """Fold a :meth:`partition_delta` result into ``pool`` (O(views))."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the mergeable-delta "
            "protocol (supports_delta is False); use update_pool"
        )

    def pool_counts(self, pool: Any) -> np.ndarray:
        """Per-slot sample counts (int64 array)."""
        return np.array([self.sample_count(state) for state in pool], dtype=np.int64)

    def lbound_batch(
        self,
        pool: Any,
        a,
        b,
        n: np.ndarray,
        delta: float,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-slot (1 − δ) confidence lower bounds (array of len(indices)).

        ``a`` / ``b`` may be scalars or per-slot arrays (RangeTrim queries
        its inner bounder with per-view trimmed ranges); ``n`` is the
        per-slot dataset-size upper bound N⁺.  The default delegates to the
        scalar :meth:`lbound` per slot.
        """
        if indices is None:
            indices = np.arange(self.pool_size(pool), dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        n_arr = np.broadcast_to(np.asarray(n), indices.shape)
        out = np.empty(indices.size, dtype=np.float64)
        for position, slot in enumerate(indices):
            out[position] = self.lbound(
                pool[int(slot)],
                float(a_arr[position]),
                float(b_arr[position]),
                int(n_arr[position]),
                delta,
            )
        return out

    def rbound_batch(
        self,
        pool: Any,
        a,
        b,
        n: np.ndarray,
        delta: float,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-slot (1 − δ) confidence upper bounds (mirror of lbound_batch)."""
        if indices is None:
            indices = np.arange(self.pool_size(pool), dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        n_arr = np.broadcast_to(np.asarray(n), indices.shape)
        out = np.empty(indices.size, dtype=np.float64)
        for position, slot in enumerate(indices):
            out[position] = self.rbound(
                pool[int(slot)],
                float(a_arr[position]),
                float(b_arr[position]),
                int(n_arr[position]),
                delta,
            )
        return out

    def pool_size(self, pool: Any) -> int:
        """Number of slots in a pool (default: ``len``)."""
        return len(pool)

    def confidence_interval_batch(
        self,
        pool: Any,
        a: float,
        b: float,
        n: np.ndarray,
        delta: float,
        indices: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(1 − δ) two-sided CIs for a set of pool slots at once.

        Parameters
        ----------
        pool:
            Bank produced by :meth:`init_pool` / :meth:`update_pool`.
        a, b:
            A-priori range bounds (scalars, shared by every view).
        n:
            Per-slot dataset-size upper bounds N⁺, aligned with ``indices``
            (or with the whole pool when ``indices`` is None).
        delta:
            Per-view error probability (δ/2 per side, as the scalar
            :meth:`confidence_interval`).
        indices:
            Optional subset of slot indices to bound (the executor passes
            only the views whose intervals a round recomputes).

        Returns
        -------
        (lo, hi):
            Arrays aligned with ``indices``, clipped to ``[a, b]`` with the
            same degenerate-input collapse rule as the scalar path.
        """
        half = delta / 2.0
        lo = self.lbound_batch(pool, a, b, n, half, indices)
        hi = self.rbound_batch(pool, a, b, n, half, indices)
        return self._clip_interval_arrays(lo, hi, a, b)

    @staticmethod
    def _clip_interval_arrays(
        lo: np.ndarray, hi: np.ndarray, a: float, b: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Array version of :meth:`confidence_interval`'s clip + collapse."""
        lo = np.clip(lo, a, b)
        hi = np.clip(hi, a, b)
        inverted = lo > hi
        if inverted.any():
            mid = 0.5 * (lo[inverted] + hi[inverted])
            lo[inverted] = mid
            hi[inverted] = mid
        return lo, hi

    def confidence_interval(
        self, state: Any, a: float, b: float, n: int, delta: float
    ) -> Interval:
        """(1 − δ) two-sided CI, union bounding δ/2 per side (§2.2.3).

        The result is clipped to ``[a, b]`` — always sound because
        ``AVG(D)`` necessarily lies in the a-priori range.
        """
        half = delta / 2.0
        lo = self.lbound(state, a, b, n, half)
        hi = self.rbound(state, a, b, n, half)
        lo = min(max(lo, a), b)
        hi = max(min(hi, b), a)
        if lo > hi:
            # Numerically possible only for near-degenerate inputs; collapse
            # to the midpoint, which both one-sided bounds certify.
            lo = hi = 0.5 * (lo + hi)
        return Interval(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class MomentPoolBounderMixin:
    """Pool flavour for bounders whose state is a ``MomentState`` and whose
    half-width ε is invariant under reflection about ``(a + b)/2``.

    Reflection flips the mean and preserves the count, variance, and range
    span — everything ε consults for the Hoeffding, Bernstein, and CLT
    families — so the reflected ``Rbound`` reduces to ``mean + ε`` and both
    sides share one vectorized ε kernel (:meth:`_epsilon_batch`).
    """

    #: Moment-family deltas ride MomentPool's Chan/Golub/LeVeque merge.
    supports_delta = True

    def init_pool(self, size: int):
        from repro.stats.streaming import MomentPool

        return MomentPool(size)

    def update_pool(self, pool, indices: np.ndarray, values: np.ndarray) -> None:
        pool.update_indexed(indices, values)

    def partition_delta(
        self, indices: np.ndarray, values: np.ndarray, size: int, context=None
    ) -> MomentDelta:
        """One window's per-view batch moments (pure; worker-safe).

        ``update_indexed`` is exactly ``batch_stats`` + ``merge_arrays``,
        so the partition→merge pair is bit-identical to
        :meth:`update_pool`.
        """
        from repro.stats.streaming import MomentPool

        return MomentDelta(*MomentPool.batch_stats(indices, values, size))

    def merge_delta(self, pool, delta: MomentDelta) -> None:
        pool.merge_arrays(delta.counts, delta.means, delta.m2s)

    def pool_counts(self, pool) -> np.ndarray:
        return pool.count.copy()

    def pool_size(self, pool) -> int:
        return pool.size

    def _epsilon_batch(
        self, pool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        """Per-slot one-sided half-widths; subclasses implement."""
        raise NotImplementedError

    def _epsilon_one(self, pool, slot: int, a: float, b: float, n, delta: float) -> float:
        """One lane of :meth:`_epsilon_batch` in scalar math, bit-identical.

        Optional: families that implement it unlock the small-set scalar
        dispatch (:attr:`supports_scalar_bounds`), which sidesteps numpy
        call overhead when a round recomputes only a handful of views.
        """
        raise NotImplementedError

    @property
    def supports_scalar_bounds(self) -> bool:
        """True when :meth:`_epsilon_one` is implemented by this family."""
        return type(self)._epsilon_one is not MomentPoolBounderMixin._epsilon_one

    def lbound_one(self, pool, slot: int, a: float, b: float, n, delta: float) -> float:
        """One lane of :meth:`lbound_batch`, bit-identical scalar math."""
        eps = self._epsilon_one(pool, slot, a, b, n, delta)
        if int(pool.count[slot]) == 0:
            return float(a)
        return float(pool.mean[slot]) - eps

    def rbound_one(self, pool, slot: int, a: float, b: float, n, delta: float) -> float:
        """One lane of :meth:`rbound_batch`, bit-identical scalar math."""
        eps = self._epsilon_one(pool, slot, a, b, n, delta)
        if int(pool.count[slot]) == 0:
            return float(b)
        return float(pool.mean[slot]) + eps

    def _empty_slot_mask(self, pool, indices: np.ndarray) -> np.ndarray:
        """Slots that must report the trivial bounds (no samples yet)."""
        return pool.count[indices] == 0

    def lbound_batch(self, pool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        eps = self._epsilon_batch(pool, indices, a, b, n, delta)
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        return np.where(
            self._empty_slot_mask(pool, indices), a_arr, pool.mean[indices] - eps
        )

    def rbound_batch(self, pool, a, b, n, delta, indices=None):
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        eps = self._epsilon_batch(pool, indices, a, b, n, delta)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        return np.where(
            self._empty_slot_mask(pool, indices), b_arr, pool.mean[indices] + eps
        )

    def confidence_interval_batch(self, pool, a, b, n, delta, indices=None):
        """Both sides from one ε evaluation (the kernel is symmetric)."""
        if indices is None:
            indices = np.arange(pool.size, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        eps = self._epsilon_batch(pool, indices, a, b, n, delta / 2.0)
        empty = self._empty_slot_mask(pool, indices)
        mean = pool.mean[indices]
        a_arr = np.broadcast_to(np.asarray(a, dtype=np.float64), indices.shape)
        b_arr = np.broadcast_to(np.asarray(b, dtype=np.float64), indices.shape)
        lo = np.where(empty, a_arr, mean - eps)
        hi = np.where(empty, b_arr, mean + eps)
        return self._clip_interval_arrays(lo, hi, a, b)
