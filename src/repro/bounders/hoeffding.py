"""Hoeffding and Hoeffding-Serfling error bounders (Algorithm 1, §2.2.3).

The Hoeffding-Serfling inequality [Serfling 1974] bounds the deviation of a
without-replacement sample mean from the dataset mean for data in ``[a, b]``:
inverting it (at ``k = m``) gives the (1 − δ) confidence lower bound

    ĝ − (b − a) · sqrt( (1 − (m − 1)/N) · log(1/δ) / (2m) )

and symmetrically for the upper bound.  The ``(1 − (m − 1)/N)`` factor is
the finite-population (sampling-fraction) correction; dropping it recovers
the classical Hoeffding bound for with-replacement sampling, which is also
valid (but looser) without replacement.

CI widths depend only on the range size ``(b − a)`` and the sample count —
never on the observed values — so this bounder exhibits both **PMA** and
**PHOS** (§2.3.3).  It is the conservative bounder most used in prior DB
literature and serves as the paper's primary baseline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.bounders.base import (
    ErrorBounder,
    MomentPoolBounderMixin,
    validate_bound_args,
)
from repro.stats.streaming import MomentPool, MomentState

__all__ = [
    "HoeffdingSerflingBounder",
    "HoeffdingBounder",
    "hoeffding_serfling_epsilon",
    "hoeffding_serfling_epsilon_batch",
]


def hoeffding_serfling_epsilon(
    m: int, n: int, a: float, b: float, delta: float, finite_population: bool = True
) -> float:
    """Half-width ε of the Hoeffding(-Serfling) bound for ``m`` of ``N`` samples.

    Parameters
    ----------
    m:
        Number of without-replacement samples taken (must be >= 1).
    n:
        Dataset size ``N`` (or an upper bound; ε is non-decreasing in N).
    a, b:
        Range bounds enclosing the data.
    delta:
        One-sided error probability.
    finite_population:
        If True (Serfling variant), apply the ``(1 − (m − 1)/N)`` sampling
        fraction correction; if False, the classical Hoeffding bound.
    """
    if m < 1:
        return b - a
    m = min(m, n)
    rho = 1.0 - (m - 1) / n if finite_population else 1.0
    rho = max(rho, 0.0)
    return (b - a) * math.sqrt(rho * math.log(1.0 / delta) / (2.0 * m))


def hoeffding_serfling_epsilon_batch(
    m: np.ndarray,
    n: np.ndarray,
    a,
    b,
    delta: float,
    finite_population: bool = True,
) -> np.ndarray:
    """Vectorized :func:`hoeffding_serfling_epsilon` over per-view arrays.

    ``m`` and ``n`` are per-view sample counts and dataset-size bounds;
    ``a`` / ``b`` may be scalars or per-view arrays (RangeTrim's trimmed
    ranges).  Slots with ``m < 1`` get the trivial width ``b − a``.
    """
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    span = np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64)
    m_eff = np.maximum(np.minimum(m, n), 1.0)
    if finite_population:
        rho = np.maximum(1.0 - (m_eff - 1.0) / n, 0.0)
    else:
        rho = np.ones_like(m_eff)
    eps = span * np.sqrt(rho * math.log(1.0 / delta) / (2.0 * m_eff))
    return np.where(m < 1, span, eps)


class HoeffdingSerflingBounder(MomentPoolBounderMixin, ErrorBounder):
    """Error bounder derived from the Hoeffding-Serfling inequality.

    State is an O(1) :class:`~repro.stats.streaming.MomentState` (only the
    count and running mean are consulted; the second moment is maintained so
    the same state type serves every O(1) bounder).  Pool state is a
    :class:`~repro.stats.streaming.MomentPool`, with the worker-computable
    mergeable delta (``partition_delta``/``merge_delta``) inherited from
    :class:`~repro.bounders.base.MomentPoolBounderMixin`.

    Parameters
    ----------
    finite_population:
        If True (default), include the Serfling sampling-fraction term,
        valid for without-replacement samples from a finite dataset.  If
        False, the plain Hoeffding bound (valid for both sampling modes,
        per Table 2's "R*" annotation).
    """

    def __init__(self, finite_population: bool = True) -> None:
        self.finite_population = finite_population
        self.name = "Hoeffding" if finite_population else "Hoeffding (no FPC)"

    def init_state(self) -> MomentState:
        return MomentState()

    def update(self, state: MomentState, value: float) -> None:
        state.update(value)

    def update_batch(self, state: MomentState, values: np.ndarray) -> None:
        state.update_batch(values)

    def sample_count(self, state: MomentState) -> int:
        return state.count

    def estimate(self, state: MomentState) -> float:
        return state.mean

    def epsilon(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        """Half-width for the current state (symmetric error)."""
        return hoeffding_serfling_epsilon(
            state.count, n, a, b, delta, finite_population=self.finite_population
        )

    def lbound(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return a
        return state.mean - self.epsilon(state, a, b, n, delta)

    def rbound(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return b
        # Algorithm 1 step 4: reflect the state about (a + b)/2 and negate.
        reflected = state.reflected(a, b)
        return (a + b) - (reflected.mean - self.epsilon(reflected, a, b, n, delta))

    def _epsilon_batch(
        self, pool: MomentPool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        return hoeffding_serfling_epsilon_batch(
            pool.count[indices], n, a, b, delta,
            finite_population=self.finite_population,
        )


class HoeffdingBounder(HoeffdingSerflingBounder):
    """Classical Hoeffding bounder (no finite-population correction)."""

    def __init__(self) -> None:
        super().__init__(finite_population=False)
