"""(Empirical) Bernstein-Serfling error bounders (Algorithm 2, §2.2.3).

Bardenet & Maillard [12] derive Bernstein-style concentration inequalities
for sampling *without replacement* from a finite dataset of ``N`` values in
``[a, b]``.  The resulting bounds scale as

    ĝ ± O( σ/√m + (b − a)/m )

so they are far tighter than Hoeffding-Serfling's ``O((b − a)/√m)`` whenever
the dataset standard deviation σ is small compared to the range — the
typical case for real data where the catalog range is inflated by a few
outliers.  Because shrinking the sample's extremes shrinks the (empirical)
variance, these bounders do **not** exhibit PMA; they do exhibit **PHOS**,
since both CI ends retain a ``(b − a)`` term (§2.3.3), which is exactly
what the paper's RangeTrim technique removes.

Two variants are provided:

* :class:`BernsteinSerflingBounder` — assumes the dataset variance σ² is
  known a priori (rarely realistic; used for ablations).
* :class:`EmpiricalBernsteinSerflingBounder` — Algorithm 2: replaces σ by
  the sample standard deviation σ̂ at the cost of slightly worse constants
  (the ``log(5/δ)`` factor and ``κ = 7/3 + 3/√2``).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bounders.base import (
    ErrorBounder,
    MomentPoolBounderMixin,
    validate_bound_args,
)
from repro.stats.streaming import MomentPool, MomentState

__all__ = [
    "EmpiricalBernsteinSerflingBounder",
    "BernsteinSerflingBounder",
    "EmpiricalBernsteinBounder",
    "empirical_bernstein_serfling_epsilon",
    "empirical_bernstein_serfling_epsilon_batch",
    "empirical_bernstein_serfling_epsilon_one",
    "bernstein_serfling_epsilon",
    "maurer_pontil_epsilon",
    "KAPPA_EMPIRICAL",
    "KAPPA_KNOWN_VARIANCE",
]

#: κ = 7/3 + 3/√2, the range-term constant of the *empirical*
#: Bernstein-Serfling inequality (Algorithm 2 line 9; [12], Theorem 4).
KAPPA_EMPIRICAL = 7.0 / 3.0 + 3.0 / math.sqrt(2.0)

#: Range-term constant for the known-variance Bernstein-Serfling bound
#: ([12], Theorem 3 uses κ = 4/3 with a log(3/δ) factor).
KAPPA_KNOWN_VARIANCE = 4.0 / 3.0


def _serfling_rho(m: int, n: int) -> float:
    """The sampling-fraction factor ρ of [12] (Algorithm 2 lines 10-11).

    ``ρ = 1 − (m − 1)/N`` for ``m <= N/2`` and
    ``ρ = (1 − m/N)(1 + 1/m)`` for ``m > N/2``.
    """
    if m <= n / 2.0:
        rho = 1.0 - (m - 1) / n
    else:
        rho = (1.0 - m / n) * (1.0 + 1.0 / m)
    return max(rho, 0.0)


def empirical_bernstein_serfling_epsilon(
    m: int, n: int, sigma_hat: float, a: float, b: float, delta: float
) -> float:
    """Half-width ε of the empirical Bernstein-Serfling bound.

    Algorithm 2 line 12:
    ``ε = σ̂·sqrt(2ρ·log(5/δ)/m) + κ·(b − a)·log(5/δ)/m``.

    Parameters
    ----------
    m:
        Number of without-replacement samples (>= 1; returns the trivial
        width ``b − a`` for m < 1).
    n:
        Dataset size (or an upper bound).
    sigma_hat:
        Sample standard deviation σ̂ (biased estimator, §2.2.3).
    a, b:
        Range bounds enclosing the data.
    delta:
        One-sided error probability.
    """
    if m < 1:
        return b - a
    m = min(m, n)
    rho = _serfling_rho(m, n)
    log_term = math.log(5.0 / delta)
    return sigma_hat * math.sqrt(2.0 * rho * log_term / m) + KAPPA_EMPIRICAL * (
        b - a
    ) * log_term / m


def _serfling_rho_batch(m: np.ndarray, n: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_serfling_rho` over per-view arrays."""
    small = m <= n / 2.0
    m_safe = np.maximum(m, 1.0)
    rho = np.where(
        small, 1.0 - (m - 1.0) / n, (1.0 - m / n) * (1.0 + 1.0 / m_safe)
    )
    return np.maximum(rho, 0.0)


def empirical_bernstein_serfling_epsilon_batch(
    m: np.ndarray, n: np.ndarray, sigma_hat: np.ndarray, a, b, delta: float
) -> np.ndarray:
    """Vectorized :func:`empirical_bernstein_serfling_epsilon`.

    ``m``, ``n``, ``sigma_hat`` are per-view arrays; ``a`` / ``b`` may be
    scalars or per-view arrays (RangeTrim's trimmed ranges).
    """
    m = np.asarray(m, dtype=np.float64)
    n = np.asarray(n, dtype=np.float64)
    sigma_hat = np.asarray(sigma_hat, dtype=np.float64)
    span = np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64)
    m_eff = np.maximum(np.minimum(m, n), 1.0)
    rho = _serfling_rho_batch(m_eff, n)
    log_term = math.log(5.0 / delta)
    eps = sigma_hat * np.sqrt(2.0 * rho * log_term / m_eff) + KAPPA_EMPIRICAL * span * (
        log_term / m_eff
    )
    return np.where(m < 1, span, eps)


def empirical_bernstein_serfling_epsilon_one(
    m: float, n: float, sigma_hat: float, span: float, delta: float
) -> float:
    """One lane of :func:`empirical_bernstein_serfling_epsilon_batch`.

    A scalar transliteration of the *batch* kernel — every operation is
    the same IEEE-754 double operation, in the same order, as the
    vectorized expression, so the small-set scalar dispatch in the pool
    bound path returns exactly the bytes the batch kernel would.  (The
    legacy :func:`empirical_bernstein_serfling_epsilon` associates the
    range term differently and is *not* bit-interchangeable.)
    """
    if m < 1.0:
        return span
    m_eff = max(min(m, n), 1.0)
    # _serfling_rho_batch, one lane.
    if m_eff <= n / 2.0:
        rho = 1.0 - (m_eff - 1.0) / n
    else:
        rho = (1.0 - m_eff / n) * (1.0 + 1.0 / max(m_eff, 1.0))
    rho = max(rho, 0.0)
    log_term = math.log(5.0 / delta)
    return sigma_hat * math.sqrt(2.0 * rho * log_term / m_eff) + KAPPA_EMPIRICAL * span * (
        log_term / m_eff
    )


def bernstein_serfling_epsilon(
    m: int, n: int, sigma: float, a: float, b: float, delta: float
) -> float:
    """Half-width ε of the known-variance Bernstein-Serfling bound.

    ``ε = σ·sqrt(2ρ·log(3/δ)/m) + κ·(b − a)·log(3/δ)/m`` with ``κ = 4/3``
    ([12], Theorem 3; the paper defers the statement to its appendix).
    """
    if m < 1:
        return b - a
    m = min(m, n)
    rho = _serfling_rho(m, n)
    log_term = math.log(3.0 / delta)
    return sigma * math.sqrt(2.0 * rho * log_term / m) + KAPPA_KNOWN_VARIANCE * (
        b - a
    ) * log_term / m


class EmpiricalBernsteinSerflingBounder(MomentPoolBounderMixin, ErrorBounder):
    """Algorithm 2: the empirical Bernstein-Serfling error bounder.

    State is an O(1) :class:`~repro.stats.streaming.MomentState`; unlike the
    paper's expository pseudocode (which tracks the raw second moment
    ``M2 = Σ v²``), the implementation uses Welford's numerically stable
    one-pass recurrence, as the paper recommends (§2.2.3, [17, 45, 67]).
    Pool state is a :class:`~repro.stats.streaming.MomentPool`, with the
    worker-computable mergeable delta (``partition_delta``/``merge_delta``)
    inherited from :class:`~repro.bounders.base.MomentPoolBounderMixin`.
    """

    name = "Bernstein"

    def init_state(self) -> MomentState:
        return MomentState()

    def update(self, state: MomentState, value: float) -> None:
        state.update(value)

    def update_batch(self, state: MomentState, values: np.ndarray) -> None:
        state.update_batch(values)

    def sample_count(self, state: MomentState) -> int:
        return state.count

    def estimate(self, state: MomentState) -> float:
        return state.mean

    def epsilon(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        """Half-width for the current state (symmetric error)."""
        return empirical_bernstein_serfling_epsilon(
            state.count, n, state.std, a, b, delta
        )

    def lbound(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return a
        return state.mean - self.epsilon(state, a, b, n, delta)

    def rbound(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        validate_bound_args(a, b, n, delta)
        if state.count == 0:
            return b
        reflected = state.reflected(a, b)
        return (a + b) - (reflected.mean - self.epsilon(reflected, a, b, n, delta))

    def _epsilon_batch(
        self, pool: MomentPool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        return empirical_bernstein_serfling_epsilon_batch(
            pool.count[indices], n, pool.std_of(indices), a, b, delta
        )

    def _epsilon_one(
        self, pool: MomentPool, slot: int, a: float, b: float, n, delta: float
    ) -> float:
        """One lane of :meth:`_epsilon_batch`, bit-identical (see
        :func:`empirical_bernstein_serfling_epsilon_one`)."""
        count = int(pool.count[slot])
        variance = float(pool.m2[slot]) / max(count, 1)
        sigma_hat = math.sqrt(max(variance, 0.0))
        return empirical_bernstein_serfling_epsilon_one(
            float(count), float(n), sigma_hat, float(b) - float(a), delta
        )


def maurer_pontil_epsilon(
    m: int, sigma_hat_unbiased: float, a: float, b: float, delta: float
) -> float:
    """Half-width of the Maurer-Pontil empirical Bernstein bound.

    The classical with-replacement empirical Bernstein inequality:
    ``ε = σ̃·sqrt(2·log(2/δ)/m) + 7(b − a)·log(2/δ)/(3(m − 1))`` with σ̃ the
    *unbiased* sample standard deviation.  Table 2's asterisk records that
    the non-Serfling variant "also holds for NR sampling" (Hoeffding's
    reduction [36, Theorem 4] transfers with-replacement concentration to
    without-replacement means), so this bound is SSI in our setting too —
    it simply ignores the sampling-fraction benefit the Serfling variants
    exploit.
    """
    if m < 2:
        return b - a
    log_term = math.log(2.0 / delta)
    return sigma_hat_unbiased * math.sqrt(2.0 * log_term / m) + 7.0 * (
        b - a
    ) * log_term / (3.0 * (m - 1))


class EmpiricalBernsteinBounder(EmpiricalBernsteinSerflingBounder):
    """Maurer-Pontil empirical Bernstein bounder (with-replacement form).

    The non-Serfling entry of Table 2: no PMA, has PHOS, valid for both
    sampling modes, but without the finite-population tightening — included
    so the ablation benches can price the Serfling correction exactly.
    """

    name = "Bernstein (no FPC)"

    def epsilon(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        m = state.count
        if m < 2:
            return b - a
        unbiased_std = math.sqrt(max(state.m2 / (m - 1), 0.0))
        return maurer_pontil_epsilon(m, unbiased_std, a, b, delta)

    def _epsilon_batch(
        self, pool: MomentPool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        m = pool.count[indices].astype(np.float64)
        span = np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64)
        m_safe = np.maximum(m, 2.0)
        unbiased_std = np.sqrt(np.maximum(pool.m2[indices] / (m_safe - 1.0), 0.0))
        log_term = math.log(2.0 / delta)
        eps = unbiased_std * np.sqrt(2.0 * log_term / m_safe) + 7.0 * span * (
            log_term / (3.0 * (m_safe - 1.0))
        )
        return np.where(m < 2, span, eps)


class BernsteinSerflingBounder(EmpiricalBernsteinSerflingBounder):
    """Known-variance Bernstein-Serfling bounder (ablation baseline).

    Parameters
    ----------
    sigma:
        The true dataset standard deviation ``σ = sqrt(VAR(D))``.  Knowledge
        of σ "typically cannot be assumed in a setting where AVG(D) is
        unknown" (§2.2.3); this bounder exists to quantify how little the
        empirical variant loses relative to an oracle.
    """

    name = "Bernstein (known variance)"

    def __init__(self, sigma: float) -> None:
        if sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        self.sigma = sigma

    def epsilon(self, state: MomentState, a: float, b: float, n: int, delta: float) -> float:
        return bernstein_serfling_epsilon(state.count, n, self.sigma, a, b, delta)

    def _epsilon_batch(
        self, pool: MomentPool, indices: np.ndarray, a, b, n: np.ndarray, delta: float
    ) -> np.ndarray:
        m = pool.count[indices].astype(np.float64)
        n = np.asarray(n, dtype=np.float64)
        span = np.asarray(b, dtype=np.float64) - np.asarray(a, dtype=np.float64)
        m_eff = np.maximum(np.minimum(m, n), 1.0)
        rho = _serfling_rho_batch(m_eff, n)
        log_term = math.log(3.0 / delta)
        eps = self.sigma * np.sqrt(2.0 * rho * log_term / m_eff) + KAPPA_KNOWN_VARIANCE * span * (
            log_term / m_eff
        )
        return np.where(m < 1, span, eps)
