"""Compile parsed SQL into FastFrame :class:`~repro.fastframe.query.Query`.

The compiler enforces the paper's query model — a single aggregate over one
table (Figure 5) — and infers the stopping condition from how the aggregate
is consumed (Table 4):

==============================================  ==============================
SQL shape                                       Stopping condition
==============================================  ==============================
``HAVING AVG(x) > t`` / ``< t``                 Í ``ThresholdSide(t)``
``CASE WHEN AVG(x) > t THEN … END``             Í ``ThresholdSide(t)`` (F-q4)
``ORDER BY AVG(x) DESC LIMIT k``                Î ``TopKSeparated(k, largest)``
``ORDER BY AVG(x) ASC LIMIT k``                 Î ``TopKSeparated(k, smallest)``
``ORDER BY AVG(x)`` without LIMIT               Ï ``GroupsOrdered()``
anything else                                   caller-supplied ``stopping``
==============================================  ==============================

Aggregate arguments may be arbitrary arithmetic over continuous columns;
they compile to :mod:`repro.expressions` trees whose derived range bounds
are computed per Appendix B at execution time.
"""

from __future__ import annotations

from repro import expressions as _expressions
from repro.fastframe.predicate import (
    And,
    Compare,
    Eq,
    In,
    Not,
    Or,
    Predicate,
)
from repro.fastframe.query import AggregateFunction, Query
from repro.sql.ast import (
    AggregateCall,
    Between,
    BinaryArith,
    BoolOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    InList,
    NotOp,
    NumberLiteral,
    SelectStatement,
    StringLiteral,
    UnaryMinus,
)
from repro.sql.parser import parse, parse_script
from repro.stopping.conditions import (
    GroupsOrdered,
    StoppingCondition,
    ThresholdSide,
    TopKSeparated,
)

__all__ = [
    "SqlCompileError",
    "compile_statement",
    "parse_query",
    "parse_statements",
]

_FLIPPED_OPS = {">": "<", "<": ">", ">=": "<=", "<=": ">=", "=": "=", "!=": "!=", "<>": "<>"}
_ARITH_NODES = {
    "+": _expressions.Add,
    "-": _expressions.Sub,
    "*": _expressions.Mul,
    "/": _expressions.Div,
}


class SqlCompileError(ValueError):
    """A semantically invalid query for the paper's single-aggregate model."""


# ----------------------------------------------------------------------
# Aggregate discovery
# ----------------------------------------------------------------------


def _aggregates_in(node) -> list[AggregateCall]:
    """Every AggregateCall reachable from an expression node."""
    if isinstance(node, AggregateCall):
        return [node]
    if isinstance(node, BinaryArith):
        return _aggregates_in(node.left) + _aggregates_in(node.right)
    if isinstance(node, UnaryMinus):
        return _aggregates_in(node.operand)
    if isinstance(node, CaseWhen):
        return (
            _aggregates_in(node.condition)
            + _aggregates_in(node.then_value)
            + _aggregates_in(node.else_value)
        )
    if isinstance(node, Comparison):
        return _aggregates_in(node.left) + _aggregates_in(node.right)
    if isinstance(node, BoolOp):
        return [agg for part in node.parts for agg in _aggregates_in(part)]
    if isinstance(node, NotOp):
        return _aggregates_in(node.operand)
    return []


def _unique_aggregate(statement: SelectStatement) -> AggregateCall:
    """The statement's single aggregate; raises if there is not exactly one."""
    found: list[AggregateCall] = []
    for item in statement.select:
        found.extend(_aggregates_in(item.expression))
    if statement.having is not None:
        found.extend(_aggregates_in(statement.having))
    if statement.order_by is not None:
        found.extend(_aggregates_in(statement.order_by.key))
    if not found:
        raise SqlCompileError(
            "query contains no aggregate; FastFrame answers single-aggregate "
            "queries (Figure 5's shape)"
        )
    distinct = set(found)
    if len(distinct) > 1:
        raise SqlCompileError(
            f"query references {len(distinct)} distinct aggregates; the "
            "paper's query model supports exactly one per query (run one "
            "query per aggregate and divide delta accordingly, §4.1)"
        )
    return found[0]


# ----------------------------------------------------------------------
# Expression / predicate lowering
# ----------------------------------------------------------------------


def _lower_value(node):
    """Aggregate argument AST → column name or :mod:`repro.expressions` tree.

    A bare column stays a string (the executor's fast path); anything
    arithmetic becomes an Expression with Appendix-B derived range bounds.
    """
    if isinstance(node, ColumnRef):
        return node.name
    return _lower_expression(node)


def _lower_expression(node) -> _expressions.Expression:
    if isinstance(node, ColumnRef):
        return _expressions.col(node.name)
    if isinstance(node, NumberLiteral):
        return _expressions.Const(node.value)
    if isinstance(node, UnaryMinus):
        return _expressions.Neg(_lower_expression(node.operand))
    if isinstance(node, BinaryArith):
        factory = _ARITH_NODES[node.op]
        return factory(_lower_expression(node.left), _lower_expression(node.right))
    raise SqlCompileError(
        f"unsupported construct inside an aggregate argument: {type(node).__name__}"
    )


def _literal_value(node):
    if isinstance(node, NumberLiteral):
        return node.value
    if isinstance(node, StringLiteral):
        return node.value
    raise SqlCompileError(
        f"expected a literal in a WHERE comparison, found {type(node).__name__}"
    )


def _lower_predicate(node) -> Predicate:
    """WHERE condition AST → :mod:`repro.fastframe.predicate` tree."""
    if isinstance(node, BoolOp):
        parts = tuple(_lower_predicate(part) for part in node.parts)
        return And(*parts) if node.op == "AND" else Or(*parts)
    if isinstance(node, NotOp):
        return Not(_lower_predicate(node.operand))
    if isinstance(node, InList):
        return In(node.column.name, tuple(_literal_value(v) for v in node.values))
    if isinstance(node, Between):
        low, high = _literal_value(node.low), _literal_value(node.high)
        if isinstance(low, str) or isinstance(high, str):
            raise SqlCompileError("BETWEEN requires numeric endpoints")
        return And(
            Compare(node.column.name, ">=", float(low)),
            Compare(node.column.name, "<=", float(high)),
        )
    if isinstance(node, Comparison):
        left, op, right = node.left, node.op, node.right
        if not isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            left, right = right, left
            op = _FLIPPED_OPS[op]
        if not isinstance(left, ColumnRef):
            raise SqlCompileError(
                "WHERE comparisons must reference a column on one side"
            )
        value = _literal_value(right)
        if op == "=":
            return Eq(left.name, value)
        if op in ("!=", "<>"):
            return Not(Eq(left.name, value))
        if isinstance(value, str):
            raise SqlCompileError(
                f"ordering comparison {op!r} is not defined for string "
                f"literal {value!r}"
            )
        return Compare(left.name, op, float(value))
    raise SqlCompileError(
        f"unsupported WHERE construct: {type(node).__name__}"
    )


# ----------------------------------------------------------------------
# Stopping-condition inference
# ----------------------------------------------------------------------


def _threshold_from(comparison, aggregate: AggregateCall) -> float:
    """Threshold of an ``aggregate <op> number`` test (either side)."""
    if not isinstance(comparison, Comparison):
        raise SqlCompileError(
            "HAVING / CASE WHEN must be a single comparison against the "
            "query aggregate"
        )
    left, right = comparison.left, comparison.right
    if left == aggregate and isinstance(right, NumberLiteral):
        return right.value
    if right == aggregate and isinstance(left, NumberLiteral):
        return left.value
    raise SqlCompileError(
        "HAVING / CASE WHEN must compare the query aggregate with a "
        "numeric literal"
    )


def _infer_stopping(
    statement: SelectStatement,
    aggregate: AggregateCall,
    stopping: StoppingCondition | None,
) -> StoppingCondition:
    case_items = [
        item.expression
        for item in statement.select
        if isinstance(item.expression, CaseWhen)
    ]
    if case_items:
        return ThresholdSide(_threshold_from(case_items[0].condition, aggregate))
    if statement.having is not None:
        return ThresholdSide(_threshold_from(statement.having, aggregate))
    if statement.order_by is not None:
        if statement.order_by.key != aggregate:
            raise SqlCompileError(
                "ORDER BY must sort on the query aggregate"
            )
        if statement.limit is not None:
            if statement.limit < 1:
                raise SqlCompileError("LIMIT must be at least 1")
            return TopKSeparated(statement.limit, largest=not statement.order_by.ascending)
        return GroupsOrdered()
    if stopping is None:
        raise SqlCompileError(
            "no stopping condition is implied by the SQL (no HAVING, CASE "
            "WHEN threshold, or ORDER BY); pass one explicitly, e.g. "
            "parse_query(sql, stopping=RelativeAccuracy(0.5))"
        )
    return stopping


# ----------------------------------------------------------------------
# Validation + assembly
# ----------------------------------------------------------------------


def _validate_select_list(statement: SelectStatement) -> None:
    """Non-aggregate select columns must be grouped (standard SQL rule)."""
    grouped = set(statement.group_by)
    for item in statement.select:
        expr = item.expression
        if isinstance(expr, ColumnRef) and expr.name not in grouped:
            raise SqlCompileError(
                f"column {expr.name!r} appears in SELECT without aggregation "
                "and is not in GROUP BY"
            )


def compile_statement(
    statement: SelectStatement,
    stopping: StoppingCondition | None = None,
    name: str = "",
) -> Query:
    """Lower a parsed statement to an executable :class:`Query`.

    Parameters
    ----------
    statement:
        Output of :func:`repro.sql.parser.parse`.
    stopping:
        Fallback stopping condition for queries whose SQL implies none
        (e.g. a plain ``SELECT AVG(x) FROM t`` accuracy query).
    name:
        Experiment label stored on the query.
    """
    aggregate = _unique_aggregate(statement)
    _validate_select_list(statement)
    function = AggregateFunction[aggregate.function]
    column = None if aggregate.argument is None else _lower_value(aggregate.argument)
    if function is AggregateFunction.COUNT and column is not None:
        # COUNT(expr) counts view rows exactly like COUNT(*) here: the
        # store has no NULLs (§5.1 drops them at load).
        column = None
    condition = _infer_stopping(statement, aggregate, stopping)
    query_kwargs = {}
    if statement.where is not None:
        query_kwargs["predicate"] = _lower_predicate(statement.where)
    if function is AggregateFunction.PERCENTILE:
        query_kwargs["percentile"] = aggregate.percentile
    return Query(
        function,
        column,
        condition,
        group_by=statement.group_by,
        name=name or statement.table,
        **query_kwargs,
    )


def parse_query(
    sql: str,
    stopping: StoppingCondition | None = None,
    name: str = "",
) -> Query:
    """Parse and compile one SQL string into an executable :class:`Query`.

    >>> from repro.sql import parse_query
    >>> query = parse_query(
    ...     "SELECT Airline FROM flights "
    ...     "GROUP BY Airline HAVING AVG(DepDelay) > 7"
    ... )
    >>> query.aggregate.value, query.group_by
    ('AVG', ('Airline',))
    """
    return compile_statement(parse(sql), stopping=stopping, name=name)


def parse_statements(
    sql: str,
    stopping: StoppingCondition | None = None,
    name: str = "",
) -> list[Query]:
    """Parse and compile a ``;``-separated script into executable queries.

    The dashboard shape: one script, many single-aggregate statements,
    each compiled independently (``stopping`` is the per-statement
    fallback).  A ``name`` labels the queries — suffixed ``#k`` when the
    script holds several statements; unnamed statements default to their
    table name.  Pair with :meth:`repro.api.Connection.sql` +
    ``gather()`` to run the whole script off one shared scan.
    """
    statements = parse_script(sql)
    queries = []
    for position, statement in enumerate(statements):
        label = name
        if label and len(statements) > 1:
            label = f"{name}#{position + 1}"
        queries.append(
            compile_statement(statement, stopping=stopping, name=label)
        )
    return queries
