"""SQL front-end for FastFrame (the Figure 5 query language).

Parses the SQL subset the paper's evaluation queries are written in and
compiles it to executable :class:`~repro.fastframe.query.Query` objects,
inferring each query's stopping condition from how the aggregate is
consumed (HAVING → threshold side, ORDER BY … LIMIT → top-K separation,
ORDER BY → groups ordered; see :mod:`repro.sql.compiler`).

Quick use::

    from repro.sql import parse_query

    query = parse_query(
        "SELECT Origin FROM flights GROUP BY Origin "
        "HAVING AVG(DepDelay) < 0"
    )
    result = executor.execute(query)
"""

from repro.sql.ast import SelectStatement
from repro.sql.compiler import (
    SqlCompileError,
    compile_statement,
    parse_query,
    parse_statements,
)
from repro.sql.lexer import SqlSyntaxError, Token, TokenType, tokenize
from repro.sql.parser import parse, parse_script

__all__ = [
    "SelectStatement",
    "SqlCompileError",
    "SqlSyntaxError",
    "Token",
    "TokenType",
    "compile_statement",
    "parse",
    "parse_query",
    "parse_script",
    "parse_statements",
    "tokenize",
]
