"""Tokenizer for the FastFrame SQL subset (the Figure 5 query language).

The lexer recognizes exactly what the paper's nine queries (and obvious
variations) need: keywords, identifiers, single-quoted strings, numeric
literals, clock-time literals like ``1:50pm`` (F-q6 filters on
``DepTime > 1:50pm``; the flights data encodes times as HHMM numbers), and
comparison/arithmetic punctuation.

Tokens carry their source position so parse errors can point at the
offending character.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

__all__ = ["TokenType", "Token", "SqlSyntaxError", "tokenize", "KEYWORDS"]


class SqlSyntaxError(ValueError):
    """A lexing or parsing error, annotated with the source position."""

    def __init__(self, message: str, sql: str, position: int) -> None:
        pointer = " " * position + "^"
        super().__init__(f"{message}\n  {sql}\n  {pointer}")
        self.position = position


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCT = "punct"
    END = "end"


#: Reserved words (matched case-insensitively; stored upper-case).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "ASC", "DESC", "AND", "OR", "NOT", "IN", "AS", "BETWEEN",
        "AVG", "SUM", "COUNT", "MEDIAN", "PERCENTILE",
        "CASE", "WHEN", "THEN", "ELSE", "END",
    }
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``value`` is the normalized payload: upper-cased keyword text, raw
    identifier text, a float for numbers (time literals are pre-converted
    to HHMM), or the unquoted string body.
    """

    type: TokenType
    value: object
    position: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words


_TIME_RE = re.compile(r"(\d{1,2}):(\d{2})\s*(am|pm)?", re.IGNORECASE)
_NUMBER_RE = re.compile(r"(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?")
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
#: Multi-character operators first so ``<=`` is not lexed as ``<`` ``=``.
_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "*", "/")


def _parse_time(match: re.Match) -> float:
    """Clock literal → HHMM number (``1:50pm`` → 1350, ``10:50pm`` → 2250)."""
    hour, minute = int(match.group(1)), int(match.group(2))
    meridiem = (match.group(3) or "").lower()
    if minute >= 60:
        raise ValueError(f"invalid minutes in time literal {match.group(0)!r}")
    if meridiem:
        if not 1 <= hour <= 12:
            raise ValueError(f"invalid 12-hour time literal {match.group(0)!r}")
        hour = hour % 12 + (12 if meridiem == "pm" else 0)
    elif hour > 23:
        raise ValueError(f"invalid 24-hour time literal {match.group(0)!r}")
    return float(hour * 100 + minute)


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string; raises :class:`SqlSyntaxError` on bad input.

    The returned list always ends with a single END token.
    """
    tokens: list[Token] = []
    position = 0
    length = len(sql)
    while position < length:
        char = sql[position]
        if char.isspace():
            position += 1
            continue
        if char == "#" or sql.startswith("--", position):
            newline = sql.find("\n", position)
            position = length if newline < 0 else newline + 1
            continue
        time_match = _TIME_RE.match(sql, position)
        if time_match:
            try:
                value = _parse_time(time_match)
            except ValueError as exc:
                raise SqlSyntaxError(str(exc), sql, position) from None
            tokens.append(Token(TokenType.NUMBER, value, position))
            position = time_match.end()
            continue
        number_match = _NUMBER_RE.match(sql, position)
        if number_match:
            tokens.append(
                Token(TokenType.NUMBER, float(number_match.group(0)), position)
            )
            position = number_match.end()
            continue
        ident_match = _IDENT_RE.match(sql, position)
        if ident_match:
            text = ident_match.group(0)
            upper = text.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, upper, position))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, text, position))
            position = ident_match.end()
            continue
        if char == "'":
            end = position + 1
            body: list[str] = []
            while True:
                if end >= length:
                    raise SqlSyntaxError("unterminated string literal", sql, position)
                if sql[end] == "'":
                    if end + 1 < length and sql[end + 1] == "'":
                        body.append("'")  # doubled quote escape
                        end += 2
                        continue
                    break
                body.append(sql[end])
                end += 1
            tokens.append(Token(TokenType.STRING, "".join(body), position))
            position = end + 1
            continue
        for operator in _OPERATORS:
            if sql.startswith(operator, position):
                tokens.append(Token(TokenType.OPERATOR, operator, position))
                position += len(operator)
                break
        else:
            if char in "(),;":
                tokens.append(Token(TokenType.PUNCT, char, position))
                position += 1
            else:
                raise SqlSyntaxError(f"unexpected character {char!r}", sql, position)
    tokens.append(Token(TokenType.END, None, length))
    return tokens
