"""Abstract syntax tree for the FastFrame SQL subset.

These nodes mirror the shape of the paper's Figure 5 queries: a single
SELECT over one table with optional WHERE / GROUP BY / HAVING /
ORDER BY … LIMIT clauses, where exactly one aggregate (AVG, SUM, COUNT,
MEDIAN, or PERCENTILE)
appears — either in the select list, inside a CASE WHEN threshold test
(F-q4), in the HAVING comparison, or in the ORDER BY key.

The AST is deliberately dumb: all semantic checks (the aggregate is unique,
non-aggregated select columns appear in GROUP BY, …) live in
:mod:`repro.sql.compiler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SqlExpr",
    "ColumnRef",
    "NumberLiteral",
    "StringLiteral",
    "BinaryArith",
    "UnaryMinus",
    "AggregateCall",
    "Comparison",
    "InList",
    "Between",
    "BoolOp",
    "NotOp",
    "CaseWhen",
    "SelectItem",
    "OrderBy",
    "SelectStatement",
]


class SqlExpr:
    """Base class for every expression node."""


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A bare column reference."""

    name: str


@dataclass(frozen=True)
class NumberLiteral(SqlExpr):
    value: float


@dataclass(frozen=True)
class StringLiteral(SqlExpr):
    value: str


@dataclass(frozen=True)
class BinaryArith(SqlExpr):
    """Arithmetic over columns/literals inside an aggregate argument."""

    op: str  # one of + - * /
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class UnaryMinus(SqlExpr):
    operand: SqlExpr


@dataclass(frozen=True)
class AggregateCall(SqlExpr):
    """``AVG(expr)``, ``SUM(expr)``, ``COUNT(*)``, ``MEDIAN(expr)``, or
    ``PERCENTILE(expr, p)``.

    ``argument`` is None exactly for ``COUNT(*)``; ``percentile`` is set
    exactly for PERCENTILE (a literal in (0, 1), validated at parse time).
    """

    function: str  # AVG | SUM | COUNT | MEDIAN | PERCENTILE
    argument: SqlExpr | None
    percentile: float | None = None


@dataclass(frozen=True)
class Comparison(SqlExpr):
    """``left <op> right`` with op in {=, !=, <, <=, >, >=}."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class InList(SqlExpr):
    """``column IN (value, …)``."""

    column: ColumnRef
    values: tuple


@dataclass(frozen=True)
class Between(SqlExpr):
    """``column BETWEEN lo AND hi`` (inclusive both ends, standard SQL)."""

    column: ColumnRef
    low: SqlExpr
    high: SqlExpr


@dataclass(frozen=True)
class BoolOp(SqlExpr):
    """AND/OR over two or more conditions."""

    op: str  # AND | OR
    parts: tuple


@dataclass(frozen=True)
class NotOp(SqlExpr):
    operand: SqlExpr


@dataclass(frozen=True)
class CaseWhen(SqlExpr):
    """``CASE WHEN condition THEN value ELSE value END`` (F-q4's shape)."""

    condition: SqlExpr
    then_value: SqlExpr
    else_value: SqlExpr


@dataclass(frozen=True)
class SelectItem(SqlExpr):
    """One select-list entry with an optional ``AS`` alias."""

    expression: SqlExpr
    alias: str | None = None


@dataclass(frozen=True)
class OrderBy(SqlExpr):
    """``ORDER BY key [ASC|DESC]``."""

    key: SqlExpr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement(SqlExpr):
    """A full parsed query."""

    select: tuple[SelectItem, ...]
    table: str
    where: SqlExpr | None = None
    group_by: tuple[str, ...] = field(default=())
    having: SqlExpr | None = None
    order_by: OrderBy | None = None
    limit: int | None = None
