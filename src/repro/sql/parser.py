"""Recursive-descent parser for the FastFrame SQL subset.

Grammar (terminals upper-case; ``[x]`` optional, ``{x}`` repeated)::

    script      := statement {; statement}
    statement   := SELECT select_list FROM identifier
                   [WHERE condition]
                   [GROUP BY identifier {, identifier}]
                   [HAVING condition]
                   [ORDER BY value_expr [ASC | DESC]]
                   [LIMIT integer] [;]
    select_list := select_item {, select_item}
    select_item := value_expr [AS identifier]
    value_expr  := term {(+ | -) term}
    term        := factor {(* | /) factor}
    factor      := - factor | ( value_expr ) | aggregate | case_expr
                   | identifier | number | string
    aggregate   := (AVG | SUM | MEDIAN) ( value_expr )
                   | COUNT ( * | value_expr )
                   | PERCENTILE ( value_expr , number )
    case_expr   := CASE WHEN condition THEN value_expr
                   ELSE value_expr END
    condition   := or_cond
    or_cond     := and_cond {OR and_cond}
    and_cond    := not_cond {AND not_cond}
    not_cond    := NOT not_cond | predicate
    predicate   := ( condition )
                   | value_expr (= | != | <> | < | <= | > | >=) value_expr
                   | identifier IN ( literal {, literal} )

This covers all nine Figure 5 queries verbatim (including F-q4's CASE WHEN
and F-q6's ``1:50pm`` time literal) plus arithmetic aggregate arguments for
the Appendix B expression queries.
"""

from __future__ import annotations

from repro.sql.ast import (
    AggregateCall,
    Between,
    BinaryArith,
    BoolOp,
    CaseWhen,
    ColumnRef,
    Comparison,
    InList,
    NotOp,
    NumberLiteral,
    OrderBy,
    SelectItem,
    SelectStatement,
    StringLiteral,
    UnaryMinus,
)
from repro.sql.lexer import SqlSyntaxError, Token, TokenType, tokenize

__all__ = ["parse", "parse_script"]

_COMPARISON_OPS = {"=", "!=", "<>", "<", "<=", ">", ">="}


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, sql: str) -> None:
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0
        self._terminated = False  # last statement ended with ';'

    # -- cursor helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, self.sql, self.current.position)

    def accept_keyword(self, *words: str) -> bool:
        if self.current.is_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word}")

    def accept_punct(self, char: str) -> bool:
        token = self.current
        if token.type is TokenType.PUNCT and token.value == char:
            self.advance()
            return True
        return False

    def expect_punct(self, char: str) -> None:
        if not self.accept_punct(char):
            raise self.error(f"expected {char!r}")

    def accept_operator(self, *ops: str) -> str | None:
        token = self.current
        if token.type is TokenType.OPERATOR and token.value in ops:
            self.advance()
            return str(token.value)
        return None

    def expect_identifier(self, what: str) -> str:
        token = self.current
        if token.type is not TokenType.IDENTIFIER:
            raise self.error(f"expected {what}")
        self.advance()
        return str(token.value)

    # -- grammar productions --------------------------------------------

    def parse_statement(self) -> SelectStatement:
        statement = self.parse_select()
        if self.current.type is not TokenType.END:
            raise self.error("unexpected trailing input")
        return statement

    def parse_script(self) -> list[SelectStatement]:
        """A ``;``-separated sequence of SELECT statements (≥ 1)."""
        statements = [self.parse_select()]
        while self.current.type is not TokenType.END:
            if not self._terminated or not self.current.is_keyword("SELECT"):
                raise self.error(
                    "unexpected trailing input (statements must be "
                    "separated by ';')"
                )
            statements.append(self.parse_select())
        return statements

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("SELECT")
        select = [self.parse_select_item()]
        while self.accept_punct(","):
            select.append(self.parse_select_item())
        self.expect_keyword("FROM")
        table = self.expect_identifier("table name")

        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_condition()

        group_by: tuple[str, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            columns = [self.expect_identifier("GROUP BY column")]
            while self.accept_punct(","):
                columns.append(self.expect_identifier("GROUP BY column"))
            group_by = tuple(columns)

        having = None
        if self.accept_keyword("HAVING"):
            having = self.parse_condition()

        order_by = None
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            key = self.parse_value_expr()
            ascending = True
            if self.accept_keyword("DESC"):
                ascending = False
            else:
                self.accept_keyword("ASC")
            order_by = OrderBy(key=key, ascending=ascending)

        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.current
            if token.type is not TokenType.NUMBER or token.value != int(token.value):
                raise self.error("expected an integer LIMIT")
            if int(token.value) < 1:
                # Reject here rather than deep in the compiler: "LIMIT 0"
                # asks for an empty top-k, which the stopping conditions
                # cannot represent.
                raise self.error(
                    f"LIMIT must be a positive integer, got {int(token.value)}"
                )
            limit = int(token.value)
            self.advance()

        self._terminated = self.accept_punct(";")
        return SelectStatement(
            select=tuple(select),
            table=table,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_value_expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_identifier("alias")
        return SelectItem(expression=expression, alias=alias)

    # value expressions: + - over * / over factors

    def parse_value_expr(self):
        node = self.parse_term()
        while True:
            op = self.accept_operator("+", "-")
            if op is None:
                return node
            node = BinaryArith(op, node, self.parse_term())

    def parse_term(self):
        node = self.parse_factor()
        while True:
            op = self.accept_operator("*", "/")
            if op is None:
                return node
            node = BinaryArith(op, node, self.parse_factor())

    def parse_factor(self):
        if self.accept_operator("-"):
            operand = self.parse_factor()
            if isinstance(operand, NumberLiteral):
                # Fold negated literals so "-5" is a literal everywhere a
                # literal is expected (WHERE thresholds, HAVING, LIMIT-free
                # contexts), not a unary expression.
                return NumberLiteral(-operand.value)
            return UnaryMinus(operand)
        token = self.current
        if token.type is TokenType.PUNCT and token.value == "(":
            self.advance()
            node = self.parse_value_expr()
            self.expect_punct(")")
            return node
        if token.is_keyword("AVG", "SUM", "COUNT", "MEDIAN", "PERCENTILE"):
            return self.parse_aggregate()
        if token.is_keyword("CASE"):
            return self.parse_case()
        if token.type is TokenType.IDENTIFIER:
            self.advance()
            return ColumnRef(str(token.value))
        if token.type is TokenType.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return StringLiteral(str(token.value))
        raise self.error("expected an expression")

    def parse_aggregate(self) -> AggregateCall:
        function = str(self.advance().value)
        self.expect_punct("(")
        if function == "COUNT" and self.accept_operator("*"):
            self.expect_punct(")")
            return AggregateCall(function, None)
        argument = self.parse_value_expr()
        percentile = None
        if function == "PERCENTILE":
            self.expect_punct(",")
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise self.error("expected a numeric percentile level")
            if not 0.0 < float(token.value) < 1.0:
                raise self.error(
                    f"percentile level must be in (0, 1), got {token.value:g}"
                )
            percentile = float(token.value)
            self.advance()
        self.expect_punct(")")
        return AggregateCall(function, argument, percentile)

    def parse_case(self) -> CaseWhen:
        self.expect_keyword("CASE")
        self.expect_keyword("WHEN")
        condition = self.parse_condition()
        self.expect_keyword("THEN")
        then_value = self.parse_value_expr()
        self.expect_keyword("ELSE")
        else_value = self.parse_value_expr()
        self.expect_keyword("END")
        return CaseWhen(condition, then_value, else_value)

    # conditions: OR over AND over NOT over predicates

    def parse_condition(self):
        parts = [self.parse_and_condition()]
        while self.accept_keyword("OR"):
            parts.append(self.parse_and_condition())
        return parts[0] if len(parts) == 1 else BoolOp("OR", tuple(parts))

    def parse_and_condition(self):
        parts = [self.parse_not_condition()]
        while self.accept_keyword("AND"):
            parts.append(self.parse_not_condition())
        return parts[0] if len(parts) == 1 else BoolOp("AND", tuple(parts))

    def parse_not_condition(self):
        if self.accept_keyword("NOT"):
            return NotOp(self.parse_not_condition())
        return self.parse_predicate()

    def parse_predicate(self):
        # A parenthesis here is ambiguous: it may open a nested condition
        # ("(a = 1 OR b = 2)") or a parenthesized value expression
        # ("(x + y) > 0").  Try the condition first and fall back.
        if self.current.type is TokenType.PUNCT and self.current.value == "(":
            checkpoint = self.index
            self.advance()
            try:
                inner = self.parse_condition()
                self.expect_punct(")")
                return inner
            except SqlSyntaxError:
                self.index = checkpoint
        left = self.parse_value_expr()
        if (
            isinstance(left, ColumnRef)
            and self.accept_keyword("IN")
        ):
            self.expect_punct("(")
            values = [self.parse_literal()]
            while self.accept_punct(","):
                values.append(self.parse_literal())
            self.expect_punct(")")
            return InList(column=left, values=tuple(values))
        if isinstance(left, ColumnRef) and self.accept_keyword("BETWEEN"):
            low = self.parse_value_expr()
            self.expect_keyword("AND")
            high = self.parse_value_expr()
            return Between(column=left, low=low, high=high)
        op = self.accept_operator(*_COMPARISON_OPS)
        if op is None:
            raise self.error("expected a comparison operator or IN")
        right = self.parse_value_expr()
        return Comparison(op=op, left=left, right=right)

    def parse_literal(self):
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return StringLiteral(str(token.value))
        raise self.error("expected a literal")


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement; raises :class:`SqlSyntaxError` on errors."""
    return _Parser(sql).parse_statement()


def parse_script(sql: str) -> list[SelectStatement]:
    """Parse a ``;``-separated multi-statement script (the dashboard shape).

    Returns one :class:`~repro.sql.ast.SelectStatement` per statement;
    :meth:`repro.api.Connection.sql` compiles each into a lazy query
    handle so the whole script can run off one shared scan.
    """
    return _Parser(sql).parse_script()
