"""Monte-Carlo coverage experiment: SSI vs asymptotic bounders (§1).

The paper's central motivation is that asymptotic CIs (CLT, bootstrap)
"provide no real guarantees for any given finite instance, potentially
leading to failures downstream" — subset and superset errors [52] — while
SSI bounders fail with probability below δ at *every* sample size.

This experiment makes that claim measurable.  For a chosen dataset and a
grid of sample sizes it repeatedly draws without-replacement samples,
computes each bounder's (1 − δ) CI, and records:

* **miss rate** — the fraction of trials whose CI fails to enclose the true
  AVG (should be < δ for SSI bounders; for asymptotic bounders it can be
  orders of magnitude larger on skewed data at small m);
* **mean width** — the compactness the asymptotic bounders buy with those
  failures.

The canonical adversarial dataset is :func:`skewed_dataset`: almost all
mass at 0 with a few large outliers, the regime where the CLT's
Berry-Esseen constants (third absolute normalized moment, §1 footnote 1)
are enormous.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.bounders.registry import get_bounder

__all__ = [
    "CoverageCell",
    "skewed_dataset",
    "measure_coverage",
    "run_coverage_experiment",
    "DEFAULT_COVERAGE_BOUNDERS",
]

#: Bounders compared by default: two SSI (one conservative, one
#: distribution-sensitive) against the two asymptotic families.
DEFAULT_COVERAGE_BOUNDERS = ("hoeffding", "bernstein+rt", "clt", "bootstrap")


@dataclass
class CoverageCell:
    """One (bounder × sample size) cell of the coverage experiment."""

    bounder: str
    sample_size: int
    trials: int
    misses: int
    mean_width: float
    ssi: bool

    @property
    def miss_rate(self) -> float:
        """Empirical probability the CI failed to enclose the true AVG."""
        return self.misses / self.trials


def skewed_dataset(
    n: int = 2_000,
    outlier_fraction: float = 0.005,
    outlier_value: float = 1_000.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """A heavy-right-skew dataset on which CLT intervals undercover.

    ``(1 − f)·n`` points are small Exponential(1) noise and ``f·n`` points
    sit at ``outlier_value`` — the Figure 2 salary regime: catalog range
    dominated by a handful of outliers, data mass near the bottom.
    """
    rng = rng or np.random.default_rng(0)
    if not 0.0 < outlier_fraction < 1.0:
        raise ValueError(f"outlier_fraction must be in (0, 1), got {outlier_fraction}")
    num_outliers = max(int(round(n * outlier_fraction)), 1)
    body = rng.exponential(1.0, size=n - num_outliers)
    data = np.concatenate([body, np.full(num_outliers, outlier_value)])
    rng.shuffle(data)
    return data


def measure_coverage(
    bounder: ErrorBounder,
    data: np.ndarray,
    sample_size: int,
    delta: float,
    trials: int,
    rng: np.random.Generator,
    bounds: tuple[float, float] | None = None,
) -> CoverageCell:
    """Empirical miss rate and mean CI width for one bounder.

    Each trial draws a fresh without-replacement sample of ``sample_size``
    rows, folds it into a fresh bounder state, and checks whether the
    (1 − δ) CI encloses the exact mean.  Range bounds default to the data's
    own min/max (the most favourable catalog for every bounder).
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.size
    if not 1 <= sample_size <= n:
        raise ValueError(f"sample_size must be in [1, {n}], got {sample_size}")
    a, b = bounds if bounds is not None else (float(data.min()), float(data.max()))
    truth = float(data.mean())
    misses = 0
    widths = np.empty(trials)
    for trial in range(trials):
        sample = rng.choice(data, size=sample_size, replace=False)
        state = bounder.init_state()
        bounder.update_batch(state, sample)
        interval = bounder.confidence_interval(state, a, b, n, delta)
        if not (interval.lo <= truth <= interval.hi):
            misses += 1
        widths[trial] = interval.width
    return CoverageCell(
        bounder=bounder.name,
        sample_size=sample_size,
        trials=trials,
        misses=misses,
        mean_width=float(widths.mean()),
        ssi=bounder.ssi,
    )


def run_coverage_experiment(
    bounder_names: tuple[str, ...] = DEFAULT_COVERAGE_BOUNDERS,
    sample_sizes: tuple[int, ...] = (20, 50, 100, 300),
    delta: float = 0.05,
    trials: int = 400,
    data: np.ndarray | None = None,
    seed: int = 0,
) -> list[CoverageCell]:
    """The full grid: every bounder at every sample size on one dataset.

    ``delta`` defaults to 0.05 rather than the paper's 1e-15 so that the
    Monte-Carlo experiment can resolve violations with a feasible number of
    trials: an SSI bounder must stay below 5% misses, and on the skewed
    dataset the CLT typically exceeds it severalfold at small m.  SSI
    guarantees hold for every δ, so a violation at δ = 0.05 already
    disqualifies a bounder from with-guarantees use.
    """
    if data is None:
        data = skewed_dataset(rng=np.random.default_rng(seed))
    cells = []
    for name in bounder_names:
        bounder = get_bounder(name)
        rng = np.random.default_rng((seed, 1))
        for m in sample_sizes:
            cells.append(
                measure_coverage(bounder, data, m, delta, trials, rng)
            )
    return cells
