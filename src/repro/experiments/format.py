"""Plain-text rendering of experiment results in the paper's layouts."""

from __future__ import annotations

from repro.experiments.runner import QueryMeasurement
from repro.experiments.sweeps import SweepResult

__all__ = ["format_table5", "format_table6", "format_sweep", "format_speedup_cell"]


def format_speedup_cell(speedup: float, seconds: float) -> str:
    """The paper's Table 5 cell format: ``12.34x (0.56)``."""
    return f"{speedup:8.2f}x ({seconds:.3f})"


def _format_speedup_table(rows: list[QueryMeasurement], baseline_label: str) -> str:
    approaches = [cell.approach for cell in rows[0].approaches] if rows else []
    header = (
        f"{'Query':10s} | {baseline_label + ' (s)':>12s} | "
        + " | ".join(f"{name:>22s}" for name in approaches)
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = " | ".join(
            format_speedup_cell(cell.speedup_wall, cell.wall_time_s)
            + ("" if cell.correct else " !WRONG")
            for cell in row.approaches
        )
        lines.append(f"{row.query_name:10s} | {row.baseline.wall_time_s:12.3f} | {cells}")
    lines.append("")
    lines.append("blocks-fetched speedups (CPU-independent metric, §5.3):")
    for row in rows:
        cells = " | ".join(
            f"{cell.approach}: {cell.speedup_blocks:7.2f}x" for cell in row.approaches
        )
        lines.append(f"  {row.query_name:10s} {cells}")
    return "\n".join(lines)


def format_table5(rows: list[QueryMeasurement]) -> str:
    """Render Table 5: speedups over Exact per error bounder."""
    title = "Table 5: Avg speedup over Exact (raw time in (s))"
    return title + "\n" + _format_speedup_table(rows, "Exact")


def format_table6(rows: list[QueryMeasurement]) -> str:
    """Render Table 6: speedups over Scan per sampling strategy."""
    title = "Table 6: Avg speedup over Scan, Bernstein+RT (raw time in (s))"
    return title + "\n" + _format_speedup_table(rows, "Scan")


def format_sweep(result: SweepResult, width: int = 12) -> str:
    """Render a figure sweep as an x-by-series table."""
    lines = [f"{result.figure}: {result.y_label} vs {result.x_label}"]
    header = f"{result.x_label[:width]:>{width}s} | " + " | ".join(
        f"{series.approach:>14s}" for series in result.series
    )
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(result.x_values):
        cells = " | ".join(
            f"{series.values[i]:14.6g}" for series in result.series
        )
        lines.append(f"{x:{width}.6g} | {cells}")
    for key, value in result.annotations.items():
        lines.append(f"  [{key}]: {value}")
    return "\n".join(lines)
