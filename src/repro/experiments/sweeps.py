"""Parameter sweeps regenerating the paper's figures (6, 7a, 7b, 8).

Each sweep varies one template parameter of a flights query (Table 4's
"Parameters Varied" column) across the evaluated bounders and collects the
series the corresponding figure plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bounders.registry import EVALUATED_BOUNDERS
from repro.fastframe.exact import ExactExecutor
from repro.fastframe.scramble import Scramble
from repro.stats.delta import DEFAULT_DELTA
from repro.stopping.conditions import relative_error
from repro.experiments.queries import fq1, fq2, fq3
from repro.experiments.runner import run_query_once

__all__ = [
    "SweepSeries",
    "SweepResult",
    "airports_by_selectivity",
    "sweep_fig6_selectivity",
    "sweep_fig7a_relative_error",
    "sweep_fig7b_having_threshold",
    "sweep_fig8_min_dep_time",
]


@dataclass
class SweepSeries:
    """One plotted line: an approach and its y-values over the sweep."""

    approach: str
    values: list[float] = field(default_factory=list)


@dataclass
class SweepResult:
    """A figure's data: the x-axis and one series per approach."""

    figure: str
    x_label: str
    y_label: str
    x_values: list[float]
    series: list[SweepSeries]
    annotations: dict = field(default_factory=dict)

    def series_by_name(self, approach: str) -> SweepSeries:
        for series in self.series:
            if series.approach == approach:
                return series
        raise KeyError(f"no series {approach!r} in {self.figure}")


def airports_by_selectivity(
    scramble: Scramble, count: int = 8
) -> list[tuple[str, float]]:
    """(airport, selectivity) pairs spanning the selectivity spectrum.

    F-q1's Figure 6 sweep varies the Origin filter value; with Zipf
    airport popularity this spans orders of magnitude of selectivity.
    Returns ``count`` airports evenly spaced in popularity rank order.
    """
    categorical = scramble.table.categorical("Origin")
    counts = np.bincount(categorical.codes, minlength=categorical.cardinality)
    ranked = np.argsort(counts)[::-1]
    positions = np.linspace(0, categorical.cardinality - 1, count).astype(int)
    return [
        (categorical.dictionary[int(ranked[pos])], counts[ranked[pos]] / scramble.num_rows)
        for pos in positions
        if counts[ranked[pos]] > 0
    ]


def sweep_fig6_selectivity(
    scramble: Scramble,
    epsilon: float = 0.5,
    bounders: tuple[str, ...] = EVALUATED_BOUNDERS,
    num_airports: int = 8,
    delta: float = DEFAULT_DELTA,
    seed: int = 0,
) -> tuple[SweepResult, SweepResult]:
    """Figure 6: wall time and blocks fetched vs. F-q1 filter selectivity.

    Returns ``(wall_time_result, blocks_fetched_result)`` over airports of
    varying selectivity (most→least popular).
    """
    airports = airports_by_selectivity(scramble, num_airports)
    x_values = [selectivity for _, selectivity in airports]
    time_series = [SweepSeries(name) for name in bounders]
    block_series = [SweepSeries(name) for name in bounders]
    for airport, _ in airports:
        query = fq1(airport=airport, epsilon=epsilon)
        for t_series, b_series in zip(time_series, block_series):
            result = run_query_once(
                scramble, query, t_series.approach, delta=delta, seed=seed
            )
            t_series.values.append(result.metrics.wall_time_s)
            b_series.values.append(float(result.metrics.blocks_fetched))
    return (
        SweepResult(
            figure="Figure 6 (wall time)",
            x_label="query selectivity",
            y_label="wall time (s)",
            x_values=x_values,
            series=time_series,
        ),
        SweepResult(
            figure="Figure 6 (blocks fetched)",
            x_label="query selectivity",
            y_label="blocks fetched",
            x_values=x_values,
            series=block_series,
        ),
    )


def sweep_fig7a_relative_error(
    scramble: Scramble,
    epsilons: tuple[float, ...] = (2.0, 1.5, 1.0, 0.75, 0.5, 0.25, 0.1, 0.05),
    bounders: tuple[str, ...] = EVALUATED_BOUNDERS,
    airport: str = "ORD",
    delta: float = DEFAULT_DELTA,
    seed: int = 0,
) -> SweepResult:
    """Figure 7(a): requested max relative error vs. actual relative error.

    The actual error of each run's point estimate is measured against the
    Exact aggregate; the paper's correctness claim is that it always falls
    below the requested bound.
    """
    exact = ExactExecutor(scramble)
    truth = exact.execute(fq1(airport=airport)).scalar().estimate
    series = [SweepSeries(name) for name in bounders]
    for epsilon in epsilons:
        query = fq1(airport=airport, epsilon=epsilon)
        for line in series:
            result = run_query_once(scramble, query, line.approach, delta=delta, seed=seed)
            estimate = result.scalar().estimate
            line.values.append(abs(estimate - truth) / abs(truth))
    return SweepResult(
        figure="Figure 7(a)",
        x_label="max relative error eps (requested)",
        y_label="actual relative error",
        x_values=list(epsilons),
        series=series,
        annotations={"truth": truth},
    )


def sweep_fig7b_having_threshold(
    scramble: Scramble,
    thresholds: tuple[float, ...] | None = None,
    bounders: tuple[str, ...] = EVALUATED_BOUNDERS,
    delta: float = DEFAULT_DELTA,
    seed: int = 0,
) -> SweepResult:
    """Figure 7(b): blocks fetched vs. F-q2's HAVING threshold.

    The annotation carries each airline's exact aggregate (the horizontal
    bar overlay in the paper's figure): thresholds near an aggregate
    require far more data to certify the group's side.
    """
    exact = ExactExecutor(scramble)
    aggregates = {
        key[0]: group.estimate for key, group in exact.execute(fq2()).groups.items()
    }
    if thresholds is None:
        lo, hi = min(aggregates.values()), max(aggregates.values())
        thresholds = tuple(np.round(np.linspace(0.0, hi + 1.0, 13), 2))
    series = [SweepSeries(name) for name in bounders]
    for threshold in thresholds:
        query = fq2(thresh=float(threshold))
        for line in series:
            result = run_query_once(scramble, query, line.approach, delta=delta, seed=seed)
            line.values.append(float(result.metrics.blocks_fetched))
    return SweepResult(
        figure="Figure 7(b)",
        x_label="HAVING threshold for AVG delay",
        y_label="blocks fetched",
        x_values=list(map(float, thresholds)),
        series=series,
        annotations={"group_aggregates": aggregates},
    )


def sweep_fig8_min_dep_time(
    scramble: Scramble,
    min_dep_times: tuple[float, ...] = (1000, 1250, 1500, 1750, 2000, 2250),
    bounders: tuple[str, ...] = EVALUATED_BOUNDERS,
    delta: float = DEFAULT_DELTA,
    seed: int = 0,
) -> SweepResult:
    """Figure 8: blocks fetched vs. F-q3's minimum departure time.

    Later departure-time filters both sparsify the airline groups and
    spread their mean delays apart, so blocks fetched trends downward
    while the RangeTrim advantage over the plain bounders grows.
    """
    series = [SweepSeries(name) for name in bounders]
    for min_dep_time in min_dep_times:
        query = fq3(min_dep_time=float(min_dep_time))
        for line in series:
            result = run_query_once(scramble, query, line.approach, delta=delta, seed=seed)
            line.values.append(float(result.metrics.blocks_fetched))
    return SweepResult(
        figure="Figure 8",
        x_label="minimum departure time",
        y_label="blocks fetched",
        x_values=list(map(float, min_dep_times)),
        series=series,
    )
