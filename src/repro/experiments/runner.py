"""Experiment runners for the paper's tables (Table 5 and Table 6).

Each runner executes the relevant (query × approach) grid against a
flights scramble, averages over repetitions (the paper reports 3-run
averages, §5.2), verifies result correctness against the Exact baseline,
and returns structured rows ready for
:mod:`repro.experiments.format` to render in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bounders.registry import EVALUATED_BOUNDERS, get_bounder
from repro.fastframe.exact import ExactExecutor
from repro.fastframe.executor import ApproximateExecutor
from repro.fastframe.query import Query, QueryResult
from repro.fastframe.scan import EVALUATED_STRATEGIES, get_strategy
from repro.fastframe.scramble import Scramble
from repro.stats.delta import DEFAULT_DELTA
from repro.stopping.conditions import (
    GroupsOrdered,
    RelativeAccuracy,
    ThresholdSide,
    TopKSeparated,
)
from repro.experiments.queries import ALL_QUERIES, GROUP_BY_QUERIES, build_query

__all__ = [
    "warm_metadata",
    "ApproachMeasurement",
    "QueryMeasurement",
    "run_query_once",
    "check_correctness",
    "run_table5",
    "run_table6",
]


@dataclass
class ApproachMeasurement:
    """Averaged metrics for one (query, approach) cell."""

    approach: str
    wall_time_s: float
    rows_read: float
    blocks_fetched: float
    correct: bool
    speedup_wall: float = float("nan")
    speedup_blocks: float = float("nan")


@dataclass
class QueryMeasurement:
    """One row of Table 5 / Table 6: a query and its per-approach cells."""

    query_name: str
    baseline: ApproachMeasurement
    approaches: list[ApproachMeasurement] = field(default_factory=list)


def warm_metadata(scramble: Scramble, query: Query) -> None:
    """Pre-build the load-time metadata a query needs (bitmaps, domains).

    Bitmap indexes and group domains are load-time artifacts in a real
    deployment (§4); building them lazily inside the first timed run would
    misattribute their cost to that run's wall time.
    """
    executor = ApproximateExecutor(scramble, get_bounder("hoeffding"))
    for column in query.group_by:
        executor.index_for(column)
    for column in query.predicate.categorical_requirements(scramble.table):
        executor.index_for(column)
    executor._group_domain(query.group_by)


def run_query_once(
    scramble: Scramble,
    query: Query,
    bounder_name: str,
    strategy_name: str = "scan",
    delta: float = DEFAULT_DELTA,
    seed: int = 0,
) -> QueryResult:
    """Execute one approximate run with a fresh executor."""
    executor = ApproximateExecutor(
        scramble,
        get_bounder(bounder_name),
        strategy=get_strategy(strategy_name),
        delta=delta,
        rng=np.random.default_rng(seed),
    )
    return executor.execute(query)


def check_correctness(
    query: Query, approx: QueryResult, exact: QueryResult, epsilon_slack: float = 0.0
) -> bool:
    """Does the approximate answer match the exact one for this query?

    The notion of "answer" follows each query's downstream semantics
    (§5.3's correctness metric):

    * threshold queries — the certified above/below partitions match;
    * top-/bottom-K queries — the selected K keys match (as sets);
    * groups-ordered queries — the full ordering matches;
    * accuracy-contract queries — every group's interval encloses the
      exact value (within ``epsilon_slack`` for exhausted fp ties).
    """
    stopping = query.stopping
    if isinstance(stopping, ThresholdSide):
        v = stopping.threshold
        exact_above = {k for k, g in exact.groups.items() if g.estimate > v}
        # Undetermined groups (interval straddling v) count as incorrect
        # only if the scan terminated claiming success; compare certified
        # sides directly.
        return (
            approx.keys_above(v) == exact_above
            and approx.keys_below(v)
            == {k for k, g in exact.groups.items() if g.estimate < v}
        )
    if isinstance(stopping, TopKSeparated):
        return set(approx.top_k(stopping.k, stopping.largest)) == set(
            exact.top_k(stopping.k, stopping.largest)
        )
    if isinstance(stopping, GroupsOrdered):
        return approx.ordering() == exact.ordering()
    if isinstance(stopping, RelativeAccuracy):
        for key, exact_group in exact.groups.items():
            if key not in approx.groups:
                return False
            interval = approx.groups[key].interval
            slack = epsilon_slack * max(1.0, abs(exact_group.estimate))
            if not (
                interval.lo - slack <= exact_group.estimate <= interval.hi + slack
            ):
                return False
        return True
    # Fallback: every exact value enclosed by its interval.
    return all(
        key in approx.groups
        and approx.groups[key].interval.lo - 1e-9
        <= group.estimate
        <= approx.groups[key].interval.hi + 1e-9
        for key, group in exact.groups.items()
    )


def _average(
    scramble: Scramble,
    query: Query,
    exact_result: QueryResult,
    bounder_name: str,
    strategy_name: str,
    reps: int,
    delta: float,
    label: str,
) -> ApproachMeasurement:
    times, rows, blocks = [], [], []
    correct = True
    for rep in range(reps):
        result = run_query_once(
            scramble, query, bounder_name, strategy_name, delta=delta, seed=rep
        )
        times.append(result.metrics.wall_time_s)
        rows.append(result.metrics.rows_read)
        blocks.append(result.metrics.blocks_fetched)
        correct = correct and check_correctness(
            query, result, exact_result, epsilon_slack=1e-9
        )
    return ApproachMeasurement(
        approach=label,
        wall_time_s=float(np.mean(times)),
        rows_read=float(np.mean(rows)),
        blocks_fetched=float(np.mean(blocks)),
        correct=correct,
    )


def run_table5(
    scramble: Scramble,
    query_names: tuple[str, ...] | None = None,
    bounders: tuple[str, ...] = EVALUATED_BOUNDERS,
    reps: int = 3,
    delta: float = DEFAULT_DELTA,
) -> list[QueryMeasurement]:
    """Table 5: per-query speedups of each error bounder over Exact.

    All approximate runs use the Scan strategy, isolating the error
    bounder's effect (the paper's §5.4.1 ablation).
    """
    query_names = query_names or tuple(ALL_QUERIES)
    exact = ExactExecutor(scramble)
    measurements = []
    for name in query_names:
        query = build_query(name)
        warm_metadata(scramble, query)
        exact_result = exact.execute(query)
        baseline = ApproachMeasurement(
            approach="Exact",
            wall_time_s=exact_result.metrics.wall_time_s,
            rows_read=exact_result.metrics.rows_read,
            blocks_fetched=exact_result.metrics.blocks_fetched,
            correct=True,
        )
        row = QueryMeasurement(query_name=name, baseline=baseline)
        for bounder_name in bounders:
            cell = _average(
                scramble, query, exact_result, bounder_name, "scan", reps, delta,
                label=get_bounder(bounder_name).name,
            )
            cell.speedup_wall = baseline.wall_time_s / max(cell.wall_time_s, 1e-12)
            cell.speedup_blocks = baseline.blocks_fetched / max(cell.blocks_fetched, 1e-12)
            row.approaches.append(cell)
        measurements.append(row)
    return measurements


def run_table6(
    scramble: Scramble,
    query_names: tuple[str, ...] = GROUP_BY_QUERIES,
    strategies: tuple[str, ...] = EVALUATED_STRATEGIES,
    bounder_name: str = "bernstein+rt",
    reps: int = 3,
    delta: float = DEFAULT_DELTA,
) -> list[QueryMeasurement]:
    """Table 6: sampling-strategy ablation on GROUP BY queries.

    All runs use the best error bounder (Bernstein+RT, as in the paper);
    the baseline of each row is the Scan strategy.
    """
    exact = ExactExecutor(scramble)
    measurements = []
    for name in query_names:
        query = build_query(name)
        warm_metadata(scramble, query)
        exact_result = exact.execute(query)
        baseline = _average(
            scramble, query, exact_result, bounder_name, "scan", reps, delta,
            label="Scan",
        )
        row = QueryMeasurement(query_name=name, baseline=baseline)
        for strategy_name in strategies:
            if strategy_name == "scan":
                continue
            cell = _average(
                scramble, query, exact_result, bounder_name, strategy_name,
                reps, delta, label=get_strategy(strategy_name).name,
            )
            cell.speedup_wall = baseline.wall_time_s / max(cell.wall_time_s, 1e-12)
            cell.speedup_blocks = baseline.blocks_fetched / max(cell.blocks_fetched, 1e-12)
            row.approaches.append(cell)
        measurements.append(row)
    return measurements
