"""The nine Flights queries F-q1..F-q9 (Figure 5 / Table 4).

Each builder returns a :class:`~repro.fastframe.query.Query` wired to the
stopping condition Table 4 prescribes.  Template parameters (shown in blue
in the paper) are keyword arguments with the paper's defaults:

========  ===========================================================
F-q1      AVG delay for ``$airport``; stop at relative accuracy ε
F-q2      airlines with AVG delay above ``$thresh`` (HAVING >)
F-q3      2 airlines with min AVG delay after ``$min_dep_time``
F-q4      whether ORD's AVG delay exceeds 10 (threshold side)
F-q5      airports with negative AVG delay (HAVING <)
F-q6      5 worst (DayOfWeek, Origin) pairs for afternoon delays
F-q7      AVG delay by day of week for airline HP (groups ordered)
F-q8      origin airport with highest AVG delay (top-1)
F-q9      airline with maximum AVG delay (top-1)
========  ===========================================================
"""

from __future__ import annotations

from repro.fastframe.predicate import Compare, Eq
from repro.fastframe.query import AggregateFunction, Query
from repro.stopping.conditions import (
    GroupsOrdered,
    RelativeAccuracy,
    ThresholdSide,
    TopKSeparated,
)

__all__ = [
    "fq1",
    "fq2",
    "fq3",
    "fq4",
    "fq5",
    "fq6",
    "fq7",
    "fq8",
    "fq9",
    "ALL_QUERIES",
    "GROUP_BY_QUERIES",
    "build_query",
]


def fq1(airport: str = "ORD", epsilon: float = 0.5) -> Query:
    """F-q1: ``SELECT AVG(DepDelay) FROM flights WHERE Origin = $airport``.

    Stopping condition Ì (sufficient relative accuracy, Table 4).
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        RelativeAccuracy(epsilon),
        predicate=Eq("Origin", airport),
        name="F-q1",
    )


def fq2(thresh: float = 0.0) -> Query:
    """F-q2: airlines ``HAVING AVG(DepDelay) > $thresh``.

    Stopping condition Í (threshold side determined per group).
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        ThresholdSide(thresh),
        group_by=("Airline",),
        name="F-q2",
    )


def fq3(min_dep_time: float = 2250.0) -> Query:
    """F-q3: two airlines with min AVG delay after ``$min_dep_time``.

    ``ORDER BY AVG(DepDelay) ASC LIMIT 2``; stopping condition Î with the
    bottom 2 separated.  The paper's default parameter is 10:50pm (2250).
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        TopKSeparated(2, largest=False),
        predicate=Compare("DepTime", ">", min_dep_time),
        group_by=("Airline",),
        name="F-q3",
    )


def fq4() -> Query:
    """F-q4: whether ORD has AVG delay above 10 (CASE WHEN … > 10).

    Scalar threshold test; stopping condition Í with v = 10.
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        ThresholdSide(10.0),
        predicate=Eq("Origin", "ORD"),
        name="F-q4",
    )


def fq5() -> Query:
    """F-q5: airports ``HAVING AVG(DepDelay) < 0`` (Figure 1's query).

    Stopping condition Í with v = 0, over ~200 Origin groups.
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        ThresholdSide(0.0),
        group_by=("Origin",),
        name="F-q5",
    )


def fq6(min_dep_time: float = 1350.0) -> Query:
    """F-q6: 5 worst (DayOfWeek, Origin) pairs for afternoon delays.

    ``WHERE DepTime > 1:50pm GROUP BY DayOfWeek, Origin ORDER BY
    AVG(DepDelay) DESC LIMIT 5``; stopping condition Î, top-5 separated.
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        TopKSeparated(5, largest=True),
        predicate=Compare("DepTime", ">", min_dep_time),
        group_by=("DayOfWeek", "Origin"),
        name="F-q6",
    )


def fq7() -> Query:
    """F-q7: AVG delay by day of week for airline HP.

    Stopping condition Ï (all 7 groups' CIs pairwise disjoint, i.e. the
    weekday ordering is determined).
    """
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        GroupsOrdered(),
        predicate=Eq("Airline", "HP"),
        group_by=("DayOfWeek",),
        name="F-q7",
    )


def fq8() -> Query:
    """F-q8: origin airport with the highest AVG departure delay (top-1)."""
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        TopKSeparated(1, largest=True),
        group_by=("Origin",),
        name="F-q8",
    )


def fq9() -> Query:
    """F-q9: airline with the maximum AVG delay (top-1)."""
    return Query(
        AggregateFunction.AVG,
        "DepDelay",
        TopKSeparated(1, largest=True),
        group_by=("Airline",),
        name="F-q9",
    )


#: All nine queries at their paper-default parameters.
ALL_QUERIES = {
    "F-q1": fq1,
    "F-q2": fq2,
    "F-q3": fq3,
    "F-q4": fq4,
    "F-q5": fq5,
    "F-q6": fq6,
    "F-q7": fq7,
    "F-q8": fq8,
    "F-q9": fq9,
}

#: The GROUP BY queries Table 6 restricts to (those where sampling
#: strategy can matter).
GROUP_BY_QUERIES = ("F-q3", "F-q5", "F-q6", "F-q7", "F-q8")


def build_query(name: str, **params) -> Query:
    """Build a query by name with optional template parameters."""
    if name not in ALL_QUERIES:
        raise KeyError(f"unknown query {name!r}; available: {sorted(ALL_QUERIES)}")
    return ALL_QUERIES[name](**params)
