"""repro: reproduction of "Rapid Approximate Aggregation with
Distribution-Sensitive Interval Guarantees" (Macke et al., ICDE 2021).

The package implements the paper's confidence-interval techniques for
approximate query processing with sample-size-independent (SSI) guarantees:

* :mod:`repro.bounders` — Hoeffding-Serfling, empirical Bernstein-Serfling,
  and Anderson/DKW error bounders; the **RangeTrim** meta-bounder (§3) that
  eliminates phantom outlier sensitivity; PMA/PHOS pathology detectors.
* :mod:`repro.stopping` — the OptStop optional-stopping meta-algorithm
  (Algorithm 5) and stopping conditions Ê-Ï (§4.2).
* :mod:`repro.fastframe` — the FastFrame sampling-optimized column store:
  scrambles, block bitmap indexes, Scan/ActiveSync/ActivePeek strategies,
  COUNT/SUM interval composition, and the approximate query executor.
* :mod:`repro.expressions` — derived range bounds for aggregates over
  arbitrary expressions (Appendix B).
* :mod:`repro.datasets` — the synthetic Flights substitute and
  microbenchmark distributions.
* :mod:`repro.experiments` — queries F-q1..F-q9 and runners regenerating
  every table and figure of the paper's evaluation.

Quickstart::

    from repro.datasets import make_flights_scramble
    from repro.bounders import get_bounder
    from repro.fastframe import ApproximateExecutor, Query, AggregateFunction, Eq
    from repro.stopping import RelativeAccuracy

    scramble = make_flights_scramble(rows=500_000, seed=0)
    executor = ApproximateExecutor(scramble, get_bounder("bernstein+rt"))
    query = Query(AggregateFunction.AVG, "DepDelay", RelativeAccuracy(0.5),
                  predicate=Eq("Origin", "ORD"))
    result = executor.execute(query)
    print(result.scalar().interval)
"""

from repro.bounders import ErrorBounder, Interval, RangeTrimBounder, get_bounder
from repro.fastframe import (
    AggregateFunction,
    ApproximateExecutor,
    ExactExecutor,
    Query,
    QueryPlanner,
    QueryResult,
    Scramble,
    Session,
    Table,
)
from repro.sql import parse_query
from repro.stats import DEFAULT_DELTA, DeltaBudget

__version__ = "1.0.0"

__all__ = [
    "AggregateFunction",
    "ApproximateExecutor",
    "DEFAULT_DELTA",
    "DeltaBudget",
    "ErrorBounder",
    "ExactExecutor",
    "Interval",
    "Query",
    "QueryPlanner",
    "QueryResult",
    "RangeTrimBounder",
    "Scramble",
    "Session",
    "Table",
    "__version__",
    "get_bounder",
    "parse_query",
]
