"""repro: reproduction of "Rapid Approximate Aggregation with
Distribution-Sensitive Interval Guarantees" (Macke et al., ICDE 2021).

The package implements the paper's confidence-interval techniques for
approximate query processing with sample-size-independent (SSI) guarantees:

* :mod:`repro.api` — the connection/handle front door: :func:`connect`,
  lazy query handles, and shared-scan multi-query ``gather()``.
* :mod:`repro.bounders` — Hoeffding-Serfling, empirical Bernstein-Serfling,
  and Anderson/DKW error bounders; the **RangeTrim** meta-bounder (§3) that
  eliminates phantom outlier sensitivity; PMA/PHOS pathology detectors.
* :mod:`repro.stopping` — the OptStop optional-stopping meta-algorithm
  (Algorithm 5) and stopping conditions Ê-Ï (§4.2).
* :mod:`repro.fastframe` — the FastFrame sampling-optimized column store:
  scrambles, block bitmap indexes, Scan/ActiveSync/ActivePeek strategies,
  COUNT/SUM interval composition, and the approximate query executor.
* :mod:`repro.expressions` — derived range bounds for aggregates over
  arbitrary expressions (Appendix B).
* :mod:`repro.datasets` — the synthetic Flights substitute and
  microbenchmark distributions.
* :mod:`repro.experiments` — queries F-q1..F-q9 and runners regenerating
  every table and figure of the paper's evaluation.

Quickstart — open a connection, ask lazily, resolve with guarantees::

    import repro
    from repro.datasets import make_flights_scramble

    scramble = make_flights_scramble(rows=500_000, seed=0)
    conn = repro.connect(scramble, delta=1e-9, policy="harmonic")

    # One query: SQL or the fluent builder, resolved on demand.
    ord_delay = conn.table().where("Origin", "ORD").avg("DepDelay", rel=0.3)
    print(ord_delay.result().scalar().interval)

    # A dashboard: many queries off ONE shared scan of the scramble.
    late = conn.sql(
        "SELECT Airline FROM flights GROUP BY Airline "
        "HAVING AVG(DepDelay) > 9"
    )
    worst = conn.sql(
        "SELECT Airline FROM flights GROUP BY Airline "
        "ORDER BY AVG(DepDelay) DESC LIMIT 1"
    )
    batch = conn.gather([late, worst])
    print(f"shared scan saved {batch.savings:.0%} of sequential row fetches")
    print(late.result().keys_above(9), worst.result().top_k(1))

Every interval issued on the connection is simultaneously valid with
probability at least ``1 − delta`` (the §4.1 union bound, audited by
``conn.audit()``).  The pre-1.x eager constructors
(``repro.ApproximateExecutor``, ``repro.Session``) remain available as
deprecated aliases of the same engines.
"""

import warnings as _warnings

from repro.api import (
    Connection,
    GatherResult,
    QueryBuilder,
    QueryHandle,
    RoundUpdate,
    connect,
)
from repro.bounders import ErrorBounder, Interval, RangeTrimBounder, get_bounder
from repro.fastframe import (
    AggregateFunction,
    BlockStoreError,
    ExactExecutor,
    MmapBlockStore,
    Query,
    QueryPlanner,
    QueryResult,
    Scramble,
    StorageCounters,
    Table,
    attach_block_storage,
    open_block_scramble,
    write_block_store,
)
from repro.fastframe import ApproximateExecutor as _ApproximateExecutor
from repro.fastframe import Session as _Session
from repro.sql import parse_query, parse_statements
from repro.stats import DEFAULT_DELTA, DeltaBudget

__version__ = "1.1.0"

__all__ = [
    "AggregateFunction",
    "ApproximateExecutor",
    "BlockStoreError",
    "Connection",
    "DEFAULT_DELTA",
    "DeltaBudget",
    "ErrorBounder",
    "ExactExecutor",
    "GatherResult",
    "Interval",
    "MmapBlockStore",
    "Query",
    "QueryBuilder",
    "QueryHandle",
    "QueryPlanner",
    "QueryResult",
    "RangeTrimBounder",
    "RoundUpdate",
    "Scramble",
    "Session",
    "StorageCounters",
    "Table",
    "__version__",
    "attach_block_storage",
    "connect",
    "get_bounder",
    "open_block_scramble",
    "parse_query",
    "parse_statements",
    "write_block_store",
]


def _deprecated_constructor(cls: type, replacement: str) -> type:
    """A subclass that warns once per call site, then behaves identically.

    ``isinstance`` checks against the real class keep working (the shim is
    a subclass); only *construction* through the top-level alias warns.
    """

    class _Shim(cls):
        def __init__(self, *args, **kwargs):
            _warnings.warn(
                f"repro.{cls.__name__} is deprecated; use {replacement} "
                "(the connection/handle API) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            super().__init__(*args, **kwargs)

    _Shim.__name__ = cls.__name__
    _Shim.__qualname__ = cls.__qualname__
    _Shim.__doc__ = cls.__doc__
    _Shim.__module__ = __name__
    return _Shim


#: Deprecated: construct executors through :func:`connect` — a
#: ``Connection`` allocates δ per query and enables shared-scan batching.
ApproximateExecutor = _deprecated_constructor(
    _ApproximateExecutor, "repro.connect()"
)

#: Deprecated: ``Session``'s eager execute() is subsumed by
#: :func:`connect`'s lazy handles + ``gather()`` on the same δ ledger.
Session = _deprecated_constructor(_Session, "repro.connect()")
