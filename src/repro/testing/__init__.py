"""Deterministic chaos tooling for the execution engine.

This package is part of the *production* tree (not ``tests/``) on
purpose: the fault-injection seam must ship with the code it perturbs so
the parallel driver and its workers can consult it in any deployment —
CI chaos legs, staging soak runs, and the test suite all drive the same
switchboard (:mod:`repro.testing.faults`).
"""

from repro.testing.faults import (
    FAULT_KINDS,
    FaultPlan,
    InjectedAttachFailure,
    InjectedWorkerFault,
    POOL_DEATH,
    SHM_ATTACH_FAILURE,
    WORKER_HANG,
    WORKER_RAISE,
    active_fault_plan,
    draw_task_fault,
    execute_worker_fault,
    faults_injected,
    install_fault_plan,
    reset_faults,
    tasks_observed,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedAttachFailure",
    "InjectedWorkerFault",
    "POOL_DEATH",
    "SHM_ATTACH_FAILURE",
    "WORKER_HANG",
    "WORKER_RAISE",
    "active_fault_plan",
    "draw_task_fault",
    "execute_worker_fault",
    "faults_injected",
    "install_fault_plan",
    "reset_faults",
    "tasks_observed",
]
