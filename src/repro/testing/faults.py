"""Deterministic fault injection for the parallel scan path.

The fault-tolerance layer of :class:`~repro.fastframe.parallel.
ParallelScanDriver` is only trustworthy if every failure mode it claims
to survive can be provoked *on demand and reproducibly*.  This module is
that switchboard: a single :class:`FaultPlan` describes which faults to
inject, how often, and under which seed; the driver consults
:func:`draw_task_fault` once per task submission (main process, so the
draw sequence is deterministic regardless of worker scheduling) and
ships the drawn directive to the worker inside its task spec, where
:func:`execute_worker_fault` acts it out.

Fault kinds
-----------

``worker-raise``
    The worker raises :class:`InjectedWorkerFault` before touching the
    exported frame — models a transient in-worker crash (bad import,
    numpy error, OOM-killed sibling).  Retriable.
``worker-hang``
    The worker sleeps ``hang_seconds`` before running the task normally —
    models a straggler.  The driver's per-task deadline fires, the task
    is re-dispatched, and the late result (if any) is discarded.
``shm-attach-failure``
    :class:`~repro.fastframe.window.AttachedFrame` raises
    :class:`InjectedAttachFailure` *after* attaching its first segment —
    models a worker dying mid-attach, the exact scenario the export
    unlink audit exists for.  Retriable.
``pool-death``
    The worker calls ``os._exit`` — the whole pool breaks
    (``BrokenProcessPool``), exercising pool rebuild + re-dispatch.

Configuration
-------------

Installed plans (:func:`install_fault_plan`) win; otherwise a plan is
built from the environment on every :func:`active_fault_plan` call:

* ``REPRO_FAULT_RATE`` — per-task injection probability (0 disables);
* ``REPRO_FAULT_SEED`` — RNG seed (default 0) — same seed + same
  submission sequence → same faults;
* ``REPRO_FAULT_KINDS`` — comma-separated subset of the kinds above
  (default ``worker-raise``);
* ``REPRO_FAULT_HANG_S`` — straggler sleep for ``worker-hang``.

Determinism contract: draws happen only in the driver (one per
submitted task, in submission order) from a generator seeded by the
plan, so a given (plan, workload) pair always faults the same tasks.
``at_task`` pins the k-th submission (1-indexed) instead of drawing —
the sharpest tool for regression tests.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass

__all__ = [
    "WORKER_RAISE",
    "WORKER_HANG",
    "SHM_ATTACH_FAILURE",
    "POOL_DEATH",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedWorkerFault",
    "InjectedAttachFailure",
    "install_fault_plan",
    "reset_faults",
    "active_fault_plan",
    "draw_task_fault",
    "execute_worker_fault",
    "tasks_observed",
    "faults_injected",
]

WORKER_RAISE = "worker-raise"
WORKER_HANG = "worker-hang"
SHM_ATTACH_FAILURE = "shm-attach-failure"
POOL_DEATH = "pool-death"

#: Every injectable kind, in canonical order.
FAULT_KINDS = (WORKER_RAISE, WORKER_HANG, SHM_ATTACH_FAILURE, POOL_DEATH)

#: Environment knobs (see module docstring).
REPRO_FAULT_RATE_ENV = "REPRO_FAULT_RATE"
REPRO_FAULT_SEED_ENV = "REPRO_FAULT_SEED"
REPRO_FAULT_KINDS_ENV = "REPRO_FAULT_KINDS"
REPRO_FAULT_HANG_S_ENV = "REPRO_FAULT_HANG_S"

_DEFAULT_HANG_SECONDS = 2.0


class InjectedWorkerFault(RuntimeError):
    """A deliberate, retriable in-worker crash."""


class InjectedAttachFailure(OSError):
    """A deliberate mid-attach shared-memory failure."""


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos recipe.

    Parameters
    ----------
    rate:
        Per-task injection probability in [0, 1].  ``0.0`` disables
        random draws (but ``at_task`` still fires, and an installed
        zero-rate plan still exercises the draw path — the overhead
        benchmark uses exactly that).
    kinds:
        Fault kinds to rotate through on random draws; ``at_task``
        injections always use ``kinds[0]``.
    seed:
        Seed of the draw sequence.
    at_task:
        1-indexed submission ordinal to fault deterministically
        (``None`` = random draws only).
    max_faults:
        Cap on total injections for this plan (``None`` = unbounded).
    hang_seconds:
        Straggler sleep for ``worker-hang`` directives.
    """

    rate: float = 0.0
    kinds: tuple = (WORKER_RAISE,)
    seed: int = 0
    at_task: int | None = None
    max_faults: int | None = None
    hang_seconds: float = _DEFAULT_HANG_SECONDS

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if not self.kinds:
            raise ValueError("a fault plan needs at least one kind")
        unknown = [kind for kind in self.kinds if kind not in FAULT_KINDS]
        if unknown:
            raise ValueError(f"unknown fault kinds: {unknown}")
        object.__setattr__(self, "kinds", tuple(self.kinds))


def _plan_from_env() -> FaultPlan | None:
    raw_rate = os.environ.get(REPRO_FAULT_RATE_ENV, "").strip()
    if not raw_rate:
        return None
    try:
        rate = float(raw_rate)
    except ValueError:
        return None
    raw_kinds = os.environ.get(REPRO_FAULT_KINDS_ENV, "").strip()
    kinds = tuple(
        kind.strip() for kind in raw_kinds.split(",") if kind.strip()
    ) or (WORKER_RAISE,)
    kinds = tuple(kind for kind in kinds if kind in FAULT_KINDS) or (WORKER_RAISE,)
    try:
        seed = int(os.environ.get(REPRO_FAULT_SEED_ENV, "0").strip() or "0")
    except ValueError:
        seed = 0
    try:
        hang = float(
            os.environ.get(REPRO_FAULT_HANG_S_ENV, "").strip()
            or _DEFAULT_HANG_SECONDS
        )
    except ValueError:
        hang = _DEFAULT_HANG_SECONDS
    return FaultPlan(
        rate=min(max(rate, 0.0), 1.0), kinds=kinds, seed=seed, hang_seconds=hang
    )


# ----------------------------------------------------------------------
# Module state: the installed plan and the deterministic draw sequence.
# The RNG is keyed to the plan identity so the sequence restarts exactly
# when the plan changes (install/reset) and never when it doesn't.
# ----------------------------------------------------------------------

_PLAN: FaultPlan | None = None
_RNG: random.Random | None = None
_RNG_PLAN: FaultPlan | None = None
_TASKS_SUBMITTED = 0
_FAULTS_INJECTED = 0


def install_fault_plan(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` (wins over the environment) and reset the draw
    sequence.  Returns the plan for chaining."""
    global _PLAN, _RNG, _RNG_PLAN, _TASKS_SUBMITTED, _FAULTS_INJECTED
    if not isinstance(plan, FaultPlan):
        raise TypeError(f"expected FaultPlan, got {type(plan).__name__}")
    _PLAN = plan
    _RNG = random.Random(plan.seed)
    _RNG_PLAN = plan
    _TASKS_SUBMITTED = 0
    _FAULTS_INJECTED = 0
    return plan


def reset_faults() -> None:
    """Remove any installed plan and zero the draw sequence/counters."""
    global _PLAN, _RNG, _RNG_PLAN, _TASKS_SUBMITTED, _FAULTS_INJECTED
    _PLAN = None
    _RNG = None
    _RNG_PLAN = None
    _TASKS_SUBMITTED = 0
    _FAULTS_INJECTED = 0


def active_fault_plan() -> FaultPlan | None:
    """The installed plan if any, else one parsed from the environment
    (``None`` when chaos is off either way)."""
    if _PLAN is not None:
        return _PLAN
    return _plan_from_env()


def tasks_observed() -> int:
    """Tasks seen by :func:`draw_task_fault` since the last install/reset."""
    return _TASKS_SUBMITTED


def faults_injected() -> int:
    """Directives issued since the last install/reset."""
    return _FAULTS_INJECTED


def draw_task_fault() -> dict | None:
    """One draw per task submission (driver side, submission order).

    Returns ``None`` (no fault) or a picklable directive
    ``{"kind": ..., "hang_seconds": ...}`` for the worker.  Counts every
    call so ``at_task`` ordinals and rate draws stay aligned with the
    submission sequence.
    """
    global _RNG, _RNG_PLAN, _TASKS_SUBMITTED, _FAULTS_INJECTED
    plan = active_fault_plan()
    if plan is None:
        return None
    if _RNG is None or _RNG_PLAN != plan:
        _RNG = random.Random(plan.seed)
        _RNG_PLAN = plan
        _TASKS_SUBMITTED = 0
        _FAULTS_INJECTED = 0
    _TASKS_SUBMITTED += 1
    if plan.max_faults is not None and _FAULTS_INJECTED >= plan.max_faults:
        return None
    if plan.at_task is not None:
        if _TASKS_SUBMITTED != plan.at_task:
            return None
        kind = plan.kinds[0]
    else:
        # Draw even at rate 0.0 so an armed-but-quiet plan pays the same
        # per-task cost the chaos legs pay — the overhead benchmark's
        # whole point.
        if _RNG.random() >= plan.rate:
            return None
        kind = plan.kinds[_FAULTS_INJECTED % len(plan.kinds)]
    _FAULTS_INJECTED += 1
    return {"kind": kind, "hang_seconds": plan.hang_seconds}


def execute_worker_fault(directive: dict | None) -> None:
    """Act out a directive on the worker side (before frame attach).

    ``shm-attach-failure`` is not handled here — the attach path itself
    consults the directive (see :class:`~repro.fastframe.window.
    AttachedFrame`) so the failure lands mid-attach, segments held.
    """
    if not directive:
        return
    kind = directive.get("kind")
    if kind == WORKER_RAISE:
        raise InjectedWorkerFault("injected worker crash")
    if kind == WORKER_HANG:
        # A true straggler: sleep past the driver's deadline, then finish
        # the task normally.  The driver has re-dispatched meanwhile and
        # discards this late result.
        time.sleep(float(directive.get("hang_seconds", _DEFAULT_HANG_SECONDS)))
        return
    if kind == POOL_DEATH:
        # Kill the worker without cleanup: the executor observes a dead
        # process and breaks the pool (BrokenProcessPool on every pending
        # future) — the driver must rebuild.
        os._exit(1)
