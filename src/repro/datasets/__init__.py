"""Dataset generators: the synthetic Flights substitute and microbenchmark
distributions (S22-S23)."""

from repro.datasets.flights import (
    DEFAULT_AIRLINES,
    AirlineSpec,
    FlightsConfig,
    generate_flights,
    make_flights_scramble,
)
from repro.datasets.synthetic import (
    DATASET_GENERATORS,
    clustered_data,
    lognormal_data,
    make_synthetic_scramble,
    outlier_data,
    two_point_data,
    uniform_data,
    write_synthetic_block_store,
)

__all__ = [
    "AirlineSpec",
    "DATASET_GENERATORS",
    "DEFAULT_AIRLINES",
    "FlightsConfig",
    "clustered_data",
    "generate_flights",
    "lognormal_data",
    "make_flights_scramble",
    "make_synthetic_scramble",
    "outlier_data",
    "two_point_data",
    "uniform_data",
    "write_synthetic_block_store",
]
