"""Synthetic distribution workloads for bounder microbenchmarks (S23).

The ablation benches compare CI widths and coverage across datasets with
controlled spread-to-range ratios — the axis that separates Hoeffding-style
widths ``O((b − a)/√m)`` from Bernstein-style ``O(σ/√m + (b − a)/m)``.
Each generator returns ``(data, a, b)`` with catalog bounds that are
deliberately wider than the data where noted.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_data",
    "two_point_data",
    "clustered_data",
    "outlier_data",
    "lognormal_data",
    "DATASET_GENERATORS",
]


def uniform_data(
    n: int, rng: np.random.Generator, a: float = 0.0, b: float = 1.0
) -> tuple[np.ndarray, float, float]:
    """Uniform over the full range: σ = (b − a)/√12, Hoeffding's fair case."""
    return rng.uniform(a, b, n), a, b


def two_point_data(
    n: int, rng: np.random.Generator, a: float = 0.0, b: float = 1.0
) -> tuple[np.ndarray, float, float]:
    """Half the mass at each endpoint: Hoeffding's worst-case optimality
    regime (§2.2.3) — the one distribution where range-based widths are
    asymptotically tight and RangeTrim cannot help."""
    return rng.choice([a, b], size=n), a, b


def clustered_data(
    n: int,
    rng: np.random.Generator,
    a: float = 0.0,
    b: float = 1.0,
    spread: float = 0.01,
) -> tuple[np.ndarray, float, float]:
    """Tight cluster at the range centre: σ ≪ (b − a), the PMA-exposing
    regime where Bernstein-style bounds dominate."""
    centre = 0.5 * (a + b)
    data = np.clip(rng.normal(centre, spread * (b - a), n), a, b)
    return data, a, b


def outlier_data(
    n: int,
    rng: np.random.Generator,
    outlier_rate: float = 1e-4,
    body_scale: float = 1.0,
    outlier_value: float = 1000.0,
) -> tuple[np.ndarray, float, float]:
    """Figure 2's salary-style regime: a compact body plus rare huge
    outliers that inflate the catalog range — the PHOS-exposing case where
    RangeTrim's observed-extrema substitution wins."""
    data = rng.exponential(body_scale, n)
    outliers = rng.random(n) < outlier_rate
    data[outliers] = outlier_value
    return data, 0.0, outlier_value

def lognormal_data(
    n: int,
    rng: np.random.Generator,
    sigma: float = 1.5,
    cap: float = 500.0,
) -> tuple[np.ndarray, float, float]:
    """Heavy right tail clipped at a wide catalog cap."""
    data = np.minimum(rng.lognormal(0.0, sigma, n), cap)
    return data, 0.0, cap


#: Name → generator, for parameterized tests and benches.
DATASET_GENERATORS = {
    "uniform": uniform_data,
    "two-point": two_point_data,
    "clustered": clustered_data,
    "outlier": outlier_data,
    "lognormal": lognormal_data,
}
