"""Synthetic distribution workloads for bounder microbenchmarks (S23).

The ablation benches compare CI widths and coverage across datasets with
controlled spread-to-range ratios — the axis that separates Hoeffding-style
widths ``O((b − a)/√m)`` from Bernstein-style ``O(σ/√m + (b − a)/m)``.
Each generator returns ``(data, a, b)`` with catalog bounds that are
deliberately wider than the data where noted.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform_data",
    "two_point_data",
    "clustered_data",
    "outlier_data",
    "lognormal_data",
    "DATASET_GENERATORS",
    "make_synthetic_scramble",
    "write_synthetic_block_store",
]


def uniform_data(
    n: int, rng: np.random.Generator, a: float = 0.0, b: float = 1.0
) -> tuple[np.ndarray, float, float]:
    """Uniform over the full range: σ = (b − a)/√12, Hoeffding's fair case."""
    return rng.uniform(a, b, n), a, b


def two_point_data(
    n: int, rng: np.random.Generator, a: float = 0.0, b: float = 1.0
) -> tuple[np.ndarray, float, float]:
    """Half the mass at each endpoint: Hoeffding's worst-case optimality
    regime (§2.2.3) — the one distribution where range-based widths are
    asymptotically tight and RangeTrim cannot help."""
    return rng.choice([a, b], size=n), a, b


def clustered_data(
    n: int,
    rng: np.random.Generator,
    a: float = 0.0,
    b: float = 1.0,
    spread: float = 0.01,
) -> tuple[np.ndarray, float, float]:
    """Tight cluster at the range centre: σ ≪ (b − a), the PMA-exposing
    regime where Bernstein-style bounds dominate."""
    centre = 0.5 * (a + b)
    data = np.clip(rng.normal(centre, spread * (b - a), n), a, b)
    return data, a, b


def outlier_data(
    n: int,
    rng: np.random.Generator,
    outlier_rate: float = 1e-4,
    body_scale: float = 1.0,
    outlier_value: float = 1000.0,
) -> tuple[np.ndarray, float, float]:
    """Figure 2's salary-style regime: a compact body plus rare huge
    outliers that inflate the catalog range — the PHOS-exposing case where
    RangeTrim's observed-extrema substitution wins."""
    data = rng.exponential(body_scale, n)
    outliers = rng.random(n) < outlier_rate
    data[outliers] = outlier_value
    return data, 0.0, outlier_value

def lognormal_data(
    n: int,
    rng: np.random.Generator,
    sigma: float = 1.5,
    cap: float = 500.0,
) -> tuple[np.ndarray, float, float]:
    """Heavy right tail clipped at a wide catalog cap."""
    data = np.minimum(rng.lognormal(0.0, sigma, n), cap)
    return data, 0.0, cap


#: Name → generator, for parameterized tests and benches.
DATASET_GENERATORS = {
    "uniform": uniform_data,
    "two-point": two_point_data,
    "clustered": clustered_data,
    "outlier": outlier_data,
    "lognormal": lognormal_data,
}


def make_synthetic_scramble(
    rows: int,
    seed: int = 0,
    dataset: str = "lognormal",
    num_buckets: int = 8,
):
    """A scramble over one synthetic distribution plus a group column.

    ``value`` is drawn from the named :data:`DATASET_GENERATORS` entry
    (with its catalog bounds); ``bucket`` is a uniform categorical so the
    scramble supports grouped queries out of the box.  Deterministic in
    ``seed`` end to end (data, encoding, and permutation).
    """
    from repro.fastframe.catalog import RangeBounds
    from repro.fastframe.scramble import Scramble
    from repro.fastframe.table import Table

    if dataset not in DATASET_GENERATORS:
        raise KeyError(
            f"unknown dataset {dataset!r}; available: {sorted(DATASET_GENERATORS)}"
        )
    rng = np.random.default_rng(seed)
    data, a, b = DATASET_GENERATORS[dataset](rows, rng)
    buckets = rng.integers(num_buckets, size=rows)
    table = Table()
    table.add_continuous("value", data, bounds=RangeBounds(float(a), float(b)))
    table.add_categorical("bucket", [f"b{int(code):02d}" for code in buckets])
    return Scramble(table, rng=np.random.default_rng(seed + 1))


def write_synthetic_block_store(
    directory: str,
    rows: int,
    seed: int = 0,
    dataset: str = "lognormal",
    num_buckets: int = 8,
    block_rows: int | None = None,
):
    """Generate a synthetic scramble and persist it as a block store.

    The out-of-core ingestion entry point for benches and examples: the
    directory can then be served with
    :func:`repro.fastframe.storage.open_block_scramble` without holding
    the table in memory.  Returns the written (in-memory) scramble so
    callers can cross-check results against resident execution.
    """
    from repro.fastframe.storage import DEFAULT_STORE_BLOCK_ROWS, write_block_store

    scramble = make_synthetic_scramble(
        rows, seed=seed, dataset=dataset, num_buckets=num_buckets
    )
    write_block_store(
        directory,
        scramble,
        block_rows=block_rows or DEFAULT_STORE_BLOCK_ROWS,
    )
    return scramble
