"""Synthetic Flights dataset (substitution for the paper's 606M-row data).

The paper evaluates on the public Flights dataset [1] (32 GiB, 606M tuples,
replicated 5×) with attributes Origin, Airline, DepDelay, DepTime, and
DayOfWeek (§5.1, Table 3).  That dataset is not available offline, so this
generator synthesizes a table with the same schema whose *distributional
properties* reproduce every data-dependent effect the evaluation exercises
(see DESIGN.md §3 for the substitution rationale):

* **Airlines** — the ten carriers of Figure 7(b) with true mean departure
  delays spaced between ≈6.3 (NW) and ≈11.6 (HP) minutes, in the figure's
  order, so the HAVING-threshold sweep spikes at the same places and F-q9's
  answer (max-delay airline) is HP.
* **Outlier-inflated range** — delays are right-skewed with rare extreme
  values, and the catalog stores deliberately wide bounds ``[-60, 1800]``
  minutes: the regime of Figure 2 where the effective data range is far
  smaller than ``(b − a)``, which is precisely where RangeTrim pays off.
* **Origin airports** — Zipf-distributed popularity over ~200 airports
  (so F-q1's selectivity sweep spans orders of magnitude and F-q5/F-q8
  have sparse bottleneck groups), each with its own delay offset; ORD is
  a popular airport with a true mean delay near 12 (F-q4's threshold-10
  test resolves to "yes").
* **Departure times** — HHMM-coded times whose delay *spread across
  airlines* grows later in the day (per-airline time-sensitivity slopes),
  reproducing F-q3/Figure 8's behaviour: later ``$min_dep_time`` filters
  both sparsify the groups and separate their means.
* **Day of week** — mild weekday effects for F-q6/F-q7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fastframe.catalog import RangeBounds
from repro.fastframe.scramble import DEFAULT_BLOCK_SIZE, Scramble
from repro.fastframe.table import Table

__all__ = ["AirlineSpec", "FlightsConfig", "generate_flights", "make_flights_scramble"]


@dataclass(frozen=True)
class AirlineSpec:
    """One carrier's ground-truth parameters.

    Attributes
    ----------
    name:
        Two-letter carrier code (as in Figure 7(b)).
    base_delay:
        Mean departure delay in minutes at the average departure time.
    time_slope:
        Additional mean delay per normalized departure-time unit — how
        much this carrier degrades later in the day (drives Figure 8's
        spread growth).
    share:
        Relative market share (flight volume weight).
    """

    name: str
    base_delay: float
    time_slope: float
    share: float


#: Figure 7(b)'s carriers, ordered by true mean delay (NW lowest … HP
#: highest).  Time slopes grow with the base so later-departure filters
#: *increase* the spread between carriers (F-q3's observed behaviour).
DEFAULT_AIRLINES = (
    AirlineSpec("NW", 6.3, 1.0, 1.1),
    AirlineSpec("DL", 6.9, 1.5, 1.4),
    AirlineSpec("TW", 7.4, 2.0, 0.5),
    AirlineSpec("CO", 7.9, 2.5, 0.8),
    AirlineSpec("AA", 8.4, 3.0, 1.3),
    AirlineSpec("UA", 8.9, 3.5, 1.2),
    AirlineSpec("WN", 9.4, 4.0, 1.6),
    AirlineSpec("US", 9.9, 4.5, 1.0),
    AirlineSpec("AS", 10.4, 5.0, 0.4),
    AirlineSpec("HP", 12.4, 6.0, 0.3),
)


@dataclass
class FlightsConfig:
    """Knobs of the synthetic Flights generator."""

    rows: int = 500_000
    airlines: tuple[AirlineSpec, ...] = DEFAULT_AIRLINES
    num_airports: int = 200
    #: Zipf exponent for airport popularity (heavier = sparser tail groups).
    airport_zipf: float = 1.1
    #: Std-dev of per-airport mean-delay offsets (minutes).  Wide enough
    #: that a handful of airports have *negative* true mean delays, making
    #: F-q5's HAVING < 0 non-trivial.
    airport_effect_std: float = 6.0
    #: Per-day-of-week mean offsets (Mon..Sun), minutes.  Gaps are a few
    #: minutes so ordering-style stopping conditions (F-q6, F-q7) can
    #: resolve well before a full scan at 2-5M rows.
    dow_effects: tuple[float, ...] = (-1.5, 0.5, -4.0, 2.5, 7.5, -6.5, 4.5)
    #: Lognormal shape of the right-skewed noise (mean-centred afterwards).
    noise_sigma: float = 1.0
    noise_scale: float = 6.0
    #: Probability and magnitude window of extreme outlier delays.
    outlier_rate: float = 2e-5
    outlier_range: tuple[float, float] = (200.0, 280.0)
    #: Catalog range bounds — deliberately much wider than the bulk of the
    #: data (body std ≈ 13 min vs. a 360-min range), per Figure 2's regime.
    #: The paper's raw data spans minutes-scale bodies with ~1800-min
    #: outlier ranges at 606M rows; this reproduction scales the range so
    #: the same sample-complexity *regimes* (Bernstein terminates early,
    #: Hoeffding needs orders of magnitude more, Exact reads everything)
    #: fall inside a laptop-scale 2-5M-row scramble (DESIGN.md §3).
    catalog_bounds: RangeBounds = field(default_factory=lambda: RangeBounds(-60.0, 300.0))
    seed: int = 0


def _airport_names(count: int) -> list[str]:
    """Deterministic three-letter airport codes with ORD among the top."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    names = []
    i = 0
    while len(names) < count:
        code = (
            letters[i % 26]
            + letters[(i // 26) % 26]
            + letters[(i // 676) % 26]
        )
        if code != "ORD":
            names.append(code)
        i += 7  # stride to avoid consecutive-looking codes
    names[2] = "ORD"  # a popular (rank-3) airport, as in F-q1/F-q4
    return names


def _sample_departure_times(rng: np.random.Generator, rows: int) -> np.ndarray:
    """HHMM departure times between 05:00 and 23:59 with rush-hour peaks."""
    # Mixture of a morning peak, an evening peak, and a broad daytime body.
    component = rng.choice(3, size=rows, p=(0.3, 0.3, 0.4))
    minutes = np.empty(rows)
    morning = component == 0
    evening = component == 1
    body = component == 2
    minutes[morning] = rng.normal(8 * 60, 90, morning.sum())
    minutes[evening] = rng.normal(18 * 60, 100, evening.sum())
    minutes[body] = rng.uniform(5 * 60, 24 * 60 - 1, body.sum())
    minutes = np.clip(minutes, 5 * 60, 24 * 60 - 1).astype(np.int64)
    return (minutes // 60) * 100 + minutes % 60


def generate_flights(
    rows: int | None = None,
    seed: int | None = None,
    config: FlightsConfig | None = None,
) -> Table:
    """Generate the synthetic Flights table.

    Parameters
    ----------
    rows, seed:
        Shorthand overrides of the corresponding ``config`` fields.
    config:
        Full generator configuration; defaults to :class:`FlightsConfig`.
    """
    config = config or FlightsConfig()
    if rows is not None:
        config = FlightsConfig(**{**config.__dict__, "rows": rows})
    if seed is not None:
        config = FlightsConfig(**{**config.__dict__, "seed": seed})
    rng = np.random.default_rng(config.seed)
    n = config.rows

    shares = np.array([spec.share for spec in config.airlines])
    airline_idx = rng.choice(len(config.airlines), size=n, p=shares / shares.sum())
    airline_names = np.array([spec.name for spec in config.airlines])

    # Zipf airport popularity with a deterministic shuffle so that rank
    # (popularity) is not correlated with code order.
    ranks = np.arange(1, config.num_airports + 1, dtype=np.float64)
    popularity = ranks ** (-config.airport_zipf)
    airport_idx = rng.choice(config.num_airports, size=n, p=popularity / popularity.sum())
    airport_names = np.array(_airport_names(config.num_airports))

    airport_effects = rng.normal(0.0, config.airport_effect_std, config.num_airports)
    ord_index = int(np.flatnonzero(airport_names == "ORD")[0])
    airport_effects[ord_index] = 3.5  # pushes ORD's true mean near 12

    dow = rng.integers(1, 8, size=n)
    dep_time = _sample_departure_times(rng, n)
    # Normalized time in [-0.5, 0.5] around midday for the slope effect.
    minutes = (dep_time // 100) * 60 + dep_time % 100
    t_norm = (minutes - minutes.mean()) / (24 * 60)

    base = np.array([spec.base_delay for spec in config.airlines])[airline_idx]
    slope = np.array([spec.time_slope for spec in config.airlines])[airline_idx]
    dow_effect = np.array(config.dow_effects)[dow - 1]

    # Right-skewed body noise, winsorized so the *body* stays compact
    # (≈ [-21, +72] minutes at default scale): the catalog range is wide
    # because of the rare outlier component below, not the body's tail —
    # exactly Figure 2's shape, and the regime where RangeTrim's observed
    # extrema are far tighter than the catalog bounds.
    noise = config.noise_scale * (
        rng.lognormal(0.0, config.noise_sigma, n)
        - np.exp(config.noise_sigma ** 2 / 2.0)
    )
    noise = np.clip(noise, -3.5 * config.noise_scale, 12.0 * config.noise_scale)
    outliers = rng.random(n) < config.outlier_rate
    outlier_values = rng.uniform(*config.outlier_range, int(outliers.sum()))

    delay = base + airport_effects[airport_idx] + dow_effect + slope * 8.0 * t_norm + noise
    delay[outliers] += outlier_values
    delay = np.clip(delay, config.catalog_bounds.a, config.catalog_bounds.b)

    table = Table()
    table.add_categorical("Origin", airport_names[airport_idx])
    table.add_categorical("Airline", airline_names[airline_idx])
    table.add_categorical("DayOfWeek", dow)
    table.add_continuous("DepDelay", delay, bounds=config.catalog_bounds)
    table.add_continuous("DepTime", dep_time.astype(np.float64))
    return table


def make_flights_scramble(
    rows: int = 500_000,
    seed: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    config: FlightsConfig | None = None,
) -> Scramble:
    """Convenience: generate the flights table and scramble it.

    The scramble permutation uses an rng derived from ``seed`` so the whole
    pipeline is reproducible end to end.
    """
    table = generate_flights(rows=rows, seed=seed, config=config)
    return Scramble(table, block_size=block_size, rng=np.random.default_rng(seed + 1))
