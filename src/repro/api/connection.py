"""The connection/handle front door: lazy queries over one scramble.

:func:`connect` opens a :class:`Connection` — the session-scoped object
the paper's §4.1 multi-query story implies: one scramble (whose shuffling
cost is paid once), one joint error-probability budget, many queries.
Queries are *lazy*: ``conn.sql(...)`` and the fluent builder
(``conn.table().where(...).group_by(...).avg(...)``) return
:class:`QueryHandle`\\ s that carry a compiled
:class:`~repro.fastframe.query.Query` and its stopping condition but cost
nothing until resolved.  A handle resolves three ways:

* :meth:`QueryHandle.result` — run this one query to completion;
* :meth:`QueryHandle.rounds` — iterate progressive per-round interval
  snapshots (what a live dashboard renders while sampling continues);
* :meth:`Connection.gather` — the headline: run N handles off **one**
  shared scan cursor.  Each pass over the scramble materializes one
  :class:`~repro.fastframe.window.WindowFrame` over the union of the
  queries' block masks — row ids, value arrays, combined group codes,
  and predicate masks are gathered once per window, however many queries
  consume them — and feeds every unfinished query's view pool from it.
  A block wanted by k queries is charged to the batch's I/O accounting
  once instead of k times, a column aggregated by k queries is gathered
  once, and queries retire independently as their stopping conditions
  fire — so an N-query dashboard costs roughly one scan instead of N by
  the paper's blocks-fetched cost metric (§5.3).

δ accounting is identical across all three paths: every execution is
charged to the connection's :class:`~repro.fastframe.session.DeltaLedger`
*before* it runs, in resolution order, so ``gather([h1..hN])`` spends
exactly what the same N queries would spend resolved sequentially, under
either allocation policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.bounders.base import ErrorBounder
from repro.bounders.registry import get_bounder
from repro.fastframe.executor import (
    ApproximateExecutor,
    QueryRun,
    run_shared_scan,
)
from repro.fastframe.parallel import ParallelScanDriver, resolve_parallelism
from repro.fastframe.query import (
    ExecutionMetrics,
    Query,
    QueryResult,
    RecoveryCounters,
    StorageCounters,
)
from repro.fastframe.scan import SamplingStrategy, get_strategy
from repro.fastframe.scramble import Scramble
from repro.fastframe.session import DeltaLedger, QueryLedgerEntry
from repro.fastframe.table import Table
from repro.sql.compiler import parse_statements
from repro.stats.delta import DEFAULT_DELTA
from repro.stopping.conditions import StoppingCondition

__all__ = [
    "connect",
    "Connection",
    "QueryHandle",
    "GatherResult",
    "RoundUpdate",
]

#: Default bounder for connections: the paper's headline configuration
#: (empirical Bernstein-Serfling + RangeTrim, "no PMA, no PHOS").
DEFAULT_BOUNDER = "bernstein+rt"


def connect(
    source: Scramble | Table,
    *,
    bounder: ErrorBounder | str = DEFAULT_BOUNDER,
    delta: float = DEFAULT_DELTA,
    policy: str = "even",
    max_queries: int = 100,
    strategy: SamplingStrategy | str | None = None,
    rng: np.random.Generator | None = None,
    require_ssi: bool = True,
    parallelism: int | None = None,
    task_timeout: float | None = None,
    task_batch: int | None = None,
    storage: str | None = None,
    cache_bytes: int | None = None,
    **executor_kwargs,
) -> "Connection":
    """Open a :class:`Connection` over a scramble (or a table to scramble).

    Parameters
    ----------
    source:
        A :class:`~repro.fastframe.scramble.Scramble`, or a
        :class:`~repro.fastframe.table.Table` to shuffle now (the one-time
        scramble cost the connection then amortizes over every query).
    bounder:
        Error bounder instance or registry name (default
        ``"bernstein+rt"``).
    delta:
        Joint error probability for the whole connection: with
        probability at least ``1 − delta`` every interval returned by
        every query on this connection is simultaneously valid.
    policy:
        Ledger allocation policy — ``"even"`` (δ/max_queries each) or
        ``"harmonic"`` (open-ended 6/π²·δ/k² decay).
    max_queries:
        Declared capacity for the ``"even"`` policy.
    strategy:
        Sampling strategy instance or name (``"scan"``, ``"activesync"``,
        ``"activepeek"``); defaults to plain Scan.
    rng:
        Randomness for scramble construction (when ``source`` is a table)
        and scan start positions.
    require_ssi:
        Multi-query guarantees need sample-size-independent bounders
        (§1); pass ``False`` only for single-shot ad-hoc use of a
        non-SSI bounder.
    parallelism:
        Worker processes for window ingest on every resolution path
        (``result()``, ``rounds()``, ``gather()``).  ``None`` defers to
        the ``REPRO_PARALLELISM`` environment variable, then 1.  Above 1
        the scan is driven by the
        :class:`~repro.fastframe.parallel.ParallelScanDriver` pipeline;
        results and δ accounting are bit-identical to serial execution.
    task_timeout:
        Per-worker-task deadline in seconds for parallel ingest
        (``None`` defers to ``REPRO_TASK_TIMEOUT``, then 60 s; ``0``
        disables).  A timed-out or crashed task is re-dispatched with
        backoff and, as the last resort, recomputed inline — recovery
        never changes results, only the
        :class:`~repro.fastframe.query.RecoveryCounters` surfaced on
        round updates and the dashboard.
    task_batch:
        Partitions bundled into one worker task for parallel ingest
        (``None`` defers to ``REPRO_TASK_BATCH``, then auto-sizes each
        window to ``ceil(partitions / workers)`` so IPC and fault-plan
        bookkeeping amortize).  Any batch size produces byte-identical
        results; ``1`` forces one partition per task.
    storage:
        Column storage backend — ``"memory"`` (resident arrays, the
        default) or ``"mmap"`` (spill the scramble to an out-of-core
        block store and serve gathers as zero-copy views into the
        mapping; see :mod:`repro.fastframe.storage`).  ``None`` defers
        to the ``REPRO_STORAGE`` environment variable, then
        ``"memory"``.  A scramble opened with
        :func:`~repro.fastframe.storage.open_block_scramble` is already
        store-backed whatever this says.  Results are byte-identical
        across backends.
    cache_bytes:
        Byte budget for the block cache serving this connection's store
        (``None`` defers to ``REPRO_CACHE_BYTES``, then the shared
        256 MiB process-wide cache).  Connections over the same block
        directory share one store and one cache, so a dashboard's second
        connection reads the blocks the first already paid for.
    executor_kwargs:
        Passed through to each query's
        :class:`~repro.fastframe.executor.ApproximateExecutor`
        (``round_rows``, ``alpha``, ``count_method``, ``engine``,
        ``round_cadence``, …).
    """
    return Connection(
        source,
        bounder=bounder,
        delta=delta,
        policy=policy,
        max_queries=max_queries,
        strategy=strategy,
        rng=rng,
        require_ssi=require_ssi,
        parallelism=parallelism,
        task_timeout=task_timeout,
        task_batch=task_batch,
        storage=storage,
        cache_bytes=cache_bytes,
        **executor_kwargs,
    )


@dataclass(frozen=True)
class RoundUpdate:
    """One progressive snapshot from :meth:`QueryHandle.rounds`.

    Attributes
    ----------
    round_index:
        1-indexed OptStop round that produced the snapshot.
    rows_read:
        Rows the query has read so far.
    groups:
        Decoded group key →
        :class:`~repro.stopping.conditions.GroupSnapshot` (current
        certified interval, estimate, sample count, exhaustion flag).
    recovery:
        Cumulative :class:`~repro.fastframe.query.RecoveryCounters` as of
        this round (truthy only if the parallel driver has recovered from
        a straggler/crash/pool death so far) — ``None`` on serial
        executions, where no recovery machinery runs.
    storage:
        Cumulative :class:`~repro.fastframe.query.StorageCounters` as of
        this round (block reads, cache hits/evictions, prefetch hits) —
        ``None`` when the scramble runs on resident in-memory arrays,
        where no block I/O happens.
    """

    round_index: int
    rows_read: int
    groups: dict
    recovery: RecoveryCounters | None = None
    storage: StorageCounters | None = None


class QueryHandle:
    """A lazy, single-use query bound to a connection.

    Carries the compiled :class:`~repro.fastframe.query.Query` (including
    its stopping condition); nothing executes and no δ is charged until
    the handle is resolved through :meth:`result`, :meth:`rounds`, or
    :meth:`Connection.gather`.  Resolution charges the connection ledger
    once and caches the :class:`~repro.fastframe.query.QueryResult`;
    subsequent :meth:`result` calls are free.
    """

    def __init__(self, connection: "Connection", query: Query) -> None:
        self.connection = connection
        self.query = query
        self._entry: QueryLedgerEntry | None = None
        self._result: QueryResult | None = None

    # ------------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.query.name or self.query.describe()

    @property
    def stopping(self) -> StoppingCondition:
        return self.query.stopping

    @property
    def resolved(self) -> bool:
        """True once the handle holds a cached result."""
        return self._result is not None

    @property
    def delta(self) -> float | None:
        """The δ this handle was charged (``None`` while unresolved)."""
        return None if self._entry is None else self._entry.delta

    def describe(self) -> str:
        return self.query.describe()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "resolved" if self.resolved else "lazy"
        return f"QueryHandle({self.name!r}, {state})"

    # ------------------------------------------------------------------

    def result(self, start_block: int | None = None) -> QueryResult:
        """Resolve the handle (running the query now if needed)."""
        if self._result is not None:
            return self._result
        self._check_unconsumed()
        run, cursor = self.connection._begin(self, start_block)
        workers = resolve_parallelism(self.connection.parallelism)
        if workers > 1:
            ParallelScanDriver(
                [run],
                cursor,
                parallelism=workers,
                solo=True,
                task_timeout=self.connection.task_timeout,
                task_batch=self.connection.task_batch,
            ).run()
        else:
            for window, at_end in cursor.windows():
                run.feed(window, at_end)
                if run.finished:
                    break
        return self._settle(run.finalize())

    def rounds(
        self, start_block: int | None = None
    ) -> Iterator[RoundUpdate]:
        """Resolve progressively, yielding one update per OptStop round.

        Validates the handle and charges its δ **at call time** (the
        consumed-handle contract: a resolved handle raises here, not at
        first iteration), then returns the update iterator.  Iterate it
        to completion (it seals the handle's result, after which
        :meth:`result` returns the cached final answer).  This is the
        live-dashboard path: each update carries every group's current
        certified interval while sampling continues.
        """
        if self._result is not None:
            raise RuntimeError(
                f"handle {self.name!r} is already resolved; rounds() "
                "streams a query's one execution — create a new handle to "
                "re-run it progressively"
            )
        self._check_unconsumed()
        run, cursor = self.connection._begin(self, start_block)
        workers = resolve_parallelism(self.connection.parallelism)

        def passes() -> Iterator:
            if workers > 1:
                driver = ParallelScanDriver(
                    [run],
                    cursor,
                    parallelism=workers,
                    solo=True,
                    task_timeout=self.connection.task_timeout,
                    task_batch=self.connection.task_batch,
                )
                yield from driver.windows()
                return
            for window, at_end in cursor.windows():
                run.feed(window, at_end)
                yield window
                if run.finished:
                    break

        def updates() -> Iterator[RoundUpdate]:
            seen_rounds = 0
            completed = False
            pass_iter = passes()
            try:
                for _ in pass_iter:
                    if run.metrics.rounds > seen_rounds:
                        seen_rounds = run.metrics.rounds
                        yield RoundUpdate(
                            round_index=seen_rounds,
                            rows_read=run.metrics.rows_read,
                            groups=run.group_snapshots(),
                            recovery=(
                                run.metrics.recovery_snapshot()
                                if workers > 1
                                else None
                            ),
                            storage=(
                                run.metrics.storage_snapshot()
                                if self.connection.scramble.storage is not None
                                else None
                            ),
                        )
                completed = True
                self._settle(run.finalize())
            finally:
                if not completed:
                    # Abandoned (or crashed) mid-stream.  Teardown order
                    # matters: FIRST close the window driver explicitly —
                    # a parallel driver reconciles any prefetched block
                    # selection's probe counters in its own finally —
                    # THEN seal the run, merging the scramble-shared
                    # bitmap probe counters into THIS execution's metrics.
                    # (Relying on the for-loop's iterator temp being
                    # collected before this block is a CPython accident.)
                    # Leaving the counters unmerged would double-count
                    # them in whichever query next runs over the same
                    # scramble.  The handle stays charged-but-unresolved
                    # per the consumed-handle contract — only its
                    # accounting is closed out.
                    pass_iter.close()
                    run.finalize()

        return updates()

    # ------------------------------------------------------------------

    def _check_unconsumed(self) -> None:
        if self._entry is not None and self._result is None:
            raise RuntimeError(
                f"handle {self.name!r} was already charged but never "
                "completed (an abandoned rounds() iterator?); its δ is "
                "spent — create a new handle to re-run the query"
            )

    def _settle(self, result: QueryResult) -> QueryResult:
        """Seal the handle: cache the result and close its ledger line."""
        result.delta = self._entry.delta
        self.connection.ledger.settle(
            self._entry.index,
            result.metrics.rows_read,
            result.metrics.stopped_early,
        )
        self._result = result
        return result


@dataclass
class GatherResult:
    """Outcome of one shared-scan batch (:meth:`Connection.gather`).

    ``results`` are per-query :class:`~repro.fastframe.query.QueryResult`
    objects, positionally aligned with the gathered handles, and identical
    to what sequential execution from the same start block would return.
    ``metrics`` is the *physical* cost of the batch under the shared
    cursor: the union of the queries' block fetches per pass
    (``metrics.rounds`` counts lookahead windows taken off the shared
    cursor).  The difference between
    :attr:`rows_read_sequential` and :attr:`rows_read_shared` is the
    I/O the shared cursor saved.
    """

    handles: tuple[QueryHandle, ...]
    results: tuple[QueryResult, ...] = field(repr=False)
    metrics: ExecutionMetrics
    start_block: int

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def rows_read_shared(self) -> int:
        """Rows the shared cursor physically fetched (union accounting)."""
        return self.metrics.rows_read

    @property
    def values_gathered(self) -> int:
        """Value elements the shared window frames gathered — once per
        distinct aggregate column per window, however many queries
        consumed them (per-query runs gather nothing in a shared scan)."""
        return self.metrics.values_gathered

    @property
    def rows_read_sequential(self) -> int:
        """Rows the same queries would have fetched run one at a time."""
        return sum(result.metrics.rows_read for result in self.results)

    @property
    def savings(self) -> float:
        """Fraction of sequential row fetches the shared scan avoided."""
        sequential = self.rows_read_sequential
        if sequential == 0:
            return 0.0
        return 1.0 - self.rows_read_shared / sequential


class Connection:
    """One scramble, one joint δ budget, many lazy queries.

    Construct through :func:`connect`.  The connection owns the
    :class:`~repro.fastframe.session.DeltaLedger` that every resolution
    path (:meth:`QueryHandle.result`, :meth:`QueryHandle.rounds`,
    :meth:`gather`) charges before executing, so the §4.1 union bound
    holds jointly across everything the connection ever runs.
    """

    def __init__(
        self,
        source: Scramble | Table,
        *,
        bounder: ErrorBounder | str = DEFAULT_BOUNDER,
        delta: float = DEFAULT_DELTA,
        policy: str = "even",
        max_queries: int = 100,
        strategy: SamplingStrategy | str | None = None,
        rng: np.random.Generator | None = None,
        require_ssi: bool = True,
        parallelism: int | None = None,
        task_timeout: float | None = None,
        task_batch: int | None = None,
        storage: str | None = None,
        cache_bytes: int | None = None,
        **executor_kwargs,
    ) -> None:
        from repro.fastframe.storage import attach_block_storage, resolve_storage

        self.rng = rng or np.random.default_rng()
        self.parallelism = parallelism
        self.task_timeout = task_timeout
        self.task_batch = task_batch
        if isinstance(source, Scramble):
            self.scramble = source
        elif isinstance(source, Table):
            self.scramble = Scramble(source, rng=self.rng)
        else:
            raise TypeError(
                f"connect() expects a Scramble or a Table, got "
                f"{type(source).__name__}"
            )
        self.storage = resolve_storage(storage)
        self.cache_bytes = cache_bytes
        if self.scramble.storage is not None:
            # Already store-backed (open_block_scramble, or a prior
            # connection over the same scramble); just apply the budget.
            if cache_bytes is not None:
                self.scramble.storage.set_cache_budget(cache_bytes)
        elif self.storage == "mmap":
            attach_block_storage(self.scramble, cache_bytes=cache_bytes)
        self.bounder = get_bounder(bounder) if isinstance(bounder, str) else bounder
        if require_ssi and not self.bounder.ssi:
            raise ValueError(
                f"bounder {self.bounder.name!r} is not SSI; session-level "
                "guarantees require sample-size-independent bounders (§1) — "
                "pass require_ssi=False for single-shot ad-hoc use"
            )
        self.strategy = (
            get_strategy(strategy) if isinstance(strategy, str) else strategy
        )
        self.executor_kwargs = executor_kwargs
        self.ledger = DeltaLedger(delta, policy=policy, max_queries=max_queries)

    # ------------------------------------------------------------------
    # Handle construction (all lazy, nothing charged here)
    # ------------------------------------------------------------------

    def query(self, query: Query) -> QueryHandle:
        """Wrap a pre-built :class:`~repro.fastframe.query.Query`."""
        return QueryHandle(self, query)

    def sql(
        self,
        text: str,
        *,
        stopping: StoppingCondition | None = None,
        name: str = "",
    ) -> QueryHandle | list[QueryHandle]:
        """Compile SQL into lazy handles.

        A single statement returns one :class:`QueryHandle`; a
        ``;``-separated script returns a list of handles (pass the list to
        :meth:`gather` to run the whole dashboard off one scan).
        ``stopping`` is the fallback for statements whose SQL implies no
        stopping condition (no HAVING / CASE WHEN / ORDER BY).
        """
        queries = parse_statements(text, stopping=stopping, name=name)
        handles = [self.query(query) for query in queries]
        return handles[0] if len(handles) == 1 else handles

    def table(self) -> "QueryBuilder":
        """Start a fluent query: ``conn.table().where(...).avg(...)``."""
        from repro.api.builder import QueryBuilder

        return QueryBuilder(self)

    # ------------------------------------------------------------------
    # Batched execution: the shared scan cursor
    # ------------------------------------------------------------------

    def gather(
        self,
        handles: list[QueryHandle] | QueryHandle,
        start_block: int | None = None,
    ) -> GatherResult:
        """Resolve many handles off **one** shared scan cursor.

        Every handle is charged its ledger δ up front (in list order —
        exactly what sequential resolution would spend), then a single
        sequential pass over the scramble feeds each window into every
        unfinished query's view pool.  Queries retire independently as
        their stopping conditions fire; the scan ends when the last one
        does.  Per-query results (cached on the handles) are identical to
        sequential execution from the same ``start_block``; the gather's
        own metrics count each fetched block once in the I/O accounting,
        however many queries consumed it.

        A bare handle is accepted too, so ``conn.gather(conn.sql(text))``
        works whatever the statement count of ``text``.
        """
        if isinstance(handles, QueryHandle):
            handles = [handles]
        handles = list(handles)
        if not handles:
            raise ValueError("gather() requires at least one handle")
        if len({id(handle) for handle in handles}) != len(handles):
            raise ValueError("gather() handles must be distinct")
        for handle in handles:
            if not isinstance(handle, QueryHandle):
                raise TypeError(
                    f"gather() takes QueryHandles, got {type(handle).__name__}"
                )
            if handle.connection is not self:
                raise ValueError(
                    f"handle {handle.name!r} belongs to a different connection"
                )
            if handle._entry is not None:
                raise RuntimeError(
                    f"handle {handle.name!r} was already executed; gather() "
                    "takes fresh handles"
                )
        # Build (and thereby validate) every run against the *previewed*
        # δ allocations BEFORE charging anything: a capacity overflow or a
        # bad query (e.g. an unknown column surfacing at resolution) must
        # neither strand spent δ on the ledger nor poison its co-gathered
        # handles.  Allocation is deterministic in charge order, so the
        # previewed δs are exactly what charge() then records.
        deltas = self.ledger.preview(len(handles))
        runs = [
            QueryRun(self._executor(delta), handle.query)
            for handle, delta in zip(handles, deltas)
        ]
        for handle in handles:
            handle._entry = self.ledger.charge(handle.name)
        if start_block is None:
            start_block = int(self.rng.integers(self.scramble.num_blocks))
        cursor = runs[0].executor.cursor(
            start_block, window_blocks=runs[0].window_blocks
        )
        metrics = run_shared_scan(
            runs,
            cursor,
            parallelism=self.parallelism,
            task_timeout=self.task_timeout,
            task_batch=self.task_batch,
        )
        results = []
        for handle, run in zip(handles, runs):
            # Index-probe counters were merged into the gather metrics.
            results.append(handle._settle(run.finalize(merge_index_counters=False)))
        # Re-snapshot after finalize: fixed-sample runs issue their one
        # full-budget bound recomputation inside finalize().
        metrics.bounds_recomputed = sum(
            run.metrics.bounds_recomputed for run in runs
        )
        return GatherResult(
            handles=tuple(handles),
            results=tuple(results),
            metrics=metrics,
            start_block=start_block,
        )

    # ------------------------------------------------------------------
    # Ledger views
    # ------------------------------------------------------------------

    @property
    def session_delta(self) -> float:
        return self.ledger.session_delta

    @property
    def policy(self) -> str:
        return self.ledger.policy

    @property
    def queries_run(self) -> int:
        return self.ledger.queries_run

    @property
    def spent_delta(self) -> float:
        """Total error probability consumed so far (union bound)."""
        return self.ledger.spent_delta

    def next_query_delta(self) -> float:
        """The δ the next resolved handle will receive."""
        return self.ledger.next_delta()

    def audit(self):
        """The δ ledger, one entry per charged query."""
        return self.ledger.audit()

    # ------------------------------------------------------------------

    def _begin(self, handle: QueryHandle, start_block: int | None):
        """Validate-then-charge startup shared by result() and rounds().

        The run is constructed (resolving columns, building the view
        pool — anything that can fail) against the previewed δ; the
        ledger is charged only once construction succeeded, so a bad
        query never spends error probability.
        """
        (delta,) = self.ledger.preview(1)
        executor = self._executor(delta)
        run = QueryRun(executor, handle.query)
        cursor = executor.cursor(start_block, window_blocks=run.window_blocks)
        handle._entry = self.ledger.charge(handle.name)
        return run, cursor

    def _executor(self, delta: float) -> ApproximateExecutor:
        return ApproximateExecutor(
            self.scramble,
            self.bounder,
            strategy=self.strategy,
            delta=delta,
            rng=self.rng,
            **self.executor_kwargs,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Connection(rows={self.scramble.num_rows:,}, "
            f"bounder={self.bounder.name!r}, policy={self.policy!r}, "
            f"spent={self.spent_delta:.3g} of {self.session_delta:.3g})"
        )
