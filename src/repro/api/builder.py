"""Fluent query construction for the connection front-end.

``conn.table()`` starts a :class:`QueryBuilder`; chained calls narrow it
and the aggregate terminal returns a lazy
:class:`~repro.api.connection.QueryHandle`::

    handle = (
        conn.table()
        .where("Origin", "ORD")
        .group_by("Airline")
        .avg("DepDelay", rel=0.05)
    )

Builders are immutable — every call returns a new builder — so a common
prefix can be forked into several handles for one ``gather()`` batch.

The aggregate terminals accept exactly one stopping specifier, mirroring
the paper's conditions Ê–Ï (§4.2):

=====================  =======================================================
keyword                stopping condition
=====================  =======================================================
``samples=m``          Ê :class:`~repro.stopping.conditions.SamplesTaken`
``abs=eps``            Ë :class:`~repro.stopping.conditions.AbsoluteAccuracy`
``rel=eps``            Ì :class:`~repro.stopping.conditions.RelativeAccuracy`
``above=t``/``below``  Í :class:`~repro.stopping.conditions.ThresholdSide`
``top=k``/``bottom``   Î :class:`~repro.stopping.conditions.TopKSeparated`
``ordered=True``       Ï :class:`~repro.stopping.conditions.GroupsOrdered`
``stopping=cond``      any custom :class:`StoppingCondition`
=====================  =======================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fastframe.predicate import And, Compare, Eq, Predicate
from repro.fastframe.query import AggregateFunction, Query
from repro.stopping.conditions import (
    AbsoluteAccuracy,
    GroupsOrdered,
    RelativeAccuracy,
    SamplesTaken,
    StoppingCondition,
    ThresholdSide,
    TopKSeparated,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.connection import Connection, QueryHandle

__all__ = ["QueryBuilder"]

_COMPARE_OPS = ("<", "<=", ">", ">=")


class QueryBuilder:
    """Immutable fluent builder producing lazy query handles."""

    def __init__(
        self,
        connection: "Connection",
        predicate: Predicate | None = None,
        group_columns: tuple[str, ...] = (),
        label: str = "",
    ) -> None:
        self._connection = connection
        self._predicate = predicate
        self._group_columns = group_columns
        self._label = label

    def _fork(self, **changes) -> "QueryBuilder":
        state = {
            "predicate": self._predicate,
            "group_columns": self._group_columns,
            "label": self._label,
        }
        state.update(changes)
        return QueryBuilder(self._connection, **state)

    # ------------------------------------------------------------------
    # Narrowing
    # ------------------------------------------------------------------

    def where(self, *condition) -> "QueryBuilder":
        """Add a WHERE conjunct.

        Three shapes are accepted::

            .where(predicate)              # any repro.fastframe Predicate
            .where("Origin", "ORD")        # categorical equality
            .where("DepTime", ">=", 600)   # continuous comparison

        Repeated calls AND together.
        """
        if len(condition) == 1 and isinstance(condition[0], Predicate):
            clause = condition[0]
        elif len(condition) == 2:
            clause = Eq(condition[0], condition[1])
        elif len(condition) == 3 and condition[1] in _COMPARE_OPS:
            clause = Compare(condition[0], condition[1], float(condition[2]))
        else:
            raise TypeError(
                "where() takes a Predicate, (column, value), or "
                f"(column, op, value) with op in {_COMPARE_OPS}; got "
                f"{condition!r}"
            )
        combined = (
            clause if self._predicate is None else And(self._predicate, clause)
        )
        return self._fork(predicate=combined)

    def group_by(self, *columns: str) -> "QueryBuilder":
        """GROUP BY the given categorical columns."""
        return self._fork(group_columns=self._group_columns + columns)

    def named(self, label: str) -> "QueryBuilder":
        """Attach an experiment/ledger label to the query."""
        return self._fork(label=label)

    # ------------------------------------------------------------------
    # Aggregate terminals (each returns a lazy handle)
    # ------------------------------------------------------------------

    def avg(self, column, **stop) -> "QueryHandle":
        """AVG over a continuous column (or expression); see class docs
        for the stopping keywords."""
        return self._handle(AggregateFunction.AVG, column, stop)

    def sum(self, column, **stop) -> "QueryHandle":
        """SUM over a continuous column (or expression)."""
        return self._handle(AggregateFunction.SUM, column, stop)

    def count(self, **stop) -> "QueryHandle":
        """COUNT(*) of the (filtered, grouped) view."""
        return self._handle(AggregateFunction.COUNT, None, stop)

    def median(self, column, **stop) -> "QueryHandle":
        """Certified MEDIAN of a continuous column (DKW-band inversion)."""
        return self._handle(AggregateFunction.MEDIAN, column, stop)

    def percentile(self, column, p: float, **stop) -> "QueryHandle":
        """Certified ``p``-quantile of a continuous column, ``p`` in (0, 1)."""
        return self._handle(
            AggregateFunction.PERCENTILE, column, stop, percentile=float(p)
        )

    # ------------------------------------------------------------------

    def _handle(
        self,
        aggregate: AggregateFunction,
        column,
        stop: dict,
        percentile: float | None = None,
    ) -> "QueryHandle":
        query = Query(
            aggregate,
            column,
            _stopping_from(stop),
            group_by=self._group_columns,
            percentile=percentile,
            name=self._label,
            **({} if self._predicate is None else {"predicate": self._predicate}),
        )
        return self._connection.query(query)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        if self._predicate is not None:
            parts.append(f"where={self._predicate!r}")
        if self._group_columns:
            parts.append(f"group_by={self._group_columns!r}")
        return f"QueryBuilder({', '.join(parts)})"


def _stopping_from(stop: dict) -> StoppingCondition:
    """Resolve the aggregate terminal's stopping keywords (exactly one)."""
    # Identity checks, not equality: 0.0 == False, but above=0.0 is a
    # perfectly good threshold and must count as a given specifier.
    spec = {
        key: value
        for key, value in stop.items()
        if value is not None and value is not False
    }
    if len(spec) != 1:
        raise TypeError(
            "pass exactly one stopping specifier (rel=, abs=, samples=, "
            f"above=, below=, top=, bottom=, ordered=True, or stopping=); "
            f"got {sorted(spec) or 'none'}"
        )
    key, value = next(iter(spec.items()))
    if key == "stopping":
        if not isinstance(value, StoppingCondition):
            raise TypeError(
                f"stopping= expects a StoppingCondition, got {type(value).__name__}"
            )
        return value
    if key == "rel":
        return RelativeAccuracy(float(value))
    if key == "abs":
        return AbsoluteAccuracy(float(value))
    if key == "samples":
        return SamplesTaken(int(value))
    if key in ("above", "below"):
        return ThresholdSide(float(value))
    if key in ("top", "bottom"):
        if int(value) < 1:
            raise ValueError(
                f"{key}= must be a positive integer, got {int(value)}"
            )
        return TopKSeparated(int(value), largest=(key == "top"))
    if key == "ordered":
        return GroupsOrdered()
    raise TypeError(f"unknown stopping specifier {key!r}")
