"""Connection/handle front-end with shared-scan multi-query execution.

The canonical way in::

    import repro

    conn = repro.connect(scramble, delta=1e-9, policy="harmonic")
    late = conn.sql(
        "SELECT Airline FROM flights GROUP BY Airline "
        "HAVING AVG(DepDelay) > 9"
    )
    ord_delay = (
        conn.table().where("Origin", "ORD").avg("DepDelay", rel=0.3)
    )
    batch = conn.gather([late, ord_delay])   # ONE scan feeds both queries
    print(batch.savings, late.result().keys_above(9))

See :mod:`repro.api.connection` for the execution model and
:mod:`repro.api.builder` for the fluent builder grammar.
"""

from repro.api.builder import QueryBuilder
from repro.api.connection import (
    DEFAULT_BOUNDER,
    Connection,
    GatherResult,
    QueryHandle,
    RoundUpdate,
    connect,
)

__all__ = [
    "Connection",
    "DEFAULT_BOUNDER",
    "GatherResult",
    "QueryBuilder",
    "QueryHandle",
    "RoundUpdate",
    "connect",
]
