"""Certified quantile intervals by inverting the DKW band (Lemma 3).

The DKW inequality gives a simultaneous (1 − δ) band ``|F̂ − F| <= ε`` around
the empirical CDF; inverting it at probability level ``p`` bounds the true
quantile ``F⁻¹(p)`` between two order statistics of the sample:

    ``x_(⌈m(p − ε)⌉)  <=  F⁻¹(p)  <=  x_(⌈m(p + ε)⌉)``     (1-based ranks)

with ranks falling off either end replaced by the support endpoints ``a``/
``b``.  Theorem 1 extends DKW validity to without-replacement samples from a
finite dataset, so the same inversion certifies quantiles mid-scan.

Two refinements tighten the interval for finite populations of (at most)
``n`` rows when ``m`` of them have been sampled without replacement:

* **Deterministic rank clamp** — the dataset's rank-``r`` value
  (``r = ⌈p·n⌉``) sits, with probability 1, between sample order statistics
  ``x_(r − (n − m))`` and ``x_(r)``: at most ``n − m`` unseen rows can be
  inserted below it, and at least ``r − (n − m)`` of the ``r`` dataset rows
  at or below it have already been seen.  Both bounds are monotone-safe
  under an *upper bound* ``n⁺ >= n`` (growing ``n`` only loosens them), so
  the executor can pass its certified ``N⁺``.
* **Exact collapse at exhaustion** — at ``m == n`` the clamp degenerates to
  ``[x_(r), x_(r)]``: the exact population quantile, with no δ spent.

The final interval is the per-side intersection of the DKW band and the
deterministic clamp.  Quantiles use the inverse-CDF convention throughout:
``Q(p) = x_(⌈p·n⌉)``, 1-based, no interpolation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cdfbounds.dkw import dkw_epsilon

__all__ = [
    "quantile_rank",
    "dkw_quantile_ranks",
    "deterministic_quantile_ranks",
    "quantile_interval",
    "empirical_quantile",
]


def quantile_rank(p: float, n: int) -> int:
    """The 1-based inverse-CDF rank ``⌈p·n⌉`` (clipped into ``[1, n]``)."""
    if n < 1:
        raise ValueError(f"population size must be >= 1, got {n}")
    return min(max(int(math.ceil(p * n)), 1), n)


def _validate_p(p: float) -> None:
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile level p must be in (0, 1), got {p}")


def dkw_quantile_ranks(m: int, p: float, delta: float) -> tuple[int, int]:
    """DKW-certified 1-based rank bounds on ``F⁻¹(p)`` from ``m`` samples.

    Splits δ evenly: each side uses a one-sided band of width
    ``ε = sqrt(log(2/δ) / 2m)`` — numerically identical to the two-sided
    DKW band, so the pair is a simultaneous (1 − δ) statement.  Returns
    ``(lo_rank, hi_rank)`` where a rank of 0 means "below the sample"
    (use the support minimum ``a``) and a rank of ``m + 1`` means "above
    the sample" (use the support maximum ``b``).
    """
    _validate_p(p)
    eps = dkw_epsilon(m, delta / 2.0, two_sided=False)
    # F(x_(k)) >= p − ε certified fails only below rank ⌈m(p − ε)⌉; the
    # ceil of a non-positive argument clamps to 0 ("no sample lower bound").
    lo_rank = max(int(math.ceil(m * (p - eps))), 0)
    hi_rank = int(math.ceil(m * (p + eps)))
    if hi_rank > m:
        hi_rank = m + 1
    return lo_rank, hi_rank


def deterministic_quantile_ranks(m: int, p: float, n: int) -> tuple[int, int]:
    """Probability-1 rank bounds on the population rank-``r`` value.

    With ``m`` of (at most) ``n`` rows sampled without replacement and
    ``r = ⌈p·n⌉``, the dataset's rank-``r`` value lies between sample order
    statistics ``x_(r − (n − m))`` and ``x_(r)``.  Returns ``(lo_rank,
    hi_rank)`` with the same 0 / ``m + 1`` out-of-range conventions as
    :func:`dkw_quantile_ranks`.  At ``m == n`` both ranks equal ``r``.
    """
    _validate_p(p)
    if n < m:
        raise ValueError(f"population bound n={n} smaller than sample m={m}")
    r = quantile_rank(p, n)
    lo_rank = max(r - (n - m), 0)
    hi_rank = r if r <= m else m + 1
    return lo_rank, hi_rank


def _order_stats(sorted_sample: np.ndarray, rank: int, a: float, b: float) -> float:
    """Sample order statistic at a 1-based ``rank`` with endpoint fallback."""
    if rank <= 0:
        return a
    if rank > sorted_sample.size:
        return b
    return float(sorted_sample[rank - 1])


def quantile_interval(
    sample: np.ndarray,
    p: float,
    delta: float,
    a: float,
    b: float,
    n: int | None = None,
) -> tuple[float, float]:
    """(1 − δ) certified interval for the ``p``-quantile.

    Combines the inverted DKW band with the deterministic finite-population
    clamp (when a population bound ``n`` is given), taking the tighter of
    the two on each side.  An empty sample returns the trivial ``(a, b)``.

    Parameters
    ----------
    sample:
        The without-replacement sample (any order; sorted internally).
    p:
        Quantile level in (0, 1).
    delta:
        Error probability in (0, 1) for the DKW part.
    a, b:
        Declared support of the value column (``a <= b``).
    n:
        Optional certified *upper bound* on the population size (``>= m``).
        Enables the deterministic clamp and the exact collapse at ``m == n``.
    """
    _validate_p(p)
    if not a <= b:
        raise ValueError(f"support must satisfy a <= b, got [{a}, {b}]")
    sample = np.asarray(sample, dtype=np.float64)
    m = int(sample.size)
    if m == 0:
        return a, b
    sorted_sample = np.sort(sample)
    lo_rank, hi_rank = dkw_quantile_ranks(m, p, delta)
    lo = _order_stats(sorted_sample, lo_rank, a, b)
    hi = _order_stats(sorted_sample, hi_rank, a, b)
    if n is not None:
        d_lo_rank, d_hi_rank = deterministic_quantile_ranks(m, p, n)
        lo = max(lo, _order_stats(sorted_sample, d_lo_rank, a, b))
        hi = min(hi, _order_stats(sorted_sample, d_hi_rank, a, b))
    # Clip to the declared support (samples may graze the endpoints).
    lo = min(max(lo, a), b)
    hi = min(max(hi, a), b)
    if lo > hi:  # only possible through float ties; collapse to the point
        lo = hi = 0.5 * (lo + hi)
    return lo, hi


def empirical_quantile(sample: np.ndarray, p: float) -> float:
    """The sample ``p``-quantile under the inverse-CDF convention.

    ``Q̂(p) = x_(⌈p·m⌉)`` (1-based, no interpolation) — the value reported
    as the point estimate and, at exhaustion, the exact population answer.
    """
    _validate_p(p)
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("empirical quantile of an empty sample is undefined")
    rank = quantile_rank(p, int(sample.size))
    return float(np.partition(sample, rank - 1)[rank - 1])
