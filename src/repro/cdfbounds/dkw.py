"""DKW confidence bands and Anderson's mean bounds from CDF bounds.

This module implements the nonparametric machinery behind the Anderson/DKW
error bounder (§2.2.3):

* **Lemma 3 (DKW inequality [23, 51])** — the empirical CDF F̂ from ``m``
  samples satisfies ``sup |F̂ − F| <= ε`` with probability at least
  ``1 − 2·exp(−2mε²)``.  Theorem 1 of the paper extends validity to
  without-replacement samples from a finite dataset of any size N.
* **Lemma 2 (mean identity)** — for a CDF F supported on ``[a, b]``,
  ``μ = b − ∫_a^b F(x) dx``, so CDF bounds ``L <= F <= U`` translate to mean
  bounds ``[b − ∫U, b − ∫L]``.

The integrals are evaluated exactly: an empirical CDF shifted by a constant
and clipped to ``[0, 1]`` is a step function, so ``∫`` is a finite sum over
the order statistics.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "dkw_epsilon",
    "empirical_cdf",
    "dkw_band",
    "mean_from_cdf_upper",
    "anderson_mean_bounds",
]


def dkw_epsilon(m: int, delta: float, two_sided: bool = False) -> float:
    """The DKW band half-width ε for ``m`` samples at error probability δ.

    Inverting Lemma 3: the *two-sided* band ``sup|F̂ − F| <= ε`` holds with
    probability ``1 − δ`` for ``ε = sqrt(log(2/δ) / (2m))``.  The one-sided
    deviation (used by Algorithm 3's Lbound, which only needs
    ``F <= F̂ + ε``) needs only ``ε = sqrt(log(1/δ) / (2m))``.

    Parameters
    ----------
    m:
        Sample size (>= 1).
    delta:
        Error probability in (0, 1).
    two_sided:
        If True, size the band to cover both deviation directions at once.
    """
    if m < 1:
        raise ValueError(f"sample size m must be >= 1, got {m}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    numerator = math.log((2.0 if two_sided else 1.0) / delta)
    return math.sqrt(numerator / (2.0 * m))


def empirical_cdf(sample: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample as ``(sorted_values, F̂(sorted_values))``.

    ``F̂(x) = (#{v in sample : v <= x}) / m``; the returned arrays give the
    step function's jump locations and post-jump heights.  Duplicate values
    are merged into a single jump of the combined height.
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        raise ValueError("empirical CDF of an empty sample is undefined")
    values, counts = np.unique(sample, return_counts=True)
    heights = np.cumsum(counts) / sample.size
    return values, heights


def dkw_band(
    sample: np.ndarray, delta: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(1 − δ) simultaneous confidence band for the true CDF.

    Returns ``(values, lower, upper)`` where, with probability at least
    ``1 − δ``, ``lower <= F <= upper`` pointwise at every jump location
    (and, by monotonicity of the step functions, everywhere).
    """
    values, heights = empirical_cdf(sample)
    eps = dkw_epsilon(len(np.asarray(sample)), delta, two_sided=True)
    lower = np.clip(heights - eps, 0.0, 1.0)
    upper = np.clip(heights + eps, 0.0, 1.0)
    return values, lower, upper


def mean_from_cdf_upper(
    values: np.ndarray, heights: np.ndarray, shift: float, a: float, b: float
) -> float:
    """``b − ∫_a^b min(F̂ + shift, 1) dx`` evaluated exactly (Lemma 2).

    ``values``/``heights`` describe an empirical CDF step function; shifting
    it up by ``shift`` and clipping at 1 yields the *upper* CDF bound U, and
    the returned quantity ``b − ∫ U`` is Anderson's *lower* bound on the
    mean.  (To get the mean upper bound, reflect the sample about
    ``(a + b)/2`` and negate — see Algorithm 3 line 11.)

    The step function U equals ``min(heights_i + shift, 1)`` on
    ``[values_i, values_{i+1})``, equals ``shift`` (clipped) on
    ``[a, values_0)``, and equals 1 at and beyond the largest value.
    """
    values = np.asarray(values, dtype=np.float64)
    heights = np.asarray(heights, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot integrate an empty CDF")
    if not a <= b:
        raise ValueError(f"support must satisfy a <= b, got [{a}, {b}]")
    # Values outside the declared support (float drift in the (a + b) − x
    # reflection, or a caller-supplied loose support) would make np.diff of
    # the edge array negative and silently corrupt the integral.  Clipping
    # is sound: the CDF is declared to be supported on [a, b], so all mass
    # observed outside belongs at the nearest endpoint.  np.clip preserves
    # sortedness, keeping the step-function segments well ordered.
    values = np.clip(values, a, b)
    shifted = np.clip(heights + shift, 0.0, 1.0)
    head = min(max(shift, 0.0), 1.0)
    # Integral of the step function from a to b: the segment before the
    # first jump has height `head`; segment i in [values_i, values_{i+1})
    # has height shifted[i]; the tail [values_-1, b] has height shifted[-1]
    # (== 1 whenever the sample is consistent with support [a, b]).
    edges = np.concatenate(([a], values, [b]))
    seg_heights = np.concatenate(([head], shifted))
    seg_widths = np.diff(edges)
    integral = float(np.dot(seg_heights, seg_widths))
    return b - integral


def anderson_mean_bounds(
    sample: np.ndarray, a: float, b: float, delta: float
) -> tuple[float, float]:
    """(1 − δ) mean CI via Anderson's method with exact step integration.

    This is the "exact" variant of the Anderson/DKW bound: each side spends
    δ/2 on a one-sided DKW band and integrates the resulting step function
    exactly (rather than Algorithm 3's slightly looser trimmed-mean form,
    provided by :class:`repro.bounders.anderson.AndersonBounder`).
    """
    sample = np.asarray(sample, dtype=np.float64)
    if sample.size == 0:
        return a, b
    eps = dkw_epsilon(sample.size, delta / 2.0, two_sided=False)
    values, heights = empirical_cdf(sample)
    lower_mean = mean_from_cdf_upper(values, heights, eps, a, b)
    # Upper bound via reflection: mirror the sample about (a + b)/2.
    r_values, r_heights = empirical_cdf((a + b) - sample)
    upper_mean = (a + b) - mean_from_cdf_upper(r_values, r_heights, eps, a, b)
    return max(lower_mean, a), min(upper_mean, b)
