"""DKW confidence bands for CDFs and Anderson's mean-from-CDF bounds (S10)."""

from repro.cdfbounds.dkw import (
    anderson_mean_bounds,
    dkw_band,
    dkw_epsilon,
    empirical_cdf,
    mean_from_cdf_upper,
)
from repro.cdfbounds.quantile import (
    deterministic_quantile_ranks,
    dkw_quantile_ranks,
    empirical_quantile,
    quantile_interval,
    quantile_rank,
)

__all__ = [
    "anderson_mean_bounds",
    "dkw_band",
    "dkw_epsilon",
    "empirical_cdf",
    "mean_from_cdf_upper",
    "deterministic_quantile_ranks",
    "dkw_quantile_ranks",
    "empirical_quantile",
    "quantile_interval",
    "quantile_rank",
]
