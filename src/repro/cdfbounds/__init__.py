"""DKW confidence bands for CDFs and Anderson's mean-from-CDF bounds (S10)."""

from repro.cdfbounds.dkw import (
    anderson_mean_bounds,
    dkw_band,
    dkw_epsilon,
    empirical_cdf,
    mean_from_cdf_upper,
)

__all__ = [
    "anderson_mean_bounds",
    "dkw_band",
    "dkw_epsilon",
    "empirical_cdf",
    "mean_from_cdf_upper",
]
