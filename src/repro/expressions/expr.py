"""Expression AST for aggregates over arbitrary column expressions.

Appendix B of the paper: to compute CIs for ``AVG(f(c1, …, cn))`` with a
range-based bounder, it suffices to derive range bounds

    [ inf f over the box  ∏ [a_i, b_i],   sup f over the box ]

from the per-column catalog bounds.  This module provides the expression
nodes (columns, constants, arithmetic, and a few transcendental functions)
with three capabilities:

* vectorized evaluation against a table's rows;
* **interval arithmetic** — always-sound enclosures of the expression over
  a box (the fallback when neither of Appendix B's structural conditions
  is detected);
* structural metadata (monotonicity per column, convexity atoms) consumed
  by :mod:`repro.expressions.bounds` to tighten the enclosure using the
  appendix's monotone-corner and convex-optimization strategies.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.fastframe.catalog import RangeBounds

__all__ = ["Expression", "Col", "Const", "col"]


class Expression(ABC):
    """A real-valued expression over continuous table columns."""

    @abstractmethod
    def evaluate(self, table, rows=None) -> np.ndarray:
        """Vectorized evaluation against table rows (all rows if None)."""

    @abstractmethod
    def evaluate_point(self, point: Mapping[str, float]) -> float:
        """Evaluate at a single assignment of column values."""

    @abstractmethod
    def interval(self, bounds: Mapping[str, RangeBounds]) -> RangeBounds:
        """Interval-arithmetic enclosure over the per-column box."""

    @abstractmethod
    def columns(self) -> frozenset[str]:
        """The set of columns the expression references."""

    def range_bounds(self, bounds: Mapping[str, RangeBounds]) -> RangeBounds:
        """Derived range bounds per Appendix B (delegates to
        :func:`repro.expressions.bounds.derive_range_bounds`)."""
        from repro.expressions.bounds import derive_range_bounds

        return derive_range_bounds(self, bounds)

    # -- operator sugar -------------------------------------------------

    def _lift(self, other) -> "Expression":
        if isinstance(other, Expression):
            return other
        return Const(float(other))

    def __add__(self, other) -> "Expression":
        return Add(self, self._lift(other))

    def __radd__(self, other) -> "Expression":
        return Add(self._lift(other), self)

    def __sub__(self, other) -> "Expression":
        return Sub(self, self._lift(other))

    def __rsub__(self, other) -> "Expression":
        return Sub(self._lift(other), self)

    def __mul__(self, other) -> "Expression":
        return Mul(self, self._lift(other))

    def __rmul__(self, other) -> "Expression":
        return Mul(self._lift(other), self)

    def __truediv__(self, other) -> "Expression":
        return Div(self, self._lift(other))

    def __rtruediv__(self, other) -> "Expression":
        return Div(self._lift(other), self)

    def __pow__(self, exponent: int) -> "Expression":
        return Pow(self, int(exponent))

    def __neg__(self) -> "Expression":
        return Neg(self)


class Col(Expression):
    """A reference to a continuous column."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, table, rows=None) -> np.ndarray:
        values = table.continuous(self.name)
        return values if rows is None else values[rows]

    def evaluate_point(self, point: Mapping[str, float]) -> float:
        return float(point[self.name])

    def interval(self, bounds: Mapping[str, RangeBounds]) -> RangeBounds:
        return bounds[self.name]

    def columns(self) -> frozenset[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return self.name


def col(name: str) -> Col:
    """Convenience constructor: ``col("DepDelay") * 2 + 5``."""
    return Col(name)


class Const(Expression):
    """A numeric literal."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def evaluate(self, table, rows=None) -> np.ndarray:
        length = table.num_rows if rows is None else len(rows)
        return np.full(length, self.value)

    def evaluate_point(self, point: Mapping[str, float]) -> float:
        return self.value

    def interval(self, bounds: Mapping[str, RangeBounds]) -> RangeBounds:
        return RangeBounds(self.value, self.value)

    def columns(self) -> frozenset[str]:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


class _Binary(Expression):
    symbol = "?"

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class Add(_Binary):
    symbol = "+"

    def evaluate(self, table, rows=None) -> np.ndarray:
        return self.left.evaluate(table, rows) + self.right.evaluate(table, rows)

    def evaluate_point(self, point) -> float:
        return self.left.evaluate_point(point) + self.right.evaluate_point(point)

    def interval(self, bounds) -> RangeBounds:
        lhs, rhs = self.left.interval(bounds), self.right.interval(bounds)
        return RangeBounds(lhs.a + rhs.a, lhs.b + rhs.b)


class Sub(_Binary):
    symbol = "-"

    def evaluate(self, table, rows=None) -> np.ndarray:
        return self.left.evaluate(table, rows) - self.right.evaluate(table, rows)

    def evaluate_point(self, point) -> float:
        return self.left.evaluate_point(point) - self.right.evaluate_point(point)

    def interval(self, bounds) -> RangeBounds:
        lhs, rhs = self.left.interval(bounds), self.right.interval(bounds)
        return RangeBounds(lhs.a - rhs.b, lhs.b - rhs.a)


class Mul(_Binary):
    symbol = "*"

    def evaluate(self, table, rows=None) -> np.ndarray:
        return self.left.evaluate(table, rows) * self.right.evaluate(table, rows)

    def evaluate_point(self, point) -> float:
        return self.left.evaluate_point(point) * self.right.evaluate_point(point)

    def interval(self, bounds) -> RangeBounds:
        lhs, rhs = self.left.interval(bounds), self.right.interval(bounds)
        corners = (lhs.a * rhs.a, lhs.a * rhs.b, lhs.b * rhs.a, lhs.b * rhs.b)
        return RangeBounds(min(corners), max(corners))


class Div(_Binary):
    symbol = "/"

    def evaluate(self, table, rows=None) -> np.ndarray:
        return self.left.evaluate(table, rows) / self.right.evaluate(table, rows)

    def evaluate_point(self, point) -> float:
        return self.left.evaluate_point(point) / self.right.evaluate_point(point)

    def interval(self, bounds) -> RangeBounds:
        lhs, rhs = self.left.interval(bounds), self.right.interval(bounds)
        if rhs.a <= 0.0 <= rhs.b:
            raise ValueError(
                f"cannot bound division: denominator range [{rhs.a}, {rhs.b}] "
                "contains zero"
            )
        corners = (lhs.a / rhs.a, lhs.a / rhs.b, lhs.b / rhs.a, lhs.b / rhs.b)
        return RangeBounds(min(corners), max(corners))


class Pow(Expression):
    """Integer power (Example 1's ``(2c1 + 3c2 − 1)²`` shape)."""

    def __init__(self, base: Expression, exponent: int) -> None:
        if exponent < 0:
            raise ValueError("negative exponents are not supported; use Div")
        self.base = base
        self.exponent = exponent

    def evaluate(self, table, rows=None) -> np.ndarray:
        return self.base.evaluate(table, rows) ** self.exponent

    def evaluate_point(self, point) -> float:
        return self.base.evaluate_point(point) ** self.exponent

    def interval(self, bounds) -> RangeBounds:
        inner = self.base.interval(bounds)
        lo, hi = inner.a ** self.exponent, inner.b ** self.exponent
        if self.exponent % 2 == 0:
            if inner.a <= 0.0 <= inner.b:
                return RangeBounds(0.0, max(lo, hi))
            return RangeBounds(min(lo, hi), max(lo, hi))
        return RangeBounds(lo, hi)

    def columns(self) -> frozenset[str]:
        return self.base.columns()

    def __repr__(self) -> str:
        return f"({self.base!r} ** {self.exponent})"


class Neg(Expression):
    """Unary negation."""

    def __init__(self, inner: Expression) -> None:
        self.inner = inner

    def evaluate(self, table, rows=None) -> np.ndarray:
        return -self.inner.evaluate(table, rows)

    def evaluate_point(self, point) -> float:
        return -self.inner.evaluate_point(point)

    def interval(self, bounds) -> RangeBounds:
        inner = self.inner.interval(bounds)
        return RangeBounds(-inner.b, -inner.a)

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"(-{self.inner!r})"


class _Unary(Expression):
    """Base for monotone unary transcendental functions."""

    func_name = "?"
    _np_func = None

    def __init__(self, inner: Expression) -> None:
        self.inner = inner

    def evaluate(self, table, rows=None) -> np.ndarray:
        return type(self)._np_func(self.inner.evaluate(table, rows))

    def evaluate_point(self, point) -> float:
        return float(type(self)._np_func(self.inner.evaluate_point(point)))

    def columns(self) -> frozenset[str]:
        return self.inner.columns()

    def __repr__(self) -> str:
        return f"{self.func_name}({self.inner!r})"


class Exp(_Unary):
    """``exp(x)`` — increasing and convex."""

    func_name = "exp"
    _np_func = staticmethod(np.exp)

    def interval(self, bounds) -> RangeBounds:
        inner = self.inner.interval(bounds)
        return RangeBounds(math.exp(inner.a), math.exp(inner.b))


class Log(_Unary):
    """``log(x)`` — increasing and concave; domain must be positive."""

    func_name = "log"
    _np_func = staticmethod(np.log)

    def interval(self, bounds) -> RangeBounds:
        inner = self.inner.interval(bounds)
        if inner.a <= 0.0:
            raise ValueError(f"log requires a positive domain, got [{inner.a}, {inner.b}]")
        return RangeBounds(math.log(inner.a), math.log(inner.b))


class Abs(_Unary):
    """``|x|`` — convex."""

    func_name = "abs"
    _np_func = staticmethod(np.abs)

    def interval(self, bounds) -> RangeBounds:
        inner = self.inner.interval(bounds)
        if inner.a <= 0.0 <= inner.b:
            return RangeBounds(0.0, max(abs(inner.a), abs(inner.b)))
        lo, hi = abs(inner.a), abs(inner.b)
        return RangeBounds(min(lo, hi), max(lo, hi))


# ---------------------------------------------------------------------------
# Structural certificates (consumed by repro.expressions.bounds)
# ---------------------------------------------------------------------------
#
# ``monotone_directions`` returns, per referenced column, +1 (non-decreasing
# over the box), -1 (non-increasing), or 0 (no dependence); it returns None
# when monotonicity cannot be *certified* symbolically.  ``curvature``
# returns "affine", "convex", or "concave" when certifiable, else None.
# Both certificates are conservative: a None merely loses tightness in the
# derived bounds, never soundness.


def _merge_directions(lhs, rhs):
    """Combine per-column directions of two summands; None on conflict."""
    if lhs is None or rhs is None:
        return None
    merged = dict(lhs)
    for name, direction in rhs.items():
        if name not in merged or merged[name] == 0:
            merged[name] = direction
        elif direction != 0 and direction != merged[name]:
            return None
    return merged


def _flip_directions(directions):
    if directions is None:
        return None
    return {name: -direction for name, direction in directions.items()}


def _flip_curvature(curvature):
    if curvature == "convex":
        return "concave"
    if curvature == "concave":
        return "convex"
    return curvature  # affine and None are self-dual


def _expr_monotone(expr: "Expression", bounds) -> dict | None:
    """Certified per-column monotone directions of ``expr`` over the box."""
    if isinstance(expr, Const):
        return {}
    if isinstance(expr, Col):
        return {expr.name: 1}
    if isinstance(expr, Neg):
        return _flip_directions(_expr_monotone(expr.inner, bounds))
    if isinstance(expr, Add):
        return _merge_directions(
            _expr_monotone(expr.left, bounds), _expr_monotone(expr.right, bounds)
        )
    if isinstance(expr, Sub):
        return _merge_directions(
            _expr_monotone(expr.left, bounds),
            _flip_directions(_expr_monotone(expr.right, bounds)),
        )
    if isinstance(expr, Mul):
        if isinstance(expr.left, Const):
            scale, inner = expr.left.value, expr.right
        elif isinstance(expr.right, Const):
            scale, inner = expr.right.value, expr.left
        else:
            # x * y with both factors sign-definite and monotone is
            # certifiable when everything is non-negative and co-monotone.
            lhs_iv = expr.left.interval(bounds)
            rhs_iv = expr.right.interval(bounds)
            lhs_dir = _expr_monotone(expr.left, bounds)
            rhs_dir = _expr_monotone(expr.right, bounds)
            if (
                lhs_iv.a >= 0.0
                and rhs_iv.a >= 0.0
                and lhs_dir is not None
                and rhs_dir is not None
            ):
                return _merge_directions(lhs_dir, rhs_dir)
            return None
        inner_dir = _expr_monotone(inner, bounds)
        if scale >= 0:
            return inner_dir
        return _flip_directions(inner_dir)
    if isinstance(expr, Div):
        if isinstance(expr.right, Const):
            if expr.right.value == 0.0:
                raise ZeroDivisionError("division by constant zero")
            inner_dir = _expr_monotone(expr.left, bounds)
            return inner_dir if expr.right.value > 0 else _flip_directions(inner_dir)
        return None
    if isinstance(expr, Pow):
        inner_dir = _expr_monotone(expr.base, bounds)
        if inner_dir is None:
            return None
        if expr.exponent % 2 == 1 or expr.exponent == 0:
            return inner_dir if expr.exponent else {}
        inner_iv = expr.base.interval(bounds)
        if inner_iv.a >= 0.0:
            return inner_dir
        if inner_iv.b <= 0.0:
            return _flip_directions(inner_dir)
        return None
    if isinstance(expr, (Exp, Log)):
        return _expr_monotone(expr.inner, bounds)
    if isinstance(expr, Abs):
        inner_iv = expr.inner.interval(bounds)
        inner_dir = _expr_monotone(expr.inner, bounds)
        if inner_iv.a >= 0.0:
            return inner_dir
        if inner_iv.b <= 0.0:
            return _flip_directions(inner_dir)
        return None
    return None


def _expr_curvature(expr: "Expression", bounds) -> str | None:
    """Certified curvature of ``expr`` over the box (composition rules)."""
    if isinstance(expr, (Const, Col)):
        return "affine"
    if isinstance(expr, Neg):
        return _flip_curvature(_expr_curvature(expr.inner, bounds))
    if isinstance(expr, (Add, Sub)):
        lhs = _expr_curvature(expr.left, bounds)
        rhs = _expr_curvature(expr.right, bounds)
        if isinstance(expr, Sub):
            rhs = _flip_curvature(rhs)
        if lhs is None or rhs is None:
            return None
        if lhs == "affine":
            return rhs
        if rhs == "affine" or lhs == rhs:
            return lhs
        return None
    if isinstance(expr, Mul):
        if isinstance(expr.left, Const):
            scale, inner = expr.left.value, expr.right
        elif isinstance(expr.right, Const):
            scale, inner = expr.right.value, expr.left
        else:
            return None
        curvature = _expr_curvature(inner, bounds)
        return curvature if scale >= 0 else _flip_curvature(curvature)
    if isinstance(expr, Div):
        if isinstance(expr.right, Const) and expr.right.value != 0.0:
            curvature = _expr_curvature(expr.left, bounds)
            return curvature if expr.right.value > 0 else _flip_curvature(curvature)
        return None
    if isinstance(expr, Pow):
        base_curv = _expr_curvature(expr.base, bounds)
        if expr.exponent == 0:
            return "affine"
        if expr.exponent == 1:
            return base_curv
        if base_curv != "affine":
            return None
        if expr.exponent % 2 == 0:
            return "convex"  # even power of an affine function
        base_iv = expr.base.interval(bounds)
        if base_iv.a >= 0.0:
            return "convex"
        if base_iv.b <= 0.0:
            return "concave"
        return None
    if isinstance(expr, Exp):
        # exp of affine (or convex) is convex.
        inner = _expr_curvature(expr.inner, bounds)
        return "convex" if inner in ("affine", "convex") else None
    if isinstance(expr, Log):
        # log of affine (or concave) is concave on a positive domain.
        inner = _expr_curvature(expr.inner, bounds)
        return "concave" if inner in ("affine", "concave") else None
    if isinstance(expr, Abs):
        inner = _expr_curvature(expr.inner, bounds)
        return "convex" if inner == "affine" else None
    return None
