"""Derived range bounds for expressions (Appendix B).

Appendix B derives ``[inf f, sup f]`` over the per-column box under two
structural conditions, plus a general fallback:

1. **Monotone in each column** — pick, per column, the endpoint that
   minimizes (resp. maximizes) ``f`` and evaluate at the two resulting
   corners; exact when monotonicity holds.
2. **Convex (or concave)** — the maximum of a convex ``f`` over a box is
   attained at one of the 2ⁿ corners ("database aggregates over
   expressions typically do not involve more than 2 or 3 columns, and any
   n ≤ 20 or so can be handled without trouble"); the minimum is found by
   box-constrained numerical optimization (scipy L-BFGS-B standing in for
   the appendix's off-the-shelf convex solver — any local minimum of a
   convex function over a box is global).
3. **Interval arithmetic** — always-sound but potentially loose enclosure.

Soundness discipline: the structural strategies are applied only when the
corresponding property is *certified symbolically* on the expression AST
(:func:`repro.expressions.expr._expr_monotone` /
:func:`~repro.expressions.expr._expr_curvature` — conservative composition
rules that return "unknown" rather than guess).  An uncertifiable
expression falls back to the interval enclosure, losing only tightness.
"""

from __future__ import annotations

import itertools
from typing import Mapping

import numpy as np
from scipy import optimize

from repro.expressions.expr import Expression, _expr_curvature, _expr_monotone
from repro.fastframe.catalog import RangeBounds

__all__ = [
    "derive_range_bounds",
    "corner_values",
    "monotone_corner_bounds",
    "box_minimum",
    "box_maximum",
    "MAX_CORNER_COLUMNS",
]

#: Appendix B: corner enumeration is feasible for "any n <= 20 or so".
MAX_CORNER_COLUMNS = 20

#: Relative safety margin applied to numerically optimized bounds so that
#: solver tolerance cannot tip a true enclosure into an unsound one.
_NUMERIC_MARGIN = 1e-9


def corner_values(
    expr: Expression, bounds: Mapping[str, RangeBounds]
) -> tuple[float, float]:
    """Min and max of ``f`` over the 2ⁿ corners of the box.

    Exact range for per-column-monotone ``f``; exact *maximum* for convex
    ``f`` (and exact minimum for concave ``f``).
    """
    columns = sorted(expr.columns())
    if len(columns) > MAX_CORNER_COLUMNS:
        raise ValueError(
            f"corner enumeration over {len(columns)} columns exceeds "
            f"{MAX_CORNER_COLUMNS} (2^n corners)"
        )
    lo = np.inf
    hi = -np.inf
    for corner in itertools.product((0, 1), repeat=len(columns)):
        point = {
            name: (bounds[name].a if bit == 0 else bounds[name].b)
            for name, bit in zip(columns, corner)
        }
        value = expr.evaluate_point(point)
        lo = min(lo, value)
        hi = max(hi, value)
    return float(lo), float(hi)


def monotone_corner_bounds(
    expr: Expression,
    bounds: Mapping[str, RangeBounds],
    directions: Mapping[str, int],
) -> RangeBounds:
    """Exact range of a certified per-column-monotone expression.

    Two evaluations: the all-minimizing corner and the all-maximizing one
    (per column, direction +1 means the lower endpoint minimizes).
    """
    low_point = {}
    high_point = {}
    for name in expr.columns():
        direction = directions.get(name, 0)
        box = bounds[name]
        if direction >= 0:
            low_point[name], high_point[name] = box.a, box.b
        else:
            low_point[name], high_point[name] = box.b, box.a
    return RangeBounds(
        expr.evaluate_point(low_point), expr.evaluate_point(high_point)
    )


def _optimize_box(
    expr: Expression,
    bounds: Mapping[str, RangeBounds],
    maximize: bool,
    starts: int,
    seed: int,
) -> float:
    columns = sorted(expr.columns())
    if not columns:
        return expr.evaluate_point({})
    box = [(bounds[name].a, bounds[name].b) for name in columns]
    sign = -1.0 if maximize else 1.0

    def objective(x: np.ndarray) -> float:
        return sign * expr.evaluate_point(dict(zip(columns, x)))

    rng = np.random.default_rng(seed)
    best = np.inf
    for start in range(starts):
        if start == 0:
            x0 = np.array([0.5 * (lo + hi) for lo, hi in box])
        else:
            x0 = np.array([rng.uniform(lo, hi) for lo, hi in box])
        result = optimize.minimize(objective, x0, bounds=box, method="L-BFGS-B")
        best = min(best, float(result.fun))
    return sign * best


def box_minimum(
    expr: Expression,
    bounds: Mapping[str, RangeBounds],
    starts: int = 4,
    seed: int = 0,
) -> float:
    """Numerical box-constrained minimum (global for convex ``f``)."""
    return _optimize_box(expr, bounds, maximize=False, starts=starts, seed=seed)


def box_maximum(
    expr: Expression,
    bounds: Mapping[str, RangeBounds],
    starts: int = 4,
    seed: int = 0,
) -> float:
    """Numerical box-constrained maximum (global for concave ``f``)."""
    return _optimize_box(expr, bounds, maximize=True, starts=starts, seed=seed)


def _pad_down(value: float) -> float:
    return value - _NUMERIC_MARGIN * (1.0 + abs(value))


def _pad_up(value: float) -> float:
    return value + _NUMERIC_MARGIN * (1.0 + abs(value))


def derive_range_bounds(
    expr: Expression, bounds: Mapping[str, RangeBounds]
) -> RangeBounds:
    """Derived range bounds ``[a', b'] ⊇ [inf f, sup f]`` (Appendix B).

    Dispatch order:

    1. certified per-column monotone → exact two-corner range;
    2. certified convex → corner maximum (exact) + numerically optimized,
       safety-padded minimum, intersected with the interval enclosure;
    3. certified concave → the mirror image;
    4. otherwise → interval-arithmetic enclosure.

    Example 1 of the appendix: ``(2·c1 + 3·c2 − 1)²`` with
    ``c1 ∈ [−3, 1], c2 ∈ [−1, 3]`` derives ``[0, 100]``.
    """
    missing = expr.columns() - set(bounds)
    if missing:
        raise KeyError(f"missing range bounds for columns: {sorted(missing)}")
    enclosure = expr.interval(bounds)
    if not expr.columns():
        return enclosure
    few_columns = len(expr.columns()) <= MAX_CORNER_COLUMNS

    directions = _expr_monotone(expr, bounds)
    if directions is not None:
        return monotone_corner_bounds(expr, bounds, directions)

    curvature = _expr_curvature(expr, bounds)
    if curvature == "convex" and few_columns:
        _, corner_hi = corner_values(expr, bounds)
        numeric_lo = _pad_down(box_minimum(expr, bounds))
        return RangeBounds(
            min(max(enclosure.a, numeric_lo), corner_hi),
            min(enclosure.b, corner_hi),
        )
    if curvature == "concave" and few_columns:
        corner_lo, _ = corner_values(expr, bounds)
        numeric_hi = _pad_up(box_maximum(expr, bounds))
        return RangeBounds(
            max(enclosure.a, corner_lo),
            max(min(enclosure.b, numeric_hi), corner_lo),
        )
    return enclosure
