"""Derived range bounds for aggregates over expressions (Appendix B, S21)."""

from repro.expressions.bounds import (
    MAX_CORNER_COLUMNS,
    box_maximum,
    box_minimum,
    corner_values,
    derive_range_bounds,
    monotone_corner_bounds,
)
from repro.expressions.expr import (
    Abs,
    Add,
    Col,
    Const,
    Div,
    Exp,
    Expression,
    Log,
    Mul,
    Neg,
    Pow,
    Sub,
    col,
)

__all__ = [
    "Abs",
    "Add",
    "Col",
    "Const",
    "Div",
    "Exp",
    "Expression",
    "Log",
    "MAX_CORNER_COLUMNS",
    "Mul",
    "Neg",
    "Pow",
    "Sub",
    "box_maximum",
    "box_minimum",
    "col",
    "corner_values",
    "derive_range_bounds",
    "monotone_corner_bounds",
]
