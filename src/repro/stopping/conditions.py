"""Stopping conditions Ê–Ï and their active-group rules (§4.2–4.3).

A stopping condition decides when an approximate query has gathered enough
samples for its downstream application: fixed sample counts, absolute or
relative CI width targets, threshold-side determination (HAVING), top-/
bottom-K separation (ORDER BY … LIMIT K), and full group ordering.

Each condition also designates which groups are **active** — the groups
that should be prioritized for sampling because they are what currently
prevents termination (§4.3).  Active scanning skips blocks containing no
tuples of any active group.

All conditions consume :class:`GroupSnapshot` views: the current confidence
interval, point estimate, and sample count per group (a single-aggregate
query is a one-group special case).

The vectorized executor core evaluates conditions over
:class:`SnapshotColumns` — the struct-of-arrays equivalent of a snapshot
mapping — via :meth:`StoppingCondition.active_mask` /
:meth:`StoppingCondition.satisfied_columns`.  The base class bridges both
representations, so custom conditions written against the mapping API keep
working inside the array engine; every built-in condition overrides the
array path with pure numpy.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np

from repro.bounders.base import Interval

__all__ = [
    "GroupSnapshot",
    "SnapshotColumns",
    "StoppingCondition",
    "SamplesTaken",
    "AbsoluteAccuracy",
    "RelativeAccuracy",
    "ThresholdSide",
    "TopKSeparated",
    "GroupsOrdered",
    "relative_error",
]

GroupKey = Hashable


@dataclass(frozen=True)
class GroupSnapshot:
    """Per-group view the executor exposes to stopping conditions.

    Attributes
    ----------
    interval:
        Current (1 − δ) confidence interval for the group's aggregate (the
        OptStop running intersection when optional stopping is in effect).
    estimate:
        Current point estimate ``ĝ`` of the group's aggregate.
    samples:
        Number of sampled tuples contributing to the group's aggregate.
    exhausted:
        True once every tuple of the group's aggregate view has been
        read — the aggregate is then exact and the group can never be
        active again.
    """

    interval: Interval
    estimate: float
    samples: int
    exhausted: bool = False


@dataclass
class SnapshotColumns:
    """Struct-of-arrays form of a group-snapshot mapping (one row per group).

    Attributes
    ----------
    keys:
        Per-row group identifiers (the executor passes combined group
        codes; any hashable-convertible array works).
    lo, hi:
        Confidence-interval endpoints.
    estimate:
        Point estimates.
    samples:
        Contributing sample counts.
    exhausted:
        Per-row exhaustion flags.
    """

    keys: np.ndarray
    lo: np.ndarray
    hi: np.ndarray
    estimate: np.ndarray
    samples: np.ndarray
    exhausted: np.ndarray

    @property
    def size(self) -> int:
        return self.keys.size

    def to_mapping(self) -> dict[GroupKey, GroupSnapshot]:
        """Materialize the mapping view (compatibility bridge)."""
        return {
            int(self.keys[i]): GroupSnapshot(
                interval=Interval(float(self.lo[i]), float(self.hi[i])),
                estimate=float(self.estimate[i]),
                samples=int(self.samples[i]),
                exhausted=bool(self.exhausted[i]),
            )
            for i in range(self.size)
        }


def relative_error(interval: Interval, estimate: float) -> float:
    """The paper's relative-accuracy statistic (stopping condition Ì).

    ``max{(g_r − ĝ)/g_r, (ĝ − g_l)/g_l}`` — how far, relatively, the truth
    could be from the estimate given the interval.  When the interval
    touches or straddles zero no relative guarantee is possible and ``inf``
    is returned.  Magnitudes are used so the statistic behaves symmetrically
    for negative aggregates.
    """
    if interval.lo <= 0.0 <= interval.hi:
        return math.inf
    return max(
        (interval.hi - estimate) / abs(interval.hi),
        (estimate - interval.lo) / abs(interval.lo),
    )


class StoppingCondition(ABC):
    """Decides termination and sampling priority for a set of groups."""

    @abstractmethod
    def active_groups(
        self, groups: Mapping[GroupKey, GroupSnapshot]
    ) -> set[GroupKey]:
        """Groups to prioritize for sampling (§4.3's activeness rules).

        Exhausted groups are never active — no further sample can change
        their aggregate.
        """

    def satisfied(self, groups: Mapping[GroupKey, GroupSnapshot]) -> bool:
        """True once query processing may terminate.

        The default is "no group is active"; conditions whose termination
        test differs from their activeness rule (e.g. top-K separation)
        override this.
        """
        return not self.active_groups(groups)

    # -- struct-of-arrays flavour ---------------------------------------

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        """Boolean row mask over ``columns``: True = group is active.

        The default materializes the mapping and delegates to
        :meth:`active_groups`, so any custom condition participates in the
        vectorized executor unchanged; built-ins override with numpy.
        """
        active = self.active_groups(columns.to_mapping())
        return np.fromiter(
            (int(key) in active for key in columns.keys),
            dtype=bool,
            count=columns.size,
        )

    def satisfied_columns(self, columns: SnapshotColumns) -> bool:
        """Array-flavoured :meth:`satisfied` (same default rule)."""
        if type(self).satisfied is StoppingCondition.satisfied:
            return not self.active_mask(columns).any()
        # The condition customizes `satisfied`; take the compatible route.
        return self.satisfied(columns.to_mapping())

    #: Multiple of the stopping target beyond which a group counts as
    #: *far* for the adaptive round cadence: its interval must shrink by
    #: at least this factor before the condition could possibly fire for
    #: it, so skipping intermediate recomputations cannot delay stopping.
    FAR_FACTOR = 4.0

    def far_mask(self, columns: SnapshotColumns) -> np.ndarray | None:
        """Rows certifiably far from this condition's stopping target.

        The adaptive round cadence (``round_cadence=k``) recomputes far
        groups' bounds only every k-th round; groups near their target
        still recompute every round so termination is never postponed by
        more than the deferral itself.  ``None`` (the default) means the
        condition has no usable distance notion and every group is
        treated as near — the cadence then changes nothing.  Conditions
        with a width-style target override this with a conservative test
        (far ⊆ active: a far group could not have satisfied the
        condition this round anyway).
        """
        return None

    @staticmethod
    def _live(groups: Mapping[GroupKey, GroupSnapshot]) -> dict[GroupKey, GroupSnapshot]:
        return {key: snap for key, snap in groups.items() if not snap.exhausted}


class SamplesTaken(StoppingCondition):
    """Condition Ê: stop once every group has ``m`` contributing samples.

    The paper notes that with a fixed requested sample size, Algorithm 5's
    δ-decay machinery is unnecessary; the executor honours that by issuing
    a single end-of-run CI when this condition is used.
    """

    def __init__(self, m: int) -> None:
        if m < 1:
            raise ValueError(f"requested sample count must be >= 1, got {m}")
        self.m = m

    def active_groups(self, groups: Mapping[GroupKey, GroupSnapshot]) -> set[GroupKey]:
        return {
            key for key, snap in self._live(groups).items() if snap.samples < self.m
        }

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        return (columns.samples < self.m) & ~columns.exhausted

    def __repr__(self) -> str:
        return f"SamplesTaken(m={self.m})"


class AbsoluteAccuracy(StoppingCondition):
    """Condition Ë: stop once every group's CI width is below ``epsilon``."""

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon

    def active_groups(self, groups: Mapping[GroupKey, GroupSnapshot]) -> set[GroupKey]:
        return {
            key
            for key, snap in self._live(groups).items()
            if snap.interval.width >= self.epsilon
        }

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        return ((columns.hi - columns.lo) >= self.epsilon) & ~columns.exhausted

    def far_mask(self, columns: SnapshotColumns) -> np.ndarray:
        """Groups whose width is still ≥ ``FAR_FACTOR`` × the target."""
        width = columns.hi - columns.lo
        return (width >= self.FAR_FACTOR * self.epsilon) & ~columns.exhausted

    def __repr__(self) -> str:
        return f"AbsoluteAccuracy(epsilon={self.epsilon})"


class RelativeAccuracy(StoppingCondition):
    """Condition Ì: stop once every group's relative error is below ``epsilon``."""

    def __init__(self, epsilon: float) -> None:
        if epsilon <= 0.0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = epsilon

    def active_groups(self, groups: Mapping[GroupKey, GroupSnapshot]) -> set[GroupKey]:
        return {
            key
            for key, snap in self._live(groups).items()
            if relative_error(snap.interval, snap.estimate) >= self.epsilon
        }

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        return (self._relative(columns) >= self.epsilon) & ~columns.exhausted

    def _relative(self, columns: SnapshotColumns) -> np.ndarray:
        lo, hi, est = columns.lo, columns.hi, columns.estimate
        straddles = (lo <= 0.0) & (hi >= 0.0)
        # Non-straddling intervals have same-sign nonzero endpoints, so the
        # guarded denominators are only cosmetic (they silence the unused
        # branch of the where()).
        safe_hi = np.where(straddles, 1.0, np.abs(hi))
        safe_lo = np.where(straddles, 1.0, np.abs(lo))
        rel = np.maximum((hi - est) / safe_hi, (est - lo) / safe_lo)
        return np.where(straddles, math.inf, rel)

    def far_mask(self, columns: SnapshotColumns) -> np.ndarray:
        """Groups whose relative error is still ≥ ``FAR_FACTOR`` × the
        target (straddling-zero groups are infinitely far)."""
        rel = self._relative(columns)
        return (rel >= self.FAR_FACTOR * self.epsilon) & ~columns.exhausted

    def __repr__(self) -> str:
        return f"RelativeAccuracy(epsilon={self.epsilon})"


class ThresholdSide(StoppingCondition):
    """Condition Í: stop once no group's CI contains the threshold ``v``.

    Used for HAVING clauses (F-q2, F-q5) and scalar threshold tests (F-q4):
    once ``v ∉ [g_l, g_r]`` the group's side of the threshold is determined
    w.h.p.
    """

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold

    def active_groups(self, groups: Mapping[GroupKey, GroupSnapshot]) -> set[GroupKey]:
        return {
            key
            for key, snap in self._live(groups).items()
            if self.threshold in snap.interval
        }

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        contains = (columns.lo <= self.threshold) & (self.threshold <= columns.hi)
        return contains & ~columns.exhausted

    def __repr__(self) -> str:
        return f"ThresholdSide(threshold={self.threshold})"


class TopKSeparated(StoppingCondition):
    """Condition Î: stop once the top- (or bottom-)K groups are separated.

    Termination: every non-selected group is **dominated** — at least K
    groups' inner confidence bounds lie strictly beyond its outer bound —
    so its true aggregate cannot rank inside the top (bottom) K.  Full
    pairwise separation of the selected CIs from the rest implies
    dominance, so this fires no later than the classic test and usually
    earlier: a straggler view whose upper bound already sits below K
    lower bounds needs no further samples even while the leaders are
    still disentangling among themselves.

    Activeness (§4.3's rule, the most involved of the six): sort groups by
    estimate and take the midpoint between the K-th ranked aggregate and the
    (K+1)-th.  A top-K group is active while its inner confidence bound
    crosses that midpoint; a remaining group is active while its bound
    crosses from the other side — unless it is already dominated, in which
    case it retires immediately (intervals are running intersections, so
    dominance can never be undone by more samples).
    """

    def __init__(self, k: int, largest: bool = True) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self.largest = largest

    def _ranked_order(self, estimate: np.ndarray) -> np.ndarray:
        """Row order by estimate (descending for top-K), stable on ties.

        The single ranking rule for both condition flavours: the mapping
        path feeds its estimates through this same argsort, so tie-heavy
        snapshots partition identically however they are represented.
        """
        return np.argsort(-estimate if self.largest else estimate, kind="stable")

    def _partition(
        self, groups: Mapping[GroupKey, GroupSnapshot]
    ) -> tuple[list[GroupKey], list[GroupKey]]:
        """Split keys into (selected top/bottom K, remainder) by estimate."""
        keys = list(groups)
        estimate = np.array([groups[key].estimate for key in keys], dtype=np.float64)
        ranked = [keys[row] for row in self._ranked_order(estimate)]
        return ranked[: self.k], ranked[self.k :]

    def _dominated(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Rows certifiably outside the top (bottom) K.

        A row is dominated when at least K *other* rows' inner bounds lie
        strictly beyond its outer bound, i.e. its outer bound is beyond
        the K-th best inner bound over all rows (a row never dominates
        itself: lo ≤ hi rules it out of its own dominator set).
        """
        if self.largest:
            bar = np.partition(lo, lo.size - self.k)[lo.size - self.k]
            return hi < bar
        bar = np.partition(hi, self.k - 1)[self.k - 1]
        return lo > bar

    def satisfied(self, groups: Mapping[GroupKey, GroupSnapshot]) -> bool:
        if len(groups) <= self.k:
            return True
        keys = list(groups)
        lo = np.array([groups[key].interval.lo for key in keys], dtype=np.float64)
        hi = np.array([groups[key].interval.hi for key in keys], dtype=np.float64)
        order = self._ranked_order(
            np.array([groups[key].estimate for key in keys], dtype=np.float64)
        )
        return bool(self._dominated(lo, hi)[order[self.k :]].all())

    def active_groups(self, groups: Mapping[GroupKey, GroupSnapshot]) -> set[GroupKey]:
        if len(groups) <= self.k:
            return set()
        selected, rest = self._partition(groups)
        lo = np.array([groups[key].interval.lo for key in groups], dtype=np.float64)
        hi = np.array([groups[key].interval.hi for key in groups], dtype=np.float64)
        retired = {
            key
            for key, dominated in zip(groups, self._dominated(lo, hi))
            if dominated
        }
        boundary_in = groups[selected[-1]].estimate
        boundary_out = groups[rest[0]].estimate
        midpoint = 0.5 * (boundary_in + boundary_out)
        active: set[GroupKey] = set()
        for key in selected:
            snap = groups[key]
            if snap.exhausted:
                continue
            crosses = (
                snap.interval.lo <= midpoint
                if self.largest
                else snap.interval.hi >= midpoint
            )
            if crosses:
                active.add(key)
        for key in rest:
            snap = groups[key]
            if snap.exhausted or key in retired:
                continue
            crosses = (
                snap.interval.hi >= midpoint
                if self.largest
                else snap.interval.lo <= midpoint
            )
            if crosses:
                active.add(key)
        return active

    def satisfied_columns(self, columns: SnapshotColumns) -> bool:
        if columns.size <= self.k:
            return True
        order = self._ranked_order(columns.estimate)
        dominated = self._dominated(columns.lo, columns.hi)
        return bool(dominated[order[self.k :]].all())

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        if columns.size <= self.k:
            return np.zeros(columns.size, dtype=bool)
        order = self._ranked_order(columns.estimate)
        selected, rest = order[: self.k], order[self.k :]
        midpoint = 0.5 * (
            columns.estimate[selected[-1]] + columns.estimate[rest[0]]
        )
        active = np.zeros(columns.size, dtype=bool)
        if self.largest:
            active[selected] = columns.lo[selected] <= midpoint
            active[rest] = columns.hi[rest] >= midpoint
        else:
            active[selected] = columns.hi[selected] >= midpoint
            active[rest] = columns.lo[rest] <= midpoint
        # Dominance retirement: a rest view certifiably outside the
        # selection can never re-enter it, so it stops sampling now even
        # though the leaders are still separating.
        dominated = self._dominated(columns.lo, columns.hi)
        active[rest] &= ~dominated[rest]
        return active & ~columns.exhausted

    def __repr__(self) -> str:
        kind = "top" if self.largest else "bottom"
        return f"TopKSeparated(k={self.k}, {kind})"


class GroupsOrdered(StoppingCondition):
    """Condition Ï: stop once all groups' CIs are pairwise disjoint.

    Determines the correct ordering of group aggregates w.h.p. [40].  A
    group is active while its interval intersects any other group's.
    """

    def active_groups(self, groups: Mapping[GroupKey, GroupSnapshot]) -> set[GroupKey]:
        keys = list(groups)
        if len(keys) < 2:
            return set()
        lows = np.array([groups[key].interval.lo for key in keys])
        highs = np.array([groups[key].interval.hi for key in keys])
        sorted_lows = np.sort(lows)
        sorted_highs = np.sort(highs)
        # Group i intersects group j iff lo_j <= hi_i and hi_j >= lo_i.  The
        # count of such j (including i itself) is #{lo_j <= hi_i} minus
        # #{hi_j < lo_i} — the latter set is contained in the former since
        # hi_j < lo_i implies lo_j <= hi_j < lo_i <= hi_i.  Exact in
        # O(G log G) via sorted ranks.
        partners = np.searchsorted(sorted_lows, highs, side="right") - np.searchsorted(
            sorted_highs, lows, side="left"
        )
        return {
            key
            for key, count in zip(keys, partners)
            if count > 1 and not groups[key].exhausted
        }

    def active_mask(self, columns: SnapshotColumns) -> np.ndarray:
        if columns.size < 2:
            return np.zeros(columns.size, dtype=bool)
        sorted_lows = np.sort(columns.lo)
        sorted_highs = np.sort(columns.hi)
        partners = np.searchsorted(
            sorted_lows, columns.hi, side="right"
        ) - np.searchsorted(sorted_highs, columns.lo, side="left")
        return (partners > 1) & ~columns.exhausted

    def __repr__(self) -> str:
        return "GroupsOrdered()"
