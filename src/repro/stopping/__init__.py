"""Optional stopping (Algorithm 5) and stopping conditions Ê-Ï (S19-S20)."""

from repro.stopping.conditions import (
    AbsoluteAccuracy,
    GroupsOrdered,
    GroupSnapshot,
    RelativeAccuracy,
    SamplesTaken,
    SnapshotColumns,
    StoppingCondition,
    ThresholdSide,
    TopKSeparated,
    relative_error,
)
from repro.stopping.optstop import (
    DEFAULT_BATCH_SIZE,
    OptStopResult,
    RunningIntersection,
    fixed_size_interval,
    optional_stopping,
)

__all__ = [
    "AbsoluteAccuracy",
    "DEFAULT_BATCH_SIZE",
    "GroupSnapshot",
    "GroupsOrdered",
    "OptStopResult",
    "RelativeAccuracy",
    "RunningIntersection",
    "SamplesTaken",
    "SnapshotColumns",
    "StoppingCondition",
    "ThresholdSide",
    "TopKSeparated",
    "fixed_size_interval",
    "optional_stopping",
    "relative_error",
]
