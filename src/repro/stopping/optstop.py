"""The OptStop optional-stopping meta-algorithm (Algorithm 5, §4.2).

Fixing a sample size ahead of time is impractical — it is usually unknown
how many samples make a CI "just tight enough" for the downstream
application.  OptStop instead keeps sampling in rounds of ``B`` tuples,
recomputing confidence bounds after each round with a decayed error
probability ``δ' = (6/π²)·(δ/k²)``, so that union bounding over rounds
(Theorem 4, via the Basel identity Σ 1/k² = π²/6) keeps the overall failure
probability below δ — the naive alternative of re-issuing fresh (1 − δ)
intervals every round is *not* valid, a mistake the paper calls out in
prior work [20].

The intervals from different rounds may all be intersected: with
probability ≥ 1 − δ *every* round's interval contains the truth, so the
running intersection ``[max_k L_k, min_k R_k]`` is itself a valid (1 − δ)
interval and is what gets tested against the stopping condition.

This module provides a standalone driver for plain datasets (used by unit
tests, examples, and the coverage experiments); the FastFrame executor
embeds the same δ-decay and running-intersection logic for multi-group
queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from repro.bounders.base import ErrorBounder, Interval
from repro.stats.delta import geometric_round_delta, optstop_round_delta

__all__ = [
    "OptStopResult",
    "RunningIntersection",
    "optional_stopping",
    "DEFAULT_BATCH_SIZE",
    "SCHEDULES",
]

#: The paper recomputes bounds every B = 40,000 samples in its experiments.
DEFAULT_BATCH_SIZE = 40_000

#: Round schedules: ``(next_batch_size(round_index, base), round_delta)``.
#: ``"arithmetic"`` is Algorithm 5 verbatim: fixed-size rounds with Basel
#: δ-decay.  ``"geometric"`` is the future-work alternative the paper
#: gestures at ("We leave development of alternative approaches to future
#: work", §4.2): round k ingests ``B·2^{k−1}`` samples and receives
#: ``δ·2^{−k}``, so after m samples only Θ(log m) rounds have fired and the
#: effective per-round δ is a log factor larger — tighter intervals late in
#: a long scan, at the cost of coarser stopping granularity.
SCHEDULES = {
    "arithmetic": (lambda k, base: base, optstop_round_delta),
    "geometric": (lambda k, base: base * (2 ** (k - 1)), geometric_round_delta),
}


@dataclass
class RunningIntersection:
    """Maintains ``[max_k L_k, min_k R_k]`` across OptStop rounds.

    Starts at the trivial interval and only ever tightens; Theorem 4
    guarantees the intersection contains the true aggregate w.h.p. because
    every round's interval does simultaneously.
    """

    lo: float = -np.inf
    hi: float = np.inf

    def fold(self, interval: Interval) -> Interval:
        """Intersect with a new round's interval and return the result."""
        self.lo = max(self.lo, interval.lo)
        self.hi = min(self.hi, interval.hi)
        if self.lo > self.hi:
            # Only possible on the (< δ probability) failure event or from
            # floating-point ties; collapse to the midpoint deterministically.
            mid = 0.5 * (self.lo + self.hi)
            self.lo = self.hi = mid
        return Interval(self.lo, self.hi)

    @property
    def interval(self) -> Interval:
        return Interval(self.lo, self.hi)


@dataclass
class OptStopResult:
    """Outcome of an :func:`optional_stopping` run."""

    interval: Interval
    estimate: float
    samples: int
    rounds: int
    stopped_early: bool


def optional_stopping(
    data: np.ndarray,
    bounder: ErrorBounder,
    a: float,
    b: float,
    delta: float,
    should_stop: Callable[[Interval, float], bool],
    batch_size: int = DEFAULT_BATCH_SIZE,
    rng: np.random.Generator | None = None,
    n: int | None = None,
    schedule: str = "arithmetic",
) -> OptStopResult:
    """Run Algorithm 5 over an in-memory dataset.

    Parameters
    ----------
    data:
        The finite dataset ``D``; a fresh without-replacement sample order
        is drawn with ``rng``.
    bounder:
        Any SSI range-based error bounder (RangeTrim-wrapped or not —
        correctness is independent of the bounder used, Theorem 4).
    a, b:
        A-priori range bounds with ``[a, b] ⊇ [MIN(D), MAX(D)]``.
    delta:
        Total error probability across the entire optional-stopping run.
    should_stop:
        Predicate over ``(running_interval, estimate)``; sampling stops at
        the end of the first round for which it returns True.
    batch_size:
        Round size ``B``; the paper uses 40,000 (§4.2).
    rng:
        Source of randomness for the without-replacement order.
    n:
        Dataset size override (or upper bound); defaults to ``len(data)``.
    schedule:
        Round schedule, a key of :data:`SCHEDULES`: ``"arithmetic"``
        (Algorithm 5) or ``"geometric"`` (doubling rounds, 2^{−k} decay).
        Both telescope the total error probability to at most δ.

    Returns
    -------
    OptStopResult
        With ``stopped_early=False`` when the dataset was exhausted before
        the predicate fired (the interval is then still valid; it is *not*
        collapsed to the exact value, mirroring the executor's behaviour of
        reporting the final certified interval).
    """
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot sample from an empty dataset")
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if schedule not in SCHEDULES:
        raise ValueError(
            f"unknown schedule {schedule!r}; expected one of {sorted(SCHEDULES)}"
        )
    rng = rng or np.random.default_rng()
    population = n if n is not None else data.size
    if population < data.size:
        raise ValueError(
            f"n ({population}) must be >= len(data) ({data.size}); "
            "only an upper bound on the dataset size is sound (§3.3)"
        )

    round_size, round_delta_of = SCHEDULES[schedule]
    order = rng.permutation(data.size)
    state = bounder.init_state()
    running = RunningIntersection()
    taken = 0
    rounds = 0
    stopped_early = False
    while taken < data.size:
        batch = data[order[taken : taken + round_size(rounds + 1, batch_size)]]
        bounder.update_batch(state, batch)
        taken += batch.size
        rounds += 1
        round_delta = round_delta_of(delta, rounds)
        interval = bounder.confidence_interval(state, a, b, population, round_delta)
        running.fold(interval)
        estimate = bounder.estimate(state)
        if should_stop(running.interval, estimate):
            stopped_early = True
            break
    return OptStopResult(
        interval=running.interval,
        estimate=bounder.estimate(state),
        samples=taken,
        rounds=rounds,
        stopped_early=stopped_early,
    )


def fixed_size_interval(
    data: np.ndarray,
    bounder: ErrorBounder,
    m: int,
    a: float,
    b: float,
    delta: float,
    rng: np.random.Generator | None = None,
) -> OptStopResult:
    """Single-shot CI from exactly ``m`` without-replacement samples.

    Stopping condition Ê: when a fixed sample count is requested, the
    δ-decay of Algorithm 5 is unnecessary (§4.2) — one full-budget interval
    is issued at the end.
    """
    data = np.asarray(data, dtype=np.float64)
    if not 1 <= m <= data.size:
        raise ValueError(f"m must be in [1, {data.size}], got {m}")
    rng = rng or np.random.default_rng()
    sample = data[rng.permutation(data.size)[:m]]
    state = bounder.init_state()
    bounder.update_batch(state, sample)
    interval = bounder.confidence_interval(state, a, b, data.size, delta)
    return OptStopResult(
        interval=interval,
        estimate=bounder.estimate(state),
        samples=m,
        rounds=1,
        stopped_early=False,
    )


def stream_batches(
    data: np.ndarray, batch_size: int, rng: np.random.Generator
) -> Iterable[np.ndarray]:
    """Yield without-replacement sample batches covering ``data`` once.

    Utility for callers driving their own round loop (e.g. coverage
    simulations); semantics match :func:`optional_stopping`'s sampling.
    """
    data = np.asarray(data, dtype=np.float64)
    order = rng.permutation(data.size)
    for start in range(0, data.size, batch_size):
        yield data[order[start : start + batch_size]]
