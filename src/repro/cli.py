"""Command-line interface: ``python -m repro <command>``.

Regenerates the paper's evaluation artifacts and answers ad-hoc SQL queries
against the synthetic flights scramble from a terminal:

``list``
    Available experiments, bounders, and sampling strategies.
``table5`` / ``table6``
    The speedup tables (bounder ablation / sampling-strategy ablation).
``fig6`` / ``fig7a`` / ``fig7b`` / ``fig8``
    The parameter sweeps behind each figure.
``coverage``
    The SSI-vs-asymptotic miss-rate experiment (the §1 motivation).
``query "SELECT …"``
    Parse, compile, and run one SQL query with certified intervals.
``dashboard "SELECT …; SELECT …"``
    Run a ``;``-separated multi-query script off **one** shared scan
    (:meth:`repro.api.Connection.gather`), with a joint δ budget and a
    printed ledger + shared-cursor savings report.

Every command accepts ``--rows`` and ``--seed`` for the scramble size and
reproducibility; table/figure commands accept ``--delta``.  Defaults are
laptop-scale (500k rows); the paper-shape contrasts sharpen with
``--rows 2000000`` or more.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.bounders.registry import available_bounders
from repro.datasets import make_flights_scramble
from repro.experiments import (
    ALL_QUERIES,
    build_query,
    format_sweep,
    format_table5,
    format_table6,
    run_table5,
    run_table6,
    sweep_fig6_selectivity,
    sweep_fig7a_relative_error,
    sweep_fig7b_having_threshold,
    sweep_fig8_min_dep_time,
    warm_metadata,
)
from repro.experiments.coverage import (
    DEFAULT_COVERAGE_BOUNDERS,
    run_coverage_experiment,
)
from repro.api import connect
from repro.fastframe.scan import EVALUATED_STRATEGIES
from repro.sql import parse_query, parse_statements
from repro.stopping import AbsoluteAccuracy, RelativeAccuracy, SamplesTaken

__all__ = ["main", "build_parser", "parse_stopping"]

_DEFAULT_DELTA = 1e-9  # see benchmarks/conftest.py for the rationale


def parse_stopping(spec: str):
    """Parse a ``kind:value`` stopping spec (``rel:0.5``, ``abs:2``,
    ``samples:10000``)."""
    kind, _, raw = spec.partition(":")
    kind = kind.strip().lower()
    if not raw:
        raise argparse.ArgumentTypeError(
            f"stopping spec {spec!r} must look like rel:0.5, abs:2.0, or samples:10000"
        )
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad stopping value in {spec!r}") from None
    if kind in ("rel", "relative"):
        return RelativeAccuracy(value)
    if kind in ("abs", "absolute"):
        return AbsoluteAccuracy(value)
    if kind == "samples":
        return SamplesTaken(int(value))
    raise argparse.ArgumentTypeError(
        f"unknown stopping kind {kind!r}; expected rel, abs, or samples"
    )


def _add_scramble_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--rows", type=int, default=500_000, help="flights scramble size"
    )
    parser.add_argument("--seed", type=int, default=0, help="generator seed")


def _add_delta_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--delta", type=float, default=_DEFAULT_DELTA,
        help="query error probability (paper: 1e-15)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Rapid Approximate Aggregation with "
            "Distribution-Sensitive Interval Guarantees' (ICDE 2021)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="available experiments/bounders/strategies")

    table5 = commands.add_parser("table5", help="bounder-ablation speedup table")
    _add_scramble_args(table5)
    _add_delta_arg(table5)
    table5.add_argument(
        "--queries", default=None,
        help="comma-separated subset (default: all nine)",
    )
    table5.add_argument("--reps", type=int, default=3, help="runs per cell")

    table6 = commands.add_parser("table6", help="sampling-strategy ablation table")
    _add_scramble_args(table6)
    _add_delta_arg(table6)
    table6.add_argument("--reps", type=int, default=3, help="runs per cell")

    for figure in ("fig6", "fig7a", "fig7b", "fig8"):
        sub = commands.add_parser(figure, help=f"parameter sweep behind {figure}")
        _add_scramble_args(sub)
        _add_delta_arg(sub)

    coverage = commands.add_parser(
        "coverage", help="SSI vs asymptotic bounder miss rates"
    )
    coverage.add_argument("--trials", type=int, default=400)
    coverage.add_argument("--seed", type=int, default=0)

    query = commands.add_parser("query", help="run one SQL query")
    query.add_argument("sql", help="the SQL text (quote it)")
    _add_scramble_args(query)
    _add_delta_arg(query)
    query.add_argument(
        "--stopping", type=parse_stopping, default=None,
        help="fallback stopping condition, e.g. rel:0.5 / abs:2 / samples:10000",
    )
    query.add_argument(
        "--bounder", default="bernstein+rt", choices=sorted(available_bounders()),
    )
    query.add_argument(
        "--strategy", default="scan", choices=sorted(EVALUATED_STRATEGIES),
    )

    dashboard = commands.add_parser(
        "dashboard",
        help="run a ';'-separated SQL script off one shared scan",
    )
    dashboard.add_argument("sql", help="the multi-statement SQL script (quote it)")
    _add_scramble_args(dashboard)
    _add_delta_arg(dashboard)
    dashboard.add_argument(
        "--stopping", type=parse_stopping, default=None,
        help="fallback stopping condition for statements that imply none",
    )
    dashboard.add_argument(
        "--bounder", default="bernstein+rt", choices=sorted(available_bounders()),
    )
    dashboard.add_argument(
        "--strategy", default="scan", choices=sorted(EVALUATED_STRATEGIES),
    )
    dashboard.add_argument(
        "--policy", default="harmonic", choices=("even", "harmonic"),
        help="per-query delta allocation policy for the joint budget",
    )
    dashboard.add_argument(
        "--parallelism", type=int, default=None,
        help=(
            "worker processes for window ingest (default: "
            "$REPRO_PARALLELISM, then 1); results are bit-identical to "
            "serial execution"
        ),
    )
    dashboard.add_argument(
        "--task-timeout", type=float, default=None,
        help=(
            "per-worker-task deadline in seconds (default: "
            "$REPRO_TASK_TIMEOUT, then 60; 0 disables); timed-out or "
            "crashed tasks are re-dispatched and, as a last resort, "
            "recomputed inline — results stay bit-identical"
        ),
    )
    dashboard.add_argument(
        "--task-batch", type=int, default=None,
        help=(
            "partitions bundled into one worker task (default: "
            "$REPRO_TASK_BATCH, then auto-sized per window to "
            "ceil(partitions / workers)); any batch size produces "
            "byte-identical results"
        ),
    )
    dashboard.add_argument(
        "--storage", default=None, choices=("memory", "mmap"),
        help=(
            "column storage backend (default: $REPRO_STORAGE, then "
            "memory); mmap spills the scramble to an out-of-core block "
            "store and serves gathers as zero-copy views — results are "
            "byte-identical across backends"
        ),
    )
    dashboard.add_argument(
        "--cache-bytes", type=int, default=None,
        help=(
            "block-cache byte budget for mmap storage (default: "
            "$REPRO_CACHE_BYTES, then a shared 256 MiB process-wide "
            "cache)"
        ),
    )
    return parser


def _cmd_list(args, out) -> int:
    print("queries: ", ", ".join(sorted(ALL_QUERIES)), file=out)
    print("bounders:", ", ".join(sorted(available_bounders())), file=out)
    print("strategies:", ", ".join(sorted(EVALUATED_STRATEGIES)), file=out)
    print(
        "tables/figures: table5, table6, fig6, fig7a, fig7b, fig8, coverage",
        file=out,
    )
    return 0


def _cmd_table5(args, out) -> int:
    scramble = make_flights_scramble(rows=args.rows, seed=args.seed)
    names = tuple(args.queries.split(",")) if args.queries else None
    rows = run_table5(scramble, query_names=names, reps=args.reps, delta=args.delta)
    print(format_table5(rows), file=out)
    return 0


def _cmd_table6(args, out) -> int:
    scramble = make_flights_scramble(rows=args.rows, seed=args.seed)
    rows = run_table6(scramble, reps=args.reps, delta=args.delta)
    print(format_table6(rows), file=out)
    return 0


def _cmd_figure(args, out) -> int:
    scramble = make_flights_scramble(rows=args.rows, seed=args.seed)
    if args.command == "fig6":
        wall, blocks = sweep_fig6_selectivity(scramble, delta=args.delta, seed=args.seed)
        print(format_sweep(wall), file=out)
        print("", file=out)
        print(format_sweep(blocks), file=out)
        return 0
    sweep = {
        "fig7a": sweep_fig7a_relative_error,
        "fig7b": sweep_fig7b_having_threshold,
        "fig8": sweep_fig8_min_dep_time,
    }[args.command]
    print(format_sweep(sweep(scramble, delta=args.delta, seed=args.seed)), file=out)
    return 0


def _cmd_coverage(args, out) -> int:
    cells = run_coverage_experiment(trials=args.trials, seed=args.seed)
    header = f"{'bounder':<16} {'SSI':<4} {'m':>5} {'miss rate':>10} {'mean width':>11}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for cell in cells:
        print(
            f"{cell.bounder:<16} {'yes' if cell.ssi else 'NO':<4} "
            f"{cell.sample_size:>5d} {cell.miss_rate:>9.1%} {cell.mean_width:>11.2f}",
            file=out,
        )
    return 0


def _print_groups(result, out) -> None:
    for key, group in sorted(result.groups.items(), key=lambda kv: -kv[1].estimate):
        label = ", ".join(map(str, key)) if key else "(all)"
        print(
            f"  {label:<24} estimate={group.estimate:>10.3f}  "
            f"CI=[{group.interval.lo:.3f}, {group.interval.hi:.3f}]  "
            f"samples={group.samples:,}",
            file=out,
        )


def _cmd_query(args, out) -> int:
    query = parse_query(args.sql, stopping=args.stopping, name="cli")
    scramble = make_flights_scramble(rows=args.rows, seed=args.seed)
    warm_metadata(scramble, query)
    # A single-query connection hands the whole δ to the one query —
    # identical accounting to the pre-connection eager executor path.
    # require_ssi=False: ad-hoc single queries may use non-SSI bounders.
    conn = connect(
        scramble,
        bounder=args.bounder,
        delta=args.delta,
        policy="even",
        max_queries=1,
        strategy=args.strategy,
        rng=np.random.default_rng(args.seed),
        require_ssi=False,
    )
    result = conn.query(query).result()
    print(f"stopping: {query.stopping!r}", file=out)
    print(
        f"rows read: {result.metrics.rows_read:,} / {scramble.num_rows:,} "
        f"({result.metrics.rows_read / scramble.num_rows:.1%}); "
        f"blocks fetched: {result.metrics.blocks_fetched:,}",
        file=out,
    )
    _print_groups(result, out)
    return 0


def _cmd_dashboard(args, out) -> int:
    queries = parse_statements(args.sql, stopping=args.stopping)
    scramble = make_flights_scramble(rows=args.rows, seed=args.seed)
    for query in queries:
        warm_metadata(scramble, query)
    conn = connect(
        scramble,
        bounder=args.bounder,
        delta=args.delta,
        policy=args.policy,
        max_queries=max(len(queries), 1),
        strategy=args.strategy,
        rng=np.random.default_rng(args.seed),
        parallelism=args.parallelism,
        task_timeout=args.task_timeout,
        task_batch=args.task_batch,
        storage=args.storage,
        cache_bytes=args.cache_bytes,
    )
    handles = [conn.query(query) for query in queries]
    batch = conn.gather(handles)
    for handle, result in zip(handles, batch):
        print(f"-- {handle.describe()}", file=out)
        _print_groups(result, out)
    print(
        f"\nshared scan: {batch.rows_read_shared:,} rows fetched vs "
        f"{batch.rows_read_sequential:,} sequential "
        f"({batch.savings:.1%} saved); lookahead windows: "
        f"{batch.metrics.rounds}; values gathered once per shared "
        f"window: {batch.values_gathered:,} elements",
        file=out,
    )
    recovery = batch.metrics.recovery_snapshot()
    if recovery:
        print(
            f"fault recovery: {recovery.tasks_retried} task(s) retried, "
            f"{recovery.tasks_timed_out} timed out, "
            f"{recovery.inline_fallbacks} inline fallback(s), "
            f"{recovery.pool_rebuilds} pool rebuild(s), "
            f"{recovery.shm_cleanup_failures} shm cleanup failure(s) — "
            "results unaffected (recovered tasks recompute identical deltas)",
            file=out,
        )
    storage = batch.metrics.storage_snapshot()
    if storage:
        print(
            f"out-of-core storage: {storage.blocks_read} block(s) read "
            f"({storage.bytes_read:,} bytes), {storage.cache_hits} cache "
            f"hit(s), {storage.cache_evictions} eviction(s), "
            f"{storage.prefetch_hits} prefetch hit(s) — results "
            "byte-identical to in-memory execution",
            file=out,
        )
    print("delta ledger (union bound over the whole dashboard):", file=out)
    for entry in conn.audit():
        print(
            f"  #{entry.index} {entry.name:<12} delta={entry.delta:.3e} "
            f"rows={entry.rows_read:,} early_stop={entry.stopped_early}",
            file=out,
        )
    print(
        f"spent {conn.spent_delta:.3e} of the {conn.session_delta:.0e} budget",
        file=out,
    )
    return 0


_COMMANDS = {
    "list": _cmd_list,
    "table5": _cmd_table5,
    "table6": _cmd_table6,
    "fig6": _cmd_figure,
    "fig7a": _cmd_figure,
    "fig7b": _cmd_figure,
    "fig8": _cmd_figure,
    "coverage": _cmd_coverage,
    "query": _cmd_query,
    "dashboard": _cmd_dashboard,
}


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out or sys.stdout)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
