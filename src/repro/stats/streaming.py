"""Numerically stable streaming moment statistics.

The paper's error bounders (§2.2.2) maintain O(1) state as new tuples are
examined.  Algorithm 2 in the paper tracks the raw second moment ``M2 = Σ v²``
"for the sake of exposition" and notes that a real implementation should use
a numerically stable one-pass variance algorithm (Welford [67], Chan et
al. [17]).  This module provides that implementation.

:class:`MomentState` tracks the count, running mean, and centered second
moment of a stream, supports O(1) single-value updates, vectorized batch
updates, and pairwise merging (Chan/Golub/LeVeque), and supports the affine
"reflection" transform ``v -> (a + b) - v`` used by the paper's ``Rbound``
implementations (Algorithms 1 and 2, step 4).

:class:`MomentPool` is the struct-of-arrays counterpart used by the
vectorized executor core: one slot per aggregate view, updated for *all*
views of a scan window in O(rows) with ``np.bincount`` — no per-view
Python iteration.  Slot ``i`` evolves exactly like an independent
:class:`MomentState` fed the same values (up to floating-point summation
order), which the parity test-suite verifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MomentState", "ExtremaState", "MomentPool"]


@dataclass
class MomentState:
    """Streaming count / mean / centered-second-moment of observed values.

    Attributes
    ----------
    count:
        Number of values observed so far (``m`` in the paper).
    mean:
        Running average of the observed values (``ĝ`` in the paper).
    m2:
        Sum of squared deviations from the running mean,
        ``Σ (v - mean)²``.  The *biased* sample variance used by the
        empirical Bernstein-Serfling bounder is ``m2 / count``.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        """Incorporate a single value (Welford's update)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def update_batch(self, values: np.ndarray) -> None:
        """Incorporate a batch of values via a stable pairwise merge.

        Equivalent to calling :meth:`update` once per element, up to
        floating-point rounding, but vectorized.
        """
        values = np.asarray(values, dtype=np.float64)
        n = values.size
        if n == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(np.square(values - batch_mean).sum())
        self._merge(n, batch_mean, batch_m2)

    def _merge(self, n: int, mean: float, m2: float) -> None:
        """Chan/Golub/LeVeque pairwise merge of another moment aggregate."""
        if n == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = n, mean, m2
            return
        total = self.count + n
        delta = mean - self.mean
        self.m2 += m2 + delta * delta * self.count * n / total
        self.mean += delta * n / total
        self.count = total

    def merge(self, other: "MomentState") -> None:
        """Merge another :class:`MomentState` into this one."""
        self._merge(other.count, other.mean, other.m2)

    @property
    def variance(self) -> float:
        """Biased (population-style) sample variance ``σ̂² = m2 / count``.

        This is the estimator used by the empirical Bernstein-Serfling
        inequality of Bardenet & Maillard [12]; it is clamped at zero to
        guard against tiny negative values from floating-point cancellation.
        """
        if self.count == 0:
            return 0.0
        return max(self.m2 / self.count, 0.0)

    @property
    def std(self) -> float:
        """Biased sample standard deviation ``σ̂``."""
        return math.sqrt(self.variance)

    def reflected(self, a: float, b: float) -> "MomentState":
        """State as if every value ``v`` had been ``(a + b) - v`` instead.

        This is the transform used to implement ``Rbound`` in terms of
        ``Lbound`` (Algorithms 1 and 2): reflection about the midpoint of
        ``[a, b]`` flips the mean and preserves the variance.
        """
        return MomentState(count=self.count, mean=(a + b) - self.mean, m2=self.m2)

    def copy(self) -> "MomentState":
        """Independent copy of this state."""
        return MomentState(self.count, self.mean, self.m2)


@dataclass
class ExtremaState:
    """Streaming MIN / MAX of observed values.

    RangeTrim (Algorithm 6) requires ``O(1)`` extra memory to maintain the
    smallest and largest sample values seen so far, which replace the
    catalog range bounds ``a`` and ``b`` when computing ``Rbound`` and
    ``Lbound`` respectively.
    """

    min: float = field(default=math.inf)
    max: float = field(default=-math.inf)

    def update(self, value: float) -> None:
        """Incorporate a single value."""
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def update_batch(self, values: np.ndarray) -> None:
        """Incorporate a batch of values."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    @property
    def empty(self) -> bool:
        """True if no values have been observed yet."""
        return self.min > self.max

    def copy(self) -> "ExtremaState":
        """Independent copy of this state."""
        return ExtremaState(self.min, self.max)


class MomentPool:
    """Struct-of-arrays bank of :class:`MomentState`-equivalent slots.

    Parameters
    ----------
    size:
        Number of slots (one per aggregate view).

    Attributes
    ----------
    count, mean, m2:
        Parallel arrays; slot ``i`` carries the same semantics as a
        :class:`MomentState` with those fields.
    """

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self.size = size
        self.count = np.zeros(size, dtype=np.int64)
        self.mean = np.zeros(size, dtype=np.float64)
        self.m2 = np.zeros(size, dtype=np.float64)

    @staticmethod
    def batch_stats(
        indices: np.ndarray, values: np.ndarray, size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-slot ``(counts, means, m2s)`` of one indexed batch, in O(len).

        Sequential accumulation plus the corrected two-pass refinement
        (Chan/Golub/LeVeque): the residual sum recovers the accuracy the
        sequential summation loses relative to numpy's pairwise ``mean``,
        and its square corrects the second moment.  A single-slot pool
        short-circuits to the pairwise path directly; sorted indices (the
        hot-path case — every pool ingest stream is group-sorted) take a
        segmented ``np.add.reduceat`` pass instead of weighted bincounts,
        touching only the slots actually present.  Both engines' ingest
        paths always see sorted streams, so serial and parallel runs take
        the same branch and pool state stays byte-identical.
        """
        indices = np.asarray(indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if size == 1:
            counts = np.array([values.size], dtype=np.int64)
            if values.size == 0:
                return counts, np.zeros(1), np.zeros(1)
            mean = float(values.mean())
            m2 = float(np.square(values - mean).sum())
            return counts, np.array([mean]), np.array([m2])
        if values.size == 0:
            zero = np.zeros(size)
            return np.zeros(size, dtype=np.int64), zero, zero.copy()
        if indices.size > 1 and bool((indices[1:] >= indices[:-1]).all()):
            changed = np.empty(indices.size, dtype=bool)
            changed[0] = True
            np.not_equal(indices[1:], indices[:-1], out=changed[1:])
            starts = np.flatnonzero(changed)
            slots = indices[starts]
            seg_counts = np.empty(starts.size, dtype=np.int64)
            np.subtract(starts[1:], starts[:-1], out=seg_counts[:-1])
            seg_counts[-1] = indices.size - starts[-1]
            seg_sums = np.add.reduceat(values, starts)
            seg_mean = seg_sums / seg_counts
            deviations = values - np.repeat(seg_mean, seg_counts)
            seg_residual = np.add.reduceat(deviations, starts)
            seg_mean += seg_residual / seg_counts
            seg_m2 = (
                np.add.reduceat(deviations * deviations, starts)
                - seg_residual * seg_residual / seg_counts
            )
            counts = np.zeros(size, dtype=np.int64)
            counts[slots] = seg_counts
            batch_mean = np.zeros(size)
            batch_mean[slots] = seg_mean
            batch_m2 = np.zeros(size)
            batch_m2[slots] = np.maximum(seg_m2, 0.0)
            return counts, batch_mean, batch_m2
        counts = np.bincount(indices, minlength=size)
        sums = np.bincount(indices, weights=values, minlength=size)
        safe_counts = np.maximum(counts, 1)
        batch_mean = sums / safe_counts
        deviations = values - batch_mean[indices]
        residual = np.bincount(indices, weights=deviations, minlength=size)
        batch_mean += residual / safe_counts
        batch_m2 = (
            np.bincount(indices, weights=deviations * deviations, minlength=size)
            - residual * residual / safe_counts
        )
        return counts, batch_mean, np.maximum(batch_m2, 0.0)

    def update_indexed(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Fold ``values[j]`` into slot ``indices[j]``, for all j, in O(len).

        One vectorized Chan/Golub/LeVeque merge of :meth:`batch_stats`,
        matching :meth:`MomentState.update_batch` applied per slot.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return
        counts, means, m2s = self.batch_stats(indices, values, self.size)
        self.merge_arrays(counts, means, m2s)

    def merge_arrays(
        self,
        counts: np.ndarray,
        means: np.ndarray,
        m2s: np.ndarray,
        present: np.ndarray | None = None,
    ) -> None:
        """Chan/Golub/LeVeque merge of per-slot aggregates (vectorized).

        ``present`` restricts the merge to slots with a non-empty batch
        (defaults to ``counts > 0``).
        """
        if present is None:
            present = counts > 0
        if not present.any():
            return
        n = counts[present]
        old_count = self.count[present]
        fresh = old_count == 0
        total = old_count + n
        delta = means[present] - self.mean[present]
        weight = n / total
        merged_mean = self.mean[present] + delta * weight
        merged_m2 = self.m2[present] + m2s[present] + delta * delta * old_count * weight
        # Slots previously empty adopt the batch aggregates verbatim, exactly
        # like MomentState._merge's early return (avoids 0·∞-style noise).
        self.mean[present] = np.where(fresh, means[present], merged_mean)
        self.m2[present] = np.where(fresh, m2s[present], merged_m2)
        self.count[present] = total

    @property
    def variance(self) -> np.ndarray:
        """Per-slot biased sample variance ``m2 / count`` (0 when empty)."""
        out = np.zeros(self.size, dtype=np.float64)
        filled = self.count > 0
        out[filled] = self.m2[filled] / self.count[filled]
        return np.maximum(out, 0.0)

    @property
    def std(self) -> np.ndarray:
        """Per-slot biased sample standard deviation."""
        return np.sqrt(self.variance)

    def std_of(self, indices: np.ndarray) -> np.ndarray:
        """Biased sample standard deviation of selected slots only.

        Equivalent to ``self.std[indices]`` without computing the variance
        of every slot first (the per-round bounder kernels bound only the
        views a round recomputes).
        """
        variance = self.m2[indices] / np.maximum(self.count[indices], 1)
        return np.sqrt(np.maximum(variance, 0.0))

    def state_of(self, index: int) -> MomentState:
        """Scalar :class:`MomentState` copy of one slot (tests/debugging)."""
        return MomentState(
            count=int(self.count[index]),
            mean=float(self.mean[index]),
            m2=float(self.m2[index]),
        )
