"""Numerically stable streaming moment statistics.

The paper's error bounders (§2.2.2) maintain O(1) state as new tuples are
examined.  Algorithm 2 in the paper tracks the raw second moment ``M2 = Σ v²``
"for the sake of exposition" and notes that a real implementation should use
a numerically stable one-pass variance algorithm (Welford [67], Chan et
al. [17]).  This module provides that implementation.

:class:`MomentState` tracks the count, running mean, and centered second
moment of a stream, supports O(1) single-value updates, vectorized batch
updates, and pairwise merging (Chan/Golub/LeVeque), and supports the affine
"reflection" transform ``v -> (a + b) - v`` used by the paper's ``Rbound``
implementations (Algorithms 1 and 2, step 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MomentState", "ExtremaState"]


@dataclass
class MomentState:
    """Streaming count / mean / centered-second-moment of observed values.

    Attributes
    ----------
    count:
        Number of values observed so far (``m`` in the paper).
    mean:
        Running average of the observed values (``ĝ`` in the paper).
    m2:
        Sum of squared deviations from the running mean,
        ``Σ (v - mean)²``.  The *biased* sample variance used by the
        empirical Bernstein-Serfling bounder is ``m2 / count``.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0

    def update(self, value: float) -> None:
        """Incorporate a single value (Welford's update)."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def update_batch(self, values: np.ndarray) -> None:
        """Incorporate a batch of values via a stable pairwise merge.

        Equivalent to calling :meth:`update` once per element, up to
        floating-point rounding, but vectorized.
        """
        values = np.asarray(values, dtype=np.float64)
        n = values.size
        if n == 0:
            return
        batch_mean = float(values.mean())
        batch_m2 = float(np.square(values - batch_mean).sum())
        self._merge(n, batch_mean, batch_m2)

    def _merge(self, n: int, mean: float, m2: float) -> None:
        """Chan/Golub/LeVeque pairwise merge of another moment aggregate."""
        if n == 0:
            return
        if self.count == 0:
            self.count, self.mean, self.m2 = n, mean, m2
            return
        total = self.count + n
        delta = mean - self.mean
        self.m2 += m2 + delta * delta * self.count * n / total
        self.mean += delta * n / total
        self.count = total

    def merge(self, other: "MomentState") -> None:
        """Merge another :class:`MomentState` into this one."""
        self._merge(other.count, other.mean, other.m2)

    @property
    def variance(self) -> float:
        """Biased (population-style) sample variance ``σ̂² = m2 / count``.

        This is the estimator used by the empirical Bernstein-Serfling
        inequality of Bardenet & Maillard [12]; it is clamped at zero to
        guard against tiny negative values from floating-point cancellation.
        """
        if self.count == 0:
            return 0.0
        return max(self.m2 / self.count, 0.0)

    @property
    def std(self) -> float:
        """Biased sample standard deviation ``σ̂``."""
        return math.sqrt(self.variance)

    def reflected(self, a: float, b: float) -> "MomentState":
        """State as if every value ``v`` had been ``(a + b) - v`` instead.

        This is the transform used to implement ``Rbound`` in terms of
        ``Lbound`` (Algorithms 1 and 2): reflection about the midpoint of
        ``[a, b]`` flips the mean and preserves the variance.
        """
        return MomentState(count=self.count, mean=(a + b) - self.mean, m2=self.m2)

    def copy(self) -> "MomentState":
        """Independent copy of this state."""
        return MomentState(self.count, self.mean, self.m2)


@dataclass
class ExtremaState:
    """Streaming MIN / MAX of observed values.

    RangeTrim (Algorithm 6) requires ``O(1)`` extra memory to maintain the
    smallest and largest sample values seen so far, which replace the
    catalog range bounds ``a`` and ``b`` when computing ``Rbound`` and
    ``Lbound`` respectively.
    """

    min: float = field(default=math.inf)
    max: float = field(default=-math.inf)

    def update(self, value: float) -> None:
        """Incorporate a single value."""
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def update_batch(self, values: np.ndarray) -> None:
        """Incorporate a batch of values."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    @property
    def empty(self) -> bool:
        """True if no values have been observed yet."""
        return self.min > self.max

    def copy(self) -> "ExtremaState":
        """Independent copy of this state."""
        return ExtremaState(self.min, self.max)
