"""Error-probability (δ) budget accounting.

Conservative error bounders give PAC-style guarantees: the returned interval
fails to enclose the true aggregate with probability at most δ.  The paper
composes these guarantees by union bounding in several places:

* across the two CI *sides* — each of ``Lbound`` / ``Rbound`` receives δ/2
  (§2.2.3, combination of one-sided bounds);
* across *aggregate views* in a query — δ must be divided by the number of
  aggregate views, or an upper bound on it (§4.1, after Definition 5);
* across OptStop *rounds* — round ``k`` receives δ′ = (6/π²)·(δ/k²), whose
  sum over k ≥ 1 telescopes back to exactly δ (Algorithm 5, Theorem 4);
* across the *unknown-N* split of Theorem 3 — probability (1−α)·δ is spent
  on the event N > N⁺ and α·δ on the conditional CI (α = 0.99 in §4.1).

:class:`DeltaBudget` makes this composition explicit and auditable, so that
callers cannot silently double-spend error probability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "DeltaBudget",
    "optstop_round_delta",
    "geometric_round_delta",
    "DEFAULT_DELTA",
]

#: The paper sets δ = 1e-15 throughout its evaluation (§5.2) so that results
#: are "correct in an effectively deterministic manner".
DEFAULT_DELTA = 1e-15

#: 6/π², the normalizer making Σ_{k≥1} δ/k² telescope to δ (Theorem 4).
_BASEL_NORMALIZER = 6.0 / (math.pi ** 2)


def optstop_round_delta(delta: float, round_index: int) -> float:
    """Error probability allotted to OptStop round ``k`` (1-indexed).

    Algorithm 5 line 7: ``δ′ = (6/π²)·(δ/k²)``.  Theorem 4 shows the union
    bound over all rounds sums to exactly δ via the Basel identity
    ``Σ 1/k² = π²/6``.

    Parameters
    ----------
    delta:
        Total error probability for the whole optional-stopping run.
    round_index:
        The 1-indexed round number ``k``.

    Raises
    ------
    ValueError
        If ``round_index`` is not a positive integer or ``delta`` is not in
        (0, 1).
    """
    if round_index < 1:
        raise ValueError(f"round_index must be >= 1, got {round_index}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return _BASEL_NORMALIZER * delta / (round_index ** 2)


def geometric_round_delta(delta: float, round_index: int) -> float:
    """Error probability for round ``k`` of a geometric OptStop schedule.

    ``δ_k = δ·2^{−k}``, which telescopes to exactly δ over all rounds.  The
    decay per round is faster than Algorithm 5's Basel decay, but a
    geometric schedule recomputes bounds at exponentially spaced sample
    counts, so after ``m`` samples only ``Θ(log m)`` rounds have occurred
    and the binding δ is ``Θ(δ/m^{log 2/ log growth})``-free — in practice a
    log-factor tighter than the arithmetic schedule's ``Θ(δ·B²/m²)`` at
    large ``m`` (see :func:`repro.stopping.optstop.optional_stopping`'s
    ``schedule`` parameter and ``benchmarks/bench_optstop_schedules.py``).
    """
    if round_index < 1:
        raise ValueError(f"round_index must be >= 1, got {round_index}")
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return delta * (2.0 ** -round_index)


@dataclass(frozen=True)
class DeltaBudget:
    """An immutable slice of error probability.

    A budget starts from a total δ and is subdivided with the composition
    rules the paper uses; each subdivision returns a new (smaller) budget.
    The ``delta`` attribute of a leaf budget is what gets passed to a
    bounder's ``Lbound`` / ``Rbound``.

    Examples
    --------
    >>> budget = DeltaBudget(1e-15)
    >>> per_view = budget.split_even(10)      # 10 aggregate views (§4.1)
    >>> per_round = per_view.for_round(3)     # OptStop round 3 (Alg. 5)
    >>> lo, hi = per_round.split_sides()      # Lbound / Rbound halves
    >>> lo.delta == per_round.delta / 2
    True
    """

    delta: float

    def __post_init__(self) -> None:
        if not 0.0 < self.delta < 1.0:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")

    def split_even(self, parts: int) -> "DeltaBudget":
        """Divide evenly across ``parts`` independent uses (union bound)."""
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        return DeltaBudget(self.delta / parts)

    def split_sides(self) -> tuple["DeltaBudget", "DeltaBudget"]:
        """Split into (lower-bound, upper-bound) halves."""
        half = DeltaBudget(self.delta / 2.0)
        return half, half

    def for_round(self, round_index: int) -> "DeltaBudget":
        """Budget for OptStop round ``k`` per Algorithm 5's δ-decay."""
        return DeltaBudget(optstop_round_delta(self.delta, round_index))

    def split_unknown_n(self, alpha: float = 0.99) -> tuple[float, "DeltaBudget"]:
        """Split for the unknown-dataset-size bound of Theorem 3.

        Returns ``(delta_for_n_plus, budget_for_ci)`` where the first
        element, ``(1 − α)·δ``, is spent on the event that the online upper
        bound N⁺ underestimates the true view size, and the returned budget,
        ``α·δ``, is spent on the conditional confidence interval.  The paper
        fixes α = 0.99 throughout §5, "giving most of the weight to the
        confidence interval computation".
        """
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return (1.0 - alpha) * self.delta, DeltaBudget(alpha * self.delta)
