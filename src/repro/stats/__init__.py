"""Streaming statistics and error-probability budgeting substrates."""

from repro.stats.delta import DEFAULT_DELTA, DeltaBudget, optstop_round_delta
from repro.stats.streaming import ExtremaState, MomentState

__all__ = [
    "DEFAULT_DELTA",
    "DeltaBudget",
    "ExtremaState",
    "MomentState",
    "optstop_round_delta",
]
