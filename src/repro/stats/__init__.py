"""Streaming statistics and error-probability budgeting substrates."""

from repro.stats.delta import (
    DEFAULT_DELTA,
    DeltaBudget,
    geometric_round_delta,
    optstop_round_delta,
)
from repro.stats.streaming import ExtremaState, MomentPool, MomentState

__all__ = [
    "DEFAULT_DELTA",
    "DeltaBudget",
    "ExtremaState",
    "MomentPool",
    "MomentState",
    "geometric_round_delta",
    "optstop_round_delta",
]
