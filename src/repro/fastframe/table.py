"""In-memory relational tables with dictionary-encoded categorical columns.

FastFrame is "a general relational column store for approximate report
generation with guarantees" (§4).  :class:`Table` is the loading-time
representation: continuous columns are float64 arrays; categorical columns
are dictionary-encoded to small integer codes with an explicit value
dictionary, which is what the block bitmap indexes and GROUP BY machinery
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fastframe.catalog import Catalog, ColumnKind

__all__ = ["Table", "CategoricalColumn"]


@dataclass
class CategoricalColumn:
    """Dictionary-encoded categorical column.

    Attributes
    ----------
    codes:
        int32 array mapping each row to an index into ``dictionary``.
    dictionary:
        The distinct values, in code order (``dictionary[codes[i]]`` is the
        original value of row ``i``).
    """

    codes: np.ndarray
    dictionary: tuple

    def __post_init__(self) -> None:
        # O(1) reverse lookup (value -> code); rebuilt whenever a new
        # column instance is constructed (encode / extended / take), so it
        # can never go stale.
        self._code_index = {value: code for code, value in enumerate(self.dictionary)}

    @property
    def cardinality(self) -> int:
        return len(self.dictionary)

    def code_of(self, value) -> int:
        """Dictionary code of ``value``; KeyError if absent.  O(1)."""
        try:
            return self._code_index[value]
        except KeyError:
            raise KeyError(
                f"value {value!r} is not in the column dictionary"
            ) from None

    def decode(self, codes: np.ndarray) -> list:
        """Original values for an array of codes."""
        return [self.dictionary[code] for code in np.asarray(codes)]

    @classmethod
    def encode(cls, values) -> "CategoricalColumn":
        """Dictionary-encode raw values (order of first appearance by sort)."""
        values = np.asarray(values)
        dictionary, codes = np.unique(values, return_inverse=True)
        return cls(codes=codes.astype(np.int32), dictionary=tuple(dictionary.tolist()))

    def extended(self, values) -> "CategoricalColumn":
        """This column with new raw values appended.

        Existing codes stay valid: unseen values are appended to the *end*
        of the dictionary, never reordering it (insertion maintenance —
        bitmap indexes and group domains key on codes).
        """
        dictionary = list(self.dictionary)
        index_of = dict(self._code_index)
        new_codes = np.empty(len(values), dtype=np.int32)
        for position, value in enumerate(values):
            if value not in index_of:
                index_of[value] = len(dictionary)
                dictionary.append(value)
            new_codes[position] = index_of[value]
        return CategoricalColumn(
            codes=np.concatenate([self.codes, new_codes]),
            dictionary=tuple(dictionary),
        )


class Table:
    """A named collection of equal-length columns plus a catalog.

    Parameters
    ----------
    continuous:
        Mapping of column name to float array.
    categorical:
        Mapping of column name to raw values (dictionary-encoded on load)
        or an existing :class:`CategoricalColumn`.
    range_pad:
        Catalog padding fraction applied to every continuous column (see
        :meth:`Catalog.register_continuous`); models conservatively wide
        catalog bounds.
    """

    def __init__(
        self,
        continuous: dict[str, np.ndarray] | None = None,
        categorical: dict[str, object] | None = None,
        range_pad: float = 0.0,
    ) -> None:
        self.catalog = Catalog()
        self._continuous: dict[str, np.ndarray] = {}
        self._categorical: dict[str, CategoricalColumn] = {}
        self._num_rows: int | None = None
        for name, values in (continuous or {}).items():
            self.add_continuous(name, values, pad=range_pad)
        for name, values in (categorical or {}).items():
            self.add_categorical(name, values)

    def _check_length(self, name: str, length: int) -> None:
        if self._num_rows is None:
            self._num_rows = length
        elif length != self._num_rows:
            raise ValueError(
                f"column {name!r} has {length} rows; table has {self._num_rows}"
            )

    def add_continuous(
        self, name: str, values: np.ndarray, pad: float = 0.0, bounds=None
    ) -> None:
        """Add a continuous column, registering catalog range bounds.

        ``bounds`` (a :class:`~repro.fastframe.catalog.RangeBounds`) sets
        explicit catalog bounds — they must enclose the data but may be
        arbitrarily wider (§2.2.1), e.g. the flights generator's
        deliberately outlier-padded delay range.
        """
        values = np.asarray(values, dtype=np.float64)
        if not np.all(np.isfinite(values)):
            raise ValueError(
                f"column {name!r} contains non-finite values; the paper's "
                "setup eliminates N/A and erroneous rows at load (§5.1)"
            )
        self._check_length(name, values.size)
        self._continuous[name] = values
        self.catalog.register_continuous(name, values, pad=pad, bounds=bounds)

    def add_categorical(self, name: str, values) -> None:
        """Add a categorical column (dictionary-encoding raw values)."""
        column = (
            values
            if isinstance(values, CategoricalColumn)
            else CategoricalColumn.encode(values)
        )
        self._check_length(name, column.codes.size)
        self._categorical[name] = column
        self.catalog.register_categorical(name)

    @property
    def num_rows(self) -> int:
        return self._num_rows or 0

    def continuous(self, name: str) -> np.ndarray:
        """Values of a continuous column."""
        if name not in self._continuous:
            raise KeyError(f"no continuous column {name!r}; have {sorted(self._continuous)}")
        return self._continuous[name]

    def categorical(self, name: str) -> CategoricalColumn:
        """A categorical column (codes + dictionary)."""
        if name not in self._categorical:
            raise KeyError(f"no categorical column {name!r}; have {sorted(self._categorical)}")
        return self._categorical[name]

    def column_kind(self, name: str) -> ColumnKind:
        return self.catalog.kind(name)

    def columns(self) -> tuple[str, ...]:
        return tuple(self._continuous) + tuple(self._categorical)

    def append_rows(
        self,
        continuous: dict[str, np.ndarray] | None = None,
        categorical: dict[str, object] | None = None,
    ) -> int:
        """Append rows, widening catalog bounds as §2.2.1's maintenance rule.

        Every column of the table must be supplied and row counts must
        agree.  Returns the number of rows appended.  Catalog bounds only
        grow (``Catalog.widen``), so CIs issued before the insert remain
        valid for the old data.
        """
        continuous = continuous or {}
        categorical = categorical or {}
        supplied = set(continuous) | set(categorical)
        expected = set(self._continuous) | set(self._categorical)
        if supplied != expected:
            raise ValueError(
                f"append must supply every column; missing {sorted(expected - supplied)}, "
                f"unexpected {sorted(supplied - expected)}"
            )
        lengths = {
            len(np.atleast_1d(np.asarray(values)))
            for values in list(continuous.values()) + list(categorical.values())
        }
        if len(lengths) != 1:
            raise ValueError(f"appended columns have differing lengths: {sorted(lengths)}")
        (added,) = lengths
        if added == 0:
            return 0
        for name, values in continuous.items():
            values = np.asarray(values, dtype=np.float64)
            if not np.all(np.isfinite(values)):
                raise ValueError(f"appended column {name!r} contains non-finite values")
            self._continuous[name] = np.concatenate([self._continuous[name], values])
            self.catalog.widen(name, values)
        for name, values in categorical.items():
            self._categorical[name] = self._categorical[name].extended(
                np.atleast_1d(np.asarray(values, dtype=object)).tolist()
            )
        self._num_rows = (self._num_rows or 0) + added
        return added

    def swap_rows(self, i: int, j: int) -> None:
        """Swap two rows in place (scramble insertion maintenance)."""
        if i == j:
            return
        for values in self._continuous.values():
            values[i], values[j] = values[j], values[i]
        for column in self._categorical.values():
            codes = column.codes
            codes[i], codes[j] = codes[j], codes[i]

    def take(self, indices: np.ndarray) -> "Table":
        """A new table holding the given rows (used to build scrambles).

        Catalog range bounds are copied from this table rather than
        re-inferred, so deliberately padded bounds survive permutation.
        """
        result = Table()
        for name, values in self._continuous.items():
            taken = values[indices]
            result._check_length(name, taken.size)
            result._continuous[name] = taken
            result.catalog.register_continuous(name, taken, bounds=self.catalog.bounds(name))
        for name, column in self._categorical.items():
            result.add_categorical(
                name,
                CategoricalColumn(codes=column.codes[indices], dictionary=column.dictionary),
            )
        return result
