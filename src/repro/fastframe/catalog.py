"""Column metadata catalog: a-priori range bounds for continuous columns.

"As in prior work [35], we assume that the database catalog maintains range
bounds a and b for the MIN and MAX of each continuous column, inferred, for
example, during data loading" (§2.2.1).  Note the paper does not require
``[a, b] = [MIN, MAX]`` — only ``[a, b] ⊇ [MIN, MAX]`` — and the whole
point of RangeTrim is that catalog bounds are usually *much* wider than the
effective range of filtered data (Figure 2).  The catalog therefore allows
deliberately widened bounds (``pad`` at registration), which the flights
generator uses to model conservatively loaded data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = ["ColumnKind", "RangeBounds", "Catalog"]


class ColumnKind(Enum):
    """Storage class of a column.

    CONTINUOUS columns carry catalog range bounds and may be aggregated;
    CATEGORICAL columns are dictionary-encoded, may be grouped/filtered on,
    and are covered by block bitmap indexes.
    """

    CONTINUOUS = "continuous"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class RangeBounds:
    """A-priori range bounds ``[a, b]`` for a continuous column."""

    a: float
    b: float

    def __post_init__(self) -> None:
        if not self.a <= self.b:
            raise ValueError(f"range bounds must satisfy a <= b, got [{self.a}, {self.b}]")

    @property
    def width(self) -> float:
        return self.b - self.a

    def contains(self, values: np.ndarray) -> bool:
        """True if every value lies within the bounds."""
        values = np.asarray(values)
        if values.size == 0:
            return True
        return bool(values.min() >= self.a and values.max() <= self.b)


class Catalog:
    """Per-table column metadata: kinds and range bounds.

    The catalog is what error bounders consult for the ``a``/``b``
    arguments; it is populated at load time by :class:`~repro.fastframe.table.Table`.
    """

    def __init__(self) -> None:
        self._kinds: dict[str, ColumnKind] = {}
        self._bounds: dict[str, RangeBounds] = {}

    def register_continuous(
        self, name: str, values: np.ndarray, pad: float = 0.0,
        bounds: RangeBounds | None = None,
    ) -> None:
        """Register a continuous column, inferring bounds from the data.

        Parameters
        ----------
        pad:
            Fraction of the observed range to widen each endpoint by —
            modelling catalogs whose bounds are looser than the data's true
            MIN/MAX (permitted by §2.2.1 and common in practice).
        bounds:
            Explicit bounds overriding inference; must enclose the data.
        """
        values = np.asarray(values, dtype=np.float64)
        if bounds is None:
            if values.size == 0:
                raise ValueError(f"cannot infer bounds for empty column {name!r}")
            lo = float(values.min())
            hi = float(values.max())
            slack = pad * (hi - lo)
            bounds = RangeBounds(lo - slack, hi + slack)
        elif not bounds.contains(values):
            raise ValueError(
                f"explicit bounds [{bounds.a}, {bounds.b}] do not enclose "
                f"column {name!r} (observed [{values.min()}, {values.max()}])"
            )
        self._kinds[name] = ColumnKind.CONTINUOUS
        self._bounds[name] = bounds

    def register_continuous_bounds(self, name: str, bounds: RangeBounds) -> None:
        """Register a continuous column with pre-validated bounds.

        Trusted registration used when attaching out-of-core storage:
        the bounds were validated when the data was spilled and re-live
        in the store manifest, so re-scanning the column here would
        fault the entire mmap in for nothing.
        """
        self._kinds[name] = ColumnKind.CONTINUOUS
        self._bounds[name] = bounds

    def register_categorical(self, name: str) -> None:
        """Register a categorical (dictionary-encoded) column."""
        self._kinds[name] = ColumnKind.CATEGORICAL

    def widen(self, name: str, values: np.ndarray) -> None:
        """Widen a continuous column's bounds to enclose inserted values.

        This is the maintenance step §2.2.1 refers to when noting that
        range-bound assumptions "can be easily maintained in the case of
        insertions": bounds only ever grow, so every previously issued CI
        remains valid.
        """
        current = self.bounds(name)
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        lo = min(current.a, float(values.min()))
        hi = max(current.b, float(values.max()))
        self._bounds[name] = RangeBounds(lo, hi)

    def kind(self, name: str) -> ColumnKind:
        """Storage class of a column; KeyError with context if unknown."""
        if name not in self._kinds:
            raise KeyError(f"column {name!r} is not in the catalog; have {sorted(self._kinds)}")
        return self._kinds[name]

    def bounds(self, name: str) -> RangeBounds:
        """Range bounds of a continuous column."""
        if self.kind(name) is not ColumnKind.CONTINUOUS:
            raise KeyError(f"column {name!r} is categorical; it has no range bounds")
        return self._bounds[name]

    def columns(self) -> tuple[str, ...]:
        return tuple(self._kinds)

    def continuous_columns(self) -> tuple[str, ...]:
        return tuple(
            name for name, kind in self._kinds.items() if kind is ColumnKind.CONTINUOUS
        )

    def categorical_columns(self) -> tuple[str, ...]:
        return tuple(
            name for name, kind in self._kinds.items() if kind is ColumnKind.CATEGORICAL
        )
