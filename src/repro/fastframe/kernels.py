"""The fused per-(query, window) ingest kernel — one copy for every layer.

Every engine in this codebase ultimately does the same thing to a scan
window: slice it down to the run's elements (block mask ∧ predicate),
gather the surviving values and combined group codes, stable-sort by
group code, pre-aggregate per-view statistics, and optionally run the
bounder's pure partition step.  Before this module existed that
arithmetic lived in three near-copies — the scalar engine, the ViewPool
serial path, and the parallel worker — and every optimization (or bug
fix) had to land three times and be parity-tested three ways.

:func:`partition_ingest` is now the single entry point all three layers
call.  The primitives it composes (:func:`slice_elements`,
:func:`partition_slice`, :func:`build_ingest_delta`,
:func:`lookup_codes`, :class:`IngestDelta`, :class:`WindowSlice`)
moved here from ``viewpool.py``; ``viewpool`` re-exports them so
existing imports keep working, but the arithmetic exists exactly once —
in this module.

Fusion
------

Relative to the composed legacy passes the kernel removes whole array
sweeps while producing byte-identical deltas:

* **All-pass gather elision** — when every element of the window
  survives the slice (no block-mask restriction and an all-true
  predicate: the common full-scan case), the boolean gathers
  ``values[pick]`` / ``combined[pick]`` are replaced by zero-copy views
  (``arr[:]``).  Nothing downstream mutates its inputs, so views are
  safe; callers that ship a delta out of shared memory pass
  ``own_arrays=True`` and the kernel re-materializes only what escapes.
* **Sort-fused value gather** — for multi-view value queries the legacy
  path gathered values twice (boolean gather, then permutation by sort
  order).  The kernel converts the pick mask to indices once and
  gathers values directly in sorted order (``full[pick_idx[order]]``)
  — one gather instead of two, identical floats.
* **Low-cardinality bucketing** — the stable sort by combined group
  code is replaced, when the pool domain is small, by a counting sort:
  codes are first ranked into the dense pool domain
  (:func:`lookup_codes`), the ranks are narrowed to ``uint8``/``uint16``
  and stable-argsorted — numpy's stable integer argsort is a radix
  sort, so this is 1–2 counting passes instead of 8 for the legacy
  ``int64`` sort.  Ranking is a strictly monotone map of the codes, so
  the stable permutation — and therefore every downstream byte — is
  identical to the legacy sort.  ``BUCKET_MAX_CARDINALITY`` caps the
  path; ``benchmarks/bench_hot_path.py`` measures the crossover.

Determinism contract: for the same inputs the kernel returns the same
bytes as the composed legacy passes — ``tests/fastframe/test_kernels.py``
pins fused ≡ composed across the edge cases (empty partition, all rows
filtered, single group, max cardinality, non-contiguous slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.stats.streaming import MomentPool

__all__ = [
    "BUCKET_MAX_CARDINALITY",
    "IngestDelta",
    "WindowSlice",
    "lookup_codes",
    "group_order",
    "build_ingest_delta",
    "slice_elements",
    "partition_slice",
    "partition_ingest",
]

#: Largest pool domain partitioned by counting sort (rank + narrow-dtype
#: radix argsort) instead of the general stable sort on int64 codes.
#: Ranks fit uint8 up to 256 views and uint16 up to 65536; beyond that
#: the narrowing pass stops paying for itself.
BUCKET_MAX_CARDINALITY = 65536

#: Zero-copy gather key for the all-pass fast path (``arr[_ALL]`` is a
#: view, not a copy).
_ALL = slice(None)


def lookup_codes(codes: np.ndarray, combined: np.ndarray) -> np.ndarray:
    """Pool row index per combined code over a sorted domain (checked).

    Raises :class:`KeyError` when any code is outside the domain — an
    unguarded ``searchsorted`` would silently return a neighboring view's
    row and corrupt its counters (e.g. when an insert widens a dictionary
    after the pool was built).  Module-level so worker processes can map
    codes without holding a :class:`~repro.fastframe.viewpool.ViewPool`.
    """
    combined = np.asarray(combined, dtype=np.int64)
    if codes.size == 0:
        if combined.size:
            raise KeyError(
                f"combined group codes {np.unique(combined)[:8].tolist()} "
                "looked up in an empty pool domain"
            )
        return np.zeros(0, dtype=np.int64)
    span = int(codes[-1]) - int(codes[0])
    if combined.size > codes.size and span <= max(4 * combined.size, 4096):
        # Dense-domain fast path: one table gather per element instead of
        # a binary search — same integer ranks, bit for bit.  Mixed-radix
        # combined codes are near-dense, so this is the common case.
        base = int(codes[0])
        table = np.full(span + 2, -1, dtype=np.int64)
        table[codes - base] = np.arange(codes.size, dtype=np.int64)
        offsets = np.clip(combined - base, -1, span + 1)
        idx = table[offsets]
        bad = idx < 0
    else:
        idx = np.searchsorted(codes, combined)
        clipped = np.minimum(idx, codes.size - 1)
        bad = (idx >= codes.size) | (codes[clipped] != combined)
    if bad.any():
        missing = np.unique(combined[bad])[:8]
        raise KeyError(
            f"combined group codes {missing.tolist()} are not in the "
            "pool domain (stale pool after inserts?)"
        )
    return idx


def group_order(
    view_combined: np.ndarray, codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stable grouping permutation and sorted pool rows for a slice.

    Returns ``(order, view_idx)`` such that ``view_combined[order]`` is
    sorted ascending with ties in stream order (the order the
    order-sensitive bounder pools require) and ``view_idx`` maps each
    sorted element to its pool row.

    Small domains take the counting-sort path: rank every code into the
    dense domain first, then stable-argsort the narrowed ranks — numpy's
    stable integer argsort is a radix sort, so ``uint8``/``uint16`` keys
    cost 1–2 counting passes instead of 8 for int64 codes.  The ranking
    is strictly monotone over the sorted unique domain, so the stable
    permutation is byte-identical to the legacy sort on the raw codes.
    """
    size = codes.size
    if 1 < size <= BUCKET_MAX_CARDINALITY:
        ranks = lookup_codes(codes, view_combined)
        key_dtype = np.uint8 if size <= 256 else np.uint16
        order = np.argsort(ranks.astype(key_dtype), kind="stable")
        return order, ranks[order]
    order = np.argsort(view_combined, kind="stable")
    return order, lookup_codes(codes, view_combined[order])


@dataclass
class IngestDelta:
    """One (query, window) slice, partitioned and ready to merge.

    The unit of work a parallel ingest worker returns: everything
    :meth:`~repro.fastframe.viewpool.ViewPool.apply_ingest` needs to
    fold the window into the pool without touching the window's row
    data again.

    Attributes
    ----------
    n_read:
        Rows of the window this run read (its block mask's elements).
    n_in_view:
        Rows that additionally pass the run's predicate.
    view_idx:
        Pool row per in-view element, sorted ascending with ties in
        stream order (the order the bounder pools require); ``None``
        when ``n_in_view == 0``.
    values:
        Aggregated-column values aligned with ``view_idx``; ``None`` for
        COUNT queries.
    counts, means, m2s:
        Optional pre-aggregated per-view batch statistics
        (:meth:`MomentPool.batch_stats` output for value queries, a
        plain bincount for COUNT).  Workers precompute them; the serial
        path leaves them ``None`` and :meth:`ensure_stats` fills them in
        lazily.  Either way the arrays are the output of the same pure
        function over the same inputs, so the merge is bit-identical.
    bounder_delta:
        Optional pre-partitioned bounder-state delta
        (:meth:`~repro.bounders.base.ErrorBounder.partition_delta`
        output).  A worker sets it — and drops :attr:`view_idx` /
        :attr:`values` from the payload — when the run's bounder is
        delta-capable and every view is settling; the serial path leaves
        it ``None`` and ``apply_ingest`` runs the identical partition in
        place.
    """

    n_read: int
    n_in_view: int
    view_idx: np.ndarray | None = None
    values: np.ndarray | None = None
    counts: np.ndarray | None = None
    means: np.ndarray | None = None
    m2s: np.ndarray | None = None
    bounder_delta: Any = None

    @property
    def needs_values(self) -> bool:
        """True for value (non-COUNT) deltas, however they were shipped.

        A worker-native delta omits :attr:`values`; its per-view means
        (value queries always pre-aggregate stats) or bounder delta still
        mark it as a value ingest.
        """
        return (
            self.values is not None
            or self.means is not None
            or self.bounder_delta is not None
        )

    def payload_nbytes(self) -> int:
        """Bytes of array payload this delta carries across IPC."""
        total = 0
        for array in (self.view_idx, self.values, self.counts, self.means, self.m2s):
            if array is not None:
                total += array.nbytes
        if self.bounder_delta is not None:
            total += self.bounder_delta.nbytes
        return total

    def ensure_stats(self, size: int, needs_values: bool) -> None:
        """Fill :attr:`counts` (and value moments) if a worker didn't."""
        if self.counts is not None or self.n_in_view == 0:
            return
        if self.view_idx is None:
            raise ValueError(
                "IngestDelta shipped without per-view statistics or row "
                "arrays; a native delta must precompute counts"
            )
        if needs_values:
            self.counts, self.means, self.m2s = MomentPool.batch_stats(
                self.view_idx, self.values, size
            )
        else:
            self.counts = np.bincount(self.view_idx, minlength=size)


def build_ingest_delta(
    n_read: int,
    n_in_view: int,
    view_values: np.ndarray | None,
    view_combined: np.ndarray | None,
    codes: np.ndarray,
    *,
    needs_values: bool,
    with_stats: bool = False,
) -> IngestDelta:
    """Partition one pre-gathered window slice into an :class:`IngestDelta`.

    ``view_values`` / ``view_combined`` are the run's predicate-passing
    elements of the window in scan order (``view_values`` is ``None`` for
    COUNT queries; ``view_combined`` is ``None`` for single-view pools,
    which need no partitioning).  ``codes`` is the pool's sorted combined
    domain.  Pure function: safe to run in a worker process over
    shared-memory buffers.  ``with_stats`` additionally pre-aggregates the
    per-view bincount statistics (workers pay this O(rows) pass so the
    main process's merge is O(views)).

    Callers holding un-gathered window arrays should prefer
    :func:`partition_ingest`, which fuses the gathers with the sort;
    this entry point exists for pre-gathered arrays and shares
    :func:`group_order` with the fused path, so both produce identical
    bytes.
    """
    if n_in_view == 0:
        return IngestDelta(n_read=n_read, n_in_view=0)
    if view_combined is None or codes.size <= 1:
        # Single view: no partitioning needed, keep stream order.
        view_idx = np.zeros(n_in_view, dtype=np.int64)
        ordered_values = view_values
    else:
        sort_order, view_idx = group_order(view_combined, codes)
        ordered_values = view_values[sort_order] if needs_values else None
    delta = IngestDelta(
        n_read=n_read,
        n_in_view=n_in_view,
        view_idx=view_idx,
        values=ordered_values,
    )
    if with_stats:
        delta.ensure_stats(max(codes.size, 1), needs_values)
    return delta


@dataclass
class WindowSlice:
    """Element accounting of one run's slice of one window.

    Attributes
    ----------
    n_read:
        Elements the run's block mask selects (all of them when ``sel``
        was ``None``, i.e. the mask equals the window's union).
    n_in_view:
        Selected elements that additionally pass the run's predicate.
    pick:
        The combined boolean element mask (``None`` when nothing was
        read — the predicate mask is then never evaluated).
    """

    n_read: int
    n_in_view: int
    pick: np.ndarray | None


def slice_elements(n_rows: int, sel, predicate_of) -> WindowSlice:
    """Count one run's window slice (pure; the first half of ingest).

    ``sel`` is the run's element selector over the window's fetched rows
    (``None`` when the run's mask is the union); ``predicate_of`` lazily
    supplies the predicate mask — evaluated only when the run read
    anything, exactly the serial lazy condition.  The ONE copy of this
    arithmetic: the serial consume path, the parallel driver, and the
    worker processes all call it, so the engines cannot drift.
    """
    n_read = int(n_rows) if sel is None else int(np.count_nonzero(sel))
    pick = None
    n_in_view = 0
    if n_read:
        pred = predicate_of()
        pick = pred if sel is None else (sel & pred)
        n_in_view = int(np.count_nonzero(pick))
    return WindowSlice(n_read=n_read, n_in_view=n_in_view, pick=pick)


def partition_slice(
    window_slice: WindowSlice,
    codes: np.ndarray,
    values_of=None,
    combined_of=None,
    *,
    with_stats: bool = False,
) -> IngestDelta:
    """Partition a counted slice into an :class:`IngestDelta` (pure, fused).

    ``values_of`` / ``combined_of`` lazily gather the slice's value and
    combined-code arrays from a gather key (``None`` for COUNT queries /
    single-view pools); they are only invoked when the slice has in-view
    elements — again the serial lazy condition, shared by every engine.
    The gather key is a boolean pick mask, an int64 index array, or
    ``slice(None)`` — all three index an ndarray the same way, and the
    kernel picks whichever does the least work:

    * all elements pass → ``slice(None)`` (zero-copy view, no gather);
    * multi-view value query → the pick mask is converted to indices once
      and values are gathered directly in sorted order (one gather
      instead of gather-then-permute).
    """
    n_in_view = window_slice.n_in_view
    needs_values = values_of is not None
    if n_in_view == 0:
        return IngestDelta(n_read=window_slice.n_read, n_in_view=0)
    pick = window_slice.pick
    if n_in_view == pick.size:
        # All-pass fast path: every element of the window survives the
        # slice, so gathers degrade to zero-copy views.
        pick = _ALL
    if combined_of is None or codes.size <= 1:
        # Single view: no partitioning needed, keep stream order.
        view_idx = np.zeros(n_in_view, dtype=np.int64)
        ordered_values = values_of(pick) if needs_values else None
    else:
        if needs_values and pick is not _ALL:
            # Indices instead of a mask, so the value gather below can
            # fuse with the sort permutation (one gather, not two).
            pick = np.flatnonzero(pick)
        view_combined = combined_of(pick)
        sort_order, view_idx = group_order(view_combined, codes)
        if needs_values:
            gather = sort_order if pick is _ALL else pick[sort_order]
            ordered_values = values_of(gather)
        else:
            ordered_values = None
    delta = IngestDelta(
        n_read=window_slice.n_read,
        n_in_view=n_in_view,
        view_idx=view_idx,
        values=ordered_values,
    )
    if with_stats:
        delta.ensure_stats(max(codes.size, 1), needs_values)
    return delta


def partition_ingest(
    n_rows: int,
    sel,
    predicate_of,
    codes: np.ndarray,
    values_of=None,
    combined_of=None,
    *,
    with_stats: bool = False,
    window_slice: WindowSlice | None = None,
    bounder=None,
    bounder_ctx=None,
    native: bool = False,
    own_arrays: bool = False,
) -> IngestDelta:
    """The whole ingest hot path, fused: slice → gather → sort → stats.

    The single kernel entry point all three call layers use — the scalar
    engine, the ViewPool serial path, and the parallel workers — so one
    optimization lands everywhere and parity stays one test.

    Parameters
    ----------
    n_rows:
        Fetched elements of the window (``frame.rows.size``).
    sel:
        The run's boolean element selector (``None`` when the run's
        block mask is the window union).
    predicate_of:
        Lazily supplies the predicate mask over the window's elements.
    codes:
        The pool's sorted combined group-code domain (the run's full
        group domain for the scalar engine).
    values_of, combined_of:
        Lazy gathers as in :func:`partition_slice`.
    with_stats:
        Pre-aggregate per-view statistics (workers pay this O(rows)
        pass so the main-process merge is O(views)).
    window_slice:
        A pre-counted :class:`WindowSlice` (drivers that sliced during
        task planning pass it to avoid recounting); computed via
        :func:`slice_elements` when ``None``.
    bounder, bounder_ctx, native:
        When ``native`` is true and the slice is non-empty, the
        bounder's pure ``partition_delta`` runs over the sorted stream
        and the O(rows) ``view_idx``/``values`` arrays are dropped from
        the delta — the worker-native protocol from PR 5.  ``bounder``
        may be ``None`` for COUNT-style native deltas that ship
        pre-aggregated counts only.
    own_arrays:
        Force the returned row arrays to own their memory.  The fused
        fast paths may return zero-copy views into the window buffers;
        a delta that outlives those buffers (shipped over IPC from a
        shared-memory frame) must re-materialize them.
    """
    if window_slice is None:
        window_slice = slice_elements(n_rows, sel, predicate_of)
    delta = partition_slice(
        window_slice,
        codes,
        values_of,
        combined_of,
        with_stats=with_stats or native,
    )
    if native and delta.n_in_view:
        if bounder is not None:
            delta.bounder_delta = bounder.partition_delta(
                delta.view_idx, delta.values, max(codes.size, 1), bounder_ctx
            )
        # Native protocol: per-view aggregates travel, O(rows) arrays
        # don't.
        delta.view_idx = None
        delta.values = None
    if own_arrays:
        if delta.values is not None and not delta.values.flags.owndata:
            delta.values = delta.values.copy()
        if delta.view_idx is not None and not delta.view_idx.flags.owndata:
            delta.view_idx = delta.view_idx.copy()
    return delta
